//! Browser extension: simulate the full six-month, 28-user deployment
//! and print the dataset the way the paper's §3.1 summarises it —
//! Table 1, the speedtest medians, and a CSV sample of the (anonymised)
//! records.
//!
//! ```text
//! cargo run --release --example browser_extension
//! ```

use starlink_core::geo::City;
use starlink_core::telemetry::{Campaign, CampaignConfig};

fn main() {
    println!("simulating the 6-month browser-extension campaign (28 users, 10 cities)...\n");

    let campaign = Campaign::new(CampaignConfig {
        seed: 42,
        days: 182,
        ..CampaignConfig::default()
    });

    // Fig. 1's census.
    let population = campaign.population();
    println!("users by city:");
    for city in population.cities() {
        let starlink = population
            .in_city(city)
            .filter(|u| u.isp.is_starlink())
            .count();
        let non = population.in_city(city).count() - starlink;
        println!(
            "  {:<16} {} Starlink + {} non-Starlink",
            city.name(),
            starlink,
            non
        );
    }

    let dataset = campaign.run();
    println!(
        "\ncollected {} page records and {} speedtests (paper: >50,000 readings)\n",
        dataset.pages.len(),
        dataset.speedtests.len()
    );

    // Table 1 view.
    println!("city-wise medians (Table 1 shape):");
    for city in [City::London, City::Seattle, City::Sydney] {
        let sl = dataset.city_aggregate(city, true);
        let non = dataset.city_aggregate(city, false);
        println!(
            "  {:<9} Starlink {:>6} req / {:>4} domains / median {:>4.0} ms   \
             non-Starlink {:>5} req / median {:>4.0} ms",
            city.name(),
            sl.requests,
            sl.domains,
            sl.median_ptt_ms,
            non.requests,
            non.median_ptt_ms
        );
    }

    // Table 3 view.
    println!("\nspeedtest medians of Starlink users (Table 3 shape):");
    for city in [City::London, City::Seattle, City::Toronto, City::Warsaw] {
        let (dl, ul) = dataset.speedtest_medians(city);
        println!(
            "  {:<9} {:>6.1} Mbps down / {:>4.1} Mbps up",
            city.name(),
            dl,
            ul
        );
    }

    // The anonymised export — first lines only.
    let csv = dataset.speedtests_csv();
    println!("\nanonymised speedtest export (first 5 rows):");
    for line in csv.lines().take(6) {
        println!("  {line}");
    }
    println!(
        "\nno IPs, no names — users are random identifiers, exactly as the\n\
         paper's ethics section requires."
    );
}
