//! Dishy status: poll the simulated Starlink Status (Dishy) API while the
//! constellation wheels overhead — the §3.2 debugging workflow of the
//! paper's volunteer nodes.
//!
//! ```text
//! cargo run --release --example dishy_status
//! ```

use starlink_core::channel::WeatherCondition;
use starlink_core::geo::City;
use starlink_core::simcore::{SimDuration, SimTime};
use starlink_core::world::{NodeWorld, NodeWorldConfig, WeatherSpec};

fn main() {
    let world = NodeWorld::build(&NodeWorldConfig {
        city: City::Wiltshire,
        seed: 42,
        window: SimDuration::from_mins(12),
        weather: WeatherSpec::Constant(WeatherCondition::ClearSky),
    });

    println!("polling the dishy API every 60 s over a 12-minute window:\n");
    for minute in 0..12 {
        let status = world.dishy_status(SimTime::from_secs(minute * 60));
        println!("{}", status.render());
    }

    println!(
        "watch the tracked satellite change name at each handover, the slant\n\
         range sweep through 550-1100 km across a pass, and signal quality\n\
         follow elevation — the live state behind the paper's Fig. 7."
    );
}
