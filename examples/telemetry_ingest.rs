//! The resilient telemetry ingestion path, end to end: a 30-day
//! campaign uploads every user's daily record batch through a fault
//! storm (collector blackouts, link flaps, burst corruption, user
//! churn), gets checkpointed and "killed" halfway, resumes, and proves
//! the resumed dataset is byte-identical to a straight run — while the
//! coverage report accounts for every record generated.
//!
//! ```text
//! cargo run --release --example telemetry_ingest
//! ```

use starlink_core::telemetry::{CampaignConfig, IngestOptions, ResilientCampaign};

fn main() {
    let days = 30;
    let config = CampaignConfig {
        seed: 42,
        days,
        ..CampaignConfig::default()
    };
    let storm = IngestOptions::fault_storm(28, days);

    // Straight through: the reference run.
    let straight = ResilientCampaign::new(config.clone(), storm.clone()).run_to_end();

    // Same scenario, interrupted: checkpoint at day 13, "crash", resume.
    let mut rc = ResilientCampaign::new(config.clone(), storm.clone());
    for _ in 0..13 {
        rc.run_day();
    }
    let blob = rc.checkpoint();
    println!(
        "checkpointed at day {} ({} bytes, {} batches spooled) — killing the run\n",
        rc.next_day(),
        blob.len(),
        rc.spooled()
    );
    drop(rc);

    let resumed = ResilientCampaign::resume(config, storm, &blob)
        .expect("matching scenario accepts its own checkpoint")
        .run_to_end();

    println!("per-city coverage (resumed run):");
    println!("{}", resumed.coverage.render());
    println!(
        "quarantined uploads: {} (typed reasons), duplicates deduped: {}",
        resumed.quarantine.len(),
        resumed.duplicates
    );
    if let Some(q) = resumed.quarantine.first() {
        println!("first quarantine entry: {} ({})", q.reason_code, q.detail);
    }

    let (a, b) = (straight.dataset.digest(), resumed.dataset.digest());
    println!("\nstraight-run digest: {a:016x}");
    println!("resumed-run digest:  {b:016x}");
    assert_eq!(a, b, "kill/resume must not change the dataset");
    println!("byte-identical after kill/resume — determinism holds");
}
