//! Quickstart: build a volunteer-node world, run one traceroute and one
//! speedtest over the live Starlink bent pipe, and print what a user of
//! the library sees first.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use starlink_core::channel::WeatherCondition;
use starlink_core::geo::City;
use starlink_core::simcore::SimDuration;
use starlink_core::tools::{speedtest, traceroute, TracerouteOptions};
use starlink_core::world::{NodeWorld, NodeWorldConfig, WeatherSpec};

fn main() {
    println!("starlink-browser-view quickstart\n");

    // A UK volunteer node under clear skies, 15 simulated minutes.
    let mut world = NodeWorld::build(&NodeWorldConfig {
        city: City::Wiltshire,
        seed: 42,
        window: SimDuration::from_mins(15),
        weather: WeatherSpec::Constant(WeatherCondition::ClearSky),
    });

    println!("{}", world.topology_diagram());

    // Traceroute to the test server — watch the bent-pipe jump at hop 2.
    let trace = traceroute(
        &mut world.net,
        world.node,
        world.server,
        &TracerouteOptions {
            max_ttl: 8,
            probes_per_hop: 5,
            ..TracerouteOptions::default()
        },
    );
    println!("traceroute to test-server ({} hops):", trace.hops.len());
    for hop in &trace.hops {
        match hop.mean_rtt_ms() {
            Some(rtt) => println!(
                "  {:>2}  {:<16} {:>7.2} ms  (loss {:>4.0}%)",
                hop.ttl,
                hop.name,
                rtt,
                hop.loss_fraction() * 100.0
            ),
            None => println!("  {:>2}  *", hop.ttl),
        }
    }

    // A Libretest-style speedtest (10 s per direction).
    let result = speedtest(
        &mut world.net,
        world.node,
        world.server,
        SimDuration::from_secs(10),
    );
    println!(
        "\nspeedtest: {:.1} Mbps down / {:.1} Mbps up",
        result.downlink.as_mbps(),
        result.uplink.as_mbps()
    );
    println!(
        "\n(seed-deterministic: run again and you will get exactly the same numbers;\n\
         \x20change --seed in the repro binary, or the seed here, for another universe)"
    );
}
