//! Weather impact: sweep the seven OpenWeatherMap conditions over a
//! London Starlink path and print the PTT box plots (the Fig. 4
//! scenario, run as a controlled experiment instead of waiting for rain).
//!
//! ```text
//! cargo run --release --example weather_impact
//! ```

use starlink_core::analysis::five_number_summary;
use starlink_core::channel::WeatherCondition;
use starlink_core::simcore::{DataRate, SimRng};
use starlink_core::web::{PageLoadModel, PathInputs, Tranco};

fn main() {
    println!("PTT under controlled weather — London Starlink user\n");
    println!(
        "{:<18} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "condition", "min", "q1", "median", "q3", "max"
    );

    let tranco = Tranco::new(42, 100_000);
    let model = PageLoadModel::default();

    for weather in WeatherCondition::ALL {
        let mut rng = SimRng::seed_from(42).stream(weather.label());
        let samples: Vec<f64> = (0..3_000)
            .map(|_| {
                let site = tranco.sample_visit(&mut rng);
                // The same access path; only the weather differs.
                let path = PathInputs {
                    access_rtt_ms: 38.0,
                    transit_rtt_ms: 12.0,
                    downlink: DataRate::from_mbps(120).scale(weather.capacity_factor()),
                    weather_multiplier: weather.latency_multiplier(),
                    peering_multiplier: 1.0,
                };
                model.sample_ptt(&site, &path, &mut rng).total_ms()
            })
            .collect();
        let f = five_number_summary(&samples).expect("non-empty");
        println!(
            "{:<18} {:>7.0} {:>7.0} {:>7.0} {:>7.0} {:>7.0}",
            weather.label(),
            f.min,
            f.q1,
            f.median,
            f.q3,
            f.max
        );
    }

    println!(
        "\npaper's Fig. 4: clear-sky median 470.5 ms vs moderate-rain 931.5 ms (~2x);\n\
         the ratio above should land near 2 — driven by rain-fade PHY retransmission\n\
         (latency multiplier) and rate fallback (capacity factor)."
    );
}
