//! Congestion-control shoot-out: the Fig. 8 experiment as a runnable
//! demo — BBR, CUBIC, Reno, Veno and Vegas over the live Starlink bent
//! pipe and over clean campus Wi-Fi, normalised by UDP-burst capacity.
//!
//! ```text
//! cargo run --release --example congestion_shootout
//! ```

use starlink_core::experiments::fig8;
use starlink_core::simcore::SimDuration;
use starlink_core::transport::CcAlgorithm;

fn main() {
    println!("congestion-control shoot-out (packet-level, ~60 s per algorithm)\n");
    let result = fig8::run(&fig8::Config {
        seed: 42,
        test_len: SimDuration::from_secs(60),
        ..fig8::Config::default()
    });

    println!("{}", result.render());

    // A bar view like the paper's Fig. 8.
    println!("normalised throughput:\n");
    for algo in CcAlgorithm::ALL {
        let sl = result.starlink.normalized(algo).unwrap_or(0.0);
        let wifi = result.wifi.normalized(algo).unwrap_or(0.0);
        println!(
            "  {:<6} starlink {:<32} {:.2}",
            algo.label(),
            "#".repeat((sl * 30.0).round() as usize),
            sl
        );
        println!(
            "  {:<6} wifi     {:<32} {:.2}\n",
            "",
            "#".repeat((wifi * 30.0).round() as usize),
            wifi
        );
    }

    match result.shape_holds() {
        Ok(()) => {
            println!("shape OK: BBR leads on Starlink at ~half capacity; all CCAs fill Wi-Fi.")
        }
        Err(e) => println!("shape WARNING: {e}"),
    }
}
