//! A scripted fault cascade over one volunteer node's path, showing how
//! the fault-injection subsystem and the hardened tools interact.
//!
//! Timeline (all virtual time):
//!
//! * **Phase 1 (0–120 s)** — clear sky: baseline ping + iperf.
//! * **Phase 2 (120–240 s)** — weather fade: moderate rain soaks the
//!   access link with the channel model's extra loss.
//! * **Phase 3 (240–360 s)** — handover storm: the access link flaps on
//!   the 15-second reconfiguration boundary, 35% down per cycle.
//! * **Phase 4 (360–420 s)** — gateway blackout: the PoP-side gateway
//!   goes dark entirely; every tool degrades or fails, none hang.
//!
//! ```text
//! cargo run --release --example fault_storm
//! ```

use starlink_core::channel::WeatherCondition;
use starlink_core::faults::{FaultPlan, LinkRef};
use starlink_core::netsim::{LinkConfig, Network, NodeKind};
use starlink_core::simcore::{Bytes, DataRate, SimDuration, SimTime};
use starlink_core::tools::iperf_tcp;
use starlink_core::tools::{iperf_udp, ping, PingOptions};
use starlink_core::transport::CcAlgorithm;

fn main() {
    let mut net = Network::new(2024);
    let dishy = net.add_node("dishy", NodeKind::Host);
    let gw = net.add_node("gateway", NodeKind::Router);
    let server = net.add_node("server", NodeKind::Host);
    // A Starlink-shaped access link and a clean terrestrial leg.
    net.connect_duplex(
        dishy,
        gw,
        LinkConfig::fixed(SimDuration::from_millis(25), DataRate::from_mbps(80), 0.002)
            .with_queue(Bytes::from_kb(256)),
        LinkConfig::fixed(SimDuration::from_millis(25), DataRate::from_mbps(15), 0.002),
    );
    net.connect_duplex(gw, server, LinkConfig::ethernet(), LinkConfig::ethernet());
    net.route_linear(&[dishy, gw, server]);

    // The whole storm is one deterministic plan, installed up front.
    let access_down = LinkRef::Between(dishy, gw);
    let access_up = LinkRef::Between(gw, dishy);
    let mut plan = FaultPlan::new();
    for link in [access_down, access_up] {
        plan.weather_fade(
            link,
            SimTime::from_secs(120),
            SimDuration::from_secs(120),
            WeatherCondition::ModerateRain,
        );
        // Down 35% of every 15 s cycle: the up-gap (9.75 s) is shorter
        // than a 10 s tool run, so every phase-3 measurement straddles
        // at least one outage.
        plan.link_flap(
            link,
            SimTime::from_secs(240),
            SimTime::from_secs(360),
            SimDuration::from_secs(15),
            0.35,
        );
    }
    plan.gateway_blackout(gw, SimTime::from_secs(360), SimDuration::from_secs(60));
    plan.apply(&mut net)
        .expect("plan targets existing elements");

    let phases = [
        "clear sky (baseline)",
        "weather fade (moderate rain)",
        "handover storm (15 s flaps)",
        "gateway blackout",
    ];
    println!("fault storm: one deterministic plan, four phases\n");
    for (i, phase) in phases.iter().enumerate() {
        let phase_start = SimTime::from_secs(i as u64 * 120);
        net.run_until(phase_start);
        println!("== phase {}: {phase} ==", i + 1);

        // "Pop ping": the gateway answers echoes itself, like the Dishy's
        // own pop-ping statistic.
        let pr = ping(
            &mut net,
            dishy,
            gw,
            &PingOptions {
                count: 20,
                interval: SimDuration::from_millis(500),
                retries: 1,
                ..PingOptions::default()
            },
        );
        println!("  ping    [{}] {}", pr.outcome, pr.summary());

        let udp = iperf_udp(
            &mut net,
            dishy,
            server,
            DataRate::from_mbps(10),
            SimDuration::from_secs(10),
            SimDuration::from_secs(1),
        );
        println!(
            "  udp     [{}] {:.1} Mbps goodput, {:.1}% loss",
            udp.outcome,
            udp.goodput.as_mbps(),
            udp.loss * 100.0
        );

        let tcp = iperf_tcp(
            &mut net,
            dishy,
            server,
            CcAlgorithm::Cubic,
            SimDuration::from_secs(10),
        );
        println!(
            "  tcp     [{}] {:.1} Mbps goodput, {} retx, {} RTOs\n",
            tcp.outcome,
            tcp.goodput.as_mbps(),
            tcp.retransmissions,
            tcp.rtos
        );
    }

    let stats = net.stats();
    println!(
        "network totals: {} delivered, {} node-faulted",
        stats.delivered, stats.node_faulted
    );
    println!(
        "access-link faults: {} dropped in fault windows",
        net.link_stats(0).faulted + net.link_stats(1).faulted
    );
}
