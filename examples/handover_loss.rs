//! Handover loss: track the serving satellite over 12 minutes and print
//! the visibility/loss timeline — the mechanism behind the paper's
//! Fig. 7 ("severe UDP packet losses can be due to the fact that the
//! current serving satellite goes out of LoS").
//!
//! ```text
//! cargo run --release --example handover_loss
//! ```

use starlink_core::experiments::fig7;
use starlink_core::simcore::SimDuration;

fn main() {
    let result = fig7::run(&fig7::Config {
        seed: 42,
        window: SimDuration::from_mins(12),
    });

    println!("{}", result.render());

    // A terminal-friendly strip chart: one row per 10 seconds.
    println!("timeline (each row = 10 s; S = serving distance km; L = loss %):\n");
    let secs = result.loss_per_sec.len();
    for block in (0..secs).step_by(10) {
        let loss_peak = result.loss_per_sec[block..(block + 10).min(secs)]
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        // Closest visible serving satellite distance this block.
        let mut serving_km = None;
        for track in &result.tracks {
            let d = track.distance_m[block];
            if d > 0.0 {
                serving_km = Some(match serving_km {
                    Some(prev) if prev < d / 1_000.0 => prev,
                    _ => d / 1_000.0,
                });
            }
        }
        let bar_len = (loss_peak * 40.0).round() as usize;
        println!(
            "  t={:>4}s  dist {:>7}  loss {:>5.1}% |{}",
            block,
            serving_km
                .map(|km| format!("{km:.0} km"))
                .unwrap_or_else(|| "  --  ".into()),
            loss_peak * 100.0,
            "#".repeat(bar_len.min(40)),
        );
    }

    println!(
        "\nloss clumps line up with handovers at {:?} s — each is a serving\n\
         satellite crossing the 25-degree elevation mask (~1100 km slant range).",
        result.handover_secs
    );
}
