//! UDP endpoints: the paced blaster and the measuring sink.
//!
//! The paper uses UDP in two ways this module reproduces:
//!
//! * **capacity probing** — iperf3 UDP bursts at a configured rate measure
//!   the maximum achievable throughput, the denominator of Fig. 8's
//!   normalised results;
//! * **loss measurement** — counting received sequence numbers per
//!   interval gives the loss time series of Fig. 7 (1 s bins) and the
//!   per-test loss rates of Fig. 6(c).

use starlink_netsim::{Ctx, Handler, NodeId, Packet, Payload, UdpDatagram};
use starlink_simcore::{Bytes, DataRate, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Timer token used by the blaster's pacing clock.
const TOKEN_TICK: u64 = 11;

/// A constant-rate UDP sender.
pub struct UdpBlaster {
    peer: NodeId,
    flow: u64,
    /// Datagram payload size.
    payload: u64,
    /// Inter-datagram gap implementing the target rate.
    gap: SimDuration,
    /// Stop sending at this time.
    stop_at: SimTime,
    next_seq: u64,
    started: bool,
}

impl UdpBlaster {
    /// A blaster sending `rate` worth of `payload`-byte datagrams on
    /// `flow` until `stop_at`.
    ///
    /// # Panics
    /// Panics if `rate` is zero.
    pub fn new(peer: NodeId, flow: u64, payload: u64, rate: DataRate, stop_at: SimTime) -> Self {
        assert!(rate.bits_per_sec() > 0, "UdpBlaster needs a positive rate");
        let wire = payload + Packet::UDP_OVERHEAD;
        let gap = Bytes::new(wire).serialization_time(rate);
        UdpBlaster {
            peer,
            flow,
            payload,
            gap,
            stop_at,
            next_seq: 0,
            started: false,
        }
    }

    /// The start-timer token; arm it at the desired start time.
    pub fn start_token() -> u64 {
        TOKEN_TICK
    }

    /// Number of datagrams this blaster will have sent by `stop_at`.
    pub fn sent(&self) -> u64 {
        self.next_seq
    }

    fn tick(&mut self, ctx: &mut Ctx) {
        if ctx.now >= self.stop_at {
            return;
        }
        let payload = Payload::Udp(UdpDatagram {
            flow: self.flow,
            seq: self.next_seq,
        });
        self.next_seq += 1;
        ctx.send(
            self.peer,
            Bytes::new(self.payload + Packet::UDP_OVERHEAD),
            payload,
        );
        ctx.set_timer(ctx.now + self.gap, TOKEN_TICK);
    }
}

impl Handler for UdpBlaster {
    fn on_packet(&mut self, _ctx: &mut Ctx, _packet: &Packet) {}

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        if token == TOKEN_TICK {
            if !self.started {
                self.started = true;
            }
            self.tick(ctx);
        }
    }
}

/// Sink statistics, binned by arrival time.
#[derive(Debug, Clone, Default)]
pub struct UdpSinkStats {
    /// Total datagrams received.
    pub received: u64,
    /// Total payload bytes received.
    pub bytes: u64,
    /// Highest sequence number seen + 1 (0 if nothing arrived).
    pub max_seq_plus_one: u64,
    /// Per-bin received counts.
    pub received_per_bin: Vec<u64>,
    /// Per-bin highest-sequence watermark (for per-bin loss estimation).
    pub max_seq_per_bin: Vec<u64>,
}

impl UdpSinkStats {
    /// Overall loss fraction given the blaster actually sent `sent`.
    pub fn loss_fraction(&self, sent: u64) -> f64 {
        if sent == 0 {
            return 0.0;
        }
        1.0 - self.received as f64 / sent as f64
    }

    /// Per-bin loss fractions, estimated from the per-bin sequence
    /// watermark deltas vs. received counts. Bins where nothing was
    /// expected yield 0.
    pub fn per_bin_loss(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.received_per_bin.len());
        let mut prev_mark = 0u64;
        for (i, &got) in self.received_per_bin.iter().enumerate() {
            let mark = self.max_seq_per_bin[i].max(prev_mark);
            let expected = mark - prev_mark;
            if expected == 0 {
                out.push(0.0);
            } else {
                let lost = expected.saturating_sub(got);
                out.push(lost as f64 / expected as f64);
            }
            prev_mark = mark;
        }
        out
    }
}

/// A UDP receiver that counts arrivals per time bin.
pub struct UdpSink {
    flow: u64,
    bin_width: SimDuration,
    stats: Rc<RefCell<UdpSinkStats>>,
}

impl UdpSink {
    /// A sink for `flow`, binning at `bin_width`.
    pub fn new(flow: u64, bin_width: SimDuration) -> (Self, Rc<RefCell<UdpSinkStats>>) {
        let stats = Rc::new(RefCell::new(UdpSinkStats::default()));
        (
            UdpSink {
                flow,
                bin_width,
                stats: Rc::clone(&stats),
            },
            stats,
        )
    }
}

impl Handler for UdpSink {
    fn on_packet(&mut self, ctx: &mut Ctx, packet: &Packet) {
        let Payload::Udp(dgram) = &packet.payload else {
            return;
        };
        if dgram.flow != self.flow {
            return;
        }
        let mut stats = self.stats.borrow_mut();
        stats.received += 1;
        stats.bytes += packet.size.as_u64().saturating_sub(Packet::UDP_OVERHEAD);
        stats.max_seq_plus_one = stats.max_seq_plus_one.max(dgram.seq + 1);
        let bin = (ctx.now.as_nanos() / self.bin_width.as_nanos().max(1)) as usize;
        if stats.received_per_bin.len() <= bin {
            stats.received_per_bin.resize(bin + 1, 0);
            stats.max_seq_per_bin.resize(bin + 1, 0);
        }
        stats.received_per_bin[bin] += 1;
        stats.max_seq_per_bin[bin] = stats.max_seq_per_bin[bin].max(dgram.seq + 1);
    }

    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_netsim::{LinkConfig, Network, NodeKind};

    fn blast(
        rate: DataRate,
        link_rate: DataRate,
        loss: f64,
        secs: u64,
    ) -> (u64, Rc<RefCell<UdpSinkStats>>) {
        let mut net = Network::new(9);
        let a = net.add_node("blaster", NodeKind::Host);
        let b = net.add_node("sink", NodeKind::Host);
        net.connect_duplex(
            a,
            b,
            LinkConfig::fixed(SimDuration::from_millis(5), link_rate, loss),
            LinkConfig::ethernet(),
        );
        net.route_linear(&[a, b]);
        let stop = SimTime::from_secs(secs);
        let blaster = UdpBlaster::new(b, 1, 1_200, rate, stop);
        let (sink, stats) = UdpSink::new(1, SimDuration::from_secs(1));
        net.attach_handler(a, Box::new(blaster));
        net.attach_handler(b, Box::new(sink));
        net.arm_timer(a, SimTime::ZERO, UdpBlaster::start_token());
        net.run_until(stop + SimDuration::from_secs(1));
        let sent = stats.borrow().max_seq_plus_one;
        (sent, stats)
    }

    #[test]
    fn blaster_respects_target_rate() {
        let (_, stats) = blast(DataRate::from_mbps(10), DataRate::from_mbps(100), 0.0, 5);
        let s = stats.borrow();
        // 10 Mbps of 1228 B wire datagrams for 5 s ~ 5090 packets.
        let per_sec = s.received as f64 / 5.0;
        let expected = 10e6 / (1_228.0 * 8.0);
        assert!(
            (per_sec - expected).abs() / expected < 0.02,
            "{per_sec} vs {expected}"
        );
    }

    #[test]
    fn lossless_link_delivers_everything() {
        let (sent, stats) = blast(DataRate::from_mbps(10), DataRate::from_mbps(100), 0.0, 3);
        let s = stats.borrow();
        assert_eq!(s.received, sent);
        assert_eq!(s.loss_fraction(sent), 0.0);
    }

    #[test]
    fn loss_fraction_matches_link_loss() {
        let (sent, stats) = blast(DataRate::from_mbps(20), DataRate::from_mbps(100), 0.15, 10);
        let s = stats.borrow();
        let loss = s.loss_fraction(sent);
        assert!((loss - 0.15).abs() < 0.02, "loss {loss}");
    }

    #[test]
    fn overdriving_the_link_caps_goodput_at_capacity() {
        // Blast 50 Mbps into a 10 Mbps link: the sink should see ~10 Mbps.
        let (_, stats) = blast(DataRate::from_mbps(50), DataRate::from_mbps(10), 0.0, 5);
        let s = stats.borrow();
        let mbps = s.bytes as f64 * 8.0 / 5.0 / 1e6;
        assert!((8.0..10.5).contains(&mbps), "{mbps} Mbps");
    }

    #[test]
    fn per_bin_loss_is_sane() {
        let (_, stats) = blast(DataRate::from_mbps(20), DataRate::from_mbps(100), 0.2, 8);
        let s = stats.borrow();
        let bins = s.per_bin_loss();
        assert!(bins.len() >= 8);
        for (i, &loss) in bins.iter().enumerate() {
            assert!((0.0..=1.0).contains(&loss), "bin {i}: {loss}");
        }
        // Average bin loss should hover near the configured 20%.
        let busy: Vec<f64> = bins.iter().copied().filter(|&l| l > 0.0).collect();
        let mean = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
        assert!((mean - 0.2).abs() < 0.05, "mean bin loss {mean}");
    }

    #[test]
    #[should_panic(expected = "positive rate")]
    fn zero_rate_blaster_rejected() {
        let _ = UdpBlaster::new(NodeId(1), 1, 1_200, DataRate::ZERO, SimTime::ZERO);
    }
}
