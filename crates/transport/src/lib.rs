//! # starlink-transport
//!
//! Packet-level transport protocols for the *starlink-browser-view*
//! reproduction: a simplified-but-faithful TCP with the **five pluggable
//! congestion-control algorithms the paper stress-tests in Fig. 8** (BBR,
//! CUBIC, Reno, Vegas, Veno) plus a BBRv2-class extension for the
//! many-flow fairness experiments, and UDP blast/sink endpoints used to
//! probe maximum achievable capacity and to measure per-interval loss
//! (Figs. 6c and 7).
//!
//! The TCP implementation carries what matters for congestion dynamics
//! over a bursty-loss LEO path:
//!
//! * byte sequencing with cumulative + selective acknowledgement,
//! * RFC 6298 RTO estimation with exponential backoff, driven by
//!   timestamp-based RTT samples (valid across retransmissions),
//! * SACK-driven fast retransmit and a single congestion event per
//!   recovery episode,
//! * optional pacing for rate-based controllers (BBR),
//!
//! and deliberately omits what does not (checksums, urgent data, window
//! scaling negotiation, Nagle).
//!
//! Endpoints implement [`starlink_netsim::Handler`] and expose their
//! statistics through shared [`std::rc::Rc`] handles, since the simulator
//! is strictly single-threaded.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cc;
pub mod tcp;
pub mod udp;

pub use cc::{AckSample, CcAlgorithm, CongestionControl};
pub use tcp::{TcpConfig, TcpReceiver, TcpSender, TcpSenderStats};
pub use udp::{UdpBlaster, UdpSink, UdpSinkStats};
