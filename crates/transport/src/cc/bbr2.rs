//! BBRv2-class congestion control: the BBRv1 model core bounded by
//! explicit inflight limits and a loss-rate ceiling.
//!
//! "Unveiling TCP BBR Dominance in Starlink" attributes BBRv1's Fig. 8
//! lead to model-based probing — and documents the cost: v1 ignores loss
//! entirely, so at a shared bottleneck it starves loss-based flows that
//! halve on every drop v1's probing causes. BBRv2 keeps the model
//! (windowed-max bandwidth, windowed-min RTT, pacing) but adds the three
//! mechanisms that restore coexistence:
//!
//! * **inflight_hi / inflight_lo** — long- and short-term upper bounds on
//!   the congestion window, learned from loss. `inflight_hi` is long-term
//!   evidence and is only adjusted while the sender is deliberately
//!   probing above the model (Startup / ProbeUp) — the one time loss is
//!   attributable to its own probing rather than path noise. A breach
//!   there clamps it to [`BETA`] × the current inflight; clean ProbeUp
//!   rounds grow it back with doubling increments
//!   ([`HI_GROWTH_CAP_MSS`]), so a spurious clamp from a random-loss
//!   burst heals in a handful of probe cycles instead of hundreds.
//!   Breaches outside probing latch only the short-term `inflight_lo`,
//!   released by the next clean probe.
//! * **a ~2 % loss-rate ceiling** ([`LOSS_CEILING_PERMILLE`]) — rounds
//!   whose presumed-lost fraction exceeds it back the cruise gain off to
//!   [`CRUISE_BACKOFF_GAIN`] until a probe completes cleanly.
//! * **reduced ProbeBW overshoot** — after Startup the pacing gain never
//!   exceeds the 1.25× ProbeUp pulse; there is no sustained 2/ln 2-style
//!   gain anywhere in steady state.
//!
//! The probing state machine is explicit — **ProbeUp → ProbeDown →
//! ProbeCruise** (with **ProbeRTT** overriding whenever the min-RTT
//! estimate goes stale) — and surfaces through
//! [`CongestionControl::probe_phase`] as `cc_phase` trace events.

use super::{initial_cwnd, AckSample, CongestionControl};
use starlink_obsv::CcPhase;
use starlink_simcore::{DataRate, SimDuration, SimTime};
use std::collections::VecDeque;

/// Startup gain: 2/ln2, same exponential search as v1.
const STARTUP_GAIN: f64 = 2.885;
/// ProbeUp pacing gain — the only above-1 gain after Startup.
const PROBE_UP_GAIN: f64 = 1.25;
/// ProbeDown pacing gain, draining the probe's queue.
const PROBE_DOWN_GAIN: f64 = 0.75;
/// Cruise pacing gain while the loss ceiling holds.
const CRUISE_GAIN: f64 = 1.0;
/// Cruise pacing gain after a loss-ceiling breach, until a probe
/// completes cleanly.
const CRUISE_BACKOFF_GAIN: f64 = 0.9;
/// Loss-rate ceiling, parts per thousand (~2 %, the BBRv2 default).
const LOSS_CEILING_PERMILLE: u64 = 20;
/// Multiplicative clamp applied to `inflight_hi` on a ceiling breach.
const BETA: f64 = 0.85;
/// Cruise rounds between ProbeUp pulses (mirrors v1's six 1.0× phases).
const CRUISE_ROUNDS: u32 = 6;
/// Window over which bandwidth samples are max-filtered.
const BW_WINDOW: SimDuration = SimDuration::from_secs(10);
/// Staleness bound on the min-RTT estimate.
const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);
/// Time spent sitting at 4 MSS in ProbeRTT.
const PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);
/// Rounds of non-growth that declare the pipe full in Startup.
const FULL_BW_ROUNDS: u32 = 3;
/// Cap on the per-probe `inflight_hi` growth increment, MSS units. The
/// increment doubles on every clean ProbeUp round and resets to one MSS
/// whenever a probe finds real loss, mirroring Linux BBRv2's accelerating
/// `bw_probe_up_cnt` growth.
const HI_GROWTH_CAP_MSS: u64 = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Startup,
    Drain,
    ProbeUp,
    ProbeDown,
    ProbeCruise,
    ProbeRtt,
}

/// BBRv2-class state.
#[derive(Debug, Clone)]
pub struct Bbr2 {
    mss: u64,
    state: State,
    /// Bandwidth samples as a monotonic deque (same structure as v1:
    /// front is the windowed max in O(1)).
    bw_samples: VecDeque<(SimTime, u64)>,
    min_rtt: Option<SimDuration>,
    min_rtt_stamp: SimTime,
    /// Round accounting (a "round" is one min-RTT of wall time).
    next_round_at: SimTime,
    /// Full-pipe detection (Startup exit).
    full_bw: u64,
    full_bw_rounds: u32,
    full_bw_reached: bool,
    /// Cruise rounds since the last ProbeUp pulse.
    cruise_rounds: u32,
    /// Long-term inflight upper bound, bytes. Clamped on loss-ceiling
    /// breaches while probing, regrown with doubling increments on clean
    /// ProbeUp rounds.
    inflight_hi: Option<u64>,
    /// Current `inflight_hi` growth increment, MSS units; doubles per
    /// clean probe up to [`HI_GROWTH_CAP_MSS`], resets on a probe breach.
    hi_growth_mss: u64,
    /// Short-term inflight bound set by the current loss episode;
    /// cleared when a probe completes cleanly.
    inflight_lo: Option<u64>,
    /// Cruise gain in force: [`CRUISE_GAIN`] or [`CRUISE_BACKOFF_GAIN`].
    cruise_gain: f64,
    /// Loss accounting over the current round.
    round_delivered: u64,
    round_lost_peak: u64,
    /// ProbeRTT bookkeeping.
    probe_rtt_done_at: SimTime,
    probe_rtt_min: Option<SimDuration>,
    resume_probing_after_rtt: bool,
    /// Latest in-flight figure from ACK processing.
    last_in_flight: u64,
    pacing_gain: f64,
    cwnd_gain: f64,
    /// Packet-conservation window after an RTO, exactly as in v1.
    conservation_cwnd: Option<u64>,
    /// Planted-bug hook: ignore the loss ceiling entirely (the unfair
    /// flow the swarm's fairness oracle must catch). Never set outside
    /// `--inject-unfair-bug` runs.
    ignore_loss_ceiling: bool,
}

impl Bbr2 {
    /// A fresh connection.
    pub fn new(mss: u64) -> Self {
        Bbr2 {
            mss,
            state: State::Startup,
            bw_samples: VecDeque::new(),
            min_rtt: None,
            min_rtt_stamp: SimTime::ZERO,
            next_round_at: SimTime::ZERO,
            full_bw: 0,
            full_bw_rounds: 0,
            full_bw_reached: false,
            cruise_rounds: 0,
            inflight_hi: None,
            hi_growth_mss: 1,
            inflight_lo: None,
            cruise_gain: CRUISE_GAIN,
            round_delivered: 0,
            round_lost_peak: 0,
            probe_rtt_done_at: SimTime::ZERO,
            probe_rtt_min: None,
            resume_probing_after_rtt: false,
            last_in_flight: 0,
            pacing_gain: STARTUP_GAIN,
            cwnd_gain: STARTUP_GAIN,
            conservation_cwnd: None,
            ignore_loss_ceiling: false,
        }
    }

    /// The current bottleneck-bandwidth estimate.
    pub fn btl_bw(&self) -> Option<DataRate> {
        self.bw_samples
            .front()
            .map(|&(_, bw)| DataRate::from_bps(bw))
    }

    /// The current min-RTT estimate.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// The long-term inflight upper bound, if loss has taught one.
    pub fn inflight_hi(&self) -> Option<u64> {
        self.inflight_hi
    }

    /// Bandwidth-delay product estimate, bytes.
    fn bdp(&self) -> Option<u64> {
        let bw = self.btl_bw()?;
        let rtt = self.min_rtt?;
        Some((bw.bits_per_sec() as f64 * rtt.as_secs_f64() / 8.0) as u64)
    }

    fn record_bw(&mut self, now: SimTime, rate: DataRate) {
        let bw = rate.bits_per_sec();
        while self.bw_samples.back().is_some_and(|&(_, b)| b <= bw) {
            self.bw_samples.pop_back();
        }
        self.bw_samples.push_back((now, bw));
        let horizon = now
            .saturating_since(SimTime::ZERO)
            .saturating_sub(BW_WINDOW);
        while self
            .bw_samples
            .front()
            .is_some_and(|&(t, _)| t.since(SimTime::ZERO) < horizon)
        {
            self.bw_samples.pop_front();
        }
    }

    /// The round's loss fraction in parts per thousand.
    fn round_loss_permille(&self) -> u64 {
        let total = self.round_delivered + self.round_lost_peak;
        if total == 0 {
            return 0;
        }
        self.round_lost_peak * 1_000 / total
    }

    /// Reacts to a loss-ceiling breach: latch the short-term bound, back
    /// the cruise gain off, and — only if the breach happened while the
    /// sender was itself probing above the model — clamp the long-term
    /// `inflight_hi`. Loss observed while cruising at the model rate is
    /// not evidence about the path's inflight ceiling (the sender was not
    /// pushing it); treating it as such lets random corruption bursts
    /// ratchet `inflight_hi` to the floor and collapse goodput under
    /// non-congestive loss — exactly the failure BBRv1 never had.
    fn on_ceiling_breach(&mut self) {
        if self.ignore_loss_ceiling {
            return;
        }
        let clamp = ((self.last_in_flight as f64 * BETA) as u64).max(4 * self.mss);
        // Latch the short-term bound once per loss episode. Re-clamping
        // on every breach round compounds (0.85^rounds) across a
        // multi-round burst and melts the window to the floor; one
        // episode is one backoff, released by the next clean probe.
        if self.inflight_lo.is_none() {
            self.inflight_lo = Some(clamp);
        }
        self.cruise_gain = CRUISE_BACKOFF_GAIN;
        if matches!(self.state, State::Startup | State::ProbeUp) {
            self.inflight_hi = Some(self.inflight_hi.map_or(clamp, |hi| hi.min(clamp)));
            self.hi_growth_mss = 1;
        }
    }

    fn enter_cruise(&mut self) {
        self.state = State::ProbeCruise;
        self.cruise_rounds = 0;
        self.pacing_gain = self.cruise_gain;
        self.cwnd_gain = 2.0;
    }

    fn on_round(&mut self, _now: SimTime) {
        let breached =
            !self.ignore_loss_ceiling && self.round_loss_permille() > LOSS_CEILING_PERMILLE;
        if breached {
            self.on_ceiling_breach();
        }
        let bw = self.bw_samples.front().map(|&(_, b)| b).unwrap_or(0);
        match self.state {
            State::Startup => {
                if bw as f64 >= self.full_bw as f64 * 1.25 {
                    self.full_bw = bw;
                    self.full_bw_rounds = 0;
                } else {
                    self.full_bw_rounds += 1;
                    if self.full_bw_rounds >= FULL_BW_ROUNDS {
                        self.full_bw_reached = true;
                        self.state = State::Drain;
                        self.pacing_gain = 1.0 / STARTUP_GAIN;
                        self.cwnd_gain = STARTUP_GAIN;
                    }
                }
                // A breach ends Startup early: the pipe is already past
                // its loss ceiling, so stop overshooting immediately.
                if breached && self.state == State::Startup {
                    self.full_bw_reached = true;
                    self.state = State::Drain;
                    self.pacing_gain = 1.0 / STARTUP_GAIN;
                    self.cwnd_gain = STARTUP_GAIN;
                }
            }
            State::Drain => {
                if let Some(bdp) = self.bdp() {
                    if self.last_in_flight <= bdp {
                        self.enter_cruise();
                    }
                }
            }
            State::ProbeUp => {
                if breached {
                    // The probe found the ceiling; drain what it queued.
                    self.state = State::ProbeDown;
                    self.pacing_gain = PROBE_DOWN_GAIN;
                } else {
                    // A clean probe round: grow the long-term bound with
                    // an accelerating increment, release the short-term
                    // one, restore full cruise.
                    if let Some(hi) = self.inflight_hi {
                        self.inflight_hi = Some(hi + self.hi_growth_mss * self.mss);
                        self.hi_growth_mss = (self.hi_growth_mss * 2).min(HI_GROWTH_CAP_MSS);
                    }
                    self.inflight_lo = None;
                    self.cruise_gain = CRUISE_GAIN;
                    self.state = State::ProbeDown;
                    self.pacing_gain = PROBE_DOWN_GAIN;
                }
            }
            State::ProbeDown => self.enter_cruise(),
            State::ProbeCruise => {
                self.cruise_rounds += 1;
                self.pacing_gain = self.cruise_gain;
                if self.cruise_rounds >= CRUISE_ROUNDS {
                    self.state = State::ProbeUp;
                    self.pacing_gain = PROBE_UP_GAIN;
                }
            }
            State::ProbeRtt => {}
        }
        self.round_delivered = 0;
        self.round_lost_peak = 0;
    }

    fn maybe_enter_probe_rtt(&mut self, now: SimTime) {
        if self.state == State::ProbeRtt {
            return;
        }
        if self.min_rtt.is_some() && now.saturating_since(self.min_rtt_stamp) > MIN_RTT_WINDOW {
            self.resume_probing_after_rtt = self.full_bw_reached;
            self.state = State::ProbeRtt;
            self.probe_rtt_done_at = now + PROBE_RTT_DURATION;
            self.probe_rtt_min = None;
            self.pacing_gain = 1.0;
        }
    }

    fn maybe_exit_probe_rtt(&mut self, now: SimTime) {
        if self.state == State::ProbeRtt
            && now >= self.probe_rtt_done_at
            && self.last_in_flight <= 4 * self.mss
        {
            if let Some(m) = self.probe_rtt_min {
                self.min_rtt = Some(m);
            }
            // The stamp refreshes on *every* exit path — sampled or not —
            // so a sample-free dwell cannot re-fire ProbeRTT immediately
            // (the v1 bug this implementation postdates).
            self.min_rtt_stamp = now;
            if self.resume_probing_after_rtt {
                self.enter_cruise();
            } else {
                self.state = State::Startup;
                self.pacing_gain = STARTUP_GAIN;
                self.cwnd_gain = STARTUP_GAIN;
            }
        }
    }
}

impl CongestionControl for Bbr2 {
    fn on_ack(&mut self, sample: &AckSample) {
        let now = sample.now;
        self.last_in_flight = sample.in_flight;
        self.round_delivered += sample.acked_bytes;
        self.round_lost_peak = self.round_lost_peak.max(sample.lost_bytes);

        // Packet conservation after an RTO, exactly as in v1.
        if let Some(c) = self.conservation_cwnd {
            let grown = c + sample.acked_bytes;
            let model = match self.bdp() {
                Some(bdp) => ((bdp as f64 * self.cwnd_gain) as u64).max(4 * self.mss),
                None => initial_cwnd(self.mss),
            };
            if grown >= model {
                self.conservation_cwnd = None;
            } else {
                self.conservation_cwnd = Some(grown);
            }
        }

        if let Some(rtt) = sample.rtt {
            if self.state == State::ProbeRtt {
                self.probe_rtt_min = Some(self.probe_rtt_min.map_or(rtt, |m| m.min(rtt)));
            }
            if self.min_rtt.is_none_or(|m| rtt <= m) {
                self.min_rtt = Some(rtt);
                self.min_rtt_stamp = now;
            }
        }
        if let Some(rate) = sample.delivery_rate {
            self.record_bw(now, rate);
        }

        if now >= self.next_round_at {
            let rtt = self.min_rtt.unwrap_or(SimDuration::from_millis(100));
            self.next_round_at = now + rtt;
            self.on_round(now);
        }

        self.maybe_enter_probe_rtt(now);
        self.maybe_exit_probe_rtt(now);
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        // Unlike v1, a fast-retransmit episode is not ignored outright:
        // the per-round ceiling decides whether it was congestion. The
        // event itself does not shrink the model — that stays v1-like,
        // which is what keeps BBRv2 productive through handover bursts.
    }

    fn on_rto(&mut self, now: SimTime) {
        if self.state == State::ProbeRtt {
            // Leaving ProbeRTT through the timeout path must still
            // refresh the staleness stamp, or the next ACK re-enters
            // ProbeRTT immediately (the v1 on_rto bug).
            self.min_rtt_stamp = now;
            if let Some(m) = self.probe_rtt_min {
                self.min_rtt = Some(m);
            }
        }
        self.conservation_cwnd = Some(4 * self.mss);
        self.state = State::Startup;
        self.pacing_gain = STARTUP_GAIN;
        self.cwnd_gain = STARTUP_GAIN;
        self.full_bw = 0;
        self.full_bw_rounds = 0;
        self.full_bw_reached = false;
        self.next_round_at = now;
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        self.conservation_cwnd = None;
    }

    fn cwnd(&self) -> u64 {
        if self.state == State::ProbeRtt {
            return 4 * self.mss;
        }
        let mut w = match self.bdp() {
            Some(bdp) => ((bdp as f64 * self.cwnd_gain) as u64).max(4 * self.mss),
            None => initial_cwnd(self.mss),
        };
        if !self.ignore_loss_ceiling {
            if let Some(hi) = self.inflight_hi {
                w = w.min(hi);
            }
            if let Some(lo) = self.inflight_lo {
                w = w.min(lo);
            }
        }
        w = w.max(4 * self.mss);
        match self.conservation_cwnd {
            Some(c) => c.min(w),
            None => w,
        }
    }

    fn pacing_rate(&self) -> Option<DataRate> {
        let gain = if self.conservation_cwnd.is_some() {
            1.0
        } else {
            self.pacing_gain
        };
        match self.btl_bw() {
            Some(bw) => Some(bw.scale(gain)),
            None => Some(DataRate::from_bps(initial_cwnd(self.mss) * 8 * 100)),
        }
    }

    // Disables the loss ceiling and inflight clamps — the "one CC
    // ignoring its loss ceiling" planted bug behind the swarm's
    // `--inject-unfair-bug` flag. The fairness oracle must catch the
    // resulting retransmit-rate blowout; this hook exists to prove it
    // can.
    fn debug_ignore_loss_ceiling(&mut self) {
        self.ignore_loss_ceiling = true;
    }

    fn probe_phase(&self) -> Option<CcPhase> {
        Some(match self.state {
            State::Startup => CcPhase::Startup,
            State::Drain => CcPhase::Drain,
            State::ProbeUp => CcPhase::ProbeUp,
            State::ProbeDown => CcPhase::ProbeDown,
            State::ProbeCruise => CcPhase::ProbeCruise,
            State::ProbeRtt => CcPhase::ProbeRtt,
        })
    }

    fn name(&self) -> &'static str {
        "BBR2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64, rate_mbps: u64, in_flight: u64, mss: u64) -> AckSample {
        AckSample {
            now: SimTime::from_millis(now_ms),
            acked_bytes: mss,
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            in_flight,
            lost_bytes: 0,
            mss,
            delivery_rate: Some(DataRate::from_mbps(rate_mbps)),
        }
    }

    fn lossy_ack(
        now_ms: u64,
        rtt_ms: u64,
        rate_mbps: u64,
        in_flight: u64,
        lost: u64,
        mss: u64,
    ) -> AckSample {
        AckSample {
            lost_bytes: lost,
            ..ack(now_ms, rtt_ms, rate_mbps, in_flight, mss)
        }
    }

    /// Feeds a growing-then-flat bandwidth signal until Startup exits.
    fn warm_up(cc: &mut Bbr2, mss: u64) -> u64 {
        let mut t = 0;
        for rate in [10, 20, 40, 80, 100, 100, 100, 100, 100, 100, 100] {
            cc.on_ack(&ack(t, 50, rate, 1_000, mss));
            t += 60;
        }
        assert!(cc.full_bw_reached, "pipe should be declared full");
        t
    }

    /// Rides clean acks until a ProbeUp round is in force.
    fn drive_to_probe_up(cc: &mut Bbr2, mut t: u64, mss: u64) -> u64 {
        for _ in 0..80 {
            if cc.state == State::ProbeUp {
                return t;
            }
            cc.on_ack(&ack(t, 50, 100, 100_000, mss));
            t += 60;
        }
        panic!("never reached ProbeUp: {:?}", cc.state);
    }

    #[test]
    fn startup_exits_when_bandwidth_plateaus() {
        let mss = 1_460;
        let mut cc = Bbr2::new(mss);
        warm_up(&mut cc, mss);
        assert!(matches!(
            cc.state,
            State::Drain | State::ProbeCruise | State::ProbeUp | State::ProbeDown
        ));
    }

    #[test]
    fn post_startup_gain_never_exceeds_probe_up() {
        // The reduced-overshoot property: once Startup is over, no state
        // paces above 1.25× — the defining difference from v1's 2/ln 2.
        let mss = 1_460;
        let mut cc = Bbr2::new(mss);
        let mut t = warm_up(&mut cc, mss);
        for _ in 0..40 {
            cc.on_ack(&ack(t, 50, 100, 1_000, mss));
            assert!(
                cc.pacing_gain <= PROBE_UP_GAIN + 1e-9,
                "gain {} in {:?}",
                cc.pacing_gain,
                cc.state
            );
            t += 60;
        }
    }

    #[test]
    fn probe_phases_cycle_up_down_cruise() {
        let mss = 1_460;
        let mut cc = Bbr2::new(mss);
        let mut t = warm_up(&mut cc, mss);
        let mut seen = Vec::new();
        for _ in 0..30 {
            cc.on_ack(&ack(t, 50, 100, 1_000, mss));
            seen.push(cc.probe_phase().expect("model-based"));
            t += 60;
        }
        for phase in [CcPhase::ProbeUp, CcPhase::ProbeDown, CcPhase::ProbeCruise] {
            assert!(seen.contains(&phase), "{phase:?} never reached: {seen:?}");
        }
    }

    #[test]
    fn probe_breach_clamps_inflight_hi() {
        let mss = 1_460;
        let mut cc = Bbr2::new(mss);
        let t = warm_up(&mut cc, mss);
        let t = drive_to_probe_up(&mut cc, t, mss);
        let before = cc.cwnd();
        assert_eq!(cc.inflight_hi(), None);
        // A ProbeUp round at massive presumed loss: far over the ceiling.
        let in_flight = 500_000;
        cc.on_ack(&lossy_ack(t, 50, 100, in_flight, 50_000, mss));
        let hi = cc.inflight_hi().expect("probe breach must set inflight_hi");
        assert_eq!(hi, (in_flight as f64 * BETA) as u64);
        assert!(cc.cwnd() <= hi, "cwnd {} above inflight_hi {hi}", cc.cwnd());
        assert!(cc.cwnd() < before, "breach must shrink the window");
    }

    #[test]
    fn cruise_breach_latches_only_the_short_term_bound() {
        // Loss while cruising at the model rate is not evidence about the
        // path's inflight ceiling: it must back off the gain and latch
        // `inflight_lo`, but leave the long-term `inflight_hi` alone —
        // that is what keeps BBRv2 productive under random corruption
        // bursts where BBRv1 sails through.
        let mss = 1_460;
        let mut cc = Bbr2::new(mss);
        let mut t = warm_up(&mut cc, mss);
        for _ in 0..40 {
            cc.on_ack(&ack(t, 50, 100, 100_000, mss));
            t += 60;
            if cc.state == State::ProbeCruise {
                break;
            }
        }
        assert_eq!(cc.state, State::ProbeCruise);
        cc.on_ack(&lossy_ack(t, 50, 100, 500_000, 50_000, mss));
        assert_eq!(
            cc.inflight_hi(),
            None,
            "cruise loss is not ceiling evidence"
        );
        assert!(cc.inflight_lo.is_some(), "short-term bound must latch");
        assert!((cc.cruise_gain - CRUISE_BACKOFF_GAIN).abs() < 1e-9);
    }

    #[test]
    fn loss_ceiling_breach_backs_off_cruise_gain() {
        let mss = 1_460;
        let mut cc = Bbr2::new(mss);
        let mut t = warm_up(&mut cc, mss);
        for _ in 0..3 {
            cc.on_ack(&lossy_ack(t, 50, 100, 500_000, 50_000, mss));
            t += 60;
        }
        assert!((cc.cruise_gain - CRUISE_BACKOFF_GAIN).abs() < 1e-9);
        // The breach lands while cruising, so the backed-off gain is the
        // pacing gain in force right now — and stays in force until a
        // ProbeUp round completes cleanly.
        assert_eq!(cc.state, State::ProbeCruise);
        assert!((cc.pacing_gain - CRUISE_BACKOFF_GAIN).abs() < 1e-9);
    }

    #[test]
    fn clean_probe_restores_cruise_gain_and_grows_hi() {
        let mss = 1_460;
        let mut cc = Bbr2::new(mss);
        let t = warm_up(&mut cc, mss);
        let mut t = drive_to_probe_up(&mut cc, t, mss);
        cc.on_ack(&lossy_ack(t, 50, 100, 500_000, 50_000, mss));
        t += 60;
        let hi = cc.inflight_hi().expect("probe breach must clamp");
        // Loss stops; ride clean rounds through the next ProbeUp.
        let mut probed_cleanly = false;
        for _ in 0..40 {
            let was_probe_up = cc.state == State::ProbeUp;
            cc.on_ack(&ack(t, 50, 100, 100_000, mss));
            t += 60;
            if was_probe_up && cc.state == State::ProbeDown {
                probed_cleanly = true;
                break;
            }
        }
        assert!(probed_cleanly, "never completed a clean ProbeUp round");
        assert!((cc.cruise_gain - CRUISE_GAIN).abs() < 1e-9);
        assert!(cc.inflight_hi().expect("kept") > hi, "hi must grow back");
        assert_eq!(cc.inflight_lo, None, "short-term bound must release");
    }

    #[test]
    fn hi_regrowth_accelerates_across_clean_probes() {
        // After a spurious clamp the regrowth increment doubles per clean
        // probe cycle — the property that heals a random-loss clamp in a
        // handful of cycles instead of hundreds of linear rounds.
        let mss = 1_460;
        let mut cc = Bbr2::new(mss);
        let t = warm_up(&mut cc, mss);
        let mut t = drive_to_probe_up(&mut cc, t, mss);
        cc.on_ack(&lossy_ack(t, 50, 100, 500_000, 50_000, mss));
        t += 60;
        let mut grown = Vec::new();
        let mut last = cc.inflight_hi().expect("clamped");
        for _ in 0..60 {
            let was_probe_up = cc.state == State::ProbeUp;
            cc.on_ack(&ack(t, 50, 100, 100_000, mss));
            t += 60;
            if was_probe_up && cc.state == State::ProbeDown {
                let hi = cc.inflight_hi().expect("kept");
                grown.push(hi - last);
                last = hi;
                if grown.len() == 3 {
                    break;
                }
            }
        }
        assert_eq!(grown.len(), 3, "needed three clean probes: {grown:?}");
        assert_eq!(grown[1], 2 * grown[0], "increment must double: {grown:?}");
        assert_eq!(grown[2], 4 * grown[0], "increment must double: {grown:?}");
    }

    #[test]
    fn probe_rtt_clamps_cwnd_and_exits_with_fresh_stamp() {
        let mss = 1_460;
        let mut cc = Bbr2::new(mss);
        cc.on_ack(&ack(0, 50, 100, 10_000, mss));
        let mut t = 200;
        while t < 11_000 {
            cc.on_ack(&ack(t, 80, 100, 10_000, mss));
            t += 500;
        }
        assert_eq!(cc.state, State::ProbeRtt);
        assert_eq!(cc.cwnd(), 4 * mss);
        cc.on_ack(&ack(t + 300, 50, 100, 2 * mss, mss));
        assert_ne!(cc.state, State::ProbeRtt);
        // The stamp was refreshed on exit: the very next ACK must not
        // bounce straight back into ProbeRTT.
        cc.on_ack(&ack(t + 400, 80, 100, 10_000, mss));
        assert_ne!(cc.state, State::ProbeRtt);
    }

    #[test]
    fn rto_during_probe_rtt_refreshes_the_stamp() {
        let mss = 1_460;
        let mut cc = Bbr2::new(mss);
        cc.on_ack(&ack(0, 50, 100, 10_000, mss));
        let mut t = 200;
        while t < 11_000 {
            cc.on_ack(&ack(t, 80, 100, 10_000, mss));
            t += 500;
        }
        assert_eq!(cc.state, State::ProbeRtt);
        // An RTO fires mid-dwell (no RTT sample arrived while drained).
        cc.on_rto(SimTime::from_millis(t));
        assert_eq!(cc.state, State::Startup);
        // The next ACK must stay out of ProbeRTT: the exit refreshed the
        // staleness stamp even though the dwell sampled nothing.
        cc.on_ack(&ack(t + 50, 80, 100, 10_000, mss));
        assert_ne!(cc.state, State::ProbeRtt);
    }

    #[test]
    fn rto_restarts_startup_but_keeps_model() {
        let mss = 1_460;
        let mut cc = Bbr2::new(mss);
        cc.on_ack(&ack(0, 50, 100, 1_000, mss));
        cc.on_rto(SimTime::from_millis(100));
        assert_eq!(cc.state, State::Startup);
        assert_eq!(cc.btl_bw(), Some(DataRate::from_mbps(100)));
        assert_eq!(cc.cwnd(), 4 * mss, "packet conservation after RTO");
    }

    #[test]
    fn planted_unfair_bug_ignores_the_ceiling() {
        let mss = 1_460;
        let mut fair = Bbr2::new(mss);
        let mut unfair = Bbr2::new(mss);
        unfair.debug_ignore_loss_ceiling();
        let mut t = warm_up(&mut fair, mss);
        warm_up(&mut unfair, mss);
        // Clean acks move both through the cycle in lockstep (neither
        // breaches on a clean round) until ProbeUp is in force.
        for _ in 0..80 {
            if fair.state == State::ProbeUp {
                break;
            }
            fair.on_ack(&ack(t, 50, 100, 100_000, mss));
            unfair.on_ack(&ack(t, 50, 100, 100_000, mss));
            t += 60;
        }
        assert_eq!(fair.state, State::ProbeUp);
        assert_eq!(unfair.state, State::ProbeUp);
        for _ in 0..3 {
            fair.on_ack(&lossy_ack(t, 50, 100, 500_000, 50_000, mss));
            unfair.on_ack(&lossy_ack(t, 50, 100, 500_000, 50_000, mss));
            t += 60;
        }
        assert!(fair.inflight_hi().is_some());
        assert_eq!(unfair.inflight_hi(), None, "bugged flow must not clamp");
        assert!(unfair.cwnd() > fair.cwnd());
    }
}
