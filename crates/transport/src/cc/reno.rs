//! NewReno-style AIMD congestion control.
//!
//! Slow start doubles the window per RTT until `ssthresh`; congestion
//! avoidance adds one segment per RTT; a loss event multiplicatively
//! halves. On a link with regular non-congestive loss bursts (Starlink
//! handovers) the halvings dominate and the window never stays near the
//! BDP — the behaviour Fig. 8 measures.

use super::{initial_cwnd, min_cwnd, AckSample, CongestionControl};
use starlink_simcore::{DataRate, SimTime};

/// NewReno AIMD state.
#[derive(Debug, Clone)]
pub struct Reno {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Fractional-segment accumulator for congestion avoidance.
    acked_accum: u64,
}

impl Reno {
    /// A fresh connection.
    pub fn new(mss: u64) -> Self {
        Reno {
            mss,
            cwnd: initial_cwnd(mss),
            ssthresh: u64::MAX,
            acked_accum: 0,
        }
    }

    /// Whether the sender is still in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl CongestionControl for Reno {
    fn on_ack(&mut self, sample: &AckSample) {
        if self.in_slow_start() {
            // Exponential: grow by the acked bytes.
            self.cwnd += sample.acked_bytes;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            // Additive: one MSS per cwnd's worth of ACKed bytes.
            self.acked_accum += sample.acked_bytes;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd += self.mss;
            }
        }
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(min_cwnd(self.mss));
        self.cwnd = self.ssthresh;
        self.acked_accum = 0;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(min_cwnd(self.mss));
        self.cwnd = self.mss;
        self.acked_accum = 0;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> Option<u64> {
        Some(self.ssthresh)
    }

    fn pacing_rate(&self) -> Option<DataRate> {
        None
    }

    fn name(&self) -> &'static str {
        "RENO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_simcore::SimDuration;

    fn ack(acked: u64, mss: u64) -> AckSample {
        AckSample {
            now: SimTime::ZERO,
            acked_bytes: acked,
            rtt: Some(SimDuration::from_millis(50)),
            in_flight: 0,
            lost_bytes: 0,
            mss,
            delivery_rate: None,
        }
    }

    #[test]
    fn slow_start_doubles_per_window() {
        let mss = 1_000;
        let mut cc = Reno::new(mss);
        let w0 = cc.cwnd();
        // ACK an entire window's worth of data.
        cc.on_ack(&ack(w0, mss));
        assert_eq!(cc.cwnd(), 2 * w0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn congestion_avoidance_adds_one_mss_per_window() {
        let mss = 1_000;
        let mut cc = Reno::new(mss);
        cc.on_loss_event(SimTime::ZERO); // leaves slow start at 5 segs
        let w = cc.cwnd();
        assert!(!cc.in_slow_start());
        // ACK one full window in pieces: +1 MSS total.
        for _ in 0..5 {
            cc.on_ack(&ack(w / 5, mss));
        }
        assert_eq!(cc.cwnd(), w + mss);
    }

    #[test]
    fn loss_halves_and_rto_collapses() {
        let mss = 1_000;
        let mut cc = Reno::new(mss);
        cc.on_ack(&ack(40_000, mss)); // grow in slow start
        let w = cc.cwnd();
        cc.on_loss_event(SimTime::ZERO);
        assert_eq!(cc.cwnd(), w / 2);
        cc.on_rto(SimTime::ZERO);
        assert_eq!(cc.cwnd(), mss);
    }

    #[test]
    fn floors_at_two_segments() {
        let mss = 1_000;
        let mut cc = Reno::new(mss);
        for _ in 0..20 {
            cc.on_loss_event(SimTime::ZERO);
        }
        assert_eq!(cc.cwnd(), 2 * mss);
    }
}
