//! TCP Veno: Reno with Vegas-informed loss discrimination.
//!
//! Veno maintains Vegas's queue-occupancy estimate `N` and uses it to
//! classify each loss: if `N < β` the network looked uncongested, so the
//! loss is presumed *random* (wireless) and the window is only cut to
//! 4/5; otherwise it halves like Reno. In congestion avoidance it also
//! slows its additive increase when the queue estimate is high.
//!
//! Designed exactly for random-loss wireless paths, Veno does beat plain
//! Reno on Starlink — but the paper's Fig. 8 shows it still far behind
//! BBR, because a 20 % cut per handover burst (with several bursts per
//! minute) still starves the window.

use super::{initial_cwnd, min_cwnd, AckSample, CongestionControl};
use starlink_simcore::{DataRate, SimDuration, SimTime};

/// Queue-occupancy threshold (segments) below which loss is presumed
/// random rather than congestive.
const BETA: f64 = 3.0;
/// Multiplicative decrease for random loss (vs 0.5 for congestive).
const RANDOM_LOSS_FACTOR: f64 = 0.8;

/// Veno state.
#[derive(Debug, Clone)]
pub struct Veno {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    base_rtt: Option<SimDuration>,
    last_rtt: Option<SimDuration>,
    acked_accum: u64,
    /// In the high-queue regime additive increase runs at half speed;
    /// this flag alternates windows.
    skip_toggle: bool,
}

impl Veno {
    /// A fresh connection.
    pub fn new(mss: u64) -> Self {
        Veno {
            mss,
            cwnd: initial_cwnd(mss),
            ssthresh: u64::MAX,
            base_rtt: None,
            last_rtt: None,
            acked_accum: 0,
            skip_toggle: false,
        }
    }

    /// Vegas-style backlog estimate `N`, segments.
    pub fn backlog_estimate(&self) -> Option<f64> {
        let base = self.base_rtt?.as_secs_f64();
        let rtt = self.last_rtt?.as_secs_f64();
        if base <= 0.0 || rtt <= 0.0 {
            return None;
        }
        let cwnd_seg = self.cwnd as f64 / self.mss as f64;
        Some(cwnd_seg * (rtt - base) / rtt)
    }

    fn presumed_random_loss(&self) -> bool {
        matches!(self.backlog_estimate(), Some(n) if n < BETA)
    }
}

impl CongestionControl for Veno {
    fn on_ack(&mut self, sample: &AckSample) {
        if let Some(rtt) = sample.rtt {
            self.base_rtt = Some(match self.base_rtt {
                Some(b) => b.min(rtt),
                None => rtt,
            });
            self.last_rtt = Some(rtt);
        }

        if self.cwnd < self.ssthresh {
            self.cwnd += sample.acked_bytes;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
            return;
        }

        // Congestion avoidance, modulated by the backlog estimate: with a
        // full queue (N >= beta) Veno increases every *other* window.
        self.acked_accum += sample.acked_bytes;
        if self.acked_accum >= self.cwnd.max(1) {
            self.acked_accum -= self.cwnd.max(1);
            let congested = matches!(self.backlog_estimate(), Some(n) if n >= BETA);
            if congested {
                self.skip_toggle = !self.skip_toggle;
                if self.skip_toggle {
                    return;
                }
            }
            self.cwnd += self.mss;
        }
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        let factor = if self.presumed_random_loss() {
            RANDOM_LOSS_FACTOR
        } else {
            0.5
        };
        self.ssthresh = ((self.cwnd as f64 * factor) as u64).max(min_cwnd(self.mss));
        self.cwnd = self.ssthresh;
        self.acked_accum = 0;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(min_cwnd(self.mss));
        self.cwnd = self.mss;
        self.acked_accum = 0;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> Option<u64> {
        Some(self.ssthresh)
    }

    fn pacing_rate(&self) -> Option<DataRate> {
        None
    }

    fn name(&self) -> &'static str {
        "VENO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(acked: u64, rtt_ms: u64, mss: u64) -> AckSample {
        AckSample {
            now: SimTime::ZERO,
            acked_bytes: acked,
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            in_flight: 0,
            lost_bytes: 0,
            mss,
            delivery_rate: None,
        }
    }

    #[test]
    fn random_loss_cuts_one_fifth() {
        let mss = 1_000;
        let mut cc = Veno::new(mss);
        // RTT equals base RTT: backlog ~ 0 => random-loss regime.
        cc.on_ack(&ack(50_000, 50, mss));
        let w = cc.cwnd();
        cc.on_loss_event(SimTime::ZERO);
        let ratio = cc.cwnd() as f64 / w as f64;
        assert!((ratio - 0.8).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn congestive_loss_halves() {
        let mss = 1_000;
        let mut cc = Veno::new(mss);
        cc.on_ack(&ack(50_000, 50, mss)); // base 50
        cc.on_ack(&ack(1_000, 300, mss)); // inflated: large backlog
        let w = cc.cwnd();
        cc.on_loss_event(SimTime::ZERO);
        let ratio = cc.cwnd() as f64 / w as f64;
        assert!((ratio - 0.5).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn veno_outruns_reno_under_random_loss() {
        // Identical loss pattern, low-queue path: Veno keeps more window.
        let mss = 1_000;
        let mut veno = Veno::new(mss);
        let mut reno = super::super::reno::Reno::new(mss);
        let grow = ack(50_000, 50, mss);
        veno.on_ack(&grow);
        reno.on_ack(&AckSample { ..grow });
        for _ in 0..5 {
            veno.on_loss_event(SimTime::ZERO);
            reno.on_loss_event(SimTime::ZERO);
        }
        assert!(
            veno.cwnd() > reno.cwnd(),
            "veno {} vs reno {}",
            veno.cwnd(),
            reno.cwnd()
        );
    }

    #[test]
    fn backlog_estimate_none_without_samples() {
        let cc = Veno::new(1_000);
        assert!(cc.backlog_estimate().is_none());
    }
}
