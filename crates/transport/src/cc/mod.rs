//! Congestion control: the trait, the five algorithms of Fig. 8, and the
//! BBRv2-class extension used by the fairness experiments.
//!
//! The paper runs BBR, CUBIC, Reno, Veno and Vegas over the same Starlink
//! link and finds BBR clearly ahead — yet still only reaching about half
//! the UDP-burst capacity — while on low-loss campus Wi-Fi every algorithm
//! clears 80–90 %. The mechanism: the loss-based algorithms (Reno, CUBIC,
//! and to a lesser degree Veno) interpret every handover loss burst as
//! congestion and halve; Vegas additionally misreads bent-pipe queueing
//! jitter as congestion; BBR's model-based rate keeps sending through
//! losses but still pays for them in delivered goodput and ProbeRTT dips.
//! BBRv2 ([`bbr2::Bbr2`]) keeps the model-based core but bounds it with
//! explicit inflight limits and a loss-rate ceiling, trading a little of
//! BBRv1's loss-resilience for fairness against loss-based flows at a
//! shared bottleneck.
//!
//! All window arithmetic is in **bytes** (MSS-granular internally where an
//! algorithm's published form counts segments).

pub mod bbr;
pub mod bbr2;
pub mod cubic;
pub mod reno;
pub mod vegas;
pub mod veno;

use starlink_obsv::CcPhase;
use starlink_simcore::{DataRate, SimDuration, SimTime};

/// Everything an algorithm may want to know about an arriving ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckSample {
    /// Arrival time of the ACK.
    pub now: SimTime,
    /// Bytes newly acknowledged (cumulative + SACK progress).
    pub acked_bytes: u64,
    /// RTT sample from the echoed timestamp, if present.
    pub rtt: Option<SimDuration>,
    /// Bytes in flight *after* this ACK was processed.
    pub in_flight: u64,
    /// Bytes currently presumed lost (unSACKed, below the sender's SACK
    /// evidence frontier). Loss-ceiling controllers (BBRv2) fold this
    /// into a per-round loss-rate estimate; everyone else ignores it.
    pub lost_bytes: u64,
    /// Sender maximum segment size.
    pub mss: u64,
    /// Delivery-rate sample (delivered bytes / elapsed) for rate-based
    /// controllers, if computable.
    pub delivery_rate: Option<DataRate>,
}

/// A pluggable congestion-control algorithm.
pub trait CongestionControl {
    /// Process an acknowledgement.
    fn on_ack(&mut self, sample: &AckSample);
    /// A loss event was detected by fast retransmit (at most once per
    /// recovery episode).
    fn on_loss_event(&mut self, now: SimTime);
    /// The retransmission timer expired.
    fn on_rto(&mut self, now: SimTime);
    /// Loss recovery (fast or RTO) completed; algorithms that clamp
    /// their window during recovery may restore it. Default: nothing.
    fn on_recovery_exit(&mut self, _now: SimTime) {}
    /// The network path changed underneath the connection (a scheduled
    /// handover edge). Algorithms whose model anchors on a path property
    /// (Vegas baseRTT) should expire and re-sample it. Default: nothing.
    fn on_path_change(&mut self, _now: SimTime) {}
    /// Current congestion window, bytes.
    fn cwnd(&self) -> u64;
    /// Current slow-start threshold, bytes, for algorithms that keep one
    /// (`u64::MAX` until the first reduction). Model-based algorithms
    /// (BBR) return `None`. Exposed so correctness oracles can check the
    /// window-bound invariants from outside the connection.
    fn ssthresh(&self) -> Option<u64> {
        None
    }
    /// Pacing rate, for algorithms that pace (BBR); window-only
    /// algorithms return `None` and rely on ACK clocking.
    fn pacing_rate(&self) -> Option<DataRate>;
    /// The model-based probing phase, for algorithms with an explicit
    /// probe state machine (BBR, BBRv2); window-only algorithms return
    /// `None`. Transitions surface as `cc_phase` trace events.
    fn probe_phase(&self) -> Option<CcPhase> {
        None
    }
    /// Test-only planted-bug hook: controllers with a loss-rate ceiling
    /// (BBRv2) stop honouring it, turning the flow into the bully the
    /// swarm's fairness oracle exists to catch. Default: nothing — most
    /// algorithms have no ceiling to ignore.
    fn debug_ignore_loss_ceiling(&mut self) {}
    /// Algorithm name as the paper's Fig. 8 axis labels it.
    fn name(&self) -> &'static str;
}

/// The five algorithms available on the paper's Raspberry Pi image, plus
/// the BBRv2-class extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcAlgorithm {
    /// BBR v1 (model-based).
    Bbr,
    /// BBRv2-class (model-based, loss-ceiling bounded).
    Bbr2,
    /// CUBIC (the Linux default).
    Cubic,
    /// NewReno-style AIMD.
    Reno,
    /// Veno (Reno with Vegas-informed loss discrimination).
    Veno,
    /// Vegas (delay-based).
    Vegas,
}

impl CcAlgorithm {
    /// Every algorithm, in the paper's Fig. 8 x-axis order (BBRv2 slots
    /// in beside BBRv1). Code that needs "the whole set" must iterate
    /// this — never a hand-written list — so new algorithms are picked
    /// up everywhere at once.
    pub const ALL: [CcAlgorithm; 6] = [
        CcAlgorithm::Bbr,
        CcAlgorithm::Bbr2,
        CcAlgorithm::Cubic,
        CcAlgorithm::Reno,
        CcAlgorithm::Veno,
        CcAlgorithm::Vegas,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CcAlgorithm::Bbr => "BBR",
            CcAlgorithm::Bbr2 => "BBR2",
            CcAlgorithm::Cubic => "CUBIC",
            CcAlgorithm::Reno => "RENO",
            CcAlgorithm::Veno => "VENO",
            CcAlgorithm::Vegas => "VEGAS",
        }
    }

    /// Whether the algorithm paces (model-based rate control) rather
    /// than relying on pure ACK clocking. The single source of truth for
    /// "is this a BBR-family algorithm" — tests and experiment shape
    /// checks key off this instead of naming variants, so the set stays
    /// extension-safe.
    pub fn paces(self) -> bool {
        matches!(self, CcAlgorithm::Bbr | CcAlgorithm::Bbr2)
    }

    /// Instantiates the algorithm for a connection with the given MSS.
    pub fn build(self, mss: u64) -> Box<dyn CongestionControl> {
        match self {
            CcAlgorithm::Bbr => Box::new(bbr::Bbr::new(mss)),
            CcAlgorithm::Bbr2 => Box::new(bbr2::Bbr2::new(mss)),
            CcAlgorithm::Cubic => Box::new(cubic::Cubic::new(mss)),
            CcAlgorithm::Reno => Box::new(reno::Reno::new(mss)),
            CcAlgorithm::Veno => Box::new(veno::Veno::new(mss)),
            CcAlgorithm::Vegas => Box::new(vegas::Vegas::new(mss)),
        }
    }
}

/// Initial window: 10 segments (RFC 6928).
pub(crate) fn initial_cwnd(mss: u64) -> u64 {
    10 * mss
}

/// Floor any window at 2 segments so the connection can always clock.
pub(crate) fn min_cwnd(mss: u64) -> u64 {
    2 * mss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_build_and_report_names() {
        let labels: Vec<&str> = CcAlgorithm::ALL
            .iter()
            .map(|a| a.build(1_460).name())
            .collect();
        assert_eq!(
            labels,
            vec!["BBR", "BBR2", "CUBIC", "RENO", "VENO", "VEGAS"]
        );
        // Labels are unique: the scenario JSON round-trip keys off them.
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len(), "duplicate labels");
    }

    #[test]
    fn initial_windows_are_rfc6928() {
        for algo in CcAlgorithm::ALL {
            let cc = algo.build(1_460);
            assert_eq!(cc.cwnd(), 10 * 1_460, "{}", cc.name());
        }
    }

    #[test]
    fn pacing_matches_the_declared_predicate() {
        // Extension-safe form of the old `only_bbr_paces`: every
        // algorithm's runtime behaviour must agree with its `paces()`
        // declaration, whatever the set contains.
        for algo in CcAlgorithm::ALL {
            let cc = algo.build(1_460);
            assert_eq!(
                cc.pacing_rate().is_some(),
                algo.paces(),
                "{} disagrees with paces()",
                cc.name()
            );
        }
    }

    #[test]
    fn probe_phase_matches_the_pacing_predicate() {
        // Model-based algorithms expose their probe state machine; the
        // window-only ones have none to expose.
        for algo in CcAlgorithm::ALL {
            let cc = algo.build(1_460);
            assert_eq!(
                cc.probe_phase().is_some(),
                algo.paces(),
                "{} probe phase",
                cc.name()
            );
        }
    }
}
