//! TCP Vegas: delay-based congestion avoidance.
//!
//! Vegas compares the expected throughput (`cwnd / base_rtt`) with the
//! actual (`cwnd / rtt`) and keeps the difference — the number of packets
//! queued in the network — between α and β segments, nudging the window by
//! one segment per RTT. On Starlink this backfires twice: bent-pipe
//! queueing jitter inflates RTT samples (Vegas backs off without any real
//! congestion), and handover loss bursts still trigger Reno-style
//! halvings. Fig. 8 finds Vegas at the bottom of the pack.

use super::{initial_cwnd, min_cwnd, AckSample, CongestionControl};
use starlink_simcore::{DataRate, SimDuration, SimTime};

/// Lower queue-occupancy target, segments.
const ALPHA: f64 = 2.0;
/// Upper queue-occupancy target, segments.
const BETA: f64 = 4.0;

/// Vegas state.
#[derive(Debug, Clone)]
pub struct Vegas {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Smallest RTT ever observed (propagation estimate).
    base_rtt: Option<SimDuration>,
    /// Smallest RTT within the current adjustment round.
    round_min_rtt: Option<SimDuration>,
    /// End of the current once-per-RTT adjustment round.
    round_ends: SimTime,
}

impl Vegas {
    /// A fresh connection.
    pub fn new(mss: u64) -> Self {
        Vegas {
            mss,
            cwnd: initial_cwnd(mss),
            ssthresh: u64::MAX,
            base_rtt: None,
            round_min_rtt: None,
            round_ends: SimTime::ZERO,
        }
    }

    /// The current estimate of packets queued in the network, in segments
    /// (the Vegas `diff`), if enough RTT data exists.
    pub fn queue_estimate(&self) -> Option<f64> {
        let base = self.base_rtt?.as_secs_f64();
        let rtt = self.round_min_rtt?.as_secs_f64();
        if base <= 0.0 || rtt <= 0.0 {
            return None;
        }
        let cwnd_seg = self.cwnd as f64 / self.mss as f64;
        Some(cwnd_seg * (rtt - base) / rtt)
    }
}

impl CongestionControl for Vegas {
    fn on_ack(&mut self, sample: &AckSample) {
        let Some(rtt) = sample.rtt else {
            return;
        };
        self.base_rtt = Some(match self.base_rtt {
            Some(b) => b.min(rtt),
            None => rtt,
        });
        self.round_min_rtt = Some(match self.round_min_rtt {
            Some(m) => m.min(rtt),
            None => rtt,
        });

        if self.cwnd < self.ssthresh {
            // Vegas slow start: grow every other RTT in real Vegas; keep
            // standard doubling but leave slow start early when the queue
            // estimate exceeds alpha.
            self.cwnd += sample.acked_bytes;
            if let Some(diff) = self.queue_estimate() {
                if diff > ALPHA {
                    self.ssthresh = self.cwnd;
                }
            }
        }

        // Once-per-RTT adjustment.
        if sample.now < self.round_ends {
            return;
        }
        self.round_ends = sample.now + rtt;
        if self.cwnd >= self.ssthresh {
            if let Some(diff) = self.queue_estimate() {
                if diff < ALPHA {
                    self.cwnd += self.mss;
                } else if diff > BETA {
                    self.cwnd = self.cwnd.saturating_sub(self.mss).max(min_cwnd(self.mss));
                }
            }
        }
        self.round_min_rtt = None;
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(min_cwnd(self.mss));
        self.cwnd = self.ssthresh;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(min_cwnd(self.mss));
        self.cwnd = self.mss;
    }

    fn on_path_change(&mut self, _now: SimTime) {
        // The propagation-delay anchor belongs to the *old* path. A
        // min-filter never forgets, so after a handover onto a longer
        // path every honest RTT sample reads as queueing (`rtt - base`
        // inflated by the propagation delta) and Vegas parks at its
        // window floor forever. Expire the anchor and let the next
        // samples re-establish it on the new path.
        self.base_rtt = None;
        self.round_min_rtt = None;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> Option<u64> {
        Some(self.ssthresh)
    }

    fn pacing_rate(&self) -> Option<DataRate> {
        None
    }

    fn name(&self) -> &'static str {
        "VEGAS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, acked: u64, rtt_ms: u64, mss: u64) -> AckSample {
        AckSample {
            now: SimTime::from_millis(now_ms),
            acked_bytes: acked,
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            in_flight: 0,
            lost_bytes: 0,
            mss,
            delivery_rate: None,
        }
    }

    #[test]
    fn grows_when_path_is_empty() {
        let mss = 1_000;
        let mut cc = Vegas::new(mss);
        cc.on_loss_event(SimTime::ZERO); // exit slow start
        let w = cc.cwnd();
        // RTT equals base RTT: no queue, diff = 0 < alpha, +1 MSS per round.
        let mut t = 0;
        for _ in 0..5 {
            cc.on_ack(&ack(t, mss, 50, mss));
            t += 60;
        }
        assert!(cc.cwnd() > w, "{} vs {w}", cc.cwnd());
    }

    #[test]
    fn backs_off_when_rtt_inflates() {
        let mss = 1_000;
        let mut cc = Vegas::new(mss);
        // Establish base RTT at 50 ms.
        cc.on_ack(&ack(0, mss, 50, mss));
        cc.on_loss_event(SimTime::ZERO);
        let w = cc.cwnd();
        // RTTs inflate to 250 ms: diff = 5.5 * (200/250) = 4.4 > beta.
        let mut t = 100;
        for _ in 0..5 {
            cc.on_ack(&ack(t, mss, 250, mss));
            t += 300;
        }
        assert!(cc.cwnd() < w, "{} vs {w}", cc.cwnd());
    }

    #[test]
    fn holds_inside_the_band() {
        let mss = 1_000;
        let mut cc = Vegas::new(mss);
        cc.on_ack(&ack(0, mss, 50, mss));
        cc.on_loss_event(SimTime::ZERO);
        let w = cc.cwnd(); // 5 segments
                           // Pick an RTT putting diff between alpha and beta:
                           // diff = 5 * (rtt-50)/rtt in [2,4] => rtt in [83.3, 250].
        let mut t = 100;
        for _ in 0..5 {
            cc.on_ack(&ack(t, mss, 100, mss));
            t += 150;
        }
        assert_eq!(cc.cwnd(), w);
    }

    #[test]
    fn queue_estimate_matches_formula() {
        let mss = 1_000;
        let mut cc = Vegas::new(mss);
        cc.on_ack(&ack(0, mss, 50, mss));
        cc.on_ack(&ack(10, mss, 100, mss));
        // After the two acks base=50, round_min<=100. cwnd = 12 segments.
        let diff = cc.queue_estimate().unwrap();
        let cwnd_seg = cc.cwnd() as f64 / mss as f64;
        assert!(diff <= cwnd_seg);
        assert!(diff >= 0.0);
    }

    #[test]
    fn path_change_resamples_base_rtt() {
        let mss = 1_000;
        let mut cc = Vegas::new(mss);
        // Anchor base RTT at 10 ms on the pre-handover path.
        cc.on_ack(&ack(0, mss, 10, mss));
        cc.on_loss_event(SimTime::ZERO);
        let w = cc.cwnd();
        // Handover onto a path whose true propagation delay is 90 ms.
        // Without re-sampling, diff = cwnd * 80/90 segments — far above
        // beta on every ACK — and the window ratchets down to the floor.
        cc.on_path_change(SimTime::from_millis(100));
        assert_eq!(cc.base_rtt, None, "anchor must expire on a path change");
        let mut t = 200;
        for _ in 0..10 {
            cc.on_ack(&ack(t, mss, 90, mss));
            t += 120;
        }
        // The 90 ms samples re-anchored base: no phantom queue, so the
        // window grew (diff = 0 < alpha) instead of collapsing.
        assert_eq!(cc.base_rtt, Some(SimDuration::from_millis(90)));
        assert!(cc.cwnd() > w, "{} vs {w}", cc.cwnd());
    }

    #[test]
    fn stale_base_rtt_collapses_without_path_change() {
        // The counterfactual for `path_change_resamples_base_rtt`: same
        // handover, no hint — the stale 10 ms anchor reads the new path's
        // propagation delay as a standing queue and Vegas backs off to
        // its floor. This is the bug the hint exists to fix.
        let mss = 1_000;
        let mut cc = Vegas::new(mss);
        cc.on_ack(&ack(0, mss, 10, mss));
        cc.on_loss_event(SimTime::ZERO);
        let w = cc.cwnd();
        let mut t = 200;
        for _ in 0..10 {
            cc.on_ack(&ack(t, mss, 90, mss));
            t += 120;
        }
        assert!(cc.cwnd() < w, "{} vs {w}", cc.cwnd());
    }

    #[test]
    fn loss_still_halves() {
        let mss = 1_000;
        let mut cc = Vegas::new(mss);
        cc.on_ack(&ack(0, 50_000, 50, mss));
        let w = cc.cwnd();
        cc.on_loss_event(SimTime::ZERO);
        assert_eq!(cc.cwnd(), w / 2);
    }
}
