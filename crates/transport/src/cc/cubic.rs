//! CUBIC congestion control (RFC 8312, simplified).
//!
//! The window grows as a cubic function of time since the last loss,
//! plateauing near the window where loss last occurred (`w_max`) and then
//! probing beyond it. Multiplicative decrease uses β = 0.7 instead of
//! Reno's 0.5. A TCP-friendly region keeps CUBIC at least as aggressive
//! as Reno on short-RTT paths.
//!
//! On Starlink's loss bursts CUBIC fares a little better than Reno (its
//! shallower decrease and fast w_max re-approach), but every handover
//! still resets the epoch — consistent with Fig. 8's near-Reno showing.

use super::{initial_cwnd, min_cwnd, AckSample, CongestionControl};
use starlink_simcore::{DataRate, SimTime};

/// RFC 8312 constant `C`, in segments/sec³.
const C: f64 = 0.4;
/// Multiplicative decrease factor β.
const BETA: f64 = 0.7;

/// CUBIC state.
#[derive(Debug, Clone)]
pub struct Cubic {
    mss: u64,
    cwnd: u64,
    ssthresh: u64,
    /// Window before the last reduction, segments.
    w_max: f64,
    /// Epoch start (set at the first ACK after a reduction).
    epoch_start: Option<SimTime>,
    /// Time offset at which the cubic reaches w_max, seconds.
    k: f64,
    /// Reno-equivalent window for the TCP-friendly region, segments.
    w_est: f64,
    /// Accumulator for the friendly-region additive growth.
    acked_accum: u64,
}

impl Cubic {
    /// A fresh connection.
    pub fn new(mss: u64) -> Self {
        Cubic {
            mss,
            cwnd: initial_cwnd(mss),
            ssthresh: u64::MAX,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            acked_accum: 0,
        }
    }

    fn segments(&self, bytes: u64) -> f64 {
        bytes as f64 / self.mss as f64
    }
}

impl CongestionControl for Cubic {
    fn on_ack(&mut self, sample: &AckSample) {
        if self.cwnd < self.ssthresh {
            self.cwnd += sample.acked_bytes;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
            return;
        }

        // Congestion avoidance: evaluate the cubic at t since epoch.
        let now = sample.now;
        let epoch = match self.epoch_start {
            Some(e) => e,
            None => {
                // New epoch: anchor the cubic at the current window.
                let w = self.segments(self.cwnd);
                if w < self.w_max {
                    self.k = ((self.w_max - w) / C).cbrt();
                } else {
                    self.k = 0.0;
                    self.w_max = w;
                }
                self.w_est = w;
                self.epoch_start = Some(now);
                now
            }
        };
        let t = now.saturating_since(epoch).as_secs_f64();
        let target = C * (t - self.k).powi(3) + self.w_max; // segments

        // TCP-friendly region: emulate Reno's 1 segment per RTT.
        self.acked_accum += sample.acked_bytes;
        if self.acked_accum >= self.cwnd.max(1) {
            self.acked_accum -= self.cwnd.max(1);
            self.w_est += 1.0;
        }

        let target = target.max(self.w_est);
        let current = self.segments(self.cwnd);
        if target > current {
            // Approach the target over roughly one RTT: grow by the
            // shortfall fraction per ACK.
            let growth = ((target - current) / current.max(1.0)) * sample.acked_bytes as f64;
            self.cwnd += growth.max(0.0) as u64;
        }
        // Clamp growth to at most doubling per ACK burst (safety).
        let cap = 2 * (self.cwnd.max(initial_cwnd(self.mss)));
        self.cwnd = self.cwnd.min(cap);
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        self.w_max = self.segments(self.cwnd);
        let reduced = (self.cwnd as f64 * BETA) as u64;
        self.cwnd = reduced.max(min_cwnd(self.mss));
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
        self.acked_accum = 0;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.w_max = self.segments(self.cwnd);
        self.ssthresh = ((self.cwnd as f64 * BETA) as u64).max(min_cwnd(self.mss));
        self.cwnd = self.mss;
        self.epoch_start = None;
        self.acked_accum = 0;
    }

    fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn ssthresh(&self) -> Option<u64> {
        Some(self.ssthresh)
    }

    fn pacing_rate(&self) -> Option<DataRate> {
        None
    }

    fn name(&self) -> &'static str {
        "CUBIC"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_simcore::SimDuration;

    fn ack_at(now: SimTime, acked: u64, mss: u64) -> AckSample {
        AckSample {
            now,
            acked_bytes: acked,
            rtt: Some(SimDuration::from_millis(50)),
            in_flight: 0,
            lost_bytes: 0,
            mss,
            delivery_rate: None,
        }
    }

    #[test]
    fn beta_is_point_seven() {
        let mss = 1_000;
        let mut cc = Cubic::new(mss);
        cc.on_ack(&ack_at(SimTime::ZERO, 100_000, mss));
        let w = cc.cwnd();
        cc.on_loss_event(SimTime::ZERO);
        let ratio = cc.cwnd() as f64 / w as f64;
        assert!((ratio - 0.7).abs() < 0.01, "{ratio}");
    }

    #[test]
    fn grows_back_toward_w_max_after_loss() {
        let mss = 1_000;
        let mut cc = Cubic::new(mss);
        // Grow to ~100 segments in slow start, then lose.
        cc.on_ack(&ack_at(SimTime::ZERO, 90_000, mss));
        let w_before_loss = cc.cwnd();
        cc.on_loss_event(SimTime::from_millis(100));
        // Feed ACKs over simulated seconds: the cubic must re-approach
        // w_max.
        let mut t = SimTime::from_millis(200);
        for _ in 0..400 {
            cc.on_ack(&ack_at(t, 10_000, mss));
            t += SimDuration::from_millis(50);
        }
        assert!(
            cc.cwnd() as f64 >= 0.9 * w_before_loss as f64,
            "cwnd {} should re-approach w_max {}",
            cc.cwnd(),
            w_before_loss
        );
    }

    #[test]
    fn concave_then_convex_growth() {
        let mss = 1_000;
        let mut cc = Cubic::new(mss);
        cc.on_ack(&ack_at(SimTime::ZERO, 90_000, mss));
        cc.on_loss_event(SimTime::from_millis(100));
        // Sample growth increments at fixed ack cadence: early increments
        // (approaching w_max) should shrink, later ones (past w_max) grow.
        let mut t = SimTime::from_millis(200);
        let mut windows = Vec::new();
        for _ in 0..600 {
            cc.on_ack(&ack_at(t, 5_000, mss));
            windows.push(cc.cwnd());
            t += SimDuration::from_millis(20);
        }
        let early_growth = windows[50] as i64 - windows[0] as i64;
        let mid_growth = windows[300] as i64 - windows[250] as i64;
        let late_growth = *windows.last().unwrap() as i64 - windows[550] as i64;
        assert!(early_growth > 0);
        // Plateau near w_max: mid growth smaller than early.
        assert!(
            mid_growth <= early_growth,
            "mid {mid_growth} vs early {early_growth}"
        );
        // Convex probe beyond: late growth picks up again.
        assert!(
            late_growth >= mid_growth,
            "late {late_growth} vs mid {mid_growth}"
        );
    }

    #[test]
    fn rto_collapses_to_one_segment() {
        let mss = 1_000;
        let mut cc = Cubic::new(mss);
        cc.on_ack(&ack_at(SimTime::ZERO, 50_000, mss));
        cc.on_rto(SimTime::from_millis(10));
        assert_eq!(cc.cwnd(), mss);
    }
}
