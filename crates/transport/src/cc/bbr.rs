//! BBR v1 (Bottleneck Bandwidth and RTT), simplified.
//!
//! BBR builds an explicit model of the path — the bottleneck bandwidth
//! (windowed-max of delivery-rate samples) and the round-trip propagation
//! delay (windowed-min of RTT samples) — and paces at `gain × btl_bw`
//! instead of reacting to loss. That is exactly why the paper finds it the
//! only algorithm that stays productive through Starlink's handover loss
//! bursts (Fig. 8): a 1–2 s burst of 30 % loss barely moves a max-filter
//! over 10 s of bandwidth samples, where it would halve Reno four times.
//!
//! The implementation follows the v1 state machine: **Startup** (gain
//! 2/ln 2 ≈ 2.885, doubling per round until the bandwidth plateaus) →
//! **Drain** (inverse gain until in-flight ≤ BDP) → **ProbeBW** (the
//! 8-phase gain cycle `[1.25, 0.75, 1 × 6]`), with **ProbeRTT** (cwnd =
//! 4 MSS for 200 ms) whenever the min-RTT sample goes 10 s stale.

use super::{initial_cwnd, AckSample, CongestionControl};
use starlink_obsv::CcPhase;
use starlink_simcore::{DataRate, SimDuration, SimTime};
use std::collections::VecDeque;

/// Startup/drain gain: 2/ln2.
const STARTUP_GAIN: f64 = 2.885;
/// ProbeBW gain cycle.
const CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Window over which bandwidth samples are max-filtered.
const BW_WINDOW: SimDuration = SimDuration::from_secs(10);
/// Staleness bound on the min-RTT estimate.
const MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);
/// Time spent sitting at 4 MSS in ProbeRTT.
const PROBE_RTT_DURATION: SimDuration = SimDuration::from_millis(200);
/// Rounds of non-growth that declare the pipe full in Startup.
const FULL_BW_ROUNDS: u32 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Startup,
    Drain,
    ProbeBw,
    ProbeRtt,
}

/// BBR v1 state.
#[derive(Debug, Clone)]
pub struct Bbr {
    mss: u64,
    state: State,
    /// Bandwidth samples as a monotonic deque (times ascending, values
    /// strictly descending): the front is the windowed max in O(1), and
    /// each sample is pushed/popped at most once. A plain max-scan list
    /// turns quadratic at LEO ACK rates (hundreds of thousands of samples
    /// per window, consulted on every send).
    bw_samples: VecDeque<(SimTime, u64)>,
    min_rtt: Option<SimDuration>,
    min_rtt_stamp: SimTime,
    /// Round accounting (a "round" is one min-RTT of wall time here).
    next_round_at: SimTime,
    /// Full-pipe detection.
    full_bw: u64,
    full_bw_rounds: u32,
    full_bw_reached: bool,
    /// ProbeBW cycle phase.
    cycle_phase: usize,
    /// ProbeRTT bookkeeping.
    probe_rtt_done_at: SimTime,
    probe_rtt_min: Option<SimDuration>,
    state_before_probe_rtt: State,
    /// Latest in-flight figure from ACK processing.
    last_in_flight: u64,
    pacing_gain: f64,
    cwnd_gain: f64,
    /// Packet-conservation window, bytes. After an RTO the model window
    /// is suspended and the connection restarts from here, growing by the
    /// ACKed bytes (slow-start-like) until it re-reaches the model — the
    /// BBR behaviour that stops a timeout from re-blasting a multi-MB
    /// window into a drained queue.
    conservation_cwnd: Option<u64>,
}

impl Bbr {
    /// A fresh connection.
    pub fn new(mss: u64) -> Self {
        Bbr {
            mss,
            state: State::Startup,
            bw_samples: VecDeque::new(),
            min_rtt: None,
            min_rtt_stamp: SimTime::ZERO,
            next_round_at: SimTime::ZERO,
            full_bw: 0,
            full_bw_rounds: 0,
            full_bw_reached: false,
            cycle_phase: 0,
            probe_rtt_done_at: SimTime::ZERO,
            probe_rtt_min: None,
            state_before_probe_rtt: State::Startup,
            last_in_flight: 0,
            pacing_gain: STARTUP_GAIN,
            cwnd_gain: STARTUP_GAIN,
            conservation_cwnd: None,
        }
    }

    /// The current bottleneck-bandwidth estimate (front of the monotonic
    /// deque).
    pub fn btl_bw(&self) -> Option<DataRate> {
        self.bw_samples
            .front()
            .map(|&(_, bw)| DataRate::from_bps(bw))
    }

    /// The current min-RTT estimate.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// Bandwidth-delay product estimate, bytes.
    fn bdp(&self) -> Option<u64> {
        let bw = self.btl_bw()?;
        let rtt = self.min_rtt?;
        Some((bw.bits_per_sec() as f64 * rtt.as_secs_f64() / 8.0) as u64)
    }

    fn record_bw(&mut self, now: SimTime, rate: DataRate) {
        let bw = rate.bits_per_sec();
        // Keep values strictly descending front-to-back.
        while self.bw_samples.back().is_some_and(|&(_, b)| b <= bw) {
            self.bw_samples.pop_back();
        }
        self.bw_samples.push_back((now, bw));
        // Age out the front beyond the window.
        let horizon = now
            .saturating_since(SimTime::ZERO)
            .saturating_sub(BW_WINDOW);
        while self
            .bw_samples
            .front()
            .is_some_and(|&(t, _)| t.since(SimTime::ZERO) < horizon)
        {
            self.bw_samples.pop_front();
        }
    }

    fn on_round(&mut self, now: SimTime) {
        let bw = self.bw_samples.front().map(|&(_, b)| b).unwrap_or(0);
        match self.state {
            State::Startup => {
                // Did bandwidth grow >= 25% this round?
                if bw as f64 >= self.full_bw as f64 * 1.25 {
                    self.full_bw = bw;
                    self.full_bw_rounds = 0;
                } else {
                    self.full_bw_rounds += 1;
                    if self.full_bw_rounds >= FULL_BW_ROUNDS {
                        self.full_bw_reached = true;
                        self.state = State::Drain;
                        self.pacing_gain = 1.0 / STARTUP_GAIN;
                        self.cwnd_gain = STARTUP_GAIN;
                    }
                }
            }
            State::Drain => {
                if let Some(bdp) = self.bdp() {
                    if self.last_in_flight <= bdp {
                        self.enter_probe_bw(now);
                    }
                }
            }
            State::ProbeBw => {
                self.cycle_phase = (self.cycle_phase + 1) % CYCLE.len();
                self.pacing_gain = CYCLE[self.cycle_phase];
            }
            State::ProbeRtt => {}
        }
    }

    fn enter_probe_bw(&mut self, _now: SimTime) {
        self.state = State::ProbeBw;
        self.cycle_phase = 0;
        self.pacing_gain = CYCLE[0];
        self.cwnd_gain = 2.0;
    }

    fn maybe_enter_probe_rtt(&mut self, now: SimTime) {
        if self.state == State::ProbeRtt {
            return;
        }
        if self.min_rtt.is_some() && now.saturating_since(self.min_rtt_stamp) > MIN_RTT_WINDOW {
            self.state_before_probe_rtt = if self.full_bw_reached {
                State::ProbeBw
            } else {
                State::Startup
            };
            self.state = State::ProbeRtt;
            self.probe_rtt_done_at = now + PROBE_RTT_DURATION;
            self.probe_rtt_min = None;
            self.pacing_gain = 1.0;
        }
    }

    fn maybe_exit_probe_rtt(&mut self, now: SimTime) {
        if self.state == State::ProbeRtt
            && now >= self.probe_rtt_done_at
            && self.last_in_flight <= 4 * self.mss
        {
            // Adopt the freshest floor observed while drained.
            if let Some(m) = self.probe_rtt_min {
                self.min_rtt = Some(m);
            }
            self.min_rtt_stamp = now;
            if self.state_before_probe_rtt == State::ProbeBw {
                self.enter_probe_bw(now);
            } else {
                self.state = State::Startup;
                self.pacing_gain = STARTUP_GAIN;
                self.cwnd_gain = STARTUP_GAIN;
            }
        }
    }
}

impl CongestionControl for Bbr {
    fn on_ack(&mut self, sample: &AckSample) {
        let now = sample.now;
        self.last_in_flight = sample.in_flight;

        // Packet conservation after an RTO: grow with the ACKed bytes and
        // rejoin the model once caught up.
        if let Some(c) = self.conservation_cwnd {
            let grown = c + sample.acked_bytes;
            let model = match self.bdp() {
                Some(bdp) => ((bdp as f64 * self.cwnd_gain) as u64).max(4 * self.mss),
                None => initial_cwnd(self.mss),
            };
            if grown >= model {
                self.conservation_cwnd = None;
            } else {
                self.conservation_cwnd = Some(grown);
            }
        }

        if let Some(rtt) = sample.rtt {
            if self.state == State::ProbeRtt {
                self.probe_rtt_min = Some(self.probe_rtt_min.map_or(rtt, |m| m.min(rtt)));
            }
            // The floor only moves down here; staleness is resolved by a
            // ProbeRTT episode, never by silently adopting a larger sample.
            if self.min_rtt.is_none_or(|m| rtt <= m) {
                self.min_rtt = Some(rtt);
                self.min_rtt_stamp = now;
            }
        }
        if let Some(rate) = sample.delivery_rate {
            self.record_bw(now, rate);
        }

        // Round boundary: one min-RTT of wall clock.
        if now >= self.next_round_at {
            let rtt = self.min_rtt.unwrap_or(SimDuration::from_millis(100));
            self.next_round_at = now + rtt;
            self.on_round(now);
        }

        self.maybe_enter_probe_rtt(now);
        self.maybe_exit_probe_rtt(now);
    }

    fn on_loss_event(&mut self, _now: SimTime) {
        // BBR v1 does not reduce its model on ordinary loss — this is the
        // defining behaviour for the Fig. 8 outcome.
    }

    fn on_rto(&mut self, now: SimTime) {
        if self.state == State::ProbeRtt {
            // An RTO can fire mid-dwell with no RTT sample collected. This
            // exit path must still refresh the staleness stamp (and adopt
            // whatever floor the dwell did observe), otherwise the very
            // next ACK finds `min_rtt_stamp` still > 10 s old and drops
            // the connection straight back into ProbeRTT — a 4-MSS window
            // every 200 ms, for as long as RTOs keep landing in dwells.
            if let Some(m) = self.probe_rtt_min {
                self.min_rtt = Some(m);
            }
            self.min_rtt_stamp = now;
        }
        // Conservative restart: forget full-pipe status, keep the model,
        // and clamp the window to packet conservation.
        self.conservation_cwnd = Some(4 * self.mss);
        self.state = State::Startup;
        self.pacing_gain = STARTUP_GAIN;
        self.cwnd_gain = STARTUP_GAIN;
        self.full_bw = 0;
        self.full_bw_rounds = 0;
        self.full_bw_reached = false;
        self.next_round_at = now;
    }

    fn cwnd(&self) -> u64 {
        if self.state == State::ProbeRtt {
            return 4 * self.mss;
        }
        let model = match self.bdp() {
            Some(bdp) => ((bdp as f64 * self.cwnd_gain) as u64).max(4 * self.mss),
            None => initial_cwnd(self.mss),
        };
        match self.conservation_cwnd {
            Some(c) => c.min(model),
            None => model,
        }
    }

    fn on_recovery_exit(&mut self, _now: SimTime) {
        self.conservation_cwnd = None;
    }

    fn pacing_rate(&self) -> Option<DataRate> {
        let gain = if self.conservation_cwnd.is_some() {
            1.0
        } else {
            self.pacing_gain
        };
        match self.btl_bw() {
            Some(bw) => Some(bw.scale(gain)),
            // Before any sample: pace the initial window over an assumed
            // 10 ms RTT (aggressive but immediately corrected).
            None => Some(DataRate::from_bps(initial_cwnd(self.mss) * 8 * 100)),
        }
    }

    fn probe_phase(&self) -> Option<CcPhase> {
        // v1 has no explicit ProbeUp/Down/Cruise states; map the ProbeBW
        // gain cycle onto them so traces read uniformly across versions.
        Some(match self.state {
            State::Startup => CcPhase::Startup,
            State::Drain => CcPhase::Drain,
            State::ProbeBw => match self.cycle_phase {
                0 => CcPhase::ProbeUp,
                1 => CcPhase::ProbeDown,
                _ => CcPhase::ProbeCruise,
            },
            State::ProbeRtt => CcPhase::ProbeRtt,
        })
    }

    fn name(&self) -> &'static str {
        "BBR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(now_ms: u64, rtt_ms: u64, rate_mbps: u64, in_flight: u64, mss: u64) -> AckSample {
        AckSample {
            now: SimTime::from_millis(now_ms),
            acked_bytes: mss,
            rtt: Some(SimDuration::from_millis(rtt_ms)),
            in_flight,
            lost_bytes: 0,
            mss,
            delivery_rate: Some(DataRate::from_mbps(rate_mbps)),
        }
    }

    #[test]
    fn startup_exits_when_bandwidth_plateaus() {
        let mss = 1_460;
        let mut cc = Bbr::new(mss);
        // Feed a growing then flat bandwidth signal over many rounds.
        let mut t = 0;
        for rate in [10, 20, 40, 80, 100, 100, 100, 100, 100, 100] {
            cc.on_ack(&ack(t, 50, rate, 50_000, mss));
            t += 60; // > min_rtt, so each ack is a round
        }
        assert!(cc.full_bw_reached, "pipe should be declared full");
        assert!(matches!(cc.state, State::Drain | State::ProbeBw));
    }

    #[test]
    fn model_tracks_bandwidth_and_rtt() {
        let mss = 1_460;
        let mut cc = Bbr::new(mss);
        cc.on_ack(&ack(0, 80, 50, 10_000, mss));
        cc.on_ack(&ack(10, 40, 90, 10_000, mss));
        cc.on_ack(&ack(20, 60, 70, 10_000, mss));
        assert_eq!(cc.min_rtt(), Some(SimDuration::from_millis(40)));
        assert_eq!(cc.btl_bw(), Some(DataRate::from_mbps(90)));
    }

    #[test]
    fn cwnd_tracks_bdp() {
        let mss = 1_460;
        let mut cc = Bbr::new(mss);
        cc.on_ack(&ack(0, 100, 80, 10_000, mss));
        // BDP = 80 Mbps * 100 ms = 1 MB; cwnd = gain * BDP.
        let bdp = 1_000_000u64;
        let expect = (bdp as f64 * cc.cwnd_gain) as u64;
        let got = cc.cwnd();
        assert!(
            (got as f64 - expect as f64).abs() / (expect as f64) < 0.01,
            "cwnd {got} vs {expect}"
        );
    }

    #[test]
    fn loss_does_not_shrink_the_model() {
        let mss = 1_460;
        let mut cc = Bbr::new(mss);
        cc.on_ack(&ack(0, 50, 100, 10_000, mss));
        let w = cc.cwnd();
        for _ in 0..10 {
            cc.on_loss_event(SimTime::from_millis(10));
        }
        assert_eq!(cc.cwnd(), w, "BBR ignores ordinary loss");
    }

    #[test]
    fn probe_rtt_clamps_cwnd() {
        let mss = 1_460;
        let mut cc = Bbr::new(mss);
        cc.on_ack(&ack(0, 50, 100, 10_000, mss));
        // Let the min-RTT sample go stale (> 10 s) with higher RTTs.
        let mut t = 200;
        while t < 11_000 {
            cc.on_ack(&ack(t, 80, 100, 10_000, mss));
            t += 500;
        }
        assert_eq!(cc.state, State::ProbeRtt);
        assert_eq!(cc.cwnd(), 4 * mss);
        // Exits once in-flight drained and the dwell elapsed.
        cc.on_ack(&ack(t + 300, 50, 100, 2 * mss, mss));
        assert_ne!(cc.state, State::ProbeRtt);
    }

    #[test]
    fn probe_bw_cycles_gains() {
        let mss = 1_460;
        let mut cc = Bbr::new(mss);
        let mut t = 0;
        // Reach ProbeBW.
        for rate in [10, 20, 40, 80, 100, 100, 100, 100, 100, 100, 100] {
            cc.on_ack(&ack(t, 50, rate, 1_000, mss));
            t += 60;
        }
        assert_eq!(cc.state, State::ProbeBw);
        // Collect pacing gains over the next rounds: must include the
        // 1.25 probe and the 0.75 drain phases.
        let mut seen = Vec::new();
        for _ in 0..10 {
            cc.on_ack(&ack(t, 50, 100, 1_000, mss));
            seen.push(cc.pacing_gain);
            t += 60;
        }
        assert!(seen.iter().any(|&g| (g - 1.25).abs() < 1e-9), "{seen:?}");
        assert!(seen.iter().any(|&g| (g - 0.75).abs() < 1e-9), "{seen:?}");
    }

    #[test]
    fn bw_window_forgets_old_samples() {
        let mss = 1_460;
        let mut cc = Bbr::new(mss);
        cc.on_ack(&ack(0, 50, 200, 1_000, mss));
        // 11 s later, feed lower samples; the 200 Mbps one must age out.
        cc.on_ack(&ack(11_000, 50, 50, 1_000, mss));
        assert_eq!(cc.btl_bw(), Some(DataRate::from_mbps(50)));
    }

    #[test]
    fn rto_during_probe_rtt_refreshes_the_stamp() {
        let mss = 1_460;
        let mut cc = Bbr::new(mss);
        cc.on_ack(&ack(0, 50, 100, 10_000, mss));
        let mut t = 200;
        while t < 11_000 {
            cc.on_ack(&ack(t, 80, 100, 10_000, mss));
            t += 500;
        }
        assert_eq!(cc.state, State::ProbeRtt);
        // An RTO fires mid-dwell, before any RTT sample was collected.
        cc.on_rto(SimTime::from_millis(t));
        assert_eq!(cc.state, State::Startup);
        // Regression: the exit must refresh the staleness stamp, or this
        // ACK (still > 10 s after the last floor sample) would bounce the
        // connection straight back into ProbeRTT's 4-MSS clamp.
        cc.on_ack(&ack(t + 50, 80, 100, 10_000, mss));
        assert_ne!(cc.state, State::ProbeRtt);
        assert!(cc.cwnd() > 4 * mss || cc.conservation_cwnd.is_some());
    }

    #[test]
    fn rto_restarts_startup_but_keeps_model() {
        let mss = 1_460;
        let mut cc = Bbr::new(mss);
        cc.on_ack(&ack(0, 50, 100, 1_000, mss));
        cc.on_rto(SimTime::from_millis(100));
        assert_eq!(cc.state, State::Startup);
        assert_eq!(cc.btl_bw(), Some(DataRate::from_mbps(100)));
        assert!((cc.pacing_gain - STARTUP_GAIN).abs() < 1e-9);
    }
}
