//! The simulated TCP endpoints.
//!
//! [`TcpSender`] and [`TcpReceiver`] are [`starlink_netsim::Handler`]s: a
//! scenario attaches them to two host nodes, arms the sender's start
//! timer, and runs the network. Statistics flow out through shared
//! [`Rc<RefCell<...>>`] handles, since the simulator is single-threaded.
//!
//! The implementation keeps the mechanisms that drive congestion dynamics
//! over a bursty-loss path (sequencing, SACK, fast retransmit with one
//! congestion event per episode, RFC 6298 timers with backoff, pacing,
//! delivery-rate sampling for BBR) and drops everything else.

use crate::cc::{AckSample, CcAlgorithm, CongestionControl};
use starlink_netsim::{Ctx, Handler, NodeId, Packet, Payload, SackBlocks, TcpFlags, TcpHeader};
use starlink_obsv::{self as obsv, CcPhase, TcpPhase, TraceEvent};
use starlink_simcore::{Bytes, DataRate, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Timer token kinds (low 3 bits of the token).
const KIND_START: u64 = 0;
const KIND_RTO: u64 = 1;
const KIND_PACE: u64 = 2;
const KIND_TLP: u64 = 3;
const KIND_PATH: u64 = 4;

/// Lower bound on the retransmission timeout.
const MIN_RTO: SimDuration = SimDuration::from_millis(200);
/// Upper bound on the retransmission timeout.
const MAX_RTO: SimDuration = SimDuration::from_secs(60);
/// Header overhead added to every segment.
const HDR: u64 = Packet::TCP_OVERHEAD;

/// Sender-side connection statistics, updated live.
#[derive(Debug, Clone, Default)]
pub struct TcpSenderStats {
    /// Bytes cumulatively acknowledged.
    pub bytes_acked: u64,
    /// Data segments sent (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// Retransmission-timeout episodes.
    pub rto_count: u64,
    /// Fast-retransmit congestion events.
    pub loss_events: u64,
    /// Smoothed RTT, if measured.
    pub srtt: Option<SimDuration>,
    /// When the configured byte total was fully acknowledged.
    pub finished_at: Option<SimTime>,
    /// cwnd trace: (time, cwnd bytes), sampled at each ACK when enabled.
    pub cwnd_trace: Vec<(SimTime, u64)>,
    /// Congestion window after the most recent ACK or RTO, bytes.
    pub last_cwnd: u64,
    /// Smallest congestion window ever observed, bytes (after the first
    /// congestion-control action). Oracles check it never falls below one
    /// MSS — the RTO collapse floor.
    pub min_cwnd_seen: Option<u64>,
    /// Slow-start threshold after the most recent ACK or RTO, for
    /// algorithms that keep one.
    pub last_ssthresh: Option<u64>,
    /// Timestamp-derived RTT samples taken.
    pub rtt_samples: u64,
    /// RTT samples that came out non-positive and were discarded. Must
    /// stay zero: links floor every hop at a strictly positive delay, so
    /// a zero sample means the virtual clock misbehaved.
    pub zero_rtt_samples: u64,
    /// Scheduled path-change hints delivered to the congestion controller.
    pub path_changes: u64,
}

impl TcpSenderStats {
    /// Mean goodput between connection start and `finished_at`/`now`.
    pub fn goodput(&self, started: SimTime, now: SimTime) -> DataRate {
        let end = self.finished_at.unwrap_or(now);
        let elapsed = end.saturating_since(started).as_secs_f64();
        if elapsed <= 0.0 {
            return DataRate::ZERO;
        }
        DataRate::from_bps((self.bytes_acked as f64 * 8.0 / elapsed) as u64)
    }
}

/// Configuration for a sender.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Connection identifier carried in every header.
    pub conn: u64,
    /// Maximum segment (payload) size, bytes.
    pub mss: u64,
    /// Congestion-control algorithm.
    pub algorithm: CcAlgorithm,
    /// Total application bytes to transfer (`None` = unlimited stream).
    pub total_bytes: Option<u64>,
    /// Stop offering new data at this time (open-ended stress tests).
    pub stop_at: Option<SimTime>,
    /// Record a cwnd sample at every ACK (costs memory; for analysis).
    pub trace_cwnd: bool,
    /// Scheduled path-change hints (handover edges known to the scenario,
    /// the stand-in for a real stack's link-layer notifications). At each
    /// time the congestion controller's `on_path_change` runs, letting
    /// path-anchored models (Vegas baseRTT) expire and re-sample.
    /// Tracing never sees these: they are part of the schedule, so runs
    /// stay identical whether or not observability is attached.
    pub path_changes: Vec<SimTime>,
    /// Test-only planted bug: the congestion controller stops honouring
    /// its loss-rate ceiling (see
    /// [`CongestionControl::debug_ignore_loss_ceiling`]). Only set by
    /// `--inject-unfair-bug` fairness runs.
    pub debug_unfair_cc: bool,
}

impl TcpConfig {
    /// A bulk transfer of `total` bytes using `algorithm`.
    pub fn bulk(conn: u64, algorithm: CcAlgorithm, total: u64) -> Self {
        TcpConfig {
            conn,
            mss: 1_460,
            algorithm,
            total_bytes: Some(total),
            stop_at: None,
            trace_cwnd: false,
            path_changes: Vec::new(),
            debug_unfair_cc: false,
        }
    }

    /// An unlimited stream that stops offering data at `stop_at` (the
    /// iperf-style stress test).
    pub fn stream_until(conn: u64, algorithm: CcAlgorithm, stop_at: SimTime) -> Self {
        TcpConfig {
            conn,
            mss: 1_460,
            algorithm,
            total_bytes: None,
            stop_at: Some(stop_at),
            trace_cwnd: false,
            path_changes: Vec::new(),
            debug_unfair_cc: false,
        }
    }

    /// Attaches a schedule of path-change hint times.
    pub fn with_path_changes(mut self, times: Vec<SimTime>) -> Self {
        self.path_changes = times;
        self
    }

    /// Arms the planted unfair-flow bug (test-only; see
    /// [`TcpConfig::debug_unfair_cc`]).
    pub fn with_unfair_cc_bug(mut self) -> Self {
        self.debug_unfair_cc = true;
        self
    }
}

/// In-flight segment metadata.
#[derive(Debug, Clone)]
struct Seg {
    len: u64,
    sent_at: SimTime,
    delivered_at_send: u64,
    /// When the delivered counter last advanced, snapshotted at send —
    /// the start of the delivery interval for BBR-style rate samples.
    delivered_time_at_send: SimTime,
    sacked: bool,
    retx: u32,
}

/// The sending endpoint.
pub struct TcpSender {
    peer: NodeId,
    config: TcpConfig,
    cc: Box<dyn CongestionControl>,
    stats: Rc<RefCell<TcpSenderStats>>,

    established: bool,
    started_at: Option<SimTime>,
    next_seq: u64,
    una: u64,
    segs: BTreeMap<u64, Seg>,
    /// Sequence numbers of in-flight segments not yet SACKed — the
    /// working set for hole retransmission and SACK marking. Kept as a
    /// mirror of `segs` so every per-ACK operation is O(log W) instead of
    /// O(W); at LEO bandwidth-delay products (thousands of segments in
    /// flight) the naive scans turn quadratic and dominate the run time.
    unsacked: std::collections::BTreeSet<u64>,
    /// Incremental in-flight byte count (unSACKed, un-cum-acked bytes).
    in_flight_bytes: u64,
    /// Incremental count of SACKed-but-not-cum-acked bytes.
    sacked_bytes: u64,
    /// Total bytes known delivered (cumulative + SACKed).
    delivered: u64,
    /// When `delivered` last advanced (rate-sample interval anchor).
    delivered_time: SimTime,

    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    rto_gen: u64,
    /// Tail-loss-probe timer generation (fires at ~2 RTT of ACK silence,
    /// well before the RTO, and retransmits the newest unSACKed segment
    /// to manufacture SACK evidence — the Linux TLP mechanism that keeps
    /// tail loss from costing an RTO plus backoff).
    tlp_gen: u64,
    backoff: u32,

    dupacks: u32,
    in_recovery: bool,
    /// Recovery was entered through an RTO (CA_Loss): the congestion
    /// window must keep growing on ACKs (slow-start retransmission), or
    /// the whole outstanding window would be repaired at 1 MSS per RTT.
    rto_mode: bool,
    recover: u64,
    /// Highest sequence already retransmitted in this recovery episode;
    /// prevents re-retransmitting the same hole on every SACK ack.
    rtx_cursor: u64,
    /// Highest byte for which SACK evidence exists; only data below this
    /// is presumed lost (RFC 6675-style), so fast retransmission never
    /// walks past the receiver's actual knowledge.
    highest_sacked_end: u64,
    /// Bytes presumed lost: unSACKed, never-retransmitted bytes below
    /// `highest_sacked_end`. Subtracted from the in-flight figure to form
    /// the RFC 6675 "pipe" — without this, a large loss episode wedges
    /// the window shut and recovery crawls at one segment per RTT.
    lost_bytes: u64,

    next_send_at: SimTime,
    pace_armed: bool,
    /// Diagnostic: when the last ACK was processed.
    last_ack_at: SimTime,
    /// A tail-loss probe is outstanding: its duplicate ACK must not feed
    /// the dupack counter (RFC 8985 §7.3's probe accounting).
    tlp_outstanding: bool,
    /// Whether a tail-loss probe may be sent: re-earned only by
    /// *cumulative* progress. One probe per silence episode — if the
    /// probe's echo doesn't move `una`, the RTO takes over. (Without this
    /// limit, each probe's SACK echo re-arms another probe and the
    /// connection walks the lost tail backward at one segment per PTO,
    /// fencing the RTO out forever.)
    tlp_allowed: bool,
    /// Last phase reported through the observability layer; transitions
    /// emit a `tcp_state` trace event.
    last_phase: TcpPhase,
    /// Last congestion-control probe phase reported; transitions emit a
    /// `cc_phase` trace event. `None` for window-only algorithms, which
    /// have no probe state machine.
    last_probe_phase: Option<CcPhase>,
    /// Reusable scratch for per-ACK sequence-number sweeps (cumulative
    /// removal and SACK coverage). At LEO bandwidth-delay products every
    /// ACK used to allocate a fresh `Vec` here — on the hot path that was
    /// the dominant allocator traffic in the whole transport.
    ack_scratch: Vec<u64>,
}

impl TcpSender {
    /// Creates a sender to `peer`; returns the handler and a live stats
    /// handle.
    pub fn new(peer: NodeId, config: TcpConfig) -> (Self, Rc<RefCell<TcpSenderStats>>) {
        let stats = Rc::new(RefCell::new(TcpSenderStats::default()));
        let mut cc = config.algorithm.build(config.mss);
        if config.debug_unfair_cc {
            cc.debug_ignore_loss_ceiling();
        }
        let last_probe_phase = cc.probe_phase();
        (
            TcpSender {
                peer,
                config,
                cc,
                stats: Rc::clone(&stats),
                established: false,
                started_at: None,
                next_seq: 0,
                una: 0,
                segs: BTreeMap::new(),
                unsacked: std::collections::BTreeSet::new(),
                in_flight_bytes: 0,
                sacked_bytes: 0,
                delivered: 0,
                delivered_time: SimTime::ZERO,
                srtt: None,
                rttvar: SimDuration::ZERO,
                rto: SimDuration::from_secs(1),
                rto_gen: 0,
                tlp_gen: 0,
                backoff: 0,
                dupacks: 0,
                in_recovery: false,
                rto_mode: false,
                recover: 0,
                rtx_cursor: 0,
                highest_sacked_end: 0,
                lost_bytes: 0,
                next_send_at: SimTime::ZERO,
                pace_armed: false,
                last_ack_at: SimTime::ZERO,
                tlp_outstanding: false,
                tlp_allowed: true,
                last_phase: TcpPhase::Handshake,
                last_probe_phase,
                ack_scratch: Vec::new(),
            },
            stats,
        )
    }

    /// The timer token that kicks the connection off; arm it via
    /// [`starlink_netsim::Network::arm_timer`] at the desired start time.
    pub fn start_token() -> u64 {
        KIND_START
    }

    fn in_flight(&self) -> u64 {
        self.in_flight_bytes
    }

    /// The RFC 6675 pipe: bytes believed to actually be in the network
    /// (outstanding minus presumed-lost; retransmissions re-enter).
    fn pipe(&self) -> u64 {
        self.in_flight_bytes.saturating_sub(self.lost_bytes)
    }

    fn data_limit(&self, now: SimTime) -> u64 {
        if let Some(stop) = self.config.stop_at {
            if now >= stop {
                return self.next_seq; // no new data
            }
        }
        self.config.total_bytes.unwrap_or(u64::MAX)
    }

    fn arm_rto(&mut self, ctx: &mut Ctx) {
        self.rto_gen += 1;
        let token = (self.rto_gen << 3) | KIND_RTO;
        ctx.set_timer(ctx.now + self.rto, token);
        // The probe goes out well before the timeout would.
        self.tlp_gen += 1;
        let pto = match self.srtt {
            Some(srtt) => (srtt * 2).max(SimDuration::from_millis(20)),
            None => SimDuration::from_millis(100),
        };
        if self.tlp_allowed && pto < self.rto {
            ctx.set_timer(ctx.now + pto, (self.tlp_gen << 3) | KIND_TLP);
        }
    }

    /// Tail-loss probe: retransmit the newest unSACKed segment so the
    /// receiver's next ACK carries evidence about everything below it.
    fn fire_tlp(&mut self, ctx: &mut Ctx) {
        if self.in_flight_bytes == 0 {
            return;
        }
        let Some(&seq) = self.unsacked.iter().next_back() else {
            return;
        };
        let Some(seg) = self.segs.get(&seq) else {
            return;
        };
        let len = seg.len;
        if seg.retx == 0 && seq < self.highest_sacked_end {
            self.lost_bytes = self.lost_bytes.saturating_sub(len);
        }
        self.tlp_outstanding = true;
        self.tlp_allowed = false;
        self.send_segment(ctx, seq, len, true);
    }

    fn send_syn(&mut self, ctx: &mut Ctx) {
        let mut hdr = TcpHeader::data(self.config.conn, 0, 0);
        hdr.flags = TcpFlags::SYN;
        hdr.ts = Some(ctx.now);
        ctx.send(self.peer, Bytes::new(HDR), Payload::Tcp(hdr));
        self.arm_rto(ctx);
    }

    fn send_segment(&mut self, ctx: &mut Ctx, seq: u64, len: u64, retx: bool) {
        let mut hdr = TcpHeader::data(self.config.conn, seq, len);
        hdr.ts = Some(ctx.now);
        ctx.send(self.peer, Bytes::new(len + HDR), Payload::Tcp(hdr));
        let mut stats = self.stats.borrow_mut();
        stats.segments_sent += 1;
        if retx {
            stats.retransmissions += 1;
        }
        drop(stats);
        obsv::counter_add("tcp.segments_sent", 1);
        if retx {
            obsv::counter_add("tcp.retransmissions", 1);
        }
        match self.segs.entry(seq) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(Seg {
                    len,
                    sent_at: ctx.now,
                    delivered_at_send: self.delivered,
                    delivered_time_at_send: self.delivered_time,
                    sacked: false,
                    retx: u32::from(retx),
                });
                self.unsacked.insert(seq);
                self.in_flight_bytes += len;
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                let seg = o.get_mut();
                seg.sent_at = ctx.now;
                seg.delivered_at_send = self.delivered;
                seg.delivered_time_at_send = self.delivered_time;
                if retx {
                    seg.retx += 1;
                }
            }
        }
    }

    /// The pacing interval for `len` bytes, if the CCA paces. The gap is
    /// capped at 100 ms: if the bandwidth model ever collapses (all good
    /// samples aged out during a stall), the connection still probes at
    /// ~10 packets/s and the model re-inflates from the resulting ACKs,
    /// instead of death-spiralling into one packet per estimate-window.
    fn pace_delay(&self, len: u64) -> Option<SimDuration> {
        let rate = self.cc.pacing_rate()?;
        if rate.bits_per_sec() == 0 {
            return Some(SimDuration::from_millis(10));
        }
        Some(
            Bytes::new(len)
                .serialization_time(rate)
                .min(SimDuration::from_millis(100)),
        )
    }

    /// Sends as much new data as window, data and pacing allow.
    fn pump(&mut self, ctx: &mut Ctx) {
        if !self.established {
            return;
        }
        let limit = self.data_limit(ctx.now);
        loop {
            let cwnd = self.cc.cwnd();
            if self.pipe() >= cwnd {
                break;
            }
            if ctx.now < self.next_send_at {
                if !self.pace_armed {
                    self.pace_armed = true;
                    ctx.set_timer(self.next_send_at, KIND_PACE);
                }
                break;
            }
            // Repair known holes before injecting new data (RFC 6675
            // NextSeg() ordering).
            if self.in_recovery && self.retransmit_hole(ctx, false) {
                if let Some(gap) = self.pace_delay(self.config.mss) {
                    self.next_send_at = ctx.now + gap;
                }
                continue;
            }
            if self.next_seq >= limit {
                break;
            }
            let len = self.config.mss.min(limit - self.next_seq);
            let seq = self.next_seq;
            self.next_seq += len;
            self.send_segment(ctx, seq, len, false);
            if let Some(gap) = self.pace_delay(len) {
                self.next_send_at = ctx.now + gap;
            }
        }
        if self.in_flight() > 0 && self.segs.len() == 1 {
            // First outstanding data: make sure a timer guards it.
            self.arm_rto(ctx);
        }
    }

    /// Retransmits the first unSACKed hole at/above the retransmit
    /// cursor (each hole goes out once per recovery episode; the RTO
    /// path retries holes whose retransmission was itself lost). Returns
    /// true if something was retransmitted.
    fn retransmit_hole(&mut self, ctx: &mut Ctx, force: bool) -> bool {
        let from = self.rtx_cursor.max(self.una);
        let Some(&seq) = self.unsacked.range(from..).next() else {
            return false;
        };
        // `unsacked` mirrors `segs`; a missing entry would mean the
        // mirror desynced — skip the retransmission rather than panic on
        // the packet hot path.
        let Some(seg) = self.segs.get(&seq) else {
            debug_assert!(false, "unsacked entry {seq} missing from segs");
            self.unsacked.remove(&seq);
            return false;
        };
        let (len, retx) = (seg.len, seg.retx);
        // Fast retransmission needs SACK evidence above the hole;
        // without it the data may simply still be in flight. The RTO
        // path forces, because a timeout *is* the evidence.
        if !force && seq >= self.highest_sacked_end {
            return false;
        }
        // A counted-lost segment re-enters the pipe on retransmission.
        if retx == 0 && seq < self.highest_sacked_end {
            self.lost_bytes = self.lost_bytes.saturating_sub(len);
        }
        self.rtx_cursor = seq + len;
        self.send_segment(ctx, seq, len, true);
        true
    }

    /// Clamps an RTO candidate to `[MIN_RTO, MAX_RTO]`. Both the
    /// estimator path and the exponential-backoff path go through this,
    /// so neither side of RFC 6298 §2.4/§5.5 can escape the bounds.
    fn clamp_rto(rto: SimDuration) -> SimDuration {
        rto.max(MIN_RTO).min(MAX_RTO)
    }

    /// Reports a phase transition to the trace layer, if one happened.
    fn sync_phase(&mut self, now: SimTime) {
        let phase = if !self.established {
            TcpPhase::Handshake
        } else if self.rto_mode {
            TcpPhase::RtoLoss
        } else if self.in_recovery {
            TcpPhase::FastRecovery
        } else {
            TcpPhase::Open
        };
        if phase != self.last_phase {
            let from = self.last_phase;
            self.last_phase = phase;
            obsv::emit(|| TraceEvent::TcpState {
                t_ns: now.as_nanos(),
                conn: self.config.conn,
                from,
                to: phase,
            });
        }
    }

    fn update_rtt(&mut self, now: SimTime, sample: SimDuration) {
        let srtt = match self.srtt {
            None => {
                self.rttvar = sample / 2;
                sample
            }
            Some(srtt) => {
                // RFC 6298 with alpha=1/8, beta=1/4.
                let diff = if srtt > sample {
                    srtt - sample
                } else {
                    sample - srtt
                };
                self.rttvar = (self.rttvar * 3 + diff) / 4;
                (srtt * 7 + sample) / 8
            }
        };
        self.srtt = Some(srtt);
        self.rto = Self::clamp_rto(srtt + (self.rttvar * 4).max(SimDuration::from_millis(10)));
        self.backoff = 0;
        self.stats.borrow_mut().srtt = self.srtt;
        obsv::histogram_record("tcp.rtt_us", sample.as_nanos() / 1_000);
        obsv::emit(|| TraceEvent::TcpRtt {
            t_ns: now.as_nanos(),
            conn: self.config.conn,
            sample_ns: sample.as_nanos(),
            srtt_ns: srtt.as_nanos(),
            rttvar_ns: self.rttvar.as_nanos(),
            rto_ns: self.rto.as_nanos(),
        });
    }

    fn on_ack_packet(&mut self, ctx: &mut Ctx, hdr: &TcpHeader) {
        let now = ctx.now;
        self.last_ack_at = now;

        if hdr.flags.syn && hdr.flags.ack && !self.established {
            self.established = true;
            self.started_at = Some(now);
            if let Some(ts) = hdr.ts {
                self.update_rtt(now, now.saturating_since(ts));
            }
            self.sync_phase(now);
            self.pump(ctx);
            return;
        }

        let mut newly_acked: u64 = 0;
        // Rate-sample candidate: the newest segment this ACK accounts for,
        // as (delivered_time_at_send, delivered_at_send, retransmitted).
        let mut rate_candidate: Option<(SimTime, u64, bool)> = None;
        let cumulative_progress = hdr.ack > self.una;

        // Cumulative progress.
        if cumulative_progress {
            // Scratch swap instead of a fresh Vec: the steady-state ACK
            // path must not allocate.
            let mut to_remove = std::mem::take(&mut self.ack_scratch);
            to_remove.clear();
            for (&seq, seg) in self.segs.range(..hdr.ack) {
                // Bytes not already credited via SACK count as new.
                if !seg.sacked {
                    newly_acked += seg.len;
                } else {
                    debug_assert!(self.sacked_bytes >= seg.len, "sacked-bytes underflow");
                    self.sacked_bytes = self.sacked_bytes.saturating_sub(seg.len);
                }
                rate_candidate = Some((
                    seg.delivered_time_at_send,
                    seg.delivered_at_send,
                    seg.retx > 0,
                ));
                to_remove.push(seq);
            }
            for &seq in &to_remove {
                // The scan above produced `seq` from `segs` itself, so the
                // entry must exist; degrade to skipping rather than panic.
                let Some(seg) = self.segs.remove(&seq) else {
                    debug_assert!(false, "acked segment {seq} missing from segs");
                    self.unsacked.remove(&seq);
                    continue;
                };
                if self.unsacked.remove(&seq) {
                    debug_assert!(self.in_flight_bytes >= seg.len, "in-flight underflow");
                    self.in_flight_bytes = self.in_flight_bytes.saturating_sub(seg.len);
                    if seg.retx == 0 && seq < self.highest_sacked_end {
                        self.lost_bytes = self.lost_bytes.saturating_sub(seg.len);
                    }
                }
            }
            self.ack_scratch = to_remove;
            self.una = hdr.ack;
            self.dupacks = 0;
            // Cumulative progress re-earns the tail-loss probe.
            self.tlp_allowed = true;
        }

        // SACK progress: the unsacked mirror makes each block scan touch
        // only segments that actually change state.
        let mut sack_progress = false;
        for &(start, end) in &hdr.sack {
            // Evidence frontier advance: unSACKed, never-retransmitted
            // bytes newly below the frontier become presumed-lost.
            if end > self.highest_sacked_end {
                let old = self.highest_sacked_end.max(self.una);
                for &seq in self.unsacked.range(old..end) {
                    let seg = &self.segs[&seq];
                    if seg.retx == 0 {
                        self.lost_bytes += seg.len;
                    }
                }
                self.highest_sacked_end = end;
            }
            let mut covered = std::mem::take(&mut self.ack_scratch);
            covered.clear();
            covered.extend(self.unsacked.range(start..end).copied());
            for &seq in &covered {
                // `unsacked` mirrors `segs`; a missing entry would mean the
                // mirror desynced — skip it rather than abort the campaign.
                let Some(seg) = self.segs.get_mut(&seq) else {
                    debug_assert!(false, "unsacked entry {seq} missing from segs");
                    self.unsacked.remove(&seq);
                    continue;
                };
                seg.sacked = true;
                self.unsacked.remove(&seq);
                debug_assert!(self.in_flight_bytes >= seg.len, "in-flight underflow");
                self.in_flight_bytes = self.in_flight_bytes.saturating_sub(seg.len);
                self.sacked_bytes += seg.len;
                newly_acked += seg.len;
                sack_progress = true;
                // It sat below the evidence frontier unretransmitted, so
                // it was counted lost; it clearly was not.
                if seg.retx == 0 && seq < self.highest_sacked_end {
                    self.lost_bytes = self.lost_bytes.saturating_sub(seg.len);
                }
                if rate_candidate.is_none() {
                    rate_candidate = Some((
                        seg.delivered_time_at_send,
                        seg.delivered_at_send,
                        seg.retx > 0,
                    ));
                }
            }
            self.ack_scratch = covered;
        }

        self.delivered += newly_acked;
        if newly_acked > 0 {
            self.delivered_time = now;
        }
        self.stats.borrow_mut().bytes_acked = self.una.min(self.delivered);

        // RTT sample from the echoed timestamp.
        let rtt = hdr.ts.map(|ts| now.saturating_since(ts));
        if let Some(r) = rtt {
            {
                let mut stats = self.stats.borrow_mut();
                stats.rtt_samples += 1;
                if r == SimDuration::ZERO {
                    // Links floor every hop at a positive delay, so this
                    // should be impossible; record it for the oracles.
                    stats.zero_rtt_samples += 1;
                }
            }
            if r > SimDuration::ZERO {
                self.update_rtt(now, r);
            }
        }

        // Delivery-rate sample (BBR-style): bytes credited to `delivered`
        // since this segment left, over the interval during which they
        // were credited (anchored at the delivered-counter's last advance
        // before the send, per the BBR draft). Anchoring at the *send
        // time* instead would let an in-order reassembly jump — megabytes
        // credited in one instant — masquerade as multi-gigabit bandwidth
        // and blow up the pacing rate. Retransmitted segments are skipped:
        // their interval is ambiguous.
        let delivery_rate = rate_candidate.and_then(|(anchor, delivered_then, retx)| {
            if retx {
                return None;
            }
            let dt = now.saturating_since(anchor).as_secs_f64();
            if dt <= 1e-6 {
                return None;
            }
            let delta = self.delivered.saturating_sub(delivered_then);
            Some(DataRate::from_bps((delta as f64 * 8.0 / dt) as u64))
        });

        if newly_acked > 0 {
            let sample = AckSample {
                now,
                acked_bytes: newly_acked,
                rtt,
                in_flight: self.in_flight(),
                lost_bytes: self.lost_bytes,
                mss: self.config.mss,
                delivery_rate,
            };
            // Loss-based windows must not inflate while holes are being
            // repaired; model-based (pacing) controllers keep sampling,
            // and RTO recovery is slow-start retransmission (CA_Loss), so
            // it grows too.
            if !self.in_recovery || self.rto_mode || self.cc.pacing_rate().is_some() {
                self.cc.on_ack(&sample);
            }
        } else if hdr.ack == self.una && !hdr.flags.syn && self.in_flight() > 0 {
            if self.tlp_outstanding && !sack_progress {
                // The echo of our tail-loss probe, not loss evidence.
                self.tlp_outstanding = false;
            } else {
                self.dupacks += 1;
            }
        }

        // Fast retransmit: 3 dupacks or SACK evidence of a hole.
        let hole_evidence = self.dupacks >= 3 || (sack_progress && self.has_hole());
        if hole_evidence && !self.in_recovery {
            self.in_recovery = true;
            self.recover = self.next_seq;
            self.rtx_cursor = self.una;
            self.cc.on_loss_event(now);
            self.stats.borrow_mut().loss_events += 1;
            self.retransmit_hole(ctx, false);
        } else if self.in_recovery && self.una >= self.recover {
            self.in_recovery = false;
            self.rto_mode = false;
            self.dupacks = 0;
            self.cc.on_recovery_exit(now);
        }

        self.sync_phase(now);
        self.snapshot_cc_state(now);
        if self.config.trace_cwnd {
            self.stats
                .borrow_mut()
                .cwnd_trace
                .push((now, self.cc.cwnd()));
        }

        // Completion check.
        if let Some(total) = self.config.total_bytes {
            if self.una >= total {
                let mut stats = self.stats.borrow_mut();
                if stats.finished_at.is_none() {
                    stats.finished_at = Some(now);
                }
                return;
            }
        }

        self.pump(ctx);
        // RFC 6298 §5.3: restart the retransmission timer only when the
        // ACK acknowledges new data *cumulatively*. Restarting on every
        // ACK fences the RTO out forever when the one fast retransmit of
        // the hole at `una` is itself dropped: SACKs for new data keep
        // arriving, each re-arm pushes the deadline, and the flow
        // livelocks in recovery — sending above the hole but never
        // repairing it. With the timer left running, the RTO fires and
        // retries the hole, as the recovery design expects.
        if self.in_flight() > 0 && cumulative_progress {
            self.arm_rto(ctx);
        }
    }

    /// Whether an unSACKed gap exists above una with SACKed data beyond
    /// it. Any SACKed bytes imply one: the segment at `una` is by
    /// definition the first byte the receiver is missing.
    fn has_hole(&self) -> bool {
        self.sacked_bytes > 0
    }

    /// Mirrors the congestion-control window state into the live stats
    /// handle, so external correctness oracles can check window-bound
    /// invariants without reaching into the boxed algorithm.
    fn snapshot_cc_state(&mut self, now: SimTime) {
        let cwnd = self.cc.cwnd();
        let mut stats = self.stats.borrow_mut();
        stats.last_cwnd = cwnd;
        stats.min_cwnd_seen = Some(stats.min_cwnd_seen.map_or(cwnd, |m| m.min(cwnd)));
        stats.last_ssthresh = self.cc.ssthresh();
        drop(stats);
        obsv::emit(|| TraceEvent::TcpCwnd {
            t_ns: now.as_nanos(),
            conn: self.config.conn,
            cwnd,
            ssthresh: self.cc.ssthresh().unwrap_or(u64::MAX),
        });
        // Probe-phase transitions for model-based algorithms (BBR, BBRv2).
        let phase = self.cc.probe_phase();
        if phase != self.last_probe_phase {
            if let (Some(from), Some(to)) = (self.last_probe_phase, phase) {
                obsv::emit(|| TraceEvent::CcProbe {
                    t_ns: now.as_nanos(),
                    conn: self.config.conn,
                    from,
                    to,
                });
            }
            self.last_probe_phase = phase;
        }
    }

    fn on_rto_fired(&mut self, ctx: &mut Ctx) {
        if !self.established {
            // SYN lost: try again.
            self.send_syn(ctx);
            return;
        }
        if self.in_flight() == 0 {
            return;
        }
        self.stats.borrow_mut().rto_count += 1;
        obsv::counter_add("tcp.rto_fired", 1);
        obsv::emit(|| TraceEvent::TcpRtoFired {
            t_ns: ctx.now.as_nanos(),
            conn: self.config.conn,
            una: self.una,
            next_seq: self.next_seq,
            in_flight: self.in_flight_bytes,
            lost: self.lost_bytes,
            cwnd: self.cc.cwnd(),
            rto_ns: self.rto.as_nanos(),
            backoff: u64::from(self.backoff),
        });
        self.cc.on_rto(ctx.now);
        self.snapshot_cc_state(ctx.now);
        self.dupacks = 0;
        // CA_Loss: every outstanding byte is presumed lost; clear SACK
        // state (reneging-safe) and retransmit from the front, ACK-clocked
        // by the restarting window. Retransmit counters reset so the loss
        // accounting invariant (counted <=> unsacked, retx == 0, below the
        // evidence frontier) holds for the whole window.
        for (&seq, seg) in self.segs.iter_mut() {
            if seg.sacked {
                seg.sacked = false;
                self.unsacked.insert(seq);
                self.in_flight_bytes += seg.len;
            }
            seg.retx = 0;
        }
        self.sacked_bytes = 0;
        self.lost_bytes = self.in_flight_bytes;
        self.rtx_cursor = self.una;
        // The timeout is evidence of loss for everything outstanding.
        self.highest_sacked_end = self.next_seq;
        self.in_recovery = true;
        self.rto_mode = true;
        self.recover = self.next_seq;
        self.sync_phase(ctx.now);
        self.retransmit_hole(ctx, true);
        self.pump(ctx);
        self.backoff = (self.backoff + 1).min(10);
        // Symmetric with the estimator path: backoff doubling respects
        // both RFC 6298 bounds, not just the 60 s cap.
        self.rto = Self::clamp_rto(self.rto * 2);
        self.arm_rto(ctx);
    }
}

impl Handler for TcpSender {
    fn on_packet(&mut self, ctx: &mut Ctx, packet: &Packet) {
        if let Payload::Tcp(hdr) = &packet.payload {
            if hdr.conn == self.config.conn && hdr.flags.ack {
                self.on_ack_packet(ctx, hdr);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        match token & 0b111 {
            KIND_START => {
                // Arm the path-change schedule exactly once (the start
                // token fires once; SYN retransmissions go through the
                // RTO path and must not duplicate these timers).
                for (i, &t) in self.config.path_changes.iter().enumerate() {
                    ctx.set_timer(t, ((i as u64) << 3) | KIND_PATH);
                }
                self.send_syn(ctx);
            }
            KIND_RTO if token >> 3 == self.rto_gen => {
                self.on_rto_fired(ctx);
            }
            KIND_PACE => {
                self.pace_armed = false;
                self.pump(ctx);
                if self.in_flight() > 0 {
                    self.arm_rto(ctx);
                }
            }
            KIND_TLP if token >> 3 == self.tlp_gen => {
                self.fire_tlp(ctx);
            }
            KIND_PATH => {
                self.cc.on_path_change(ctx.now);
                self.stats.borrow_mut().path_changes += 1;
                obsv::counter_add("tcp.path_changes", 1);
                self.snapshot_cc_state(ctx.now);
            }
            _ => {}
        }
    }
}

/// Receiver-side statistics.
#[derive(Debug, Clone, Default)]
pub struct TcpReceiverStats {
    /// Bytes received in order (the application-visible count).
    pub bytes_in_order: u64,
    /// Data segments received (including duplicates).
    pub segments_received: u64,
    /// Duplicate segments (already fully covered).
    pub duplicates: u64,
    /// Per-bin delivered-byte counts for time series (bin width fixed at
    /// construction).
    pub bins: Vec<u64>,
}

/// The receiving endpoint: cumulative + selective acknowledgement.
pub struct TcpReceiver {
    conn: u64,
    rcv_next: u64,
    /// Received-but-not-yet-contiguous ranges (start -> end).
    ooo: BTreeMap<u64, u64>,
    stats: Rc<RefCell<TcpReceiverStats>>,
    bin_width: SimDuration,
}

impl TcpReceiver {
    /// A receiver for connection `conn`, binning delivered bytes at
    /// `bin_width` for time-series analysis.
    pub fn new(conn: u64, bin_width: SimDuration) -> (Self, Rc<RefCell<TcpReceiverStats>>) {
        let stats = Rc::new(RefCell::new(TcpReceiverStats::default()));
        (
            TcpReceiver {
                conn,
                rcv_next: 0,
                ooo: BTreeMap::new(),
                stats: Rc::clone(&stats),
                bin_width,
            },
            stats,
        )
    }

    fn record_bytes(&self, now: SimTime, len: u64) {
        let mut stats = self.stats.borrow_mut();
        let bin = (now.as_nanos() / self.bin_width.as_nanos().max(1)) as usize;
        if stats.bins.len() <= bin {
            stats.bins.resize(bin + 1, 0);
        }
        stats.bins[bin] += len;
    }

    /// Inserts `[start, end)` into the out-of-order store, merging.
    fn insert_range(&mut self, start: u64, end: u64) {
        let mut s = start;
        let mut e = end;
        // Merge any overlapping/adjacent existing ranges.
        let overlapping: Vec<(u64, u64)> = self
            .ooo
            .range(..=e)
            .filter(|(&rs, &re)| re >= s && rs <= e)
            .map(|(&rs, &re)| (rs, re))
            .collect();
        for (rs, re) in overlapping {
            s = s.min(rs);
            e = e.max(re);
            self.ooo.remove(&rs);
        }
        self.ooo.insert(s, e);
    }

    /// Advances `rcv_next` through any now-contiguous ranges.
    fn advance(&mut self) {
        while let Some((&s, &e)) = self.ooo.iter().next() {
            if s <= self.rcv_next {
                if e > self.rcv_next {
                    self.rcv_next = e;
                }
                self.ooo.remove(&s);
            } else {
                break;
            }
        }
    }

    /// Up to three SACK blocks above `rcv_next`, lowest first — the
    /// ranges adjacent to the holes the sender must repair next. (A
    /// highest-first policy starves the sender of knowledge about
    /// received data just above `una`, and a cursor-based retransmitter
    /// then resends megabytes the receiver already has.)
    fn sack_blocks(&self) -> SackBlocks {
        self.ooo
            .iter()
            .take(SackBlocks::CAPACITY)
            .map(|(&s, &e)| (s, e))
            .collect()
    }
}

impl Handler for TcpReceiver {
    fn on_packet(&mut self, ctx: &mut Ctx, packet: &Packet) {
        let Payload::Tcp(hdr) = &packet.payload else {
            return;
        };
        if hdr.conn != self.conn {
            return;
        }

        if hdr.flags.syn && !hdr.flags.ack {
            let mut reply = TcpHeader::data(self.conn, 0, 0);
            reply.flags = TcpFlags::SYN_ACK;
            reply.ack = 0;
            reply.ts = hdr.ts;
            ctx.send(packet.src, Bytes::new(HDR), Payload::Tcp(reply));
            return;
        }

        if hdr.data_len == 0 {
            return; // stray ACK or keepalive
        }

        {
            let mut stats = self.stats.borrow_mut();
            stats.segments_received += 1;
        }

        let start = hdr.seq;
        let end = hdr.seq + hdr.data_len;
        let before = self.rcv_next;
        if end <= self.rcv_next {
            self.stats.borrow_mut().duplicates += 1;
        } else {
            self.insert_range(start.max(self.rcv_next), end);
            self.advance();
        }
        let delivered_now = self.rcv_next - before;
        if delivered_now > 0 {
            self.stats.borrow_mut().bytes_in_order += delivered_now;
            self.record_bytes(ctx.now, delivered_now);
        }

        // Acknowledge everything we know.
        let mut ack = TcpHeader::data(self.conn, 0, 0);
        ack.flags = TcpFlags::ACK;
        ack.ack = self.rcv_next;
        ack.sack = self.sack_blocks();
        ack.ts = hdr.ts;
        ctx.send(packet.src, Bytes::new(HDR), Payload::Tcp(ack));
    }

    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_netsim::{LinkConfig, Network, NodeKind};
    use starlink_simcore::DataRate;

    /// Two hosts over a configurable bottleneck; returns goodput in Mbps
    /// and the receiver's in-order byte count.
    fn run_transfer(
        algorithm: CcAlgorithm,
        total: u64,
        rate: DataRate,
        delay: SimDuration,
        loss: f64,
        horizon: SimTime,
    ) -> (f64, u64, Rc<RefCell<TcpSenderStats>>) {
        let mut net = Network::new(33);
        let a = net.add_node("sender", NodeKind::Host);
        let b = net.add_node("receiver", NodeKind::Host);
        net.connect_duplex(
            a,
            b,
            LinkConfig::fixed(delay, rate, loss).with_queue(Bytes::from_kb(128)),
            LinkConfig::fixed(delay, DataRate::from_mbps(100), 0.0),
        );
        net.route_linear(&[a, b]);

        let (sender, stats) = TcpSender::new(b, TcpConfig::bulk(1, algorithm, total));
        let (receiver, rstats) = TcpReceiver::new(1, SimDuration::from_secs(1));
        net.attach_handler(a, Box::new(sender));
        net.attach_handler(b, Box::new(receiver));
        net.arm_timer(a, SimTime::ZERO, TcpSender::start_token());
        net.run_until(horizon);

        let s = stats.borrow();
        let finished = s.finished_at.unwrap_or(horizon);
        let mbps = s.bytes_acked as f64 * 8.0 / finished.as_secs_f64().max(1e-9) / 1e6;
        let in_order = rstats.borrow().bytes_in_order;
        drop(s);
        (mbps, in_order, stats)
    }

    #[test]
    fn clean_path_transfers_everything() {
        for algo in CcAlgorithm::ALL {
            let total = 2_000_000;
            let (mbps, in_order, stats) = run_transfer(
                algo,
                total,
                DataRate::from_mbps(50),
                SimDuration::from_millis(10),
                0.0,
                SimTime::from_secs(30),
            );
            assert_eq!(in_order, total, "{algo:?}: incomplete transfer");
            assert!(
                stats.borrow().finished_at.is_some(),
                "{algo:?}: did not finish"
            );
            assert!(mbps > 5.0, "{algo:?}: goodput {mbps} Mbps");
        }
    }

    #[test]
    fn loss_based_ccas_fill_a_clean_pipe() {
        // 20 ms RTT, 50 Mbps bottleneck, no loss: Reno/CUBIC should reach
        // most of the link over a 20 s stream.
        for algo in [CcAlgorithm::Reno, CcAlgorithm::Cubic] {
            let (mbps, _, _) = run_transfer(
                algo,
                80_000_000,
                DataRate::from_mbps(50),
                SimDuration::from_millis(10),
                0.0,
                SimTime::from_secs(20),
            );
            assert!(mbps > 28.0, "{algo:?}: only {mbps} Mbps on a clean pipe");
        }
    }

    #[test]
    fn random_loss_hurts_reno_more_than_bbr() {
        let run = |algo| {
            run_transfer(
                algo,
                u64::MAX / 2,
                DataRate::from_mbps(50),
                SimDuration::from_millis(20),
                0.02,
                SimTime::from_secs(15),
            )
            .0
        };
        let bbr = run(CcAlgorithm::Bbr);
        let reno = run(CcAlgorithm::Reno);
        assert!(
            bbr > reno * 1.5,
            "BBR {bbr} Mbps should clearly beat Reno {reno} Mbps at 2% loss"
        );
    }

    #[test]
    fn transfer_completes_despite_heavy_loss() {
        let total = 300_000;
        let (_, in_order, stats) = run_transfer(
            CcAlgorithm::Cubic,
            total,
            DataRate::from_mbps(20),
            SimDuration::from_millis(15),
            0.10,
            SimTime::from_secs(120),
        );
        assert_eq!(in_order, total, "reliability must survive 10% loss");
        let s = stats.borrow();
        assert!(s.retransmissions > 0, "10% loss must cause retransmissions");
        assert!(s.finished_at.is_some());
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let (mut rx, stats) = TcpReceiver::new(5, SimDuration::from_secs(1));
        // Simulate segment arrivals directly through the range store.
        rx.insert_range(1_460, 2_920); // second segment first
        rx.advance();
        assert_eq!(rx.rcv_next, 0);
        assert_eq!(rx.sack_blocks().as_slice(), &[(1_460, 2_920)]);
        rx.insert_range(0, 1_460);
        rx.advance();
        assert_eq!(rx.rcv_next, 2_920);
        assert!(rx.sack_blocks().is_empty());
        assert_eq!(stats.borrow().bytes_in_order, 0); // only set via on_packet
    }

    #[test]
    fn range_merging_handles_overlap() {
        let (mut rx, _) = TcpReceiver::new(5, SimDuration::from_secs(1));
        rx.insert_range(100, 200);
        rx.insert_range(150, 300);
        rx.insert_range(400, 500);
        assert_eq!(rx.sack_blocks().as_slice(), &[(100, 300), (400, 500)]);
        rx.insert_range(300, 400); // bridges the gap
        assert_eq!(rx.sack_blocks().as_slice(), &[(100, 500)]);
    }

    #[test]
    fn rto_recovers_a_fully_stalled_window() {
        // A brutal 60% loss link: fast retransmit alone cannot always
        // recover; RTOs must. The transfer must still complete.
        let total = 50_000;
        let (_, in_order, stats) = run_transfer(
            CcAlgorithm::Reno,
            total,
            DataRate::from_mbps(10),
            SimDuration::from_millis(10),
            0.6,
            SimTime::from_secs(600),
        );
        assert_eq!(in_order, total);
        assert!(stats.borrow().rto_count > 0, "60% loss must trigger RTOs");
    }

    #[test]
    fn rto_never_collapses_below_the_floor() {
        // RFC 6298 §2.4: sub-millisecond RTT samples must not drag the
        // RTO under MIN_RTO — without the floor, a LEO bent-pipe path
        // with a ~600 us RTT would compute an RTO in the microseconds
        // and every queueing wiggle would fire a spurious retransmit
        // storm.
        let (mut sender, _) = TcpSender::new(NodeId(1), TcpConfig::bulk(1, CcAlgorithm::Reno, 1));
        let t = SimTime::from_millis(1);
        for i in 0..64 {
            sender.update_rtt(t, SimDuration::from_micros(300 + i % 7));
            assert!(
                sender.rto >= MIN_RTO,
                "RTO {} ns fell below the floor after sample {i}",
                sender.rto.as_nanos()
            );
        }
        assert_eq!(sender.rto, MIN_RTO, "tiny samples should pin the floor");

        // The backoff path honours the same bounds: even from a
        // (hypothetically corrupted) sub-floor value, one doubling pass
        // re-enters [MIN_RTO, MAX_RTO]; and doubling from the cap stays
        // at the cap.
        assert_eq!(TcpSender::clamp_rto(SimDuration::from_micros(50)), MIN_RTO);
        assert_eq!(TcpSender::clamp_rto(MAX_RTO * 2), MAX_RTO);
        sender.rto = MAX_RTO;
        sender.rto = TcpSender::clamp_rto(sender.rto * 2);
        assert_eq!(sender.rto, MAX_RTO);

        // Interleave backoff doubling with fresh tiny samples: the RTO
        // must stay inside the bounds throughout.
        for round in 0..12 {
            sender.rto = TcpSender::clamp_rto(sender.rto * 2);
            assert!(
                sender.rto >= MIN_RTO && sender.rto <= MAX_RTO,
                "round {round}"
            );
            sender.update_rtt(t, SimDuration::from_micros(150));
            assert!(sender.rto >= MIN_RTO, "round {round} after sample");
        }
    }

    #[test]
    fn rto_storm_trace_is_identical_across_threads() {
        // Regression for the old STARLINK_TCP_DEBUG eprintln!: RTO
        // diagnostics went straight to process stderr, so parallel
        // workers interleaved them nondeterministically. Routed through
        // the thread-local TraceSink, four concurrent storm-heavy runs
        // must each observe byte-identical traces.
        fn storm_trace() -> String {
            obsv::install_trace(Box::new(obsv::RingSink::new(1 << 15)));
            let (_, in_order, stats) = run_transfer(
                CcAlgorithm::Reno,
                50_000,
                DataRate::from_mbps(10),
                SimDuration::from_millis(10),
                0.6,
                SimTime::from_secs(600),
            );
            let mut sink = obsv::take_trace().expect("sink installed");
            assert_eq!(in_order, 50_000);
            assert!(stats.borrow().rto_count > 0, "storm must trigger RTOs");
            sink.drain_jsonl().expect("ring sink buffers")
        }

        let reference = storm_trace();
        assert!(
            reference.contains("\"ev\":\"tcp_rto\""),
            "trace must contain the re-plumbed RTO diagnostics"
        );
        let workers: Vec<_> = (0..4).map(|_| std::thread::spawn(storm_trace)).collect();
        for worker in workers {
            assert_eq!(
                worker.join().expect("worker panicked"),
                reference,
                "trace diverged across threads"
            );
        }
    }

    #[test]
    fn path_change_schedule_reaches_the_controller() {
        let mut net = Network::new(33);
        let a = net.add_node("sender", NodeKind::Host);
        let b = net.add_node("receiver", NodeKind::Host);
        net.connect_duplex(
            a,
            b,
            LinkConfig::fixed(SimDuration::from_millis(10), DataRate::from_mbps(50), 0.0)
                .with_queue(Bytes::from_kb(128)),
            LinkConfig::fixed(SimDuration::from_millis(10), DataRate::from_mbps(100), 0.0),
        );
        net.route_linear(&[a, b]);
        let config = TcpConfig::bulk(1, CcAlgorithm::Vegas, 5_000_000).with_path_changes(vec![
            SimTime::from_millis(500),
            SimTime::from_millis(1_500),
            SimTime::from_millis(2_500),
        ]);
        let (sender, stats) = TcpSender::new(b, config);
        let (receiver, _) = TcpReceiver::new(1, SimDuration::from_secs(1));
        net.attach_handler(a, Box::new(sender));
        net.attach_handler(b, Box::new(receiver));
        net.arm_timer(a, SimTime::ZERO, TcpSender::start_token());
        net.run_until(SimTime::from_secs(30));
        assert_eq!(stats.borrow().path_changes, 3, "all hints must fire once");
        assert!(stats.borrow().finished_at.is_some());
    }

    #[test]
    fn bbr_transfer_traces_probe_phase_transitions() {
        obsv::install_trace(Box::new(obsv::RingSink::new(1 << 14)));
        let (_, in_order, _) = run_transfer(
            CcAlgorithm::Bbr,
            20_000_000,
            DataRate::from_mbps(50),
            SimDuration::from_millis(10),
            0.0,
            SimTime::from_secs(30),
        );
        let mut sink = obsv::take_trace().expect("sink installed");
        let jsonl = sink.drain_jsonl().expect("ring sink buffers");
        assert_eq!(in_order, 20_000_000);
        assert!(
            jsonl.contains("\"ev\":\"cc_phase\""),
            "BBR must report probe-phase transitions"
        );
        // The ring keeps only the newest events, so assert on the
        // recurring ProbeBW-cycle transitions rather than the one-off
        // startup exit.
        assert!(
            jsonl.contains("\"from\":\"probe_up\",\"to\":\"probe_down\""),
            "ProbeBW cycle transitions must surface"
        );
    }

    #[test]
    fn srtt_is_measured() {
        let (_, _, stats) = run_transfer(
            CcAlgorithm::Cubic,
            1_000_000,
            DataRate::from_mbps(50),
            SimDuration::from_millis(25),
            0.0,
            SimTime::from_secs(10),
        );
        let srtt = stats.borrow().srtt.expect("srtt measured");
        // Propagation RTT is 50 ms; srtt should be near it (plus queueing).
        let ms = srtt.as_millis_f64();
        assert!((45.0..120.0).contains(&ms), "srtt {ms} ms");
    }

    #[test]
    fn goodput_accounts_duration() {
        let stats = TcpSenderStats {
            bytes_acked: 1_250_000, // 10 Mbit
            finished_at: Some(SimTime::from_secs(1)),
            ..TcpSenderStats::default()
        };
        let rate = stats.goodput(SimTime::ZERO, SimTime::from_secs(5));
        assert_eq!(rate, DataRate::from_mbps(10));
    }
}
