//! Property tests for the transport layer: reliability (every byte
//! arrives exactly once, in order) must hold for every congestion
//! controller under arbitrary loss, delay and rate combinations.

use proptest::prelude::*;
use starlink_netsim::{LinkConfig, Network, NodeKind};
use starlink_simcore::{Bytes, DataRate, SimDuration, SimTime};
use starlink_transport::tcp::{TcpConfig, TcpReceiver, TcpSender};
use starlink_transport::CcAlgorithm;

fn algo_strategy() -> impl Strategy<Value = CcAlgorithm> {
    prop_oneof![
        Just(CcAlgorithm::Bbr),
        Just(CcAlgorithm::Cubic),
        Just(CcAlgorithm::Reno),
        Just(CcAlgorithm::Veno),
        Just(CcAlgorithm::Vegas),
    ]
}

proptest! {
    // Each case simulates a full transfer; keep the population small.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reliability: the receiver's in-order byte count equals the
    /// configured transfer size, for every CCA, across loss rates up to
    /// 30% and a spread of delays/rates.
    #[test]
    fn every_byte_arrives_exactly_once(
        algo in algo_strategy(),
        seed in any::<u64>(),
        loss in 0.0f64..0.3,
        delay_ms in 1u64..60,
        rate_mbps in 2u64..60,
        kb in 20u64..300,
    ) {
        let total = kb * 1_000;
        let mut net = Network::new(seed);
        let a = net.add_node("tx", NodeKind::Host);
        let b = net.add_node("rx", NodeKind::Host);
        net.connect_duplex(
            a,
            b,
            LinkConfig::fixed(
                SimDuration::from_millis(delay_ms),
                DataRate::from_mbps(rate_mbps),
                loss,
            ).with_queue(Bytes::from_kb(96)),
            LinkConfig::fixed(
                SimDuration::from_millis(delay_ms),
                DataRate::from_mbps(100),
                loss / 4.0, // ack path cleaner but not clean
            ),
        );
        net.route_linear(&[a, b]);
        let (tx, stats) = TcpSender::new(b, TcpConfig::bulk(1, algo, total));
        let (rx, rstats) = TcpReceiver::new(1, SimDuration::from_secs(1));
        net.attach_handler(a, Box::new(tx));
        net.attach_handler(b, Box::new(rx));
        net.arm_timer(a, SimTime::ZERO, TcpSender::start_token());
        // Generous horizon: RTO backoff under heavy loss is slow.
        net.run_until(SimTime::from_secs(900));

        let r = rstats.borrow();
        prop_assert_eq!(
            r.bytes_in_order, total,
            "{:?}: {} of {} bytes arrived (loss {:.2})",
            algo, r.bytes_in_order, total, loss
        );
        let s = stats.borrow();
        prop_assert!(s.finished_at.is_some(), "{:?}: sender never finished", algo);
        prop_assert!(s.bytes_acked >= total);
    }

    /// The binned receiver counts always sum to the in-order total.
    #[test]
    fn receiver_bins_sum_to_total(
        seed in any::<u64>(),
        loss in 0.0f64..0.15,
        kb in 20u64..200,
    ) {
        let total = kb * 1_000;
        let mut net = Network::new(seed);
        let a = net.add_node("tx", NodeKind::Host);
        let b = net.add_node("rx", NodeKind::Host);
        net.connect_duplex(
            a,
            b,
            LinkConfig::fixed(SimDuration::from_millis(10), DataRate::from_mbps(20), loss),
            LinkConfig::fixed(SimDuration::from_millis(10), DataRate::from_mbps(20), 0.0),
        );
        net.route_linear(&[a, b]);
        let (tx, _) = TcpSender::new(b, TcpConfig::bulk(2, CcAlgorithm::Cubic, total));
        let (rx, rstats) = TcpReceiver::new(2, SimDuration::from_secs(1));
        net.attach_handler(a, Box::new(tx));
        net.attach_handler(b, Box::new(rx));
        net.arm_timer(a, SimTime::ZERO, TcpSender::start_token());
        net.run_until(SimTime::from_secs(600));
        let r = rstats.borrow();
        prop_assert_eq!(r.bins.iter().sum::<u64>(), r.bytes_in_order);
    }
}
