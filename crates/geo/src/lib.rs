//! # starlink-geo
//!
//! WGS-84 geodesy for the *starlink-browser-view* reproduction.
//!
//! The constellation model needs three geometric primitives, all provided
//! here:
//!
//! * coordinate conversion between geodetic (latitude/longitude/altitude)
//!   and Earth-centred Earth-fixed (ECEF) Cartesian frames
//!   ([`Geodetic`], [`Ecef`]);
//! * look angles — the elevation and azimuth of a satellite as seen from a
//!   ground station ([`LookAngles`], [`look::look_angles`]) — which decide
//!   visibility against Starlink's 25° minimum-elevation rule;
//! * surface and slant-range distances ([`coords::haversine_distance`],
//!   [`Ecef::distance`]) which, combined with
//!   [`starlink_simcore::Meters::radio_delay`], give propagation delays.
//!
//! The [`cities`] module carries the coordinates of every location the
//! paper's deployment touches (extension cities, volunteer nodes, cloud
//! regions).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cities;
pub mod coords;
pub mod look;

pub use cities::{City, CityInfo};
pub use coords::{haversine_distance, Ecef, Geodetic};
pub use look::{look_angles, LookAngles};
