//! The locations that appear in the paper's deployment.
//!
//! Three groups, mirroring §3 of the paper:
//!
//! * **Extension cities** — where browser-extension users live. The paper
//!   names London, Seattle, Sydney (Table 1) plus Toronto and Warsaw
//!   (Table 3); the remaining five of the "10 cities in the UK, EU, USA and
//!   Australia" are unnamed, so we pick representative ones in the same
//!   regions (Berlin, Amsterdam, Austin, Denver, Brisbane).
//! * **Volunteer measurement nodes** — North Carolina (US), Wiltshire (UK)
//!   and Barcelona (ES), each hosting a simulated Raspberry Pi.
//! * **Cloud regions** — the Google Cloud locations used as test servers:
//!   Iowa (the browser speedtest target), N. Virginia (the transatlantic
//!   traceroute target of Fig. 5), London, South Carolina and Madrid (the
//!   "closest DC" iperf servers for the three nodes).

use crate::coords::Geodetic;
use std::fmt;

/// What role a location plays in the measurement campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocationKind {
    /// Home of browser-extension users.
    ExtensionCity,
    /// Hosts a volunteer Raspberry-Pi measurement node.
    VolunteerNode,
    /// A cloud data-centre hosting a test server.
    CloudRegion,
}

/// Continental region, used for ad-targeting and regional load modelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// United Kingdom.
    Uk,
    /// Continental Europe.
    Eu,
    /// United States / Canada.
    NorthAmerica,
    /// Australia.
    Australia,
}

/// Every named location in the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant names are self-describing city names
pub enum City {
    // Extension cities (Table 1 / Table 3 + regional fill-ins).
    London,
    Seattle,
    Sydney,
    Toronto,
    Warsaw,
    Berlin,
    Amsterdam,
    Austin,
    Denver,
    Brisbane,
    // Volunteer measurement nodes (§3.2).
    NorthCarolina,
    Wiltshire,
    Barcelona,
    // Cloud regions.
    IowaDc,
    NVirginiaDc,
    LondonDc,
    SouthCarolinaDc,
    MadridDc,
}

/// Static facts about a [`City`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CityInfo {
    /// Human-readable name.
    pub name: &'static str,
    /// ISO-ish country label.
    pub country: &'static str,
    /// Continental region.
    pub region: Region,
    /// Role in the campaign.
    pub kind: LocationKind,
    /// Coordinates (surface).
    pub position: Geodetic,
}

impl City {
    /// All locations.
    pub const ALL: [City; 18] = [
        City::London,
        City::Seattle,
        City::Sydney,
        City::Toronto,
        City::Warsaw,
        City::Berlin,
        City::Amsterdam,
        City::Austin,
        City::Denver,
        City::Brisbane,
        City::NorthCarolina,
        City::Wiltshire,
        City::Barcelona,
        City::IowaDc,
        City::NVirginiaDc,
        City::LondonDc,
        City::SouthCarolinaDc,
        City::MadridDc,
    ];

    /// A stable one-byte wire code for this location (its index in
    /// [`City::ALL`]), used by the telemetry wire format. New locations
    /// must be appended to `ALL`, never reordered, to keep old encoded
    /// datasets decodable.
    pub fn code(self) -> u8 {
        City::ALL
            .iter()
            .position(|&c| c == self)
            .map(|i| i as u8)
            .unwrap_or(0)
    }

    /// Decodes a [`City::code`] value; `None` for unknown codes (e.g. a
    /// corrupted byte or a record from a newer catalogue).
    pub fn from_code(code: u8) -> Option<City> {
        City::ALL.get(code as usize).copied()
    }

    /// The ten browser-extension cities.
    pub fn extension_cities() -> impl Iterator<Item = City> {
        City::ALL
            .into_iter()
            .filter(|c| c.info().kind == LocationKind::ExtensionCity)
    }

    /// The three volunteer measurement-node locations.
    pub fn volunteer_nodes() -> impl Iterator<Item = City> {
        City::ALL
            .into_iter()
            .filter(|c| c.info().kind == LocationKind::VolunteerNode)
    }

    /// The cloud regions hosting test servers.
    pub fn cloud_regions() -> impl Iterator<Item = City> {
        City::ALL
            .into_iter()
            .filter(|c| c.info().kind == LocationKind::CloudRegion)
    }

    /// The Google Cloud region hosting the iperf server closest to a
    /// volunteer node, per the paper's "closest available Google Data
    /// Centre" rule.
    pub fn closest_cloud(self) -> City {
        match self {
            City::NorthCarolina => City::SouthCarolinaDc,
            City::Wiltshire | City::London => City::LondonDc,
            City::Barcelona => City::MadridDc,
            // For extension cities the speedtest target is always Iowa.
            _ => City::IowaDc,
        }
    }

    /// Static facts.
    pub const fn info(self) -> CityInfo {
        use LocationKind::*;
        use Region::*;
        match self {
            City::London => CityInfo {
                name: "London",
                country: "UK",
                region: Uk,
                kind: ExtensionCity,
                position: Geodetic::on_surface(51.5074, -0.1278),
            },
            City::Seattle => CityInfo {
                name: "Seattle",
                country: "USA",
                region: NorthAmerica,
                kind: ExtensionCity,
                position: Geodetic::on_surface(47.6062, -122.3321),
            },
            City::Sydney => CityInfo {
                name: "Sydney",
                country: "Australia",
                region: Australia,
                kind: ExtensionCity,
                position: Geodetic::on_surface(-33.8688, 151.2093),
            },
            City::Toronto => CityInfo {
                name: "Toronto",
                country: "Canada",
                region: NorthAmerica,
                kind: ExtensionCity,
                position: Geodetic::on_surface(43.6532, -79.3832),
            },
            City::Warsaw => CityInfo {
                name: "Warsaw",
                country: "Poland",
                region: Eu,
                kind: ExtensionCity,
                position: Geodetic::on_surface(52.2297, 21.0122),
            },
            City::Berlin => CityInfo {
                name: "Berlin",
                country: "Germany",
                region: Eu,
                kind: ExtensionCity,
                position: Geodetic::on_surface(52.52, 13.405),
            },
            City::Amsterdam => CityInfo {
                name: "Amsterdam",
                country: "Netherlands",
                region: Eu,
                kind: ExtensionCity,
                position: Geodetic::on_surface(52.3676, 4.9041),
            },
            City::Austin => CityInfo {
                name: "Austin",
                country: "USA",
                region: NorthAmerica,
                kind: ExtensionCity,
                position: Geodetic::on_surface(30.2672, -97.7431),
            },
            City::Denver => CityInfo {
                name: "Denver",
                country: "USA",
                region: NorthAmerica,
                kind: ExtensionCity,
                position: Geodetic::on_surface(39.7392, -104.9903),
            },
            City::Brisbane => CityInfo {
                name: "Brisbane",
                country: "Australia",
                region: Australia,
                kind: ExtensionCity,
                position: Geodetic::on_surface(-27.4698, 153.0251),
            },
            City::NorthCarolina => CityInfo {
                name: "North Carolina",
                country: "USA",
                region: NorthAmerica,
                kind: VolunteerNode,
                position: Geodetic::on_surface(35.7796, -78.6382), // Raleigh
            },
            City::Wiltshire => CityInfo {
                name: "Wiltshire",
                country: "UK",
                region: Uk,
                kind: VolunteerNode,
                position: Geodetic::on_surface(51.3492, -1.9927), // Marlborough area
            },
            City::Barcelona => CityInfo {
                name: "Barcelona",
                country: "Spain",
                region: Eu,
                kind: VolunteerNode,
                position: Geodetic::on_surface(41.3874, 2.1686),
            },
            City::IowaDc => CityInfo {
                name: "Iowa (us-central1)",
                country: "USA",
                region: NorthAmerica,
                kind: CloudRegion,
                position: Geodetic::on_surface(41.2619, -95.8608), // Council Bluffs
            },
            City::NVirginiaDc => CityInfo {
                name: "N. Virginia (us-east4)",
                country: "USA",
                region: NorthAmerica,
                kind: CloudRegion,
                position: Geodetic::on_surface(39.0438, -77.4874), // Ashburn
            },
            City::LondonDc => CityInfo {
                name: "London (europe-west2)",
                country: "UK",
                region: Uk,
                kind: CloudRegion,
                position: Geodetic::on_surface(51.5226, -0.0847),
            },
            City::SouthCarolinaDc => CityInfo {
                name: "South Carolina (us-east1)",
                country: "USA",
                region: NorthAmerica,
                kind: CloudRegion,
                position: Geodetic::on_surface(33.1960, -80.0131), // Moncks Corner
            },
            City::MadridDc => CityInfo {
                name: "Madrid (europe-southwest1)",
                country: "Spain",
                region: Eu,
                kind: CloudRegion,
                position: Geodetic::on_surface(40.4168, -3.7038),
            },
        }
    }

    /// The surface position.
    pub const fn position(self) -> Geodetic {
        self.info().position
    }

    /// The human-readable name.
    pub const fn name(self) -> &'static str {
        self.info().name
    }
}

impl fmt::Display for City {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn wire_codes_round_trip() {
        for city in super::City::ALL {
            assert_eq!(super::City::from_code(city.code()), Some(city));
        }
        assert_eq!(super::City::from_code(200), None);
    }

    use super::*;
    use crate::coords::haversine_distance;

    #[test]
    fn ten_extension_cities_three_nodes() {
        assert_eq!(City::extension_cities().count(), 10);
        assert_eq!(City::volunteer_nodes().count(), 3);
        assert_eq!(City::cloud_regions().count(), 5);
        assert_eq!(City::ALL.len(), 18);
    }

    #[test]
    fn closest_cloud_assignments_match_paper() {
        assert_eq!(City::NorthCarolina.closest_cloud(), City::SouthCarolinaDc);
        assert_eq!(City::Wiltshire.closest_cloud(), City::LondonDc);
        assert_eq!(City::Barcelona.closest_cloud(), City::MadridDc);
        // Browser speedtests always hit Iowa.
        assert_eq!(City::Seattle.closest_cloud(), City::IowaDc);
        assert_eq!(City::Sydney.closest_cloud(), City::IowaDc);
    }

    #[test]
    fn closest_cloud_is_actually_closest_for_nodes() {
        for node in City::volunteer_nodes() {
            let assigned = node.closest_cloud();
            let d_assigned = haversine_distance(node.position(), assigned.position()).as_f64();
            for dc in City::cloud_regions() {
                // Iowa is the speedtest anchor, not an iperf candidate.
                if dc == City::IowaDc {
                    continue;
                }
                let d = haversine_distance(node.position(), dc.position()).as_f64();
                assert!(
                    d_assigned <= d + 1.0,
                    "{node}: assigned {assigned} at {d_assigned} m, but {dc} at {d} m"
                );
            }
        }
    }

    #[test]
    fn transatlantic_distance_sanity() {
        // London -> N. Virginia is ~5900 km; the Fig. 5 traceroute rides it.
        let d = haversine_distance(City::London.position(), City::NVirginiaDc.position()).as_km();
        assert!((5700.0..6100.0).contains(&d), "{d}");
    }

    #[test]
    fn regions_cover_the_ad_campaign() {
        use std::collections::HashSet;
        let regions: HashSet<_> = City::extension_cities().map(|c| c.info().region).collect();
        assert!(regions.contains(&Region::Uk));
        assert!(regions.contains(&Region::Eu));
        assert!(regions.contains(&Region::NorthAmerica));
        assert!(regions.contains(&Region::Australia));
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(City::London.to_string(), "London");
        assert_eq!(City::NVirginiaDc.to_string(), "N. Virginia (us-east4)");
    }
}
