//! Look angles: where a satellite sits in a ground observer's sky.
//!
//! The observer's East-North-Up (ENU) frame is built from its geodetic
//! position; the satellite's ECEF position is projected into that frame and
//! converted to elevation/azimuth/slant-range. Starlink shell-1 terminals
//! track satellites above a 25° minimum elevation (per the SpaceX FCC
//! filings the paper cites), which at 550 km altitude corresponds to a
//! maximum feasible slant range of about 1089 km — the figure the paper
//! uses to mark satellites dropping out of line of sight in Fig. 7.

use crate::coords::{Ecef, Geodetic};
use starlink_simcore::Meters;

/// Elevation/azimuth/range of a target as seen from an observer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LookAngles {
    /// Elevation above the local horizon, degrees; negative means below it.
    pub elevation_deg: f64,
    /// Azimuth clockwise from true north, degrees `[0, 360)`.
    pub azimuth_deg: f64,
    /// Straight-line slant range.
    pub range: Meters,
}

impl LookAngles {
    /// Whether the target is at or above `min_elevation_deg`.
    pub fn visible_above(&self, min_elevation_deg: f64) -> bool {
        self.elevation_deg >= min_elevation_deg
    }
}

/// Computes the look angles from `observer` (geodetic) to `target` (ECEF).
pub fn look_angles(observer: Geodetic, target: Ecef) -> LookAngles {
    let obs_ecef = observer.to_ecef();
    let dx = target.x - obs_ecef.x;
    let dy = target.y - obs_ecef.y;
    let dz = target.z - obs_ecef.z;

    let lat = observer.lat_deg.to_radians();
    let lon = observer.lon_deg.to_radians();
    let (sin_lat, cos_lat) = lat.sin_cos();
    let (sin_lon, cos_lon) = lon.sin_cos();

    // ECEF delta -> ENU (east, north, up).
    let east = -sin_lon * dx + cos_lon * dy;
    let north = -sin_lat * cos_lon * dx - sin_lat * sin_lon * dy + cos_lat * dz;
    let up = cos_lat * cos_lon * dx + cos_lat * sin_lon * dy + sin_lat * dz;

    let range = (east * east + north * north + up * up).sqrt();
    let elevation = (up / range).asin().to_degrees();
    let mut azimuth = east.atan2(north).to_degrees();
    if azimuth < 0.0 {
        azimuth += 360.0;
    }

    LookAngles {
        elevation_deg: elevation,
        azimuth_deg: azimuth,
        range: Meters::new(range),
    }
}

/// Maximum slant range at which a satellite at `altitude` is still at or
/// above `min_elevation_deg`, from the closed-form solution of the
/// geocentric triangle (observer — geocentre — satellite):
///
/// `d = sqrt(Re² sin²E + 2 Re h + h²) − Re sin E`
///
/// For Starlink shell-1 (550 km, 25°) this returns ≈ 1123 km; the paper
/// quotes 1089 km from the SpaceX FCC filing, which uses slightly
/// different constants — the ~3 % difference has no effect on the
/// visibility dynamics the reproduction depends on (satellite rise/set
/// times shift by under two seconds).
pub fn max_slant_range(altitude: Meters, min_elevation_deg: f64) -> Meters {
    let re = crate::coords::EARTH_MEAN_RADIUS;
    let h = altitude.as_f64();
    let sin_el = min_elevation_deg.to_radians().sin();
    let d = (re * re * sin_el * sin_el + 2.0 * re * h + h * h).sqrt() - re * sin_el;
    Meters::new(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::Geodetic;

    #[test]
    fn overhead_satellite_is_at_zenith() {
        let obs = Geodetic::on_surface(51.5, -0.12);
        let sat = Geodetic::new(51.5, -0.12, 550_000.0).to_ecef();
        let la = look_angles(obs, sat);
        assert!(la.elevation_deg > 89.9, "{}", la.elevation_deg);
        assert!((la.range.as_km() - 550.0).abs() < 0.5);
        assert!(la.visible_above(25.0));
    }

    #[test]
    fn antipodal_point_is_below_horizon() {
        let obs = Geodetic::on_surface(0.0, 0.0);
        let sat = Geodetic::new(0.0, 180.0, 550_000.0).to_ecef();
        let la = look_angles(obs, sat);
        assert!(la.elevation_deg < -80.0, "{}", la.elevation_deg);
        assert!(!la.visible_above(25.0));
    }

    #[test]
    fn due_north_target_has_zero_azimuth() {
        let obs = Geodetic::on_surface(0.0, 0.0);
        // Slightly north of the observer, high up so elevation is positive.
        let sat = Geodetic::new(5.0, 0.0, 550_000.0).to_ecef();
        let la = look_angles(obs, sat);
        assert!(
            la.azimuth_deg < 1.0 || la.azimuth_deg > 359.0,
            "{}",
            la.azimuth_deg
        );
    }

    #[test]
    fn due_east_target_has_ninety_azimuth() {
        let obs = Geodetic::on_surface(0.0, 0.0);
        let sat = Geodetic::new(0.0, 5.0, 550_000.0).to_ecef();
        let la = look_angles(obs, sat);
        assert!((la.azimuth_deg - 90.0).abs() < 1.0, "{}", la.azimuth_deg);
    }

    #[test]
    fn max_slant_range_matches_paper_figure() {
        // 550 km shell, 25° minimum elevation => ~1123 km exact;
        // the paper's FCC-derived figure is 1089 km (within ~3 %).
        let r = max_slant_range(Meters::from_km(550.0), 25.0).as_km();
        assert!((1100.0..1140.0).contains(&r), "{r} km");
        assert!(
            (r - 1089.0).abs() / 1089.0 < 0.05,
            "within 5% of paper: {r}"
        );
    }

    #[test]
    fn max_slant_range_at_zenith_is_altitude() {
        let r = max_slant_range(Meters::from_km(550.0), 90.0).as_km();
        assert!((r - 550.0).abs() < 1.0, "{r}");
    }

    #[test]
    fn elevation_decreases_with_ground_distance() {
        let obs = Geodetic::on_surface(50.0, 0.0);
        let close = look_angles(obs, Geodetic::new(51.0, 0.0, 550_000.0).to_ecef());
        let far = look_angles(obs, Geodetic::new(55.0, 0.0, 550_000.0).to_ecef());
        assert!(close.elevation_deg > far.elevation_deg);
        assert!(close.range < far.range);
    }
}
