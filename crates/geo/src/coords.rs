//! Geodetic and ECEF coordinates on the WGS-84 ellipsoid.

use starlink_simcore::Meters;
use std::fmt;

/// WGS-84 semi-major axis (equatorial radius), metres.
pub const WGS84_A: f64 = 6_378_137.0;
/// WGS-84 flattening.
pub const WGS84_F: f64 = 1.0 / 298.257_223_563;
/// WGS-84 first eccentricity squared, `e² = f(2 − f)`.
pub const WGS84_E2: f64 = WGS84_F * (2.0 - WGS84_F);
/// Mean Earth radius (IUGG), metres — used for spherical great-circle math.
pub const EARTH_MEAN_RADIUS: f64 = 6_371_008.8;

/// A geodetic position: latitude, longitude (degrees) and altitude above
/// the WGS-84 ellipsoid (metres).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Geodetic {
    /// Latitude in degrees, positive north, `[-90, 90]`.
    pub lat_deg: f64,
    /// Longitude in degrees, positive east, `(-180, 180]`.
    pub lon_deg: f64,
    /// Altitude above the ellipsoid in metres.
    pub alt_m: f64,
}

impl Geodetic {
    /// A surface point (altitude 0).
    pub const fn on_surface(lat_deg: f64, lon_deg: f64) -> Self {
        Geodetic {
            lat_deg,
            lon_deg,
            alt_m: 0.0,
        }
    }

    /// A point at the given altitude.
    pub const fn new(lat_deg: f64, lon_deg: f64, alt_m: f64) -> Self {
        Geodetic {
            lat_deg,
            lon_deg,
            alt_m,
        }
    }

    /// Converts to the Earth-centred Earth-fixed Cartesian frame.
    pub fn to_ecef(self) -> Ecef {
        let lat = self.lat_deg.to_radians();
        let lon = self.lon_deg.to_radians();
        let sin_lat = lat.sin();
        let cos_lat = lat.cos();
        // Prime-vertical radius of curvature.
        let n = WGS84_A / (1.0 - WGS84_E2 * sin_lat * sin_lat).sqrt();
        Ecef {
            x: (n + self.alt_m) * cos_lat * lon.cos(),
            y: (n + self.alt_m) * cos_lat * lon.sin(),
            z: (n * (1.0 - WGS84_E2) + self.alt_m) * sin_lat,
        }
    }
}

impl fmt::Display for Geodetic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.4}°, {:.4}°, {:.0} m)",
            self.lat_deg, self.lon_deg, self.alt_m
        )
    }
}

/// An Earth-centred Earth-fixed Cartesian position, metres.
///
/// X points at (0°N, 0°E), Z at the north pole.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Ecef {
    /// Metres along the axis through (0°N, 0°E).
    pub x: f64,
    /// Metres along the axis through (0°N, 90°E).
    pub y: f64,
    /// Metres along the polar axis (north positive).
    pub z: f64,
}

impl Ecef {
    /// A position from raw coordinates.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Ecef { x, y, z }
    }

    /// Straight-line (slant-range) distance to another point.
    pub fn distance(self, other: Ecef) -> Meters {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        Meters::new((dx * dx + dy * dy + dz * dz).sqrt())
    }

    /// Magnitude (distance from the geocentre).
    pub fn magnitude(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Converts back to geodetic coordinates using Bowring's single-pass
    /// approximation followed by two Newton refinements — accurate to well
    /// under a millimetre for any point from the surface to LEO altitudes.
    pub fn to_geodetic(self) -> Geodetic {
        let p = (self.x * self.x + self.y * self.y).sqrt();
        let lon = self.y.atan2(self.x);

        if p < 1e-9 {
            // On the polar axis: latitude is ±90°, altitude from |z|.
            let b = WGS84_A * (1.0 - WGS84_F);
            return Geodetic {
                lat_deg: if self.z >= 0.0 { 90.0 } else { -90.0 },
                lon_deg: 0.0,
                alt_m: self.z.abs() - b,
            };
        }

        // Bowring's initial parametric latitude guess.
        let b = WGS84_A * (1.0 - WGS84_F);
        let e2_prime = (WGS84_A * WGS84_A - b * b) / (b * b);
        let theta = (self.z * WGS84_A).atan2(p * b);
        let (st, ct) = theta.sin_cos();
        let mut lat =
            (self.z + e2_prime * b * st * st * st).atan2(p - WGS84_E2 * WGS84_A * ct * ct * ct);

        // Newton refinement of the latitude (two passes suffice).
        for _ in 0..2 {
            let sin_lat = lat.sin();
            let n = WGS84_A / (1.0 - WGS84_E2 * sin_lat * sin_lat).sqrt();
            let alt = p / lat.cos() - n;
            lat = (self.z / p / (1.0 - WGS84_E2 * n / (n + alt))).atan();
        }

        let sin_lat = lat.sin();
        let n = WGS84_A / (1.0 - WGS84_E2 * sin_lat * sin_lat).sqrt();
        let alt = p / lat.cos() - n;

        Geodetic {
            lat_deg: lat.to_degrees(),
            lon_deg: lon.to_degrees(),
            alt_m: alt,
        }
    }
}

/// Great-circle (surface) distance between two geodetic points, using the
/// haversine formula on the mean-radius sphere. Altitudes are ignored.
///
/// Spherical error vs. the ellipsoid is < 0.5 %, which is far below the
/// fidelity of any latency model built on top — and matches what the
/// paper's own back-of-envelope distances assume.
pub fn haversine_distance(a: Geodetic, b: Geodetic) -> Meters {
    let lat1 = a.lat_deg.to_radians();
    let lat2 = b.lat_deg.to_radians();
    let dlat = (b.lat_deg - a.lat_deg).to_radians();
    let dlon = (b.lon_deg - a.lon_deg).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    let c = 2.0 * h.sqrt().asin();
    Meters::new(EARTH_MEAN_RADIUS * c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn equator_prime_meridian_to_ecef() {
        let p = Geodetic::on_surface(0.0, 0.0).to_ecef();
        assert!(close(p.x, WGS84_A, 1e-6));
        assert!(close(p.y, 0.0, 1e-6));
        assert!(close(p.z, 0.0, 1e-6));
    }

    #[test]
    fn north_pole_to_ecef() {
        let p = Geodetic::on_surface(90.0, 0.0).to_ecef();
        let b = WGS84_A * (1.0 - WGS84_F);
        assert!(close(p.x, 0.0, 1e-3));
        assert!(close(p.z, b, 1e-3));
    }

    #[test]
    fn ecef_round_trip_surface() {
        for &(lat, lon) in &[
            (51.5074, -0.1278), // London
            (47.6062, -122.3321),
            (-33.8688, 151.2093),
            (41.3874, 2.1686),
            (0.0, 180.0),
            (-89.9, 45.0),
        ] {
            let g = Geodetic::on_surface(lat, lon);
            let rt = g.to_ecef().to_geodetic();
            assert!(close(rt.lat_deg, lat, 1e-7), "{lat} -> {}", rt.lat_deg);
            assert!(
                close(rt.lon_deg, lon, 1e-7) || close(rt.lon_deg, lon - 360.0, 1e-7),
                "{lon} -> {}",
                rt.lon_deg
            );
            assert!(close(rt.alt_m, 0.0, 1e-3), "alt {}", rt.alt_m);
        }
    }

    #[test]
    fn ecef_round_trip_leo_altitude() {
        let g = Geodetic::new(53.0, -1.0, 550_000.0);
        let rt = g.to_ecef().to_geodetic();
        assert!(close(rt.lat_deg, 53.0, 1e-7));
        assert!(close(rt.lon_deg, -1.0, 1e-7));
        assert!(close(rt.alt_m, 550_000.0, 1e-2));
    }

    #[test]
    fn polar_axis_to_geodetic() {
        let b = WGS84_A * (1.0 - WGS84_F);
        let g = Ecef::new(0.0, 0.0, b + 100.0).to_geodetic();
        assert!(close(g.lat_deg, 90.0, 1e-9));
        assert!(close(g.alt_m, 100.0, 1e-6));
        let g = Ecef::new(0.0, 0.0, -(b + 100.0)).to_geodetic();
        assert!(close(g.lat_deg, -90.0, 1e-9));
    }

    #[test]
    fn haversine_london_to_new_york() {
        // Known distance LHR-JFK ~ 5540-5570 km; city centres ~ 5570 km.
        let london = Geodetic::on_surface(51.5074, -0.1278);
        let nyc = Geodetic::on_surface(40.7128, -74.0060);
        let d = haversine_distance(london, nyc).as_km();
        assert!((5500.0..5640.0).contains(&d), "{d} km");
    }

    #[test]
    fn haversine_symmetric_and_zero_on_self() {
        let a = Geodetic::on_surface(10.0, 20.0);
        let b = Geodetic::on_surface(-30.0, 40.0);
        let d1 = haversine_distance(a, b).as_f64();
        let d2 = haversine_distance(b, a).as_f64();
        assert!(close(d1, d2, 1e-6));
        assert!(close(haversine_distance(a, a).as_f64(), 0.0, 1e-6));
    }

    #[test]
    fn slant_range_overhead_satellite() {
        // A satellite directly overhead at 550 km: slant range == altitude.
        let ground = Geodetic::on_surface(45.0, 7.0);
        let sat = Geodetic::new(45.0, 7.0, 550_000.0);
        let d = ground.to_ecef().distance(sat.to_ecef()).as_km();
        assert!(close(d, 550.0, 0.1), "{d}");
    }

    #[test]
    fn magnitude_of_surface_point() {
        let m = Geodetic::on_surface(0.0, 0.0).to_ecef().magnitude();
        assert!(close(m, WGS84_A, 1e-6));
    }

    #[test]
    fn display_formats() {
        let s = format!("{}", Geodetic::on_surface(51.5074, -0.1278));
        assert!(s.contains("51.5074"));
    }
}
