//! Property tests for the geodesy layer: coordinate round-trips, metric
//! properties of the distance functions, and look-angle sanity over the
//! whole globe.

use proptest::prelude::*;
use starlink_geo::coords::{haversine_distance, Geodetic, EARTH_MEAN_RADIUS};
use starlink_geo::look::{look_angles, max_slant_range};
use starlink_simcore::Meters;

proptest! {
    /// Geodetic -> ECEF -> geodetic is the identity (to sub-mm / micro-deg)
    /// everywhere from the surface to LEO altitude, away from the exact poles.
    #[test]
    fn ecef_round_trip(
        lat in -89.5f64..89.5,
        lon in -179.9f64..180.0,
        alt in 0.0f64..1_500_000.0,
    ) {
        let g = Geodetic::new(lat, lon, alt);
        let rt = g.to_ecef().to_geodetic();
        prop_assert!((rt.lat_deg - lat).abs() < 1e-6, "lat {} -> {}", lat, rt.lat_deg);
        prop_assert!((rt.lon_deg - lon).abs() < 1e-6, "lon {} -> {}", lon, rt.lon_deg);
        prop_assert!((rt.alt_m - alt).abs() < 0.01, "alt {} -> {}", alt, rt.alt_m);
    }

    /// Haversine is a metric: non-negative, symmetric, zero on identical
    /// points, and bounded by half the Earth's circumference.
    #[test]
    fn haversine_metric_properties(
        lat1 in -90.0f64..90.0, lon1 in -180.0f64..180.0,
        lat2 in -90.0f64..90.0, lon2 in -180.0f64..180.0,
    ) {
        let a = Geodetic::on_surface(lat1, lon1);
        let b = Geodetic::on_surface(lat2, lon2);
        let d_ab = haversine_distance(a, b).as_f64();
        let d_ba = haversine_distance(b, a).as_f64();
        prop_assert!(d_ab >= 0.0);
        prop_assert!((d_ab - d_ba).abs() < 1e-6);
        prop_assert!(d_ab <= std::f64::consts::PI * EARTH_MEAN_RADIUS + 1.0);
        prop_assert!(haversine_distance(a, a).as_f64() < 1e-6);
    }

    /// Slant range from an observer to a satellite is at least the
    /// satellite's altitude above the ellipsoid (equality only at zenith)
    /// and the elevation never exceeds 90°.
    #[test]
    fn look_angles_bounds(
        obs_lat in -89.0f64..89.0, obs_lon in -180.0f64..180.0,
        sat_lat in -89.0f64..89.0, sat_lon in -180.0f64..180.0,
        alt in 300_000.0f64..1_200_000.0,
    ) {
        let obs = Geodetic::on_surface(obs_lat, obs_lon);
        let sat = Geodetic::new(sat_lat, sat_lon, alt).to_ecef();
        let la = look_angles(obs, sat);
        prop_assert!(la.elevation_deg <= 90.0 + 1e-9);
        prop_assert!(la.elevation_deg >= -90.0 - 1e-9);
        prop_assert!((0.0..360.0 + 1e-9).contains(&la.azimuth_deg));
        // Slant range can never be shorter than the altitude difference.
        prop_assert!(la.range.as_f64() >= alt * 0.98);
    }

    /// The max-slant-range threshold is consistent with look angles: a
    /// satellite exactly overhead is within the threshold, and the
    /// threshold shrinks as the minimum elevation grows.
    #[test]
    fn max_slant_range_monotone(alt_km in 300.0f64..1_200.0, el in 5.0f64..85.0) {
        let alt = Meters::from_km(alt_km);
        let lower = max_slant_range(alt, el);
        let higher = max_slant_range(alt, el + 5.0);
        prop_assert!(higher < lower, "raising min elevation must shrink range");
        prop_assert!(max_slant_range(alt, 90.0).as_f64() <= alt.as_f64() + 1.0);
        prop_assert!(lower.as_f64() >= alt.as_f64());
    }
}
