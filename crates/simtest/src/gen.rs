//! Seeded scenario generation.
//!
//! [`generate`] maps a 64-bit seed to one [`Scenario`] through labelled
//! [`SimRng`] streams: the same seed always yields the same scenario, and
//! nearby seeds are fully decorrelated. Ranges are chosen so a scenario
//! finishes in well under a second of wall clock while still exercising
//! slow links, deep queues, loss bursts, router blackouts and every
//! congestion-control algorithm.

use crate::fairness::FlowMixSpec;
use crate::scenario::{
    ClientSpec, CollectorSpec, FaultSpec, LinkSpec, PopulationSpec, Scenario, StorageFaultSpec,
    TelemetrySpec, Workload,
};
use starlink_channel::WeatherCondition;
use starlink_simcore::SimRng;
use starlink_transport::CcAlgorithm;

/// Generates the scenario for `seed`.
pub fn generate(seed: u64) -> Scenario {
    let root = SimRng::seed_from(seed);
    let mut shape = root.stream("shape");
    let horizon_ms = shape.range_u64(4_000, 16_000);
    let routers = shape.range_u64(1, 3) as usize;
    let n_clients = shape.range_u64(1, 4) as usize;

    let clients = (0..n_clients)
        .map(|i| {
            let mut rng = root.stream("client").substream(i as u64);
            ClientSpec {
                up: link(&mut rng),
                down: link(&mut rng),
                workload: workload(&mut rng, horizon_ms),
            }
        })
        .collect::<Vec<_>>();

    let mut frng = root.stream("faults");
    let n_faults = frng.below(5) as usize;
    let faults = (0..n_faults)
        .map(|_| fault(&mut frng, horizon_ms, routers, n_clients))
        .collect();

    let mut trng = root.stream("telemetry");
    let telemetry = trng.bernoulli(0.25).then(|| {
        // Draw order matters: the collector draws come after every legacy
        // telemetry draw so pre-collector seeds keep their sub-campaigns.
        let seed = trng.next_u64();
        let days = trng.range_u64(1, 3);
        let pages_per_day_milli = trng.range_u64(2_000, 20_000);
        let fault_storm = trng.bernoulli(0.5);
        let collector = trng.bernoulli(0.5).then(|| CollectorSpec {
            session_rate_milli: trng.range_u64(500, 5_000),
            session_burst: trng.range_u64(1, 4),
            queue_batches: trng.range_u64(2, 16),
            global_bytes: trng.range_u64(4_000, 64_000),
            drain_bytes_per_sec: trng.range_u64(200, 20_000),
        });
        // Storage draws come after the collector draws for the same
        // reason the collector's come after the legacy ones: pre-storage
        // seeds keep their sub-campaigns bit-for-bit.
        let storage = trng.bernoulli(0.5).then(|| StorageFaultSpec {
            seed: trng.next_u64(),
            torn_writes: trng.below(2),
            bit_rots: trng.below(2),
            enospc: trng.below(2),
            crashes: trng.below(3),
            retain: trng.range_u64(1, 4),
        });
        // Population draws come last, after the storage draws, keeping
        // every earlier dimension's sub-campaign bit-for-bit on
        // pre-population seeds. Shards start at 2: a single-shard run
        // cannot exercise the merge path the oracles exist to check.
        let population = trng.bernoulli(0.5).then(|| PopulationSpec {
            seed: trng.next_u64(),
            users: trng.range_u64(50, 400),
            cities: trng.range_u64(3, 30),
            days: trng.range_u64(1, 3),
            shards: trng.range_u64(2, 5),
            pages_per_day_milli: trng.range_u64(2_000, 9_000),
        });
        TelemetrySpec {
            seed,
            days,
            pages_per_day_milli,
            fault_storm,
            collector,
            storage,
            population,
        }
    });

    // The fairness dimension draws from its own labelled stream, so
    // adding it left every pre-existing dimension's draws — and thus
    // every old seed's scenario shape — bit-for-bit unchanged.
    let mut mrng = root.stream("flowmix");
    let flow_mix = mrng.bernoulli(0.25).then(|| {
        let seed = mrng.next_u64();
        let flows = mrng.range_u64(2, 6) as usize;
        // Flow 0 is always BBRv2: the fairness oracle bounds BBRv2
        // retransmit rates, so every drawn mix must exercise it.
        let mix = (0..flows)
            .map(|i| {
                if i == 0 {
                    CcAlgorithm::Bbr2
                } else {
                    *mrng.choose(&CcAlgorithm::ALL)
                }
            })
            .collect();
        FlowMixSpec {
            seed,
            mix,
            bottleneck_kbps: mrng.range_u64(4_000, 16_000),
            queue_bytes: mrng.range_u64(16, 64) * 1_000,
            access_delay_us: mrng.range_u64(5_000, 30_000),
            duration_ms: mrng.range_u64(3_000, 8_000),
        }
    });

    Scenario {
        seed: root.stream("net").next_u64(),
        horizon_ms,
        routers,
        clients,
        faults,
        telemetry,
        flow_mix,
    }
}

fn link(rng: &mut SimRng) -> LinkSpec {
    LinkSpec {
        delay_us: rng.range_u64(2_000, 60_000),
        rate_kbps: rng.range_u64(1_000, 60_000),
        loss_ppm: if rng.bernoulli(0.4) {
            rng.range_u64(100, 20_000)
        } else {
            0
        },
        queue_bytes: rng.range_u64(16, 256) * 1_000,
    }
}

fn workload(rng: &mut SimRng, horizon_ms: u64) -> Workload {
    let algo = *rng.choose(&CcAlgorithm::ALL);
    let start_ms = rng.below(horizon_ms / 4);
    match rng.below(4) {
        0 => Workload::TcpBulk {
            algo,
            total_bytes: rng.range_u64(50, 2_000) * 1_000,
            start_ms,
        },
        1 => Workload::TcpStream {
            algo,
            start_ms,
            stop_ms: rng.range_u64(horizon_ms / 2, horizon_ms),
        },
        2 => Workload::UdpBlast {
            rate_kbps: rng.range_u64(500, 20_000),
            payload: rng.range_u64(100, 1_400),
            stop_ms: rng.range_u64(horizon_ms / 2, horizon_ms),
        },
        _ => Workload::Ping {
            count: rng.range_u64(5, 50),
            interval_ms: rng.range_u64(50, 500),
            size: rng.range_u64(64, 1_400),
        },
    }
}

fn fault(rng: &mut SimRng, horizon_ms: u64, routers: usize, n_clients: usize) -> FaultSpec {
    let client = rng.index(n_clients);
    let start_ms = rng.below(horizon_ms / 2);
    match rng.below(5) {
        0 => FaultSpec::AccessFlap {
            client,
            up: rng.bernoulli(0.5),
            start_ms,
            end_ms: start_ms + rng.range_u64(1_000, horizon_ms / 2),
            period_ms: rng.range_u64(200, 2_000),
            down_ppm: rng.range_u64(10_000, 300_000),
        },
        1 => FaultSpec::AccessCorruption {
            client,
            up: rng.bernoulli(0.5),
            start_ms,
            duration_ms: rng.range_u64(200, 3_000),
            prob_ppm: rng.range_u64(10_000, 500_000),
        },
        2 => FaultSpec::AccessFade {
            client,
            start_ms,
            duration_ms: rng.range_u64(500, 4_000),
            condition_code: WeatherCondition::ALL[rng.index(WeatherCondition::ALL.len())].code(),
        },
        3 if routers >= 2 => FaultSpec::BackboneOutage {
            hop: rng.index(routers - 1),
            start_ms,
            duration_ms: rng.range_u64(100, 1_500),
        },
        _ => FaultSpec::RouterBlackout {
            // Never black out router 0: every client's access terminates
            // there, and a first-hop blackout just silences the run.
            router: if routers >= 2 {
                1 + rng.index(routers - 1)
            } else {
                0
            },
            start_ms,
            duration_ms: rng.range_u64(100, 1_000),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_scenario() {
        for seed in [0, 1, 42, u64::MAX] {
            assert_eq!(generate(seed), generate(seed));
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(generate(1), generate(2));
    }

    #[test]
    fn generated_scenarios_validate() {
        for seed in 0..200 {
            let s = generate(seed);
            s.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // And survive the JSON round trip bit-exactly.
            assert_eq!(Scenario::from_json(&s.to_json()).unwrap(), s);
        }
    }

    #[test]
    fn collector_dimension_appears_both_ways() {
        let (mut with, mut without) = (false, false);
        for seed in 0..400 {
            match generate(seed).telemetry {
                Some(t) if t.collector.is_some() => with = true,
                Some(_) => without = true,
                None => {}
            }
        }
        assert!(with, "no generated scenario uploads through the service");
        assert!(without, "no generated scenario keeps the direct path");
    }

    #[test]
    fn storage_dimension_appears_both_ways_and_with_faults() {
        let (mut with, mut without, mut faulted) = (false, false, false);
        for seed in 0..400 {
            match generate(seed).telemetry {
                Some(t) if t.storage.is_some() => {
                    with = true;
                    let s = t.storage.unwrap();
                    if s.torn_writes + s.bit_rots + s.enospc + s.crashes > 0 {
                        faulted = true;
                    }
                }
                Some(_) => without = true,
                None => {}
            }
        }
        assert!(with, "no generated scenario checkpoints to disk");
        assert!(without, "no generated scenario skips persistence");
        assert!(faulted, "no generated storage spec injects any fault");
    }

    #[test]
    fn population_dimension_appears_both_ways() {
        let (mut with, mut without) = (false, false);
        for seed in 0..400 {
            match generate(seed).telemetry {
                Some(t) if t.population.is_some() => {
                    with = true;
                    let p = t.population.unwrap();
                    assert!(p.shards >= 2, "seed {seed}: single-shard spec {p:?}");
                    assert!(p.users >= 50 && p.cities >= 3, "seed {seed}: {p:?}");
                }
                Some(_) => without = true,
                None => {}
            }
        }
        assert!(with, "no generated scenario runs the scaled campaign");
        assert!(without, "no generated scenario skips the scaled campaign");
    }

    #[test]
    fn flowmix_dimension_appears_both_ways() {
        let (mut with, mut without) = (false, false);
        for seed in 0..400 {
            match generate(seed).flow_mix {
                Some(m) => {
                    with = true;
                    assert_eq!(m.mix[0], CcAlgorithm::Bbr2, "seed {seed}: {m:?}");
                    assert!(m.mix.len() >= 2, "seed {seed}: single-flow mix {m:?}");
                    m.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
                }
                None => without = true,
            }
        }
        assert!(with, "no generated scenario contends at a bottleneck");
        assert!(without, "no generated scenario skips the fairness run");
    }

    #[test]
    fn all_workload_kinds_and_fault_kinds_appear() {
        let mut workloads = [false; 4];
        let mut fault_kinds = [false; 5];
        for seed in 0..300 {
            let s = generate(seed);
            for c in &s.clients {
                match c.workload {
                    Workload::TcpBulk { .. } => workloads[0] = true,
                    Workload::TcpStream { .. } => workloads[1] = true,
                    Workload::UdpBlast { .. } => workloads[2] = true,
                    Workload::Ping { .. } => workloads[3] = true,
                }
            }
            for f in &s.faults {
                match f {
                    FaultSpec::AccessFlap { .. } => fault_kinds[0] = true,
                    FaultSpec::AccessCorruption { .. } => fault_kinds[1] = true,
                    FaultSpec::AccessFade { .. } => fault_kinds[2] = true,
                    FaultSpec::BackboneOutage { .. } => fault_kinds[3] = true,
                    FaultSpec::RouterBlackout { .. } => fault_kinds[4] = true,
                }
            }
        }
        assert!(workloads.iter().all(|&b| b), "{workloads:?}");
        assert!(fault_kinds.iter().all(|&b| b), "{fault_kinds:?}");
    }
}
