//! The many-flow coexistence experiment: mixed congestion-control
//! populations contending for one shared per-gateway bottleneck.
//!
//! The paper's Fig. 8 measures each algorithm *alone* on the Starlink
//! path; the open question it leaves — and the reason BBRv2-class
//! control exists at all — is what happens when the algorithms meet at
//! a shared bottleneck. [`run_fairness`] answers it deterministically:
//! every flow in a [`FlowMixSpec`] gets its own server and client host,
//! all data crosses a single droptail bottleneck between two gateway
//! routers, and the report carries per-flow goodput, retransmit
//! accounting, per-algorithm aggregates and Jain's fairness index.
//!
//! Two properties make the experiment honest:
//!
//! - **No random loss anywhere.** Every link is clean, so every
//!   retransmission is a congestion drop at the shared bottleneck —
//!   retransmit rate *is* the flow's congestion footprint.
//! - **Identical per-flow paths.** Same access delay, same bottleneck,
//!   same start cadence modulo a small deterministic stagger; goodput
//!   differences are attributable to the algorithm alone.
//!
//! The swarm fuzzes this dimension from day one: [`crate::gen`] draws a
//! `FlowMixSpec` for a quarter of all seeds, and the fairness oracle
//! bounds every BBRv2 flow's retransmit fraction — the planted
//! `--inject-unfair-bug` flow (a BBRv2 that stops honouring its loss
//! ceiling) must blow through that bound.

use crate::json::Json;
use crate::run::RunOptions;
use crate::scenario::{field, field_u64, parse_algo, ScenarioError};
use starlink_netsim::{LinkConfig, Network, NodeId, NodeKind};
use starlink_simcore::{Bytes, DataRate, SimDuration, SimTime};
use starlink_transport::tcp::TcpConfig;
use starlink_transport::{CcAlgorithm, TcpReceiver, TcpSender};

/// One mixed-CC contention experiment: `mix.len()` concurrent flows
/// through a shared bottleneck. All-integer for an exact JSON
/// round-trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowMixSpec {
    /// Network seed for the fairness sub-run.
    pub seed: u64,
    /// One congestion-control algorithm per concurrent flow.
    pub mix: Vec<CcAlgorithm>,
    /// Shared-bottleneck serialisation rate, kbit/s.
    pub bottleneck_kbps: u64,
    /// Shared-bottleneck droptail queue, bytes.
    pub queue_bytes: u64,
    /// Per-flow access-link one-way delay, microseconds.
    pub access_delay_us: u64,
    /// How long the flows contend, milliseconds.
    pub duration_ms: u64,
}

impl FlowMixSpec {
    /// Structural sanity: at least one flow, a usable bottleneck.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.mix.is_empty() {
            return Err(ScenarioError::Field("flow mix must not be empty"));
        }
        if self.bottleneck_kbps == 0 {
            return Err(ScenarioError::Field("bottleneck rate must be > 0"));
        }
        if self.queue_bytes < 4_000 {
            return Err(ScenarioError::Field(
                "bottleneck queue must be >= 4000 bytes",
            ));
        }
        if self.duration_ms == 0 {
            return Err(ScenarioError::Field("fairness duration must be > 0"));
        }
        Ok(())
    }

    pub(crate) fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::u64(self.seed)),
            (
                "mix".into(),
                Json::Arr(self.mix.iter().map(|a| Json::str(a.label())).collect()),
            ),
            ("bottleneck_kbps".into(), Json::u64(self.bottleneck_kbps)),
            ("queue_bytes".into(), Json::u64(self.queue_bytes)),
            ("access_delay_us".into(), Json::u64(self.access_delay_us)),
            ("duration_ms".into(), Json::u64(self.duration_ms)),
        ])
    }

    pub(crate) fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        let mix = field(v, "mix")?
            .as_arr()
            .ok_or(ScenarioError::Field("mix must be an array"))?
            .iter()
            .map(|a| {
                parse_algo(
                    a.as_str()
                        .ok_or(ScenarioError::Field("mix entries must be labels"))?,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FlowMixSpec {
            seed: field_u64(v, "seed")?,
            mix,
            bottleneck_kbps: field_u64(v, "bottleneck_kbps")?,
            queue_bytes: field_u64(v, "queue_bytes")?,
            access_delay_us: field_u64(v, "access_delay_us")?,
            duration_ms: field_u64(v, "duration_ms")?,
        })
    }
}

/// One flow's outcome at the shared bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowShare {
    /// Flow index (position in [`FlowMixSpec::mix`]).
    pub flow: usize,
    /// The flow's congestion control.
    pub algo: CcAlgorithm,
    /// Bytes cumulatively acknowledged — the goodput numerator.
    pub bytes_acked: u64,
    /// Data segments sent, including retransmissions.
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// Retransmission-timeout episodes.
    pub rto_count: u64,
}

impl FlowShare {
    /// Retransmitted fraction of all data segments, parts per thousand —
    /// the flow's congestion footprint (no link in the fairness topology
    /// has random loss).
    pub fn retransmit_permille(&self) -> u64 {
        if self.segments_sent == 0 {
            return 0;
        }
        self.retransmissions * 1_000 / self.segments_sent
    }
}

/// Per-algorithm aggregate over every flow running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlgoShare {
    /// The algorithm.
    pub algo: CcAlgorithm,
    /// Flows in the mix running it.
    pub flows: u64,
    /// Total bytes acknowledged across those flows.
    pub bytes_acked: u64,
    /// Total data segments sent across those flows.
    pub segments_sent: u64,
    /// Total retransmitted segments across those flows.
    pub retransmissions: u64,
}

/// The finished coexistence experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FairnessReport {
    /// Per-flow outcomes, in mix order.
    pub flows: Vec<FlowShare>,
    /// Per-algorithm aggregates, in [`CcAlgorithm::ALL`] order, only for
    /// algorithms present in the mix.
    pub algos: Vec<AlgoShare>,
    /// Jain's fairness index over per-flow `bytes_acked`, thousandths.
    pub jain_milli: u64,
    /// Total bytes acknowledged across all flows.
    pub total_bytes: u64,
}

/// Jain's fairness index over `shares`, in thousandths:
/// `(Σx)² · 1000 / (n · Σx²)`. An empty or all-zero population is
/// perfectly fair by convention (1000). Integer throughout so every
/// platform computes the identical value.
pub fn jain_milli(shares: &[u64]) -> u64 {
    let n = shares.len() as u128;
    let sum: u128 = shares.iter().map(|&x| x as u128).sum();
    let sumsq: u128 = shares.iter().map(|&x| (x as u128) * (x as u128)).sum();
    if sumsq == 0 {
        return 1_000;
    }
    (sum * sum * 1_000 / (n * sumsq)) as u64
}

/// Runs the coexistence experiment `spec` describes and reports it.
///
/// Topology, per flow `i`: `s_i → g2 —(shared bottleneck)→ g1 → c_i`,
/// with the transfer in the download direction (sender on `s_i`) so the
/// contended queue sits in front of the data, not the ACKs. The reverse
/// path is uncontended. Flow starts stagger by a deterministic few
/// milliseconds to avoid phase-locking every slow start.
///
/// `opts.inject_unfair_bug_every` plants the unfair-flow bug: every N-th
/// BBRv2 flow in mix order stops honouring its loss ceiling.
pub fn run_fairness(spec: &FlowMixSpec, opts: &RunOptions) -> FairnessReport {
    let mut net = Network::new(spec.seed);

    let g1 = net.add_node("g1", NodeKind::Router);
    let g2 = net.add_node("g2", NodeKind::Router);
    // The one contended resource: a clean droptail bottleneck g2 → g1.
    net.connect(
        g2,
        g1,
        LinkConfig::fixed(
            SimDuration::from_millis(10),
            DataRate::from_kbps(spec.bottleneck_kbps),
            0.0,
        )
        .with_queue(Bytes::new(spec.queue_bytes)),
    );
    // Uncontended reverse path for the ACK stream.
    net.connect(
        g1,
        g2,
        LinkConfig::fixed(
            SimDuration::from_millis(10),
            DataRate::from_mbps(1_000),
            0.0,
        ),
    );

    let access = || {
        LinkConfig::fixed(
            SimDuration::from_micros(spec.access_delay_us),
            DataRate::from_mbps(200),
            0.0,
        )
        .with_queue(Bytes::new(256_000))
    };

    let mut stats = Vec::new();
    let mut bbr2_seen = 0u64;
    for (i, &algo) in spec.mix.iter().enumerate() {
        let client = net.add_node(&format!("fc{i}"), NodeKind::Host);
        let server = net.add_node(&format!("fs{i}"), NodeKind::Host);
        net.connect(g1, client, access());
        net.connect(client, g1, access());
        net.connect(server, g2, LinkConfig::ethernet());
        net.connect(g2, server, LinkConfig::ethernet());
        net.route_linear(&[client, g1, g2, server]);

        let mut config =
            TcpConfig::stream_until(i as u64 + 1, algo, SimTime::from_millis(spec.duration_ms));
        if algo == CcAlgorithm::Bbr2 {
            bbr2_seen += 1;
            if opts.inject_unfair_bug_every > 0 && bbr2_seen.is_multiple_of(opts.inject_unfair_bug_every) {
                config = config.with_unfair_cc_bug();
            }
        }
        let (sender, s) = TcpSender::new(client, config);
        let (receiver, _rstats) = TcpReceiver::new(i as u64 + 1, SimDuration::from_secs(1));
        net.attach_handler(server, Box::new(sender));
        net.attach_handler(client, Box::new(receiver));
        // Deterministic stagger: flows join over the first ~40 ms so the
        // initial slow starts don't phase-lock.
        net.arm_timer(
            server,
            SimTime::from_millis((i as u64 % 8) * 5),
            TcpSender::start_token(),
        );
        stats.push((i, algo, s));
    }

    net.run_until(SimTime::from_millis(spec.duration_ms));
    for n in 0..net.node_count() {
        net.detach_handler(NodeId(n));
    }
    net.run_to_idle();

    let flows: Vec<FlowShare> = stats
        .iter()
        .map(|(i, algo, s)| {
            let s = s.borrow();
            FlowShare {
                flow: *i,
                algo: *algo,
                bytes_acked: s.bytes_acked,
                segments_sent: s.segments_sent,
                retransmissions: s.retransmissions,
                rto_count: s.rto_count,
            }
        })
        .collect();

    let algos = CcAlgorithm::ALL
        .into_iter()
        .filter_map(|algo| {
            let members: Vec<&FlowShare> = flows.iter().filter(|f| f.algo == algo).collect();
            if members.is_empty() {
                return None;
            }
            Some(AlgoShare {
                algo,
                flows: members.len() as u64,
                bytes_acked: members.iter().map(|f| f.bytes_acked).sum(),
                segments_sent: members.iter().map(|f| f.segments_sent).sum(),
                retransmissions: members.iter().map(|f| f.retransmissions).sum(),
            })
        })
        .collect();

    let shares: Vec<u64> = flows.iter().map(|f| f.bytes_acked).collect();
    FairnessReport {
        jain_milli: jain_milli(&shares),
        total_bytes: shares.iter().sum(),
        flows,
        algos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(mix: Vec<CcAlgorithm>) -> FlowMixSpec {
        FlowMixSpec {
            seed: 0xFA1E_0001,
            mix,
            bottleneck_kbps: 8_000,
            queue_bytes: 32_000,
            access_delay_us: 10_000,
            duration_ms: 5_000,
        }
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_milli(&[]), 1_000);
        assert_eq!(jain_milli(&[0, 0, 0]), 1_000);
        assert_eq!(jain_milli(&[7, 7, 7, 7]), 1_000);
        // One flow hogging everything: J = 1/n.
        assert_eq!(jain_milli(&[100, 0, 0, 0]), 250);
        // Known value: (1+2+3)² / (3 · (1+4+9)) = 36/42.
        assert_eq!(jain_milli(&[1, 2, 3]), 857);
    }

    #[test]
    fn spec_json_round_trips() {
        let s = spec(vec![
            CcAlgorithm::Bbr2,
            CcAlgorithm::Cubic,
            CcAlgorithm::Reno,
        ]);
        let back = FlowMixSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn validation_rejects_empty_mix() {
        let mut s = spec(vec![CcAlgorithm::Cubic]);
        s.mix.clear();
        assert!(s.validate().is_err());
    }

    #[test]
    fn twin_fairness_runs_are_identical() {
        let s = spec(vec![
            CcAlgorithm::Bbr2,
            CcAlgorithm::Cubic,
            CcAlgorithm::Reno,
            CcAlgorithm::Bbr,
        ]);
        let opts = RunOptions::default();
        assert_eq!(run_fairness(&s, &opts), run_fairness(&s, &opts));
    }

    #[test]
    fn homogeneous_population_shares_fairly() {
        // Four identical CUBIC flows over a clean shared bottleneck is
        // the easiest fairness case there is; Jain must be near-perfect.
        let s = spec(vec![CcAlgorithm::Cubic; 4]);
        let report = run_fairness(&s, &RunOptions::default());
        assert!(report.total_bytes > 0, "{report:?}");
        assert!(
            report.jain_milli >= 900,
            "homogeneous CUBIC mix scored {} milli: {report:?}",
            report.jain_milli
        );
    }

    #[test]
    fn every_flow_and_algo_is_accounted() {
        let s = spec(vec![
            CcAlgorithm::Bbr2,
            CcAlgorithm::Cubic,
            CcAlgorithm::Cubic,
            CcAlgorithm::Vegas,
        ]);
        let report = run_fairness(&s, &RunOptions::default());
        assert_eq!(report.flows.len(), 4);
        assert_eq!(report.algos.len(), 3, "{:?}", report.algos);
        let cubic = report
            .algos
            .iter()
            .find(|a| a.algo == CcAlgorithm::Cubic)
            .unwrap();
        assert_eq!(cubic.flows, 2);
        let agg: u64 = report.algos.iter().map(|a| a.bytes_acked).sum();
        assert_eq!(agg, report.total_bytes);
    }

    #[test]
    fn planted_unfair_bug_blows_up_the_retransmit_rate() {
        let s = spec(vec![
            CcAlgorithm::Bbr2,
            CcAlgorithm::Cubic,
            CcAlgorithm::Cubic,
        ]);
        let healthy = run_fairness(&s, &RunOptions::default());
        let bugged = run_fairness(
            &s,
            &RunOptions {
                inject_unfair_bug_every: 1,
                ..RunOptions::default()
            },
        );
        let permille = |r: &FairnessReport| r.flows[0].retransmit_permille();
        assert!(
            permille(&bugged) > permille(&healthy),
            "bug must increase the BBRv2 flow's congestion footprint: \
             healthy {} vs bugged {}",
            permille(&healthy),
            permille(&bugged)
        );
    }
}
