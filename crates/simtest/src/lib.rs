//! Deterministic simulation testing for the starlink-browser-view
//! workspace — a VOPR-style scenario swarm.
//!
//! The pieces, in pipeline order:
//!
//! - [`gen`] maps a 64-bit seed to a random [`Scenario`](scenario::Scenario):
//!   topology shape, per-client channel profiles, workloads over every
//!   congestion-control algorithm, a fault script reusing the
//!   `starlink-faults` builders, an optional telemetry sub-campaign, and
//!   an optional mixed-CC coexistence experiment ([`fairness`]).
//! - [`run`] rebuilds and executes the scenario deterministically,
//!   snapshotting a [`RunReport`](run::RunReport) — per-link/per-node
//!   conservation counters, the event-trace digest, TCP introspection,
//!   telemetry coverage.
//! - [`oracles`] checks cross-cutting invariants over the report; every
//!   scenario the generator can produce must pass all of them.
//! - [`shrink`] trims a failing scenario to a smaller reproducer.
//! - The `swarm` binary fans seeds across workers (`swarm run`), records
//!   failing seeds as replayable JSON, and reproduces them exactly
//!   (`swarm replay`).
//!
//! Scenarios serialise to JSON ([`json`]) with exact `u64` fidelity, so a
//! failing seed's artifact replays the identical run on any machine.

pub mod fairness;
pub mod gen;
pub mod json;
pub mod oracles;
pub mod run;
pub mod scenario;
pub mod shrink;

pub use fairness::{jain_milli, run_fairness, AlgoShare, FairnessReport, FlowMixSpec, FlowShare};
pub use oracles::{check, check_twin, Violation};
pub use run::{
    run, run_twin, PopulationReport, RunOptions, RunReport, StorageReport, TelemetryReport,
};
pub use scenario::{
    ClientSpec, CollectorSpec, FaultSpec, LinkSpec, PopulationSpec, Scenario, StorageFaultSpec,
    TelemetrySpec, Workload,
};

use starlink_simcore::SimRng;
use starlink_transport::CcAlgorithm;

/// Derives the scenario seed for swarm index `index` under `base`.
/// Labelled-stream derivation keeps neighbouring indices decorrelated.
pub fn scenario_seed(base: u64, index: u64) -> u64 {
    SimRng::seed_from(base)
        .stream("swarm")
        .substream(index)
        .next_u64()
}

/// The outcome of one swarm seed: the scenario, both runs' reports, and
/// any violated invariants.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    /// The derived scenario seed.
    pub seed: u64,
    /// The generated scenario.
    pub scenario: Scenario,
    /// First run's event-trace digest.
    pub digest: u64,
    /// First run's dispatched-event count.
    pub events: u64,
    /// Violations from the single-run oracles plus the twin-run check.
    pub violations: Vec<Violation>,
}

/// Generates, twin-runs and oracle-checks one swarm seed.
pub fn run_seed(base: u64, index: u64, opts: &RunOptions) -> SeedOutcome {
    let seed = scenario_seed(base, index);
    let scenario = gen::generate(seed);
    let (first, second) = run_twin(&scenario, opts);
    let violations = check_twin(&first, &second);
    SeedOutcome {
        seed,
        scenario,
        digest: first.digest,
        events: first.events,
        violations,
    }
}

/// The canonical handover-burst-loss scenario used by the congestion-
/// control conformance matrix: one client streaming for 60 s through a
/// Starlink-like access link whose downlink flaps on a 15-second
/// reconfiguration period and takes periodic corruption bursts.
///
/// Every algorithm sees the *identical* network (same scenario seed, same
/// fault script) — only the congestion control differs, so goodput
/// differences are attributable to the algorithm alone.
pub fn handover_scenario(algo: CcAlgorithm) -> Scenario {
    let horizon_ms = 60_000;
    // Handover loss bursts every 5 seconds — the paper observes loss
    // bursts several times per minute as serving satellites change.
    // Random (non-congestive) loss is exactly what collapses the
    // loss-based algorithms while BBR's model sails through.
    let mut faults: Vec<FaultSpec> = (0..11)
        .map(|i| FaultSpec::AccessCorruption {
            client: 0,
            up: false,
            start_ms: 2_500 + i * 5_000,
            duration_ms: 700,
            prob_ppm: 120_000,
        })
        .collect();
    // Plus the 15-second reconfiguration pattern: a short full outage at
    // every period boundary, for the whole test.
    faults.push(FaultSpec::AccessFlap {
        client: 0,
        up: false,
        start_ms: 1_000,
        end_ms: horizon_ms,
        period_ms: 15_000,
        down_ppm: 20_000, // 300 ms down per 15 s period
    });
    Scenario {
        seed: 0x5EED_CAFE_F00D_0001,
        horizon_ms,
        routers: 2,
        clients: vec![ClientSpec {
            up: LinkSpec {
                delay_us: 20_000,
                rate_kbps: 12_000,
                loss_ppm: 100,
                queue_bytes: 512_000,
            },
            // Queue deeper than the ~525 KB BDP: the matrix measures the
            // loss response, not BBRv1's shallow-buffer overshoot.
            down: LinkSpec {
                delay_us: 20_000,
                rate_kbps: 50_000,
                loss_ppm: 100,
                queue_bytes: 1_000_000,
            },
            workload: Workload::TcpStream {
                algo,
                start_ms: 0,
                stop_ms: horizon_ms - 2_000,
            },
        }],
        faults,
        telemetry: None,
        flow_mix: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_seed_is_stable_and_spread() {
        assert_eq!(scenario_seed(42, 0), scenario_seed(42, 0));
        assert_ne!(scenario_seed(42, 0), scenario_seed(42, 1));
        assert_ne!(scenario_seed(42, 0), scenario_seed(43, 0));
    }

    #[test]
    fn run_seed_is_deterministic() {
        let opts = RunOptions::default();
        let a = run_seed(1, 5, &opts);
        let b = run_seed(1, 5, &opts);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.events, b.events);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn handover_scenario_is_valid_for_every_algorithm() {
        for algo in CcAlgorithm::ALL {
            handover_scenario(algo).validate().unwrap();
        }
    }
}
