//! Best-effort scenario shrinking.
//!
//! Given a failing scenario, [`shrink`] greedily tries structural
//! reductions — drop a fault, drop a client, halve the horizon, shorten
//! the backbone — keeping each change only if the oracles *still* fail.
//! The result is a (locally) minimal reproducer that is much easier to
//! read than the original swarm scenario. Shrinking is bounded by a run
//! budget, so it is best-effort: the unshrunk scenario is always a valid
//! fallback.

use crate::oracles::check_twin;
use crate::run::{run_twin, RunOptions};
use crate::scenario::Scenario;

/// Upper bound on candidate runs during one shrink.
pub const DEFAULT_BUDGET: usize = 64;

/// Whether `scenario` still fails the oracles (twin run, so determinism
/// failures shrink too).
fn still_fails(scenario: &Scenario, opts: &RunOptions) -> bool {
    let (a, b) = run_twin(scenario, opts);
    !check_twin(&a, &b).is_empty()
}

/// Removes client `index`, dropping faults that referenced it and
/// re-indexing the rest.
fn without_client(scenario: &Scenario, index: usize) -> Scenario {
    let mut out = scenario.clone();
    out.clients.remove(index);
    out.faults.retain(|f| f.client() != Some(index));
    for fault in &mut out.faults {
        if let Some(c) = fault.client_mut() {
            if *c > index {
                *c -= 1;
            }
        }
    }
    out
}

/// Shrinks a failing scenario, spending at most `budget` candidate runs.
/// Returns the smallest still-failing scenario found (possibly the
/// input). The caller must ensure the input fails; if it does not, the
/// input is returned unchanged.
pub fn shrink(scenario: &Scenario, opts: &RunOptions, budget: usize) -> Scenario {
    let mut best = scenario.clone();
    let mut runs = 0usize;
    let try_candidate = |candidate: Scenario, runs: &mut usize| -> Option<Scenario> {
        if *runs >= budget || candidate.validate().is_err() {
            return None;
        }
        *runs += 1;
        still_fails(&candidate, opts).then_some(candidate)
    };

    loop {
        let mut progressed = false;

        // Pass 1: drop faults, one at a time (later ones first so the
        // indices we iterate stay valid after acceptance).
        let mut i = best.faults.len();
        while i > 0 {
            i -= 1;
            let mut candidate = best.clone();
            candidate.faults.remove(i);
            if let Some(c) = try_candidate(candidate, &mut runs) {
                best = c;
                progressed = true;
            }
        }

        // Pass 2: drop clients (at least one must remain).
        let mut i = best.clients.len();
        while i > 0 && best.clients.len() > 1 {
            i -= 1;
            if let Some(c) = try_candidate(without_client(&best, i), &mut runs) {
                best = c;
                progressed = true;
            }
        }

        // Pass 3: halve the horizon (not below half a second).
        if best.horizon_ms >= 1_000 {
            let mut candidate = best.clone();
            candidate.horizon_ms /= 2;
            if let Some(c) = try_candidate(candidate, &mut runs) {
                best = c;
                progressed = true;
            }
        }

        // Pass 4: shorten the backbone to a single router.
        if best.routers > 1 {
            let mut candidate = best.clone();
            candidate.routers = 1;
            candidate.faults.retain(|f| {
                f.client().is_some()
                    || matches!(
                        f,
                        crate::scenario::FaultSpec::RouterBlackout { router: 0, .. }
                    )
            });
            if let Some(c) = try_candidate(candidate, &mut runs) {
                best = c;
                progressed = true;
            }
        }

        // Pass 5: simplify the telemetry sub-campaign — first drop the
        // storage dimension, then the whole sub-campaign — when the
        // failure isn't theirs.
        if let Some(t) = best.telemetry {
            if t.storage.is_some() {
                let mut candidate = best.clone();
                candidate.telemetry.as_mut().expect("checked above").storage = None;
                if let Some(c) = try_candidate(candidate, &mut runs) {
                    best = c;
                    progressed = true;
                }
            }
            let mut candidate = best.clone();
            candidate.telemetry = None;
            if let Some(c) = try_candidate(candidate, &mut runs) {
                best = c;
                progressed = true;
            }
        }

        if !progressed || runs >= budget {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn shrinks_an_injected_failure() {
        // Find a generated scenario with several clients/faults so there
        // is something to trim, fail it via the bug hook, and shrink.
        let scenario = (0..50)
            .map(gen::generate)
            .find(|s| s.clients.len() >= 2)
            .expect("generator produces multi-client scenarios");
        let opts = RunOptions {
            inject_bug_every: 10,
            ..RunOptions::default()
        };
        assert!(still_fails(&scenario, &opts));
        let small = shrink(&scenario, &opts, DEFAULT_BUDGET);
        assert!(
            still_fails(&small, &opts),
            "shrunk scenario must still fail"
        );
        let size =
            |s: &Scenario| s.clients.len() + s.faults.len() + (s.horizon_ms / 1_000) as usize;
        assert!(size(&small) <= size(&scenario));
    }

    #[test]
    fn passing_scenario_is_returned_unchanged() {
        let scenario = gen::generate(3);
        let opts = RunOptions::default();
        let out = shrink(&scenario, &opts, 8);
        assert_eq!(out, scenario);
    }
}
