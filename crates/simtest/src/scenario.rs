//! The scenario model: a small, fully serialisable description of one
//! randomised simulation run.
//!
//! A [`Scenario`] is everything the runner needs to rebuild a network
//! byte-for-byte: topology shape, per-client channel profiles, workloads,
//! a fault script, and an optional telemetry-ingestion sub-campaign. All
//! fields are integers (microseconds, kbps, ppm, …) so the JSON
//! round-trip is exact — a replayed failing seed reconstructs the
//! *identical* run.

use crate::fairness::FlowMixSpec;
use crate::json::{parse, Json, JsonError};
use starlink_channel::WeatherCondition;
use starlink_netsim::LinkConfig;
use starlink_simcore::{Bytes, DataRate, SimDuration};
use starlink_transport::CcAlgorithm;
use std::fmt;

/// One direction of an access link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// One-way propagation delay, microseconds.
    pub delay_us: u64,
    /// Serialisation rate, kbit/s.
    pub rate_kbps: u64,
    /// Random loss, parts per million.
    pub loss_ppm: u64,
    /// Droptail queue capacity, bytes.
    pub queue_bytes: u64,
}

impl LinkSpec {
    /// The netsim link configuration this spec describes.
    pub fn config(&self) -> LinkConfig {
        LinkConfig::fixed(
            SimDuration::from_micros(self.delay_us),
            DataRate::from_kbps(self.rate_kbps),
            self.loss_ppm as f64 / 1e6,
        )
        .with_queue(Bytes::new(self.queue_bytes))
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("delay_us".into(), Json::u64(self.delay_us)),
            ("rate_kbps".into(), Json::u64(self.rate_kbps)),
            ("loss_ppm".into(), Json::u64(self.loss_ppm)),
            ("queue_bytes".into(), Json::u64(self.queue_bytes)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        Ok(LinkSpec {
            delay_us: field_u64(v, "delay_us")?,
            rate_kbps: field_u64(v, "rate_kbps")?,
            loss_ppm: field_u64(v, "loss_ppm")?,
            queue_bytes: field_u64(v, "queue_bytes")?,
        })
    }
}

/// What one client does during the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Workload {
    /// A finite TCP bulk transfer starting at `start_ms`.
    TcpBulk {
        /// Congestion control to use.
        algo: CcAlgorithm,
        /// Application bytes to transfer.
        total_bytes: u64,
        /// Connection start, milliseconds into the run.
        start_ms: u64,
    },
    /// An open-ended TCP stream that stops offering data at `stop_ms`.
    TcpStream {
        /// Congestion control to use.
        algo: CcAlgorithm,
        /// Connection start, milliseconds into the run.
        start_ms: u64,
        /// Stop offering new data at this time, milliseconds.
        stop_ms: u64,
    },
    /// A constant-rate UDP blast into a sink.
    UdpBlast {
        /// Send rate, kbit/s (always ≥ 1).
        rate_kbps: u64,
        /// Datagram payload size, bytes.
        payload: u64,
        /// Stop sending at this time, milliseconds.
        stop_ms: u64,
    },
    /// Periodic ICMP echo probes answered by the far host's auto-reply.
    Ping {
        /// Number of probes.
        count: u64,
        /// Probe interval, milliseconds.
        interval_ms: u64,
        /// On-wire probe size, bytes.
        size: u64,
    },
}

impl Workload {
    fn to_json(&self) -> Json {
        match *self {
            Workload::TcpBulk {
                algo,
                total_bytes,
                start_ms,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("tcp_bulk")),
                ("algo".into(), Json::str(algo.label())),
                ("total_bytes".into(), Json::u64(total_bytes)),
                ("start_ms".into(), Json::u64(start_ms)),
            ]),
            Workload::TcpStream {
                algo,
                start_ms,
                stop_ms,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("tcp_stream")),
                ("algo".into(), Json::str(algo.label())),
                ("start_ms".into(), Json::u64(start_ms)),
                ("stop_ms".into(), Json::u64(stop_ms)),
            ]),
            Workload::UdpBlast {
                rate_kbps,
                payload,
                stop_ms,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("udp_blast")),
                ("rate_kbps".into(), Json::u64(rate_kbps)),
                ("payload".into(), Json::u64(payload)),
                ("stop_ms".into(), Json::u64(stop_ms)),
            ]),
            Workload::Ping {
                count,
                interval_ms,
                size,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("ping")),
                ("count".into(), Json::u64(count)),
                ("interval_ms".into(), Json::u64(interval_ms)),
                ("size".into(), Json::u64(size)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        let kind = field_str(v, "kind")?;
        match kind {
            "tcp_bulk" => Ok(Workload::TcpBulk {
                algo: parse_algo(field_str(v, "algo")?)?,
                total_bytes: field_u64(v, "total_bytes")?,
                start_ms: field_u64(v, "start_ms")?,
            }),
            "tcp_stream" => Ok(Workload::TcpStream {
                algo: parse_algo(field_str(v, "algo")?)?,
                start_ms: field_u64(v, "start_ms")?,
                stop_ms: field_u64(v, "stop_ms")?,
            }),
            "udp_blast" => Ok(Workload::UdpBlast {
                rate_kbps: field_u64(v, "rate_kbps")?,
                payload: field_u64(v, "payload")?,
                stop_ms: field_u64(v, "stop_ms")?,
            }),
            "ping" => Ok(Workload::Ping {
                count: field_u64(v, "count")?,
                interval_ms: field_u64(v, "interval_ms")?,
                size: field_u64(v, "size")?,
            }),
            _ => Err(ScenarioError::Field("unknown workload kind")),
        }
    }
}

/// One client: its access-link channel profile and workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSpec {
    /// Client → first-router direction.
    pub up: LinkSpec,
    /// First-router → client direction.
    pub down: LinkSpec,
    /// What the client does.
    pub workload: Workload,
}

impl ClientSpec {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("up".into(), self.up.to_json()),
            ("down".into(), self.down.to_json()),
            ("workload".into(), self.workload.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        Ok(ClientSpec {
            up: LinkSpec::from_json(field(v, "up")?)?,
            down: LinkSpec::from_json(field(v, "down")?)?,
            workload: Workload::from_json(field(v, "workload")?)?,
        })
    }
}

/// A scripted fault, in scenario coordinates (client/router indices, not
/// raw link indices — the runner resolves them against the topology it
/// builds).
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// The client's access link flaps down/up periodically (the 15 s
    /// reconfiguration pattern). `up` picks the direction.
    AccessFlap {
        /// Which client's access link.
        client: usize,
        /// `true` = client→router direction, else router→client.
        up: bool,
        /// Flapping window start, milliseconds.
        start_ms: u64,
        /// Flapping window end, milliseconds.
        end_ms: u64,
        /// Full up+down cycle, milliseconds.
        period_ms: u64,
        /// Fraction of each period spent down, parts per million.
        down_ppm: u64,
    },
    /// Burst corruption on the client's access link.
    AccessCorruption {
        /// Which client's access link.
        client: usize,
        /// `true` = client→router direction, else router→client.
        up: bool,
        /// Burst start, milliseconds.
        start_ms: u64,
        /// Burst length, milliseconds.
        duration_ms: u64,
        /// Per-packet corruption probability, parts per million.
        prob_ppm: u64,
    },
    /// A weather fade on the client's down link.
    AccessFade {
        /// Which client's access link.
        client: usize,
        /// Fade start, milliseconds.
        start_ms: u64,
        /// Fade length, milliseconds.
        duration_ms: u64,
        /// Weather wire code ([`WeatherCondition::code`]).
        condition_code: u8,
    },
    /// Both directions of one backbone hop go down.
    BackboneOutage {
        /// Hop index (router `hop` ↔ router `hop + 1`).
        hop: usize,
        /// Outage start, milliseconds.
        start_ms: u64,
        /// Outage length, milliseconds.
        duration_ms: u64,
    },
    /// A backbone router blacks out entirely.
    RouterBlackout {
        /// Router index.
        router: usize,
        /// Blackout start, milliseconds.
        start_ms: u64,
        /// Blackout length, milliseconds.
        duration_ms: u64,
    },
}

impl FaultSpec {
    /// The client index this fault references, if any (used by the
    /// shrinker to re-index faults when clients are removed).
    pub fn client(&self) -> Option<usize> {
        match *self {
            FaultSpec::AccessFlap { client, .. }
            | FaultSpec::AccessCorruption { client, .. }
            | FaultSpec::AccessFade { client, .. } => Some(client),
            _ => None,
        }
    }

    /// Mutable access to the referenced client index, if any.
    pub fn client_mut(&mut self) -> Option<&mut usize> {
        match self {
            FaultSpec::AccessFlap { client, .. }
            | FaultSpec::AccessCorruption { client, .. }
            | FaultSpec::AccessFade { client, .. } => Some(client),
            _ => None,
        }
    }

    fn to_json(&self) -> Json {
        match *self {
            FaultSpec::AccessFlap {
                client,
                up,
                start_ms,
                end_ms,
                period_ms,
                down_ppm,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("access_flap")),
                ("client".into(), Json::u64(client as u64)),
                ("up".into(), Json::Bool(up)),
                ("start_ms".into(), Json::u64(start_ms)),
                ("end_ms".into(), Json::u64(end_ms)),
                ("period_ms".into(), Json::u64(period_ms)),
                ("down_ppm".into(), Json::u64(down_ppm)),
            ]),
            FaultSpec::AccessCorruption {
                client,
                up,
                start_ms,
                duration_ms,
                prob_ppm,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("access_corruption")),
                ("client".into(), Json::u64(client as u64)),
                ("up".into(), Json::Bool(up)),
                ("start_ms".into(), Json::u64(start_ms)),
                ("duration_ms".into(), Json::u64(duration_ms)),
                ("prob_ppm".into(), Json::u64(prob_ppm)),
            ]),
            FaultSpec::AccessFade {
                client,
                start_ms,
                duration_ms,
                condition_code,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("access_fade")),
                ("client".into(), Json::u64(client as u64)),
                ("start_ms".into(), Json::u64(start_ms)),
                ("duration_ms".into(), Json::u64(duration_ms)),
                ("condition_code".into(), Json::u64(condition_code as u64)),
            ]),
            FaultSpec::BackboneOutage {
                hop,
                start_ms,
                duration_ms,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("backbone_outage")),
                ("hop".into(), Json::u64(hop as u64)),
                ("start_ms".into(), Json::u64(start_ms)),
                ("duration_ms".into(), Json::u64(duration_ms)),
            ]),
            FaultSpec::RouterBlackout {
                router,
                start_ms,
                duration_ms,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("router_blackout")),
                ("router".into(), Json::u64(router as u64)),
                ("start_ms".into(), Json::u64(start_ms)),
                ("duration_ms".into(), Json::u64(duration_ms)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        match field_str(v, "kind")? {
            "access_flap" => Ok(FaultSpec::AccessFlap {
                client: field_usize(v, "client")?,
                up: field_bool(v, "up")?,
                start_ms: field_u64(v, "start_ms")?,
                end_ms: field_u64(v, "end_ms")?,
                period_ms: field_u64(v, "period_ms")?,
                down_ppm: field_u64(v, "down_ppm")?,
            }),
            "access_corruption" => Ok(FaultSpec::AccessCorruption {
                client: field_usize(v, "client")?,
                up: field_bool(v, "up")?,
                start_ms: field_u64(v, "start_ms")?,
                duration_ms: field_u64(v, "duration_ms")?,
                prob_ppm: field_u64(v, "prob_ppm")?,
            }),
            "access_fade" => Ok(FaultSpec::AccessFade {
                client: field_usize(v, "client")?,
                start_ms: field_u64(v, "start_ms")?,
                duration_ms: field_u64(v, "duration_ms")?,
                condition_code: field_u64(v, "condition_code")? as u8,
            }),
            "backbone_outage" => Ok(FaultSpec::BackboneOutage {
                hop: field_usize(v, "hop")?,
                start_ms: field_u64(v, "start_ms")?,
                duration_ms: field_u64(v, "duration_ms")?,
            }),
            "router_blackout" => Ok(FaultSpec::RouterBlackout {
                router: field_usize(v, "router")?,
                start_ms: field_u64(v, "start_ms")?,
                duration_ms: field_u64(v, "duration_ms")?,
            }),
            _ => Err(ScenarioError::Field("unknown fault kind")),
        }
    }
}

/// An admission-control budget for the collector service the telemetry
/// sub-campaign uploads into. Fields mirror
/// [`starlink_telemetry::AdmissionConfig`], kept integral for an exact
/// JSON round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorSpec {
    /// Per-session token refill, milli-batches per virtual second.
    pub session_rate_milli: u64,
    /// Per-session bucket capacity, whole batches.
    pub session_burst: u64,
    /// Ingest-queue depth bound, batches.
    pub queue_batches: u64,
    /// Global in-flight byte budget.
    pub global_bytes: u64,
    /// Ingest-queue drain rate, bytes per virtual second.
    pub drain_bytes_per_sec: u64,
}

impl CollectorSpec {
    /// The admission configuration this spec describes.
    pub fn config(&self) -> starlink_telemetry::AdmissionConfig {
        starlink_telemetry::AdmissionConfig {
            session_rate_milli: self.session_rate_milli,
            session_burst: self.session_burst,
            queue_batches: self.queue_batches,
            global_bytes: self.global_bytes,
            drain_bytes_per_sec: self.drain_bytes_per_sec,
        }
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            (
                "session_rate_milli".into(),
                Json::u64(self.session_rate_milli),
            ),
            ("session_burst".into(), Json::u64(self.session_burst)),
            ("queue_batches".into(), Json::u64(self.queue_batches)),
            ("global_bytes".into(), Json::u64(self.global_bytes)),
            (
                "drain_bytes_per_sec".into(),
                Json::u64(self.drain_bytes_per_sec),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        Ok(CollectorSpec {
            session_rate_milli: field_u64(v, "session_rate_milli")?,
            session_burst: field_u64(v, "session_burst")?,
            queue_batches: field_u64(v, "queue_batches")?,
            global_bytes: field_u64(v, "global_bytes")?,
            drain_bytes_per_sec: field_u64(v, "drain_bytes_per_sec")?,
        })
    }
}

/// Disk-fault injection for the sub-campaign's checkpoint chain. When
/// present, the runner drives the campaign day by day, sealing every
/// day-boundary checkpoint into a
/// [`starlink_telemetry::CheckpointStore`] over a seeded faulty disk,
/// and restarts + recovers after every injected power loss — the
/// recovery oracle then checks the chain's conservation counters, that
/// every adopted generation was a real sealed state, and that the final
/// dataset matches an uninterrupted run. All-integer for an exact JSON
/// round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageFaultSpec {
    /// Seed the [`starlink_telemetry::StorageFaultPlan`] is drawn from.
    pub seed: u64,
    /// Torn writes to inject.
    pub torn_writes: u64,
    /// Silent single-bit flips to inject.
    pub bit_rots: u64,
    /// Out-of-space write failures to inject.
    pub enospc: u64,
    /// Crash-around-rename faults to inject.
    pub crashes: u64,
    /// Verified generations the chain retains on disk.
    pub retain: u64,
}

impl StorageFaultSpec {
    /// Compiles the spec into its deterministic fault plan.
    pub fn plan(&self) -> starlink_telemetry::StorageFaultPlan {
        starlink_telemetry::StorageFaultPlan::from_seed(
            self.seed,
            self.torn_writes,
            self.bit_rots,
            self.enospc,
            self.crashes,
        )
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::u64(self.seed)),
            ("torn_writes".into(), Json::u64(self.torn_writes)),
            ("bit_rots".into(), Json::u64(self.bit_rots)),
            ("enospc".into(), Json::u64(self.enospc)),
            ("crashes".into(), Json::u64(self.crashes)),
            ("retain".into(), Json::u64(self.retain)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        Ok(StorageFaultSpec {
            seed: field_u64(v, "seed")?,
            torn_writes: field_u64(v, "torn_writes")?,
            bit_rots: field_u64(v, "bit_rots")?,
            enospc: field_u64(v, "enospc")?,
            crashes: field_u64(v, "crashes")?,
            retain: field_u64(v, "retain")?,
        })
    }
}

/// A population-scale sharded campaign run alongside the paper-faithful
/// sub-campaign: a struct-of-arrays subscriber population partitioned
/// across `shards` deterministic workers, checked by the sharding
/// oracles (merged-ledger conservation, and byte-identity of the merged
/// dataset against an unsharded reference run). All-integer for an
/// exact JSON round-trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationSpec {
    /// Campaign seed for the scaled engine.
    pub seed: u64,
    /// Simulated subscribers.
    pub users: u64,
    /// City-catalogue size.
    pub cities: u64,
    /// Campaign length, days.
    pub days: u64,
    /// Worker count for the sharded run (the reference run is always
    /// unsharded).
    pub shards: u64,
    /// Mean pages per user-day, thousandths.
    pub pages_per_day_milli: u64,
}

impl PopulationSpec {
    /// The scaled-campaign configuration this spec describes.
    pub fn config(&self) -> starlink_telemetry::ScaleConfig {
        starlink_telemetry::ScaleConfig {
            seed: self.seed,
            users: self.users,
            cities: self.cities as u32,
            days: self.days,
            pages_per_day_milli: self.pages_per_day_milli,
        }
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::u64(self.seed)),
            ("users".into(), Json::u64(self.users)),
            ("cities".into(), Json::u64(self.cities)),
            ("days".into(), Json::u64(self.days)),
            ("shards".into(), Json::u64(self.shards)),
            (
                "pages_per_day_milli".into(),
                Json::u64(self.pages_per_day_milli),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        Ok(PopulationSpec {
            seed: field_u64(v, "seed")?,
            users: field_u64(v, "users")?,
            cities: field_u64(v, "cities")?,
            days: field_u64(v, "days")?,
            shards: field_u64(v, "shards")?,
            pages_per_day_milli: field_u64(v, "pages_per_day_milli")?,
        })
    }
}

/// An optional telemetry-ingestion sub-campaign run alongside the packet
/// simulation, checked by the coverage oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Campaign seed.
    pub seed: u64,
    /// Campaign length, days.
    pub days: u64,
    /// Mean pages per day, thousandths (integer for exact round-trip).
    pub pages_per_day_milli: u64,
    /// Run the deterministic fault storm instead of a perfect uplink.
    pub fault_storm: bool,
    /// Upload through the framed collector service under this admission
    /// budget; `None` keeps the legacy direct path.
    pub collector: Option<CollectorSpec>,
    /// Checkpoint the campaign through a faultable on-disk chain;
    /// `None` skips persistence entirely.
    pub storage: Option<StorageFaultSpec>,
    /// Run a population-scale sharded campaign alongside and check its
    /// sharding oracles; `None` skips the scaled dimension.
    pub population: Option<PopulationSpec>,
}

impl TelemetrySpec {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("seed".into(), Json::u64(self.seed)),
            ("days".into(), Json::u64(self.days)),
            (
                "pages_per_day_milli".into(),
                Json::u64(self.pages_per_day_milli),
            ),
            ("fault_storm".into(), Json::Bool(self.fault_storm)),
            (
                "collector".into(),
                match self.collector {
                    Some(c) => c.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "storage".into(),
                match self.storage {
                    Some(s) => s.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "population".into(),
                match self.population {
                    Some(p) => p.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ScenarioError> {
        // Tolerate a missing key so artifacts saved before the collector
        // dimension existed still replay (as direct-path campaigns).
        let collector = match v.get("collector") {
            None | Some(Json::Null) => None,
            Some(c) => Some(CollectorSpec::from_json(c)?),
        };
        // Same tolerance for the storage dimension (PR 7): pre-storage
        // artifacts replay as non-persistent campaigns.
        let storage = match v.get("storage") {
            None | Some(Json::Null) => None,
            Some(s) => Some(StorageFaultSpec::from_json(s)?),
        };
        // And for the population dimension (PR 9): pre-population
        // artifacts replay without the scaled sub-campaign.
        let population = match v.get("population") {
            None | Some(Json::Null) => None,
            Some(p) => Some(PopulationSpec::from_json(p)?),
        };
        Ok(TelemetrySpec {
            seed: field_u64(v, "seed")?,
            days: field_u64(v, "days")?,
            pages_per_day_milli: field_u64(v, "pages_per_day_milli")?,
            fault_storm: field_bool(v, "fault_storm")?,
            collector,
            storage,
            population,
        })
    }
}

/// A complete generated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Network seed (drives link loss processes and fault jitter).
    pub seed: u64,
    /// Simulated horizon, milliseconds.
    pub horizon_ms: u64,
    /// Backbone routers in the chain (≥ 1).
    pub routers: usize,
    /// Clients, each with its own server behind the last router.
    pub clients: Vec<ClientSpec>,
    /// Scripted faults.
    pub faults: Vec<FaultSpec>,
    /// Optional telemetry sub-campaign.
    pub telemetry: Option<TelemetrySpec>,
    /// Optional mixed-CC coexistence experiment run alongside the packet
    /// simulation, checked by the fairness oracle.
    pub flow_mix: Option<FlowMixSpec>,
}

/// Why a scenario document failed to load.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The document was not valid JSON.
    Json(JsonError),
    /// A required field was missing or had the wrong type/value.
    Field(&'static str),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Json(e) => write!(f, "{e}"),
            ScenarioError::Field(m) => write!(f, "scenario field error: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl Scenario {
    /// Serialises to a compact JSON document.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("version".into(), Json::u64(1)),
            ("seed".into(), Json::u64(self.seed)),
            ("horizon_ms".into(), Json::u64(self.horizon_ms)),
            ("routers".into(), Json::u64(self.routers as u64)),
            (
                "clients".into(),
                Json::Arr(self.clients.iter().map(|c| c.to_json()).collect()),
            ),
            (
                "faults".into(),
                Json::Arr(self.faults.iter().map(|f| f.to_json()).collect()),
            ),
        ];
        match self.telemetry {
            Some(t) => fields.push(("telemetry".into(), t.to_json())),
            None => fields.push(("telemetry".into(), Json::Null)),
        }
        match &self.flow_mix {
            Some(m) => fields.push(("flow_mix".into(), m.to_json())),
            None => fields.push(("flow_mix".into(), Json::Null)),
        }
        Json::Obj(fields).render()
    }

    /// Loads a scenario from its JSON document.
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        let doc = parse(text).map_err(ScenarioError::Json)?;
        if field_u64(&doc, "version")? != 1 {
            return Err(ScenarioError::Field("unsupported version"));
        }
        let clients = field(&doc, "clients")?
            .as_arr()
            .ok_or(ScenarioError::Field("clients must be an array"))?
            .iter()
            .map(ClientSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let faults = field(&doc, "faults")?
            .as_arr()
            .ok_or(ScenarioError::Field("faults must be an array"))?
            .iter()
            .map(FaultSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let telemetry = match field(&doc, "telemetry")? {
            Json::Null => None,
            v => Some(TelemetrySpec::from_json(v)?),
        };
        // Tolerate a missing key so artifacts saved before the fairness
        // dimension existed still replay (without the coexistence run).
        let flow_mix = match doc.get("flow_mix") {
            None | Some(Json::Null) => None,
            Some(m) => Some(FlowMixSpec::from_json(m)?),
        };
        let scenario = Scenario {
            seed: field_u64(&doc, "seed")?,
            horizon_ms: field_u64(&doc, "horizon_ms")?,
            routers: field_usize(&doc, "routers")?,
            clients,
            faults,
            telemetry,
            flow_mix,
        };
        scenario.validate()?;
        Ok(scenario)
    }

    /// Structural sanity: indices in range, at least one router.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.routers == 0 {
            return Err(ScenarioError::Field("routers must be >= 1"));
        }
        if self.clients.is_empty() {
            return Err(ScenarioError::Field("at least one client required"));
        }
        for fault in &self.faults {
            if let Some(c) = fault.client() {
                if c >= self.clients.len() {
                    return Err(ScenarioError::Field("fault references missing client"));
                }
            }
            match *fault {
                FaultSpec::BackboneOutage { hop, .. } if hop + 1 >= self.routers => {
                    return Err(ScenarioError::Field("fault references missing hop"));
                }
                FaultSpec::RouterBlackout { router, .. } if router >= self.routers => {
                    return Err(ScenarioError::Field("fault references missing router"));
                }
                FaultSpec::AccessFade { condition_code, .. }
                    if WeatherCondition::from_code(condition_code).is_none() =>
                {
                    return Err(ScenarioError::Field("unknown weather code"));
                }
                _ => {}
            }
        }
        if let Some(m) = &self.flow_mix {
            m.validate()?;
        }
        Ok(())
    }
}

/// Parses a congestion-control label (as produced by
/// [`CcAlgorithm::label`]).
pub fn parse_algo(label: &str) -> Result<CcAlgorithm, ScenarioError> {
    CcAlgorithm::ALL
        .into_iter()
        .find(|a| a.label().eq_ignore_ascii_case(label))
        .ok_or(ScenarioError::Field("unknown congestion-control label"))
}

pub(crate) fn field<'a>(v: &'a Json, key: &'static str) -> Result<&'a Json, ScenarioError> {
    v.get(key).ok_or(ScenarioError::Field(key))
}

pub(crate) fn field_u64(v: &Json, key: &'static str) -> Result<u64, ScenarioError> {
    field(v, key)?.as_u64().ok_or(ScenarioError::Field(key))
}

pub(crate) fn field_usize(v: &Json, key: &'static str) -> Result<usize, ScenarioError> {
    field(v, key)?.as_usize().ok_or(ScenarioError::Field(key))
}

pub(crate) fn field_bool(v: &Json, key: &'static str) -> Result<bool, ScenarioError> {
    field(v, key)?.as_bool().ok_or(ScenarioError::Field(key))
}

pub(crate) fn field_str<'a>(v: &'a Json, key: &'static str) -> Result<&'a str, ScenarioError> {
    field(v, key)?.as_str().ok_or(ScenarioError::Field(key))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            seed: u64::MAX - 7,
            horizon_ms: 12_000,
            routers: 2,
            clients: vec![
                ClientSpec {
                    up: LinkSpec {
                        delay_us: 20_000,
                        rate_kbps: 10_000,
                        loss_ppm: 1_500,
                        queue_bytes: 128_000,
                    },
                    down: LinkSpec {
                        delay_us: 22_000,
                        rate_kbps: 40_000,
                        loss_ppm: 900,
                        queue_bytes: 256_000,
                    },
                    workload: Workload::TcpStream {
                        algo: CcAlgorithm::Bbr,
                        start_ms: 100,
                        stop_ms: 10_000,
                    },
                },
                ClientSpec {
                    up: LinkSpec {
                        delay_us: 5_000,
                        rate_kbps: 2_000,
                        loss_ppm: 0,
                        queue_bytes: 64_000,
                    },
                    down: LinkSpec {
                        delay_us: 5_000,
                        rate_kbps: 2_000,
                        loss_ppm: 0,
                        queue_bytes: 64_000,
                    },
                    workload: Workload::Ping {
                        count: 20,
                        interval_ms: 250,
                        size: 64,
                    },
                },
            ],
            faults: vec![
                FaultSpec::AccessFlap {
                    client: 0,
                    up: false,
                    start_ms: 1_000,
                    end_ms: 9_000,
                    period_ms: 1_500,
                    down_ppm: 30_000,
                },
                FaultSpec::RouterBlackout {
                    router: 1,
                    start_ms: 4_000,
                    duration_ms: 500,
                },
            ],
            telemetry: Some(TelemetrySpec {
                seed: 99,
                days: 2,
                pages_per_day_milli: 8_500,
                fault_storm: true,
                collector: Some(CollectorSpec {
                    session_rate_milli: 750,
                    session_burst: 2,
                    queue_batches: 4,
                    global_bytes: 16_000,
                    drain_bytes_per_sec: 2_000,
                }),
                storage: Some(StorageFaultSpec {
                    seed: 4_242,
                    torn_writes: 1,
                    bit_rots: 1,
                    enospc: 0,
                    crashes: 2,
                    retain: 2,
                }),
                population: Some(PopulationSpec {
                    seed: 31_337,
                    users: 250,
                    cities: 12,
                    days: 2,
                    shards: 3,
                    pages_per_day_milli: 6_500,
                }),
            }),
            flow_mix: Some(FlowMixSpec {
                seed: 0xFA1E55,
                mix: vec![
                    CcAlgorithm::Bbr2,
                    CcAlgorithm::Cubic,
                    CcAlgorithm::Bbr,
                    CcAlgorithm::Reno,
                ],
                bottleneck_kbps: 10_000,
                queue_bytes: 24_000,
                access_delay_us: 15_000,
                duration_ms: 4_000,
            }),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let s = sample();
        let text = s.to_json();
        let back = Scenario::from_json(&text).unwrap();
        assert_eq!(back, s);
        // And the re-rendered document is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn validation_rejects_dangling_references() {
        let mut s = sample();
        s.faults.push(FaultSpec::AccessFade {
            client: 9,
            start_ms: 0,
            duration_ms: 1,
            condition_code: 0,
        });
        assert!(Scenario::from_json(&s.to_json()).is_err());
    }

    #[test]
    fn pre_collector_artifacts_still_load() {
        // Saved failing-seed artifacts predating the collector dimension
        // have no "collector" key; they must replay as direct-path runs.
        let mut s = sample();
        s.telemetry.as_mut().unwrap().collector = None;
        let text = s
            .to_json()
            .replace(",\"collector\":null", "")
            .replace("\"collector\":null,", "");
        assert!(!text.contains("collector"));
        assert_eq!(Scenario::from_json(&text).unwrap(), s);
    }

    #[test]
    fn pre_storage_artifacts_still_load() {
        // Same tolerance one dimension later: artifacts predating the
        // storage dimension have no "storage" key and must replay as
        // non-persistent campaigns.
        let mut s = sample();
        s.telemetry.as_mut().unwrap().storage = None;
        let text = s
            .to_json()
            .replace(",\"storage\":null", "")
            .replace("\"storage\":null,", "");
        assert!(!text.contains("\"storage\""));
        assert_eq!(Scenario::from_json(&text).unwrap(), s);
    }

    #[test]
    fn pre_population_artifacts_still_load() {
        // And one dimension later again: artifacts predating the
        // population dimension have no "population" key and must replay
        // without the scaled sub-campaign.
        let mut s = sample();
        s.telemetry.as_mut().unwrap().population = None;
        let text = s
            .to_json()
            .replace(",\"population\":null", "")
            .replace("\"population\":null,", "");
        assert!(!text.contains("\"population\""));
        assert_eq!(Scenario::from_json(&text).unwrap(), s);
    }

    #[test]
    fn pre_flowmix_artifacts_still_load() {
        // Artifacts predating the fairness dimension have no "flow_mix"
        // key and must replay without the coexistence experiment.
        let mut s = sample();
        s.flow_mix = None;
        let text = s
            .to_json()
            .replace(",\"flow_mix\":null", "")
            .replace("\"flow_mix\":null,", "");
        assert!(!text.contains("flow_mix"));
        assert_eq!(Scenario::from_json(&text).unwrap(), s);
    }

    #[test]
    fn invalid_flow_mix_is_rejected() {
        let mut s = sample();
        s.flow_mix.as_mut().unwrap().queue_bytes = 100;
        assert!(Scenario::from_json(&s.to_json()).is_err());
    }

    #[test]
    fn algo_labels_round_trip() {
        for algo in CcAlgorithm::ALL {
            assert_eq!(parse_algo(algo.label()).unwrap(), algo);
        }
        assert!(parse_algo("quic").is_err());
    }
}
