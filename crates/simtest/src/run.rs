//! The scenario runner: builds the network a [`Scenario`] describes,
//! attaches workloads, applies the fault script, runs to the horizon,
//! drains to quiescence, and returns a [`RunReport`] snapshot for the
//! oracles.
//!
//! Determinism contract: everything the runner does is a pure function of
//! the scenario (plus [`RunOptions`]) — node and link indices follow the
//! construction order below, timers and connection ids are derived from
//! client indices, and no wall-clock or host state is consulted. Running
//! the same scenario twice must produce byte-identical [`RunReport`]s;
//! the twin-run oracle enforces exactly that.

use crate::fairness::{run_fairness, FairnessReport};
use crate::scenario::{
    FaultSpec, PopulationSpec, Scenario, StorageFaultSpec, TelemetrySpec, Workload,
};
use starlink_channel::WeatherCondition;
use starlink_faults::{FaultPlan, LinkRef};
use starlink_netsim::{
    Ctx, Handler, LinkConfig, LinkStats, Network, NetworkStats, NodeId, NodeKind, NodeStats,
    Packet, Payload,
};
use starlink_simcore::{Bytes, DataRate, SimDuration, SimTime};
use starlink_telemetry::{
    CampaignConfig, CheckpointStore, Collection, FaultyDisk, IngestOptions, ResilientCampaign,
    ScaledCampaign, SimDisk, StorageError,
};
use starlink_transport::tcp::TcpConfig;
use starlink_transport::{CcAlgorithm, TcpReceiver, TcpSender, UdpBlaster, UdpSink};
use std::cell::RefCell;
use std::rc::Rc;

/// Runner knobs that are not part of the scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Test-only conservation-bug injection: when non-zero, every N-th
    /// link arrival skips its `delivered` increment (see
    /// `Network::debug_skip_link_delivered_every`). The oracles must
    /// catch this; it exists to prove they can.
    pub inject_bug_every: u64,
    /// Test-only shed-accounting-bug injection for service-mode telemetry
    /// sub-campaigns: every N-th shed-terminal batch skips its coverage
    /// increment (see
    /// `ResilientCampaign::debug_skip_shed_accounting_every`). The
    /// coverage oracle must catch this; it exists to prove it can.
    pub inject_shed_miscount_every: u64,
    /// Test-only manifest-miscount injection for storage-mode telemetry
    /// sub-campaigns: every N-th manifest seal silently undercounts the
    /// chain's `written` counter (see
    /// `CheckpointStore::debug_manifest_miscount_every`). The storage
    /// conservation oracle must catch this; it exists to prove it can
    /// (`swarm --inject-manifest-bug`).
    pub inject_manifest_miscount_every: u64,
    /// Test-only shard-bug injection for population-scale sub-campaigns:
    /// every N-th local user of shard 1 has its batches dropped after
    /// generation (see `ScaledCampaign::debug_drop_user_in_shard_every`).
    /// Invisible unsharded, it breaks both merged-ledger conservation and
    /// the sharded-vs-reference digest; the sharding oracles must catch
    /// it (`swarm --inject-shard-bug`).
    pub inject_shard_bug_every: u64,
    /// Test-only unfair-flow injection for fairness sub-runs: every N-th
    /// BBRv2 flow in the mix stops honouring its loss-rate ceiling (see
    /// `CongestionControl::debug_ignore_loss_ceiling`), becoming the
    /// bully the retransmit-rate fairness oracle must catch
    /// (`swarm --inject-unfair-bug`).
    pub inject_unfair_bug_every: u64,
}

/// Ground truth for one TCP flow, snapshotted after quiescence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowReport {
    /// The client the flow belongs to.
    pub client: usize,
    /// Congestion-control algorithm.
    pub algo: CcAlgorithm,
    /// Segment size, bytes.
    pub mss: u64,
    /// Bytes cumulatively acknowledged.
    pub bytes_acked: u64,
    /// Smallest congestion window ever observed.
    pub min_cwnd_seen: Option<u64>,
    /// Final slow-start threshold (`None` for BBR).
    pub last_ssthresh: Option<u64>,
    /// RTT samples taken.
    pub rtt_samples: u64,
    /// Non-positive RTT samples (must stay zero).
    pub zero_rtt_samples: u64,
    /// RTO episodes.
    pub rto_count: u64,
}

/// Ground truth for the checkpoint chain a storage-mode sub-campaign
/// drove through injected disk faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageReport {
    /// Generations durably sealed (per the final manifest counters).
    pub written: u64,
    /// Generations live on disk at the end.
    pub live: u64,
    /// Generations removed by retention pruning.
    pub pruned: u64,
    /// Generations quarantined by recovery walks.
    pub quarantined: u64,
    /// Checkpoint attempts shed without killing the campaign.
    pub shed: u64,
    /// Injected power losses survived (store or recovery).
    pub crashes: u64,
    /// Restarts that recovered and resumed from a generation.
    pub recoveries: u64,
    /// `written == live + pruned + quarantined` held after every seal
    /// and at the end.
    pub conservation_held: bool,
    /// Every blob recovery adopted was byte-identical to a checkpoint
    /// the campaign actually produced.
    pub recovered_in_ledger: bool,
    /// The crashed-and-recovered run's final dataset digest equals the
    /// uninterrupted reference run's.
    pub digest_matches: bool,
}

/// Ground truth for the population-scale sharded sub-campaign: the
/// sharded run's merged ledger, compared against an unsharded reference
/// run of the same configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationReport {
    /// `delivered + quarantined + shed + lost == generated` held per
    /// user over the merged struct-of-arrays ledger.
    pub sums_hold: bool,
    /// The sharded run's dataset digest equals the unsharded reference.
    pub digest_matches: bool,
    /// Unsharded reference digest.
    pub reference_digest: u64,
    /// Merged sharded-run digest.
    pub sharded_digest: u64,
    /// Records generated by the sharded run.
    pub generated: u64,
    /// delivered + quarantined + shed + lost in the merged ledger.
    pub accounted: u64,
    /// Worker count the sharded run used.
    pub shards: u64,
}

/// Ground truth for the telemetry sub-campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryReport {
    /// `delivered + quarantined + shed + lost == generated` per user.
    pub sums_hold: bool,
    /// Records generated.
    pub generated: u64,
    /// Records delivered.
    pub delivered: u64,
    /// Records quarantined.
    pub quarantined: u64,
    /// Records shed by collector-service admission control.
    pub shed: u64,
    /// Records lost.
    pub lost: u64,
    /// Checkpoint-chain accounting, when the spec persists to disk.
    pub storage: Option<StorageReport>,
    /// Sharded population-scale accounting, when the spec scales out.
    pub population: Option<PopulationReport>,
}

/// Everything the oracles inspect about one finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Streaming digest over the full event trace.
    pub digest: u64,
    /// Events dispatched.
    pub events: u64,
    /// Virtual-clock regressions observed by the trace (must be zero).
    pub clock_regressions: u64,
    /// Same-link arrival-order violations (must be zero).
    pub fifo_violations: u64,
    /// Whether the event queue fully drained after handler detach.
    pub queue_drained: bool,
    /// Per-link counters, in construction order.
    pub links: Vec<LinkStats>,
    /// Per-node arrival accounting, in construction order.
    pub nodes: Vec<NodeStats>,
    /// Network-wide counters.
    pub network: NetworkStats,
    /// Per-TCP-flow ground truth.
    pub flows: Vec<FlowReport>,
    /// Echo replies received across all ping workloads.
    pub ping_replies: u64,
    /// Telemetry sub-campaign accounting, when the scenario has one.
    pub telemetry: Option<TelemetryReport>,
    /// Mixed-CC coexistence accounting, when the scenario carries a
    /// [`crate::fairness::FlowMixSpec`].
    pub fairness: Option<FairnessReport>,
}

/// Node/link indices of the topology the runner builds, in construction
/// order. Exposed so faults (and tests) can address links symbolically.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Backbone routers, chained r0 — r1 — … .
    pub routers: Vec<NodeId>,
    /// Client hosts, one per [`Scenario::clients`] entry.
    pub clients: Vec<NodeId>,
    /// Server hosts, one per client, behind the last router.
    pub servers: Vec<NodeId>,
    /// Backbone hop links as `(forward, reverse)` indices.
    pub backbone: Vec<(usize, usize)>,
    /// Client → r0 access links.
    pub access_up: Vec<usize>,
    /// r0 → client access links.
    pub access_down: Vec<usize>,
}

/// Builds the network and topology for `scenario` (no workloads yet).
pub fn build_topology(scenario: &Scenario, net: &mut Network) -> Topology {
    let routers: Vec<NodeId> = (0..scenario.routers)
        .map(|i| net.add_node(&format!("r{i}"), NodeKind::Router))
        .collect();
    let mut clients = Vec::new();
    let mut servers = Vec::new();
    for i in 0..scenario.clients.len() {
        clients.push(net.add_node(&format!("c{i}"), NodeKind::Host));
        servers.push(net.add_node(&format!("s{i}"), NodeKind::Host));
    }

    // Backbone: generous fixed links between adjacent routers.
    let backbone_link =
        || LinkConfig::fixed(SimDuration::from_millis(2), DataRate::from_gbps(1), 0.0);
    let backbone: Vec<(usize, usize)> = routers
        .windows(2)
        .map(|pair| {
            let fwd = net.connect(pair[0], pair[1], backbone_link());
            let rev = net.connect(pair[1], pair[0], backbone_link());
            (fwd, rev)
        })
        .collect();

    let first = routers[0];
    let last = *routers.last().expect("validated: at least one router");
    let mut access_up = Vec::new();
    let mut access_down = Vec::new();
    for (i, spec) in scenario.clients.iter().enumerate() {
        access_up.push(net.connect(clients[i], first, spec.up.config()));
        access_down.push(net.connect(first, clients[i], spec.down.config()));
        net.connect(last, servers[i], LinkConfig::ethernet());
        net.connect(servers[i], last, LinkConfig::ethernet());

        let mut path = vec![clients[i]];
        path.extend(&routers);
        path.push(servers[i]);
        net.route_linear(&path);
    }

    Topology {
        routers,
        clients,
        servers,
        backbone,
        access_up,
        access_down,
    }
}

/// Compiles the scenario's fault script against the built topology.
pub fn fault_plan(scenario: &Scenario, topo: &Topology) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for fault in &scenario.faults {
        match *fault {
            FaultSpec::AccessFlap {
                client,
                up,
                start_ms,
                end_ms,
                period_ms,
                down_ppm,
            } => {
                let link = if up {
                    topo.access_up[client]
                } else {
                    topo.access_down[client]
                };
                plan.link_flap(
                    LinkRef::Index(link),
                    SimTime::from_millis(start_ms),
                    SimTime::from_millis(end_ms),
                    SimDuration::from_millis(period_ms.max(1)),
                    down_ppm as f64 / 1e6,
                );
            }
            FaultSpec::AccessCorruption {
                client,
                up,
                start_ms,
                duration_ms,
                prob_ppm,
            } => {
                let link = if up {
                    topo.access_up[client]
                } else {
                    topo.access_down[client]
                };
                plan.burst_corruption(
                    LinkRef::Index(link),
                    SimTime::from_millis(start_ms),
                    SimDuration::from_millis(duration_ms),
                    prob_ppm as f64 / 1e6,
                );
            }
            FaultSpec::AccessFade {
                client,
                start_ms,
                duration_ms,
                condition_code,
            } => {
                let condition = WeatherCondition::from_code(condition_code)
                    .expect("validated: known weather code");
                plan.weather_fade(
                    LinkRef::Index(topo.access_down[client]),
                    SimTime::from_millis(start_ms),
                    SimDuration::from_millis(duration_ms),
                    condition,
                );
            }
            FaultSpec::BackboneOutage {
                hop,
                start_ms,
                duration_ms,
            } => {
                let (fwd, rev) = topo.backbone[hop];
                plan.satellite_outage(
                    vec![LinkRef::Index(fwd), LinkRef::Index(rev)],
                    SimTime::from_millis(start_ms),
                    SimDuration::from_millis(duration_ms),
                );
            }
            FaultSpec::RouterBlackout {
                router,
                start_ms,
                duration_ms,
            } => {
                plan.gateway_blackout(
                    topo.routers[router],
                    SimTime::from_millis(start_ms),
                    SimDuration::from_millis(duration_ms),
                );
            }
        }
    }
    plan
}

/// The handover edges a scenario's access-link flaps imply for `client`:
/// one path-change hint per period boundary inside each flap window,
/// strictly after `start_ms` (a hint before the connection starts has
/// nothing to act on). This is the schedule-driven stand-in for a real
/// stack's link-layer handover notifications — the congestion controller
/// hears about reconfigurations from the scenario, never from tracing,
/// so runs stay identical whether or not observability is attached.
pub fn path_change_schedule(scenario: &Scenario, client: usize, start_ms: u64) -> Vec<SimTime> {
    let mut edges_ms: Vec<u64> = Vec::new();
    for fault in &scenario.faults {
        if let FaultSpec::AccessFlap {
            client: c,
            start_ms: flap_start,
            end_ms,
            period_ms,
            ..
        } = *fault
        {
            if c != client {
                continue;
            }
            let period = period_ms.max(1);
            let mut t = flap_start;
            while t < end_ms && edges_ms.len() < 256 {
                if t > start_ms {
                    edges_ms.push(t);
                }
                t += period;
            }
        }
    }
    edges_ms.sort_unstable();
    edges_ms.dedup();
    edges_ms.into_iter().map(SimTime::from_millis).collect()
}

/// Per-run counter shared between ping handlers and the report.
#[derive(Debug, Default)]
struct PingStats {
    replies: u64,
}

/// A minimal ICMP-echo workload handler: sends `count` probes, one per
/// `interval`, and counts the auto-generated replies.
struct Pinger {
    peer: NodeId,
    count: u64,
    sent: u64,
    interval: SimDuration,
    size: Bytes,
    stats: Rc<RefCell<PingStats>>,
}

impl Pinger {
    const TOKEN: u64 = 0x5049_4E47; // "PING"
}

impl Handler for Pinger {
    fn on_packet(&mut self, _ctx: &mut Ctx, packet: &Packet) {
        if matches!(packet.payload, Payload::EchoReply { .. }) {
            self.stats.borrow_mut().replies += 1;
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        if token != Self::TOKEN || self.sent >= self.count {
            return;
        }
        self.sent += 1;
        ctx.send(
            self.peer,
            self.size,
            Payload::EchoRequest { probe: self.sent },
        );
        if self.sent < self.count {
            ctx.set_timer(ctx.now + self.interval, Self::TOKEN);
        }
    }
}

/// Runs `scenario` once and snapshots the result.
pub fn run(scenario: &Scenario, opts: &RunOptions) -> RunReport {
    let mut net = Network::new(scenario.seed);
    net.enable_trace();
    if opts.inject_bug_every > 0 {
        net.debug_skip_link_delivered_every(opts.inject_bug_every);
    }

    let topo = build_topology(scenario, &mut net);
    fault_plan(scenario, &topo)
        .apply(&mut net)
        .expect("validated scenario produces a resolvable plan");

    // Attach workloads. Connection/flow ids are the client index + 1 so
    // repeated runs can never collide or depend on anything external.
    let mut tcp_stats = Vec::new();
    let ping_stats = Rc::new(RefCell::new(PingStats::default()));
    for (i, spec) in scenario.clients.iter().enumerate() {
        let (client, server) = (topo.clients[i], topo.servers[i]);
        let conn = i as u64 + 1;
        match spec.workload {
            // TCP transfers run in the download direction — the server
            // transmits toward the client's access link, like the
            // paper's browser-side measurements — so access-link faults
            // hit the data path, not just the ACK stream.
            Workload::TcpBulk {
                algo,
                total_bytes,
                start_ms,
            } => {
                let config = TcpConfig::bulk(conn, algo, total_bytes)
                    .with_path_changes(path_change_schedule(scenario, i, start_ms));
                let (sender, stats) = TcpSender::new(client, config);
                let (receiver, _rstats) = TcpReceiver::new(conn, SimDuration::from_secs(1));
                net.attach_handler(server, Box::new(sender));
                net.attach_handler(client, Box::new(receiver));
                net.arm_timer(
                    server,
                    SimTime::from_millis(start_ms),
                    TcpSender::start_token(),
                );
                tcp_stats.push((i, algo, stats));
            }
            Workload::TcpStream {
                algo,
                start_ms,
                stop_ms,
            } => {
                let config = TcpConfig::stream_until(conn, algo, SimTime::from_millis(stop_ms))
                    .with_path_changes(path_change_schedule(scenario, i, start_ms));
                let (sender, stats) = TcpSender::new(client, config);
                let (receiver, _rstats) = TcpReceiver::new(conn, SimDuration::from_secs(1));
                net.attach_handler(server, Box::new(sender));
                net.attach_handler(client, Box::new(receiver));
                net.arm_timer(
                    server,
                    SimTime::from_millis(start_ms),
                    TcpSender::start_token(),
                );
                tcp_stats.push((i, algo, stats));
            }
            Workload::UdpBlast {
                rate_kbps,
                payload,
                stop_ms,
            } => {
                let blaster = UdpBlaster::new(
                    server,
                    conn,
                    payload,
                    starlink_simcore::DataRate::from_kbps(rate_kbps.max(1)),
                    SimTime::from_millis(stop_ms),
                );
                let (sink, _sstats) = UdpSink::new(conn, SimDuration::from_secs(1));
                net.attach_handler(client, Box::new(blaster));
                net.attach_handler(server, Box::new(sink));
                net.arm_timer(client, SimTime::ZERO, UdpBlaster::start_token());
            }
            Workload::Ping {
                count,
                interval_ms,
                size,
            } => {
                let pinger = Pinger {
                    peer: server,
                    count,
                    sent: 0,
                    interval: SimDuration::from_millis(interval_ms.max(1)),
                    size: Bytes::new(size),
                    stats: Rc::clone(&ping_stats),
                };
                net.attach_handler(client, Box::new(pinger));
                net.arm_timer(client, SimTime::ZERO, Pinger::TOKEN);
            }
        }
    }

    // Run to the horizon, then detach every handler (silencing timer
    // re-arming) and drain: whatever is still in flight lands, and the
    // queue must empty — the drain oracle checks it did.
    net.run_until(SimTime::from_millis(scenario.horizon_ms));
    for n in 0..net.node_count() {
        net.detach_handler(NodeId(n));
    }
    net.run_to_idle();

    let trace = net.trace().expect("trace enabled above");
    let flows = tcp_stats
        .iter()
        .map(|(client, algo, stats)| {
            let s = stats.borrow();
            FlowReport {
                client: *client,
                algo: *algo,
                mss: 1_460,
                bytes_acked: s.bytes_acked,
                min_cwnd_seen: s.min_cwnd_seen,
                last_ssthresh: s.last_ssthresh,
                rtt_samples: s.rtt_samples,
                zero_rtt_samples: s.zero_rtt_samples,
                rto_count: s.rto_count,
            }
        })
        .collect();

    let ping_replies = ping_stats.borrow().replies;
    RunReport {
        digest: trace.digest(),
        events: trace.events(),
        clock_regressions: trace.clock_regressions(),
        fifo_violations: trace.fifo_violations(),
        queue_drained: !net.has_pending_events(),
        links: (0..net.link_count()).map(|l| net.link_stats(l)).collect(),
        nodes: (0..net.node_count())
            .map(|n| net.node_stats(NodeId(n)))
            .collect(),
        network: net.stats(),
        flows,
        ping_replies,
        telemetry: scenario
            .telemetry
            .as_ref()
            .map(|spec| run_telemetry(spec, opts)),
        fairness: scenario
            .flow_mix
            .as_ref()
            .map(|spec| run_fairness(spec, opts)),
    }
}

/// Runs the telemetry sub-campaign and folds its coverage accounting.
fn run_telemetry(spec: &TelemetrySpec, opts: &RunOptions) -> TelemetryReport {
    let config = CampaignConfig {
        seed: spec.seed,
        days: spec.days,
        pages_per_day: spec.pages_per_day_milli as f64 / 1_000.0,
        ..CampaignConfig::default()
    };
    let mut options = if spec.fault_storm {
        // 28 matches the resilient campaign's fixed user population (the
        // same figure the repo's ingestion tests use).
        IngestOptions::fault_storm(28, spec.days)
    } else {
        IngestOptions::perfect()
    };
    options.service = spec.collector.map(|c| c.config());

    let new_campaign = |config: &CampaignConfig, options: &IngestOptions| {
        let mut campaign = ResilientCampaign::new(config.clone(), options.clone());
        if opts.inject_shed_miscount_every > 0 {
            campaign.debug_skip_shed_accounting_every(opts.inject_shed_miscount_every);
        }
        campaign
    };

    let (collection, storage) = match &spec.storage {
        Some(storage) => {
            // Uninterrupted reference first: the recovery oracle compares
            // the faulted, restarted run's final dataset against it.
            let reference = new_campaign(&config, &options).run_to_end();
            let (collection, report) =
                run_telemetry_storage(storage, &config, &options, opts, &new_campaign);
            let digest_matches = collection.dataset.digest() == reference.dataset.digest();
            (
                collection,
                Some(StorageReport {
                    digest_matches,
                    ..report
                }),
            )
        }
        None => (new_campaign(&config, &options).run_to_end(), None),
    };

    let totals = collection.coverage.total();
    TelemetryReport {
        sums_hold: collection.coverage.sums_hold(),
        generated: totals.generated,
        delivered: totals.delivered,
        quarantined: totals.quarantined,
        shed: totals.shed,
        lost: totals.lost,
        storage,
        population: spec.population.map(|p| run_population(&p, opts)),
    }
}

/// Runs the population-scale sharded campaign twice — once unsharded as
/// the reference, once at the spec's worker count (with any planted
/// shard bug applied to the sharded run only) — and folds the pair into
/// the report the sharding oracles check.
fn run_population(spec: &PopulationSpec, opts: &RunOptions) -> PopulationReport {
    let config = spec.config();
    let mut reference = ScaledCampaign::new(config);
    reference.run_to_end(1);

    let mut sharded = ScaledCampaign::new(config);
    if opts.inject_shard_bug_every > 0 {
        sharded.debug_drop_user_in_shard_every(opts.inject_shard_bug_every);
    }
    sharded.run_to_end(spec.shards.max(1) as usize);

    let totals = sharded.ledger().totals();
    PopulationReport {
        sums_hold: sharded.ledger().sums_hold(),
        digest_matches: sharded.dataset_digest() == reference.dataset_digest(),
        reference_digest: reference.dataset_digest(),
        sharded_digest: sharded.dataset_digest(),
        generated: totals.generated,
        accounted: totals.delivered + totals.quarantined + totals.shed + totals.lost,
        shards: spec.shards,
    }
}

/// Drives the campaign day by day, sealing every day-boundary checkpoint
/// into a [`CheckpointStore`] over a seeded faulty [`SimDisk`]. Every
/// injected power loss restarts the disk and re-opens the store: recovery
/// walks back to the newest valid generation and the campaign resumes
/// from its blob, re-running the lost days. Faults are one-shot, so the
/// crash/restart loop always terminates. Returns the finished collection
/// plus the chain's accounting (`digest_matches` is filled in by the
/// caller, which owns the reference run).
fn run_telemetry_storage(
    storage: &StorageFaultSpec,
    config: &CampaignConfig,
    options: &IngestOptions,
    opts: &RunOptions,
    new_campaign: &dyn Fn(&CampaignConfig, &IngestOptions) -> ResilientCampaign,
) -> (Collection, StorageReport) {
    // The ledger of every checkpoint blob the campaign handed to the
    // store. Recovery may only ever adopt one of these: a torn or rotted
    // write differs from its ledger entry, but then the CRC inside the
    // blob fails validation and the walk quarantines it instead.
    let mut sealed: Vec<Vec<u8>> = Vec::new();
    let mut crashes = 0u64;
    let mut recoveries = 0u64;
    let mut conservation_held = true;
    let mut recovered_in_ledger = true;

    let vconfig = config.clone();
    let voptions = options.clone();
    let mut validate = move |blob: &[u8]| {
        ResilientCampaign::resume(vconfig.clone(), voptions.clone(), blob).is_ok()
    };

    let mut disk = Some(FaultyDisk::new(Box::new(SimDisk::new()), storage.plan()));
    loop {
        let this_disk = disk.take().expect("every path re-stows the disk");
        let (mut store, recovered) = match CheckpointStore::open(
            this_disk,
            storage.retain.max(1),
            &mut validate,
            SimTime::ZERO,
        ) {
            Ok(opened) => opened,
            Err(mut failure) => {
                // A fault fired during recovery itself. Crashes need a
                // disk restart; anything else (ENOSPC on the manifest
                // seal) just retries — either way the one-shot fault is
                // consumed, so this loop terminates.
                if failure.error == StorageError::Crashed {
                    crashes += 1;
                    failure.disk.restart();
                }
                disk = Some(failure.disk);
                continue;
            }
        };
        if opts.inject_manifest_miscount_every > 0 {
            store.debug_manifest_miscount_every(opts.inject_manifest_miscount_every);
        }

        let mut campaign = match &recovered {
            Some(r) => {
                recoveries += 1;
                recovered_in_ledger &= sealed.iter().any(|blob| blob == &r.blob);
                ResilientCampaign::resume(config.clone(), options.clone(), &r.blob)
                    .expect("recovery validated this blob")
            }
            None => new_campaign(config, options),
        };
        if opts.inject_shed_miscount_every > 0 {
            campaign.debug_skip_shed_accounting_every(opts.inject_shed_miscount_every);
        }

        let mut store = Some(store);
        while campaign.run_day() {
            let day = campaign.next_day();
            let blob = campaign.checkpoint();
            sealed.push(blob.clone());
            let open_store = store.as_mut().expect("present until a crash");
            match open_store.store(&blob, SimTime::from_secs(day * 86_400)) {
                Ok(_) => {}
                Err(StorageError::Crashed) => {
                    crashes += 1;
                    let mut d = store.take().expect("present until a crash").into_disk();
                    d.restart();
                    disk = Some(d);
                    break;
                }
                // Shed (ENOSPC or plain I/O): the campaign keeps running
                // without this generation.
                Err(_) => {}
            }
            conservation_held &= store
                .as_ref()
                .expect("no crash")
                .stats()
                .conservation_holds();
        }
        let Some(store) = store else {
            // Crashed mid-run: the restarted disk goes back around.
            continue;
        };

        let stats = store.stats();
        conservation_held &= stats.conservation_holds();
        let report = StorageReport {
            written: stats.written,
            live: stats.live,
            pruned: stats.pruned,
            quarantined: stats.quarantined,
            shed: stats.shed,
            crashes,
            recoveries,
            conservation_held,
            recovered_in_ledger,
            digest_matches: true, // caller compares against the reference
        };
        return (campaign.finish(), report);
    }
}

/// Runs `scenario` twice; the pair feeds the twin-run determinism oracle.
pub fn run_twin(scenario: &Scenario, opts: &RunOptions) -> (RunReport, RunReport) {
    (run(scenario, opts), run(scenario, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn twin_runs_are_identical() {
        for seed in [3, 17, 99] {
            let scenario = gen::generate(seed);
            let (a, b) = run_twin(&scenario, &RunOptions::default());
            assert_eq!(a, b, "seed {seed} diverged");
        }
    }

    #[test]
    fn queue_drains_and_conserves_without_faults() {
        let scenario = gen::generate(7);
        let report = run(&scenario, &RunOptions::default());
        assert!(report.queue_drained);
        assert!(report.events > 0);
        for (i, link) in report.links.iter().enumerate() {
            // `transmitted` counts only accepted packets, so at
            // quiescence every one of them must have arrived.
            assert_eq!(link.transmitted, link.delivered, "link {i} leaks packets");
        }
        for (i, node) in report.nodes.iter().enumerate() {
            assert!(node.conserved(), "node {i}: {node:?}");
        }
    }

    #[test]
    fn injected_bug_breaks_link_conservation() {
        let scenario = gen::generate(11);
        let clean = run(&scenario, &RunOptions::default());
        let buggy = run(
            &scenario,
            &RunOptions {
                inject_bug_every: 10,
                ..RunOptions::default()
            },
        );
        let leaks = |r: &RunReport| {
            r.links
                .iter()
                .map(|l| l.transmitted - l.delivered)
                .sum::<u64>()
        };
        assert_eq!(leaks(&clean), 0);
        assert!(leaks(&buggy) > 0, "bug hook had no effect");
    }
}
