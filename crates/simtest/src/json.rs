//! Minimal JSON used to serialise failing scenarios for replay.
//!
//! The workspace has no registry access, so there is no serde. This is a
//! small hand-rolled value type with a writer and a recursive-descent
//! parser. Numbers are kept as their raw source token ([`Json::Num`]
//! stores a `String`), which preserves full `u64` fidelity — seeds are
//! 64-bit and must round-trip exactly, which `f64`-backed JSON numbers
//! cannot guarantee.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw token (never re-formatted).
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An exact unsigned integer.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// The value as `u64`, if it is an integer token in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as `usize`, if it is an integer token in range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(t) => t.parse().ok(),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(t) => out.push_str(t),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            at: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        Ok(Json::Num(token.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_exactly() {
        // u64::MAX is not representable as f64; the raw-token Num is.
        let v = Json::Obj(vec![("seed".into(), Json::u64(u64::MAX))]);
        let text = v.render();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("seed").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::Arr(vec![Json::u64(1), Json::Null])),
            ("b".into(), Json::Bool(true)),
            ("s".into(), Json::str("q\"uo\\te\n")),
        ]);
        let back = parse(&doc.render()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"k\" : [ 1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("k").unwrap().as_arr().unwrap()[1].as_str(), Some("A"));
    }
}
