//! Invariant oracles over a finished [`RunReport`].
//!
//! Oracles are cross-cutting properties that must hold for *every*
//! scenario the generator can produce, no matter which faults fired:
//!
//! - **Link conservation** — `transmitted == delivered` at quiescence
//!   (while running, `transmitted - delivered` is the in-flight count and
//!   is non-negative by construction).
//! - **Node conservation** — every arrival is classified into exactly one
//!   outcome: `arrivals == faulted + delivered + forwarded + ttl_expired
//!   + no_route`.
//! - **Clock & ordering** — the virtual clock never ran backwards, and no
//!   in-order link delivered packets out of arrival order.
//! - **Drain** — after handlers detach, the event queue empties.
//! - **Congestion control** — across all five algorithms the window never
//!   fell below one MSS (the RTO collapse floor), `ssthresh` never fell
//!   below two MSS, and no RTT sample was non-positive.
//! - **Telemetry coverage** — `delivered + quarantined + shed + lost ==
//!   generated` for the ingestion sub-campaign (shed counts batches the
//!   collector service refused with a typed REJECT and the spool gave up
//!   on).
//! - **Storage recovery** — when the sub-campaign checkpoints through a
//!   faultable disk, the chain's conservation counters hold (`written ==
//!   live + pruned + quarantined`), recovery only ever adopts blobs the
//!   campaign actually sealed, and the recovered run's final dataset is
//!   byte-identical to an uninterrupted run.
//! - **Sharding** — when the scenario scales the campaign across worker
//!   shards, the merged struct-of-arrays ledger still conserves every
//!   record, and the merged dataset digest is byte-identical to an
//!   unsharded reference run of the same configuration.
//! - **Fairness** — when the scenario carries a mixed-CC coexistence
//!   experiment, no BBRv2 flow's retransmitted-segment fraction exceeds
//!   the ceiling its loss-rate bound guarantees (the fairness topology
//!   has no random loss, so retransmissions *are* congestion drops; a
//!   flow that ignores its ceiling blows through the bound).
//! - **Twin-run determinism** — two runs of the same scenario produce the
//!   same event-trace digest and event count ([`check_twin`]).

use crate::run::RunReport;
use starlink_netsim::NodeStats;
use starlink_transport::CcAlgorithm;
use std::fmt;

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A link's accepted packets never all arrived.
    LinkConservation {
        /// Link index.
        link: usize,
        /// Packets accepted onto the link.
        transmitted: u64,
        /// Packets whose arrival event fired.
        delivered: u64,
    },
    /// A node's arrival outcomes don't sum to its arrivals.
    NodeConservation {
        /// Node index.
        node: usize,
        /// The offending counters.
        stats: NodeStats,
    },
    /// The virtual clock ran backwards.
    ClockRegression {
        /// Regressions observed.
        count: u64,
    },
    /// An in-order link delivered out of arrival order.
    FifoViolation {
        /// Violations observed.
        count: u64,
    },
    /// The event queue failed to drain after handler detach.
    EventQueueNotDrained,
    /// A TCP flow's congestion window fell below one MSS.
    CwndBelowFloor {
        /// Client index.
        client: usize,
        /// Smallest window observed.
        cwnd: u64,
        /// The flow's MSS.
        mss: u64,
    },
    /// A TCP flow's slow-start threshold fell below two MSS.
    SsthreshBelowFloor {
        /// Client index.
        client: usize,
        /// Final ssthresh.
        ssthresh: u64,
        /// The flow's MSS.
        mss: u64,
    },
    /// A TCP flow took non-positive RTT samples.
    NonPositiveRtt {
        /// Client index.
        client: usize,
        /// Offending samples.
        count: u64,
    },
    /// The telemetry campaign lost track of records.
    TelemetryCoverage {
        /// Records generated.
        generated: u64,
        /// delivered + quarantined + shed + lost.
        accounted: u64,
    },
    /// The checkpoint chain's conservation counters broke under injected
    /// disk faults: `written != live + pruned + quarantined` at some
    /// point during or after the run.
    StorageConservation {
        /// Final `written` counter.
        written: u64,
        /// Final live generation count.
        live: u64,
        /// Final `pruned` counter.
        pruned: u64,
        /// Final `quarantined` counter.
        quarantined: u64,
    },
    /// Recovery adopted a blob that never matched a checkpoint the
    /// campaign actually sealed.
    StorageRecoveredUnknownGeneration,
    /// The crashed-and-recovered run's final dataset diverged from the
    /// uninterrupted reference run.
    StorageDigestDivergence,
    /// The population-scale campaign's merged ledger lost track of
    /// records: `delivered + quarantined + shed + lost != generated`
    /// after the per-shard ledgers merged.
    PopulationCoverage {
        /// Records generated.
        generated: u64,
        /// delivered + quarantined + shed + lost in the merged ledger.
        accounted: u64,
    },
    /// The sharded population-scale run's merged dataset diverged from
    /// the unsharded reference run of the same configuration.
    PopulationShardDivergence {
        /// Unsharded reference digest.
        reference: u64,
        /// Merged sharded-run digest.
        sharded: u64,
        /// Worker count the sharded run used.
        shards: u64,
    },
    /// A loss-ceiling-bounded flow (BBRv2) in the coexistence experiment
    /// retransmitted more than the ceiling can explain — it is not
    /// honouring its loss bound at the shared bottleneck.
    UnfairRetransmitRate {
        /// Flow index in the mix.
        flow: usize,
        /// The flow's algorithm.
        algo: CcAlgorithm,
        /// Retransmitted fraction of data segments, parts per thousand.
        permille: u64,
        /// Worst retransmit fraction among the cohabitant (non-BBRv2)
        /// flows in the same run, parts per thousand.
        baseline: u64,
    },
    /// Two runs of the same scenario diverged.
    TwinRunDivergence {
        /// First run's (digest, events).
        first: (u64, u64),
        /// Second run's (digest, events).
        second: (u64, u64),
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::LinkConservation {
                link,
                transmitted,
                delivered,
            } => write!(
                f,
                "link {link}: {transmitted} transmitted but {delivered} delivered at quiescence"
            ),
            Violation::NodeConservation { node, stats } => write!(
                f,
                "node {node}: {} arrivals vs {} accounted ({stats:?})",
                stats.arrivals,
                stats.faulted
                    + stats.delivered
                    + stats.forwarded
                    + stats.ttl_expired
                    + stats.no_route
            ),
            Violation::ClockRegression { count } => {
                write!(f, "virtual clock ran backwards {count} time(s)")
            }
            Violation::FifoViolation { count } => {
                write!(f, "{count} same-link FIFO ordering violation(s)")
            }
            Violation::EventQueueNotDrained => {
                write!(f, "event queue still has work after handler detach")
            }
            Violation::CwndBelowFloor { client, cwnd, mss } => {
                write!(f, "client {client}: cwnd {cwnd} fell below one MSS ({mss})")
            }
            Violation::SsthreshBelowFloor {
                client,
                ssthresh,
                mss,
            } => write!(
                f,
                "client {client}: ssthresh {ssthresh} fell below two MSS ({mss})"
            ),
            Violation::NonPositiveRtt { client, count } => {
                write!(f, "client {client}: {count} non-positive RTT sample(s)")
            }
            Violation::TelemetryCoverage {
                generated,
                accounted,
            } => write!(
                f,
                "telemetry: {generated} generated but {accounted} accounted"
            ),
            Violation::StorageConservation {
                written,
                live,
                pruned,
                quarantined,
            } => write!(
                f,
                "storage: {written} written != {live} live + {pruned} pruned + {quarantined} quarantined"
            ),
            Violation::StorageRecoveredUnknownGeneration => {
                write!(f, "storage: recovery adopted a blob the campaign never sealed")
            }
            Violation::StorageDigestDivergence => write!(
                f,
                "storage: recovered run's dataset diverged from the uninterrupted reference"
            ),
            Violation::PopulationCoverage {
                generated,
                accounted,
            } => write!(
                f,
                "population: {generated} generated but {accounted} accounted in the merged ledger"
            ),
            Violation::PopulationShardDivergence {
                reference,
                sharded,
                shards,
            } => write!(
                f,
                "population: sharded dataset {sharded:#018x} at {shards} worker(s) diverged \
                 from unsharded reference {reference:#018x}"
            ),
            Violation::UnfairRetransmitRate {
                flow,
                algo,
                permille,
                baseline,
            } => write!(
                f,
                "fairness: flow {flow} ({}) retransmitted {permille}‰ of its segments \
                 (cohabitant worst case {baseline}‰) — the loss ceiling is not being honoured",
                algo.label()
            ),
            Violation::TwinRunDivergence { first, second } => write!(
                f,
                "twin runs diverged: digest {:#018x}/{} vs {:#018x}/{}",
                first.0, first.1, second.0, second.1
            ),
        }
    }
}

/// Retransmit-fraction ceiling for loss-ceiling-bounded flows, parts
/// per thousand. BBRv2 clamps `inflight_hi` and backs its cruise gain
/// off whenever a round's loss fraction exceeds ~2 %, but startup
/// overshoot and harsh generated specs (shallow queue, many flows,
/// short horizon) push a healthy flow's whole-run fraction well past
/// that bound — the empirical maximum across thousands of generated
/// mixes is ~24 %. The planted unfair flow (ceiling ignored) keeps
/// overfilling the droptail queue for the entire run and lands at
/// 40–60 % under real contention.
const UNFAIR_RETRANSMIT_PERMILLE: u64 = 250;

/// The ceiling alone cannot separate a bugged flow from a healthy one
/// on a brutal spec where *every* flow is slaughtered, so the oracle
/// also demands relative dominance: the BBRv2 flow must retransmit
/// more than this multiple of the worst cohabitant (non-BBRv2) flow in
/// the same run. Healthy high-loss runs have high baselines too; only
/// the planted bug produces a lone outlier.
const UNFAIR_BASELINE_FACTOR: u64 = 2;

/// Segments a flow must have sent before the ceiling is meaningful —
/// a handful of drops in a tiny flow divides into a scary-looking
/// fraction without indicating anything.
const UNFAIR_MIN_SEGMENTS: u64 = 200;

/// Checks every single-run invariant. Empty result = healthy run.
pub fn check(report: &RunReport) -> Vec<Violation> {
    let mut violations = Vec::new();

    for (link, stats) in report.links.iter().enumerate() {
        if stats.transmitted != stats.delivered {
            violations.push(Violation::LinkConservation {
                link,
                transmitted: stats.transmitted,
                delivered: stats.delivered,
            });
        }
    }

    for (node, stats) in report.nodes.iter().enumerate() {
        if !stats.conserved() {
            violations.push(Violation::NodeConservation {
                node,
                stats: *stats,
            });
        }
    }

    if report.clock_regressions > 0 {
        violations.push(Violation::ClockRegression {
            count: report.clock_regressions,
        });
    }
    if report.fifo_violations > 0 {
        violations.push(Violation::FifoViolation {
            count: report.fifo_violations,
        });
    }
    if !report.queue_drained {
        violations.push(Violation::EventQueueNotDrained);
    }

    for flow in &report.flows {
        if let Some(cwnd) = flow.min_cwnd_seen {
            if cwnd < flow.mss {
                violations.push(Violation::CwndBelowFloor {
                    client: flow.client,
                    cwnd,
                    mss: flow.mss,
                });
            }
        }
        if let Some(ssthresh) = flow.last_ssthresh {
            // u64::MAX means "never reduced"; anything else must respect
            // the two-segment floor every algorithm enforces.
            if ssthresh != u64::MAX && ssthresh < 2 * flow.mss {
                violations.push(Violation::SsthreshBelowFloor {
                    client: flow.client,
                    ssthresh,
                    mss: flow.mss,
                });
            }
        }
        if flow.zero_rtt_samples > 0 {
            violations.push(Violation::NonPositiveRtt {
                client: flow.client,
                count: flow.zero_rtt_samples,
            });
        }
    }

    if let Some(t) = &report.telemetry {
        let accounted = t.delivered + t.quarantined + t.shed + t.lost;
        if !t.sums_hold || accounted != t.generated {
            violations.push(Violation::TelemetryCoverage {
                generated: t.generated,
                accounted,
            });
        }
        if let Some(s) = &t.storage {
            if !s.conservation_held {
                violations.push(Violation::StorageConservation {
                    written: s.written,
                    live: s.live,
                    pruned: s.pruned,
                    quarantined: s.quarantined,
                });
            }
            if !s.recovered_in_ledger {
                violations.push(Violation::StorageRecoveredUnknownGeneration);
            }
            if !s.digest_matches {
                violations.push(Violation::StorageDigestDivergence);
            }
        }
        if let Some(p) = &t.population {
            if !p.sums_hold || p.accounted != p.generated {
                violations.push(Violation::PopulationCoverage {
                    generated: p.generated,
                    accounted: p.accounted,
                });
            }
            if !p.digest_matches {
                violations.push(Violation::PopulationShardDivergence {
                    reference: p.reference_digest,
                    sharded: p.sharded_digest,
                    shards: p.shards,
                });
            }
        }
    }

    if let Some(fairness) = &report.fairness {
        // The judgement is relative: a mix with no substantial non-BBRv2
        // flow has no cohabitant baseline and goes unjudged.
        let baseline = fairness
            .flows
            .iter()
            .filter(|f| f.algo != CcAlgorithm::Bbr2 && f.segments_sent >= UNFAIR_MIN_SEGMENTS)
            .map(|f| f.retransmit_permille())
            .max();
        if let Some(baseline) = baseline {
            for flow in &fairness.flows {
                let permille = flow.retransmit_permille();
                if flow.algo == CcAlgorithm::Bbr2
                    && flow.segments_sent >= UNFAIR_MIN_SEGMENTS
                    && permille >= UNFAIR_RETRANSMIT_PERMILLE
                    && permille > UNFAIR_BASELINE_FACTOR * baseline
                {
                    violations.push(Violation::UnfairRetransmitRate {
                        flow: flow.flow,
                        algo: flow.algo,
                        permille,
                        baseline,
                    });
                }
            }
        }
    }

    violations
}

/// Checks the twin-run determinism invariant and everything [`check`]
/// covers, over a pair of runs of the same scenario.
pub fn check_twin(first: &RunReport, second: &RunReport) -> Vec<Violation> {
    let mut violations = check(first);
    if first != second {
        violations.push(Violation::TwinRunDivergence {
            first: (first.digest, first.events),
            second: (second.digest, second.events),
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::run::{run, run_twin, RunOptions};

    #[test]
    fn healthy_scenarios_pass_all_oracles() {
        for seed in 0..20 {
            let scenario = gen::generate(seed);
            let (a, b) = run_twin(&scenario, &RunOptions::default());
            let violations = check_twin(&a, &b);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn oracle_catches_injected_conservation_bug() {
        // The hook skips `delivered` increments; the link-conservation
        // oracle must notice on any scenario with traffic.
        let scenario = gen::generate(11);
        let report = run(
            &scenario,
            &RunOptions {
                inject_bug_every: 10,
                ..RunOptions::default()
            },
        );
        let violations = check(&report);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::LinkConservation { .. })),
            "expected a link-conservation violation, got {violations:?}"
        );
    }

    /// A tiny network with a deliberately starved collector service: the
    /// admission budget mirrors `AdmissionConfig::overloaded`, so the
    /// fault-storm campaign both sheds and delivers.
    fn overloaded_collector_scenario() -> crate::scenario::Scenario {
        use crate::scenario::{
            ClientSpec, CollectorSpec, LinkSpec, Scenario, TelemetrySpec, Workload,
        };
        let link = LinkSpec {
            delay_us: 5_000,
            rate_kbps: 2_000,
            loss_ppm: 0,
            queue_bytes: 64_000,
        };
        Scenario {
            seed: 5,
            horizon_ms: 1_000,
            routers: 1,
            clients: vec![ClientSpec {
                up: link,
                down: link,
                workload: Workload::Ping {
                    count: 3,
                    interval_ms: 100,
                    size: 64,
                },
            }],
            faults: Vec::new(),
            telemetry: Some(TelemetrySpec {
                seed: 77,
                days: 8,
                pages_per_day_milli: 9_000,
                fault_storm: true,
                collector: Some(CollectorSpec {
                    session_rate_milli: 200,
                    session_burst: 1,
                    queue_batches: 2,
                    global_bytes: 2_048,
                    drain_bytes_per_sec: 16,
                }),
                storage: None,
                population: None,
            }),
            flow_mix: None,
        }
    }

    #[test]
    fn overloaded_collector_sheds_but_conserves() {
        let report = run(&overloaded_collector_scenario(), &RunOptions::default());
        let t = report.telemetry.expect("scenario has a sub-campaign");
        assert!(t.shed > 0, "starved budget never shed: {t:?}");
        assert!(t.delivered > 0, "nothing got through: {t:?}");
        let violations = check(&report);
        assert!(violations.is_empty(), "{violations:?}");
    }

    /// A scenario whose sub-campaign checkpoints every day through a
    /// faulty disk: long enough (8 days) that seeded fault indices in
    /// the plan's windows actually fire, with both write faults and
    /// crash-around-rename faults in the plan.
    fn checkpointed_faulty_storage_scenario() -> crate::scenario::Scenario {
        use crate::scenario::StorageFaultSpec;
        let mut s = overloaded_collector_scenario();
        let t = s.telemetry.as_mut().unwrap();
        t.storage = Some(StorageFaultSpec {
            seed: 0xD15C_FA17,
            torn_writes: 1,
            bit_rots: 1,
            enospc: 1,
            crashes: 2,
            retain: 2,
        });
        s
    }

    #[test]
    fn faulty_storage_recovers_and_passes_all_oracles() {
        let report = run(
            &checkpointed_faulty_storage_scenario(),
            &RunOptions::default(),
        );
        let t = report.telemetry.expect("scenario has a sub-campaign");
        let s = t.storage.expect("scenario persists to disk");
        assert!(s.written > 0, "chain never sealed: {s:?}");
        assert!(
            s.crashes > 0 && s.recoveries > 0,
            "the seeded plan must actually crash and recover: {s:?}"
        );
        assert!(s.conservation_held, "{s:?}");
        assert!(s.recovered_in_ledger, "{s:?}");
        assert!(s.digest_matches, "{s:?}");
        let violations = check(&report);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn oracle_catches_planted_manifest_miscount() {
        let report = run(
            &checkpointed_faulty_storage_scenario(),
            &RunOptions {
                inject_manifest_miscount_every: 1,
                ..RunOptions::default()
            },
        );
        let violations = check(&report);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::StorageConservation { .. })),
            "expected a storage-conservation violation, got {violations:?}"
        );
    }

    #[test]
    fn oracle_catches_planted_shed_miscount() {
        let report = run(
            &overloaded_collector_scenario(),
            &RunOptions {
                inject_shed_miscount_every: 1,
                ..RunOptions::default()
            },
        );
        let violations = check(&report);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::TelemetryCoverage { .. })),
            "expected a telemetry-coverage violation, got {violations:?}"
        );
    }

    /// A scenario whose sub-campaign also scales out across shards:
    /// enough users that every shard gets a meaningful slice and the
    /// planted bug (which targets shard 1) has users to drop.
    fn sharded_population_scenario() -> crate::scenario::Scenario {
        use crate::scenario::PopulationSpec;
        let mut s = overloaded_collector_scenario();
        s.telemetry.as_mut().unwrap().population = Some(PopulationSpec {
            seed: 0x5CA1_AB1E,
            users: 300,
            cities: 15,
            days: 2,
            shards: 3,
            pages_per_day_milli: 6_000,
        });
        s
    }

    #[test]
    fn sharded_population_passes_all_oracles() {
        let report = run(&sharded_population_scenario(), &RunOptions::default());
        let t = report.telemetry.expect("scenario has a sub-campaign");
        let p = t.population.expect("scenario scales out");
        assert!(p.generated > 0, "scaled campaign generated nothing: {p:?}");
        assert!(p.sums_hold && p.digest_matches, "{p:?}");
        let violations = check(&report);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn oracle_catches_planted_shard_bug() {
        let report = run(
            &sharded_population_scenario(),
            &RunOptions {
                inject_shard_bug_every: 1,
                ..RunOptions::default()
            },
        );
        let violations = check(&report);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::PopulationCoverage { .. })),
            "expected a population-coverage violation, got {violations:?}"
        );
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::PopulationShardDivergence { .. })),
            "expected a shard-divergence violation, got {violations:?}"
        );
    }

    /// A scenario whose coexistence experiment pits BBRv2 against a
    /// loss-based population at a shallow shared bottleneck — tight
    /// enough that an unfair flow's drops pile up fast (healthy BBRv2
    /// lands near 2 % retransmits here; with the ceiling ignored it
    /// thrashes at ~50 %).
    fn contended_flowmix_scenario() -> crate::scenario::Scenario {
        use crate::fairness::FlowMixSpec;
        use starlink_transport::CcAlgorithm;
        let mut s = overloaded_collector_scenario();
        s.telemetry = None;
        s.flow_mix = Some(FlowMixSpec {
            seed: 0xFA1E_BEEF,
            mix: vec![
                CcAlgorithm::Bbr2,
                CcAlgorithm::Cubic,
                CcAlgorithm::Cubic,
                CcAlgorithm::Reno,
            ],
            bottleneck_kbps: 6_000,
            queue_bytes: 20_000,
            access_delay_us: 10_000,
            duration_ms: 6_000,
        });
        s
    }

    #[test]
    fn contended_flowmix_passes_all_oracles() {
        let report = run(&contended_flowmix_scenario(), &RunOptions::default());
        let f = report.fairness.as_ref().expect("scenario contends");
        assert!(f.total_bytes > 0, "{f:?}");
        let bbr2 = f.flows.iter().find(|fl| fl.algo == CcAlgorithm::Bbr2);
        assert!(
            bbr2.is_some_and(|fl| fl.segments_sent >= UNFAIR_MIN_SEGMENTS),
            "the BBRv2 flow must send enough to arm the oracle: {f:?}"
        );
        let violations = check(&report);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn oracle_catches_planted_unfair_bug() {
        let report = run(
            &contended_flowmix_scenario(),
            &RunOptions {
                inject_unfair_bug_every: 1,
                ..RunOptions::default()
            },
        );
        let violations = check(&report);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::UnfairRetransmitRate { .. })),
            "expected an unfair-retransmit violation, got {violations:?}"
        );
    }

    #[test]
    fn violations_render() {
        let scenario = gen::generate(11);
        let report = run(
            &scenario,
            &RunOptions {
                inject_bug_every: 7,
                ..RunOptions::default()
            },
        );
        for v in check(&report) {
            assert!(!v.to_string().is_empty());
        }
    }
}
