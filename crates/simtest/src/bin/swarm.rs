//! The scenario-swarm driver.
//!
//! ```text
//! swarm run [--seeds N] [--jobs J] [--base-seed B] [--out DIR]
//!           [--inject-bug EVERY] [--inject-shed-bug EVERY]
//!           [--inject-manifest-bug EVERY] [--inject-shard-bug EVERY]
//!           [--inject-unfair-bug EVERY] [--shrink]
//! swarm replay --seed S [--scenario FILE] [--inject-bug EVERY]
//!              [--inject-shed-bug EVERY] [--inject-manifest-bug EVERY]
//!              [--inject-shard-bug EVERY] [--inject-unfair-bug EVERY]
//! ```
//!
//! `run` fans `N` seeds across `J` worker threads. Every seed is derived
//! from the base seed, generated into a scenario, run **twice** and
//! oracle-checked (including twin-run determinism). Failing seeds are
//! written to `--out` as replayable JSON artifacts. Output is printed in
//! seed order after all workers join and contains no timestamps, so two
//! invocations with the same arguments are byte-identical — `diff` is the
//! cross-run determinism check.
//!
//! `replay` reproduces one seed (or a saved scenario file) and prints its
//! violations — the failure-replay half of the simulation-test loop.

use starlink_simtest::{check_twin, gen, run_twin, scenario_seed, shrink, RunOptions, Scenario};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => {
            eprintln!("usage: swarm run [--seeds N] [--jobs J] [--base-seed B] [--out DIR] [--inject-bug EVERY] [--inject-shed-bug EVERY] [--inject-manifest-bug EVERY] [--inject-shard-bug EVERY] [--inject-unfair-bug EVERY] [--shrink]");
            eprintln!("       swarm replay --seed S [--scenario FILE] [--inject-bug EVERY] [--inject-shed-bug EVERY] [--inject-manifest-bug EVERY] [--inject-shard-bug EVERY] [--inject-unfair-bug EVERY]");
            2
        }
    };
    std::process::exit(code);
}

/// Pulls the value after a `--flag`, parsing as u64 (decimal or 0x hex).
fn parse_u64(value: &str) -> Result<u64, String> {
    let parsed = match value.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => value.parse(),
    };
    parsed.map_err(|_| format!("invalid number: {value}"))
}

struct Flags {
    seeds: u64,
    jobs: usize,
    base_seed: u64,
    out: Option<String>,
    inject_bug: u64,
    inject_shed_bug: u64,
    inject_manifest_bug: u64,
    inject_shard_bug: u64,
    inject_unfair_bug: u64,
    shrink: bool,
    seed: Option<u64>,
    scenario: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        seeds: 100,
        jobs: 1,
        base_seed: 42,
        out: None,
        inject_bug: 0,
        inject_shed_bug: 0,
        inject_manifest_bug: 0,
        inject_shard_bug: 0,
        inject_unfair_bug: 0,
        shrink: false,
        seed: None,
        scenario: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--seeds" => flags.seeds = parse_u64(&value("--seeds")?)?,
            "--jobs" => flags.jobs = parse_u64(&value("--jobs")?)? as usize,
            "--base-seed" => flags.base_seed = parse_u64(&value("--base-seed")?)?,
            "--out" => flags.out = Some(value("--out")?),
            "--inject-bug" => flags.inject_bug = parse_u64(&value("--inject-bug")?)?,
            "--inject-shed-bug" => flags.inject_shed_bug = parse_u64(&value("--inject-shed-bug")?)?,
            "--inject-manifest-bug" => {
                flags.inject_manifest_bug = parse_u64(&value("--inject-manifest-bug")?)?
            }
            "--inject-shard-bug" => {
                flags.inject_shard_bug = parse_u64(&value("--inject-shard-bug")?)?
            }
            "--inject-unfair-bug" => {
                flags.inject_unfair_bug = parse_u64(&value("--inject-unfair-bug")?)?
            }
            "--shrink" => flags.shrink = true,
            "--seed" => flags.seed = Some(parse_u64(&value("--seed")?)?),
            "--scenario" => flags.scenario = Some(value("--scenario")?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if flags.seeds == 0 {
        return Err("--seeds must be at least 1".into());
    }
    if flags.jobs == 0 {
        return Err("--jobs must be at least 1".into());
    }
    Ok(flags)
}

/// One seed's result, kept small so the swarm can hold thousands.
struct SeedResult {
    seed: u64,
    digest: u64,
    events: u64,
    violations: Vec<String>,
    scenario_json: Option<String>,
    shrunk_json: Option<String>,
}

fn cmd_run(args: &[String]) -> i32 {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("swarm run: {e}");
            return 2;
        }
    };
    let opts = RunOptions {
        inject_bug_every: flags.inject_bug,
        inject_shed_miscount_every: flags.inject_shed_bug,
        inject_manifest_miscount_every: flags.inject_manifest_bug,
        inject_shard_bug_every: flags.inject_shard_bug,
        inject_unfair_bug_every: flags.inject_unfair_bug,
    };

    // Workers pull indices from a shared counter and write results into
    // an index-addressed table; nothing is printed until every worker has
    // joined, so output order (and bytes) never depends on scheduling.
    let next = AtomicU64::new(0);
    let results: Vec<Mutex<Option<SeedResult>>> =
        (0..flags.seeds).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..flags.jobs.min(flags.seeds.max(1) as usize) {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= flags.seeds {
                    return;
                }
                let seed = scenario_seed(flags.base_seed, index);
                let scenario = gen::generate(seed);
                let (first, second) = run_twin(&scenario, &opts);
                let violations = check_twin(&first, &second);
                let failing = !violations.is_empty();
                let shrunk_json = (failing && flags.shrink)
                    .then(|| shrink::shrink(&scenario, &opts, shrink::DEFAULT_BUDGET).to_json());
                let result = SeedResult {
                    seed,
                    digest: first.digest,
                    events: first.events,
                    violations: violations.iter().map(|v| v.to_string()).collect(),
                    scenario_json: failing.then(|| scenario.to_json()),
                    shrunk_json,
                };
                *results[index as usize].lock().expect("no poisoned locks") = Some(result);
            });
        }
    });

    let mut failures = 0u64;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for (index, slot) in results.iter().enumerate() {
        let result = slot
            .lock()
            .expect("no poisoned locks")
            .take()
            .expect("every index was processed");
        if result.violations.is_empty() {
            let _ = writeln!(
                out,
                "seed[{index}] {:#018x}: ok digest={:#018x} events={}",
                result.seed, result.digest, result.events
            );
        } else {
            failures += 1;
            let _ = writeln!(
                out,
                "seed[{index}] {:#018x}: FAIL ({} violation(s))",
                result.seed,
                result.violations.len()
            );
            for v in &result.violations {
                let _ = writeln!(out, "  - {v}");
            }
            if let Some(dir) = &flags.out {
                write_artifact(dir, result.seed, &result);
            }
        }
    }
    let _ = writeln!(out, "swarm: {} seed(s), {failures} failure(s)", flags.seeds);
    if failures > 0 {
        1
    } else {
        0
    }
}

/// Writes the failing-seed artifact(s): the scenario JSON, plus the
/// shrunk variant when shrinking ran.
fn write_artifact(dir: &str, seed: u64, result: &SeedResult) {
    if std::fs::create_dir_all(dir).is_err() {
        eprintln!("swarm: cannot create artifact dir {dir}");
        return;
    }
    if let Some(json) = &result.scenario_json {
        let path = format!("{dir}/failing-seed-{seed:#018x}.json");
        if std::fs::write(&path, json).is_err() {
            eprintln!("swarm: cannot write {path}");
        }
    }
    if let Some(json) = &result.shrunk_json {
        let path = format!("{dir}/failing-seed-{seed:#018x}.shrunk.json");
        if std::fs::write(&path, json).is_err() {
            eprintln!("swarm: cannot write {path}");
        }
    }
}

fn cmd_replay(args: &[String]) -> i32 {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("swarm replay: {e}");
            return 2;
        }
    };
    let opts = RunOptions {
        inject_bug_every: flags.inject_bug,
        inject_shed_miscount_every: flags.inject_shed_bug,
        inject_manifest_miscount_every: flags.inject_manifest_bug,
        inject_shard_bug_every: flags.inject_shard_bug,
        inject_unfair_bug_every: flags.inject_unfair_bug,
    };

    let scenario = match (&flags.scenario, flags.seed) {
        (Some(path), _) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("swarm replay: cannot read {path}: {e}");
                    return 2;
                }
            };
            match Scenario::from_json(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("swarm replay: {path}: {e}");
                    return 2;
                }
            }
        }
        (None, Some(seed)) => gen::generate(seed),
        (None, None) => {
            eprintln!("swarm replay: need --seed or --scenario");
            return 2;
        }
    };

    let (first, second) = run_twin(&scenario, &opts);
    let violations = check_twin(&first, &second);
    println!(
        "replay: digest={:#018x} events={} violations={}",
        first.digest,
        first.events,
        violations.len()
    );
    for v in &violations {
        println!("  - {v}");
    }
    if violations.is_empty() {
        0
    } else {
        1
    }
}
