//! iperf3-style throughput tests over the simulator.
//!
//! The volunteer nodes ran TCP iperf every half hour (Fig. 6a/6b) and UDP
//! bursts for capacity/loss measurement (Figs. 6c, 7, and the Fig. 8
//! normalisation denominators). These helpers wire fresh transport
//! endpoints onto existing hosts, run the test window, and detach into a
//! plain report.

use crate::outcome::ToolOutcome;
use starlink_netsim::{Network, NodeId};
use starlink_simcore::{DataRate, SimDuration};
use starlink_transport::tcp::TcpConfig;
use starlink_transport::{CcAlgorithm, TcpReceiver, TcpSender, UdpBlaster, UdpSink};

/// Result of a TCP iperf run.
#[derive(Debug, Clone, PartialEq)]
pub struct IperfTcpReport {
    /// Mean goodput over the test window.
    pub goodput: DataRate,
    /// Bytes acknowledged.
    pub bytes: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// RTO episodes.
    pub rtos: u64,
    /// Fast-retransmit loss events.
    pub loss_events: u64,
    /// Smoothed RTT at the end of the test.
    pub srtt: Option<SimDuration>,
    /// Receiver-side per-second goodput bins, Mbps.
    pub per_second_mbps: Vec<f64>,
    /// How the run ended: `Failed` when no byte was ever acknowledged,
    /// `Degraded` when the transfer needed RTO recovery, else `Complete`.
    pub outcome: ToolOutcome,
}

/// Result of a UDP iperf run.
#[derive(Debug, Clone, PartialEq)]
pub struct IperfUdpReport {
    /// Datagrams that arrived.
    pub received: u64,
    /// Datagrams sent (from the sink's sequence watermark).
    pub sent: u64,
    /// Mean delivered rate over the window.
    pub goodput: DataRate,
    /// Overall loss fraction.
    pub loss: f64,
    /// Per-bin loss fractions (bin width as configured).
    pub per_bin_loss: Vec<f64>,
    /// How the run ended: `Failed` when nothing arrived, `Degraded` when
    /// more than half the datagrams vanished, else `Complete`.
    pub outcome: ToolOutcome,
}

/// Unique connection ids so repeated tests on one network never collide.
fn fresh_conn_id(net: &Network) -> u64 {
    // The node count is static; fold in the current time for uniqueness.
    net.now().as_nanos() ^ 0x5EED_1A2B_3C4D_5E6F
}

/// Runs a TCP bulk test from `client` to `server` for `duration` using
/// `algorithm`. The test occupies `[net.now(), net.now() + duration +
/// drain]`, where `drain` lets in-flight data land.
pub fn iperf_tcp(
    net: &mut Network,
    client: NodeId,
    server: NodeId,
    algorithm: CcAlgorithm,
    duration: SimDuration,
) -> IperfTcpReport {
    let conn = fresh_conn_id(net);
    let start = net.now();
    let stop_at = start + duration;
    let (sender, stats) = TcpSender::new(
        server,
        TcpConfig {
            conn,
            mss: 1_460,
            algorithm,
            total_bytes: None,
            stop_at: Some(stop_at),
            trace_cwnd: false,
            path_changes: Vec::new(),
            debug_unfair_cc: false,
        },
    );
    let (receiver, rstats) = TcpReceiver::new(conn, SimDuration::from_secs(1));
    net.attach_handler(client, Box::new(sender));
    net.attach_handler(server, Box::new(receiver));
    net.arm_timer(client, start, TcpSender::start_token());
    net.run_until(stop_at + SimDuration::from_secs(2));
    net.detach_handler(client);
    net.detach_handler(server);

    let s = stats.borrow();
    let r = rstats.borrow();
    let elapsed = duration.as_secs_f64().max(1e-9);
    let start_bin = (start.as_nanos() / SimDuration::from_secs(1).as_nanos()) as usize;
    let per_second_mbps: Vec<f64> = r
        .bins
        .iter()
        .skip(start_bin)
        .map(|&b| b as f64 * 8.0 / 1e6)
        .collect();
    let outcome = if s.bytes_acked == 0 {
        ToolOutcome::failed("no bytes acknowledged")
    } else if s.rto_count > 0 {
        ToolOutcome::degraded(format!("{} retransmission timeout(s)", s.rto_count))
    } else {
        ToolOutcome::Complete
    };
    IperfTcpReport {
        goodput: DataRate::from_bps((s.bytes_acked as f64 * 8.0 / elapsed) as u64),
        bytes: s.bytes_acked,
        retransmissions: s.retransmissions,
        rtos: s.rto_count,
        loss_events: s.loss_events,
        srtt: s.srtt,
        per_second_mbps,
        outcome,
    }
}

/// Runs a UDP blast from `client` to `server` at `rate` for `duration`,
/// binning sink-side arrivals at `bin_width`.
pub fn iperf_udp(
    net: &mut Network,
    client: NodeId,
    server: NodeId,
    rate: DataRate,
    duration: SimDuration,
    bin_width: SimDuration,
) -> IperfUdpReport {
    let flow = fresh_conn_id(net);
    let start = net.now();
    let stop_at = start + duration;
    let payload = 1_200u64;
    let blaster = UdpBlaster::new(server, flow, payload, rate, stop_at);
    let (sink, stats) = UdpSink::new(flow, bin_width);
    net.attach_handler(client, Box::new(blaster));
    net.attach_handler(server, Box::new(sink));
    net.arm_timer(client, start, UdpBlaster::start_token());
    net.run_until(stop_at + SimDuration::from_secs(1));
    net.detach_handler(client);
    net.detach_handler(server);

    let s = stats.borrow();
    let sent = s.max_seq_plus_one;
    let elapsed = duration.as_secs_f64().max(1e-9);
    let start_bin = (start.as_nanos() / bin_width.as_nanos().max(1)) as usize;
    let loss = s.loss_fraction(sent);
    let outcome = if s.received == 0 {
        ToolOutcome::failed("no datagrams delivered")
    } else if loss > 0.5 {
        ToolOutcome::degraded(format!("{:.0}% of datagrams lost", loss * 100.0))
    } else {
        ToolOutcome::Complete
    };
    IperfUdpReport {
        received: s.received,
        sent,
        goodput: DataRate::from_bps((s.bytes as f64 * 8.0 / elapsed) as u64),
        loss,
        per_bin_loss: s
            .per_bin_loss()
            .split_off(start_bin.min(s.per_bin_loss().len())),
        outcome,
    }
}

/// The UDP-burst capacity probe used to normalise Fig. 8: blast well
/// above the expected link rate and report what got through.
pub fn udp_capacity_probe(
    net: &mut Network,
    client: NodeId,
    server: NodeId,
    overdrive_rate: DataRate,
    duration: SimDuration,
) -> DataRate {
    let report = iperf_udp(
        net,
        client,
        server,
        overdrive_rate,
        duration,
        SimDuration::from_secs(1),
    );
    report.goodput
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_netsim::{LinkConfig, NodeKind};
    use starlink_simcore::Bytes;

    fn two_hosts(rate_mbps: u64, loss: f64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(21);
        let a = net.add_node("client", NodeKind::Host);
        let b = net.add_node("server", NodeKind::Host);
        net.connect_duplex(
            a,
            b,
            LinkConfig::fixed(
                SimDuration::from_millis(15),
                DataRate::from_mbps(rate_mbps),
                loss,
            )
            .with_queue(Bytes::from_kb(192)),
            LinkConfig::fixed(SimDuration::from_millis(15), DataRate::from_mbps(100), 0.0),
        );
        net.route_linear(&[a, b]);
        (net, a, b)
    }

    #[test]
    fn tcp_report_reflects_link_capacity() {
        let (mut net, a, b) = two_hosts(40, 0.0);
        let report = iperf_tcp(
            &mut net,
            a,
            b,
            CcAlgorithm::Cubic,
            SimDuration::from_secs(10),
        );
        let mbps = report.goodput.as_mbps();
        assert!(
            (20.0..41.0).contains(&mbps),
            "{mbps} Mbps on a 40 Mbps link"
        );
        assert!(report.srtt.is_some());
        assert!(!report.per_second_mbps.is_empty());
    }

    #[test]
    fn udp_report_measures_loss() {
        let (mut net, a, b) = two_hosts(100, 0.2);
        let report = iperf_udp(
            &mut net,
            a,
            b,
            DataRate::from_mbps(20),
            SimDuration::from_secs(8),
            SimDuration::from_secs(1),
        );
        assert!((report.loss - 0.2).abs() < 0.03, "loss {}", report.loss);
        assert!(report.received > 0);
        assert!(report.sent > report.received);
    }

    #[test]
    fn capacity_probe_finds_the_bottleneck() {
        let (mut net, a, b) = two_hosts(25, 0.0);
        let cap = udp_capacity_probe(
            &mut net,
            a,
            b,
            DataRate::from_mbps(200),
            SimDuration::from_secs(5),
        );
        let mbps = cap.as_mbps();
        assert!((20.0..26.0).contains(&mbps), "{mbps} Mbps");
    }

    #[test]
    fn outcomes_reflect_transfer_health() {
        let (mut net, a, b) = two_hosts(40, 0.0);
        let tcp = iperf_tcp(
            &mut net,
            a,
            b,
            CcAlgorithm::Cubic,
            SimDuration::from_secs(5),
        );
        assert!(tcp.outcome.is_usable(), "{}", tcp.outcome);

        let (mut net, a, b) = two_hosts(100, 0.2);
        let udp = iperf_udp(
            &mut net,
            a,
            b,
            DataRate::from_mbps(20),
            SimDuration::from_secs(5),
            SimDuration::from_secs(1),
        );
        assert!(udp.outcome.is_complete(), "20% loss is under the 50% bar");
    }

    #[test]
    fn dead_link_yields_failed_outcomes() {
        let (mut net, a, b) = two_hosts(40, 1.0);
        let tcp = iperf_tcp(
            &mut net,
            a,
            b,
            CcAlgorithm::Cubic,
            SimDuration::from_secs(5),
        );
        assert!(tcp.outcome.is_failed(), "{}", tcp.outcome);
        assert_eq!(tcp.bytes, 0);

        let (mut net, a, b) = two_hosts(40, 1.0);
        let udp = iperf_udp(
            &mut net,
            a,
            b,
            DataRate::from_mbps(10),
            SimDuration::from_secs(3),
            SimDuration::from_secs(1),
        );
        assert!(udp.outcome.is_failed(), "{}", udp.outcome);
        assert_eq!(udp.received, 0);
    }

    #[test]
    fn iperf_detaches_its_handlers_so_ping_still_works() {
        use crate::ping::{ping, PingOptions};
        let (mut net, a, b) = two_hosts(40, 0.0);
        iperf_tcp(
            &mut net,
            a,
            b,
            CcAlgorithm::Cubic,
            SimDuration::from_secs(3),
        );
        iperf_udp(
            &mut net,
            a,
            b,
            DataRate::from_mbps(10),
            SimDuration::from_secs(3),
            SimDuration::from_secs(1),
        );
        // With the transport handlers gone, both endpoints auto-reply to
        // echoes again and replies land in the client's mailbox.
        let report = ping(&mut net, a, b, &PingOptions::default());
        assert!(report.outcome.is_complete(), "{}", report.outcome);
        assert_eq!(report.received(), report.sent());
    }

    #[test]
    fn back_to_back_tests_are_independent() {
        let (mut net, a, b) = two_hosts(40, 0.0);
        let r1 = iperf_tcp(&mut net, a, b, CcAlgorithm::Reno, SimDuration::from_secs(5));
        let r2 = iperf_tcp(&mut net, a, b, CcAlgorithm::Reno, SimDuration::from_secs(5));
        // Both complete with sane goodputs; the second isn't polluted by
        // the first's connection state.
        for (i, r) in [&r1, &r2].iter().enumerate() {
            let mbps = r.goodput.as_mbps();
            assert!((15.0..41.0).contains(&mbps), "test {i}: {mbps}");
        }
    }
}
