//! iperf3-style throughput tests over the simulator.
//!
//! The volunteer nodes ran TCP iperf every half hour (Fig. 6a/6b) and UDP
//! bursts for capacity/loss measurement (Figs. 6c, 7, and the Fig. 8
//! normalisation denominators). These helpers wire fresh transport
//! endpoints onto existing hosts, run the test window, and detach into a
//! plain report.

use starlink_netsim::{Network, NodeId};
use starlink_simcore::{DataRate, SimDuration};
use starlink_transport::tcp::TcpConfig;
use starlink_transport::{CcAlgorithm, TcpReceiver, TcpSender, UdpBlaster, UdpSink};

/// Result of a TCP iperf run.
#[derive(Debug, Clone)]
pub struct IperfTcpReport {
    /// Mean goodput over the test window.
    pub goodput: DataRate,
    /// Bytes acknowledged.
    pub bytes: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// RTO episodes.
    pub rtos: u64,
    /// Fast-retransmit loss events.
    pub loss_events: u64,
    /// Smoothed RTT at the end of the test.
    pub srtt: Option<SimDuration>,
    /// Receiver-side per-second goodput bins, Mbps.
    pub per_second_mbps: Vec<f64>,
}

/// Result of a UDP iperf run.
#[derive(Debug, Clone)]
pub struct IperfUdpReport {
    /// Datagrams that arrived.
    pub received: u64,
    /// Datagrams sent (from the sink's sequence watermark).
    pub sent: u64,
    /// Mean delivered rate over the window.
    pub goodput: DataRate,
    /// Overall loss fraction.
    pub loss: f64,
    /// Per-bin loss fractions (bin width as configured).
    pub per_bin_loss: Vec<f64>,
}

/// Unique connection ids so repeated tests on one network never collide.
fn fresh_conn_id(net: &Network) -> u64 {
    // The node count is static; fold in the current time for uniqueness.
    net.now().as_nanos() ^ 0x5EED_1A2B_3C4D_5E6F
}

/// Runs a TCP bulk test from `client` to `server` for `duration` using
/// `algorithm`. The test occupies `[net.now(), net.now() + duration +
/// drain]`, where `drain` lets in-flight data land.
pub fn iperf_tcp(
    net: &mut Network,
    client: NodeId,
    server: NodeId,
    algorithm: CcAlgorithm,
    duration: SimDuration,
) -> IperfTcpReport {
    let conn = fresh_conn_id(net);
    let start = net.now();
    let stop_at = start + duration;
    let (sender, stats) = TcpSender::new(
        server,
        TcpConfig {
            conn,
            mss: 1_460,
            algorithm,
            total_bytes: None,
            stop_at: Some(stop_at),
            trace_cwnd: false,
        },
    );
    let (receiver, rstats) = TcpReceiver::new(conn, SimDuration::from_secs(1));
    net.attach_handler(client, Box::new(sender));
    net.attach_handler(server, Box::new(receiver));
    net.arm_timer(client, start, TcpSender::start_token());
    net.run_until(stop_at + SimDuration::from_secs(2));

    let s = stats.borrow();
    let r = rstats.borrow();
    let elapsed = duration.as_secs_f64().max(1e-9);
    let start_bin = (start.as_nanos() / SimDuration::from_secs(1).as_nanos()) as usize;
    let per_second_mbps: Vec<f64> = r
        .bins
        .iter()
        .skip(start_bin)
        .map(|&b| b as f64 * 8.0 / 1e6)
        .collect();
    IperfTcpReport {
        goodput: DataRate::from_bps((s.bytes_acked as f64 * 8.0 / elapsed) as u64),
        bytes: s.bytes_acked,
        retransmissions: s.retransmissions,
        rtos: s.rto_count,
        loss_events: s.loss_events,
        srtt: s.srtt,
        per_second_mbps,
    }
}

/// Runs a UDP blast from `client` to `server` at `rate` for `duration`,
/// binning sink-side arrivals at `bin_width`.
pub fn iperf_udp(
    net: &mut Network,
    client: NodeId,
    server: NodeId,
    rate: DataRate,
    duration: SimDuration,
    bin_width: SimDuration,
) -> IperfUdpReport {
    let flow = fresh_conn_id(net);
    let start = net.now();
    let stop_at = start + duration;
    let payload = 1_200u64;
    let blaster = UdpBlaster::new(server, flow, payload, rate, stop_at);
    let (sink, stats) = UdpSink::new(flow, bin_width);
    net.attach_handler(client, Box::new(blaster));
    net.attach_handler(server, Box::new(sink));
    net.arm_timer(client, start, UdpBlaster::start_token());
    net.run_until(stop_at + SimDuration::from_secs(1));

    let s = stats.borrow();
    let sent = s.max_seq_plus_one;
    let elapsed = duration.as_secs_f64().max(1e-9);
    let start_bin = (start.as_nanos() / bin_width.as_nanos().max(1)) as usize;
    IperfUdpReport {
        received: s.received,
        sent,
        goodput: DataRate::from_bps((s.bytes as f64 * 8.0 / elapsed) as u64),
        loss: s.loss_fraction(sent),
        per_bin_loss: s
            .per_bin_loss()
            .split_off(start_bin.min(s.per_bin_loss().len())),
    }
}

/// The UDP-burst capacity probe used to normalise Fig. 8: blast well
/// above the expected link rate and report what got through.
pub fn udp_capacity_probe(
    net: &mut Network,
    client: NodeId,
    server: NodeId,
    overdrive_rate: DataRate,
    duration: SimDuration,
) -> DataRate {
    let report = iperf_udp(
        net,
        client,
        server,
        overdrive_rate,
        duration,
        SimDuration::from_secs(1),
    );
    report.goodput
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_netsim::{LinkConfig, NodeKind};
    use starlink_simcore::Bytes;

    fn two_hosts(rate_mbps: u64, loss: f64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(21);
        let a = net.add_node("client", NodeKind::Host);
        let b = net.add_node("server", NodeKind::Host);
        net.connect_duplex(
            a,
            b,
            LinkConfig::fixed(
                SimDuration::from_millis(15),
                DataRate::from_mbps(rate_mbps),
                loss,
            )
            .with_queue(Bytes::from_kb(192)),
            LinkConfig::fixed(SimDuration::from_millis(15), DataRate::from_mbps(100), 0.0),
        );
        net.route_linear(&[a, b]);
        (net, a, b)
    }

    #[test]
    fn tcp_report_reflects_link_capacity() {
        let (mut net, a, b) = two_hosts(40, 0.0);
        let report = iperf_tcp(
            &mut net,
            a,
            b,
            CcAlgorithm::Cubic,
            SimDuration::from_secs(10),
        );
        let mbps = report.goodput.as_mbps();
        assert!(
            (20.0..41.0).contains(&mbps),
            "{mbps} Mbps on a 40 Mbps link"
        );
        assert!(report.srtt.is_some());
        assert!(!report.per_second_mbps.is_empty());
    }

    #[test]
    fn udp_report_measures_loss() {
        let (mut net, a, b) = two_hosts(100, 0.2);
        let report = iperf_udp(
            &mut net,
            a,
            b,
            DataRate::from_mbps(20),
            SimDuration::from_secs(8),
            SimDuration::from_secs(1),
        );
        assert!((report.loss - 0.2).abs() < 0.03, "loss {}", report.loss);
        assert!(report.received > 0);
        assert!(report.sent > report.received);
    }

    #[test]
    fn capacity_probe_finds_the_bottleneck() {
        let (mut net, a, b) = two_hosts(25, 0.0);
        let cap = udp_capacity_probe(
            &mut net,
            a,
            b,
            DataRate::from_mbps(200),
            SimDuration::from_secs(5),
        );
        let mbps = cap.as_mbps();
        assert!((20.0..26.0).contains(&mbps), "{mbps} Mbps");
    }

    #[test]
    fn back_to_back_tests_are_independent() {
        let (mut net, a, b) = two_hosts(40, 0.0);
        let r1 = iperf_tcp(&mut net, a, b, CcAlgorithm::Reno, SimDuration::from_secs(5));
        let r2 = iperf_tcp(&mut net, a, b, CcAlgorithm::Reno, SimDuration::from_secs(5));
        // Both complete with sane goodputs; the second isn't polluted by
        // the first's connection state.
        for (i, r) in [&r1, &r2].iter().enumerate() {
            let mbps = r.goodput.as_mbps();
            assert!((15.0..41.0).contains(&mbps), "test {i}: {mbps}");
        }
    }
}
