//! Tool completion status: did the measurement actually measure?
//!
//! Real measurement campaigns lose probes, hit dead gateways and watch
//! dishes go dark mid-test (§3.2's volunteer nodes did all three). A tool
//! that silently returns zeros poisons downstream aggregates, and one
//! that panics takes the whole campaign run down with it. Every tool in
//! this crate therefore reports a [`ToolOutcome`] alongside its numbers:
//! callers keep `Complete` results, can choose to keep or weight
//! `Degraded` ones, and must discard `Failed` ones.

use std::fmt;

/// How a measurement run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToolOutcome {
    /// Every probe/transfer did what it was asked; the numbers are fully
    /// trustworthy.
    Complete,
    /// The tool terminated and produced usable numbers, but lost part of
    /// its input (unanswered probes, an unreached destination, a stalled
    /// transfer). The reason says what was lost.
    Degraded {
        /// What went missing.
        reason: String,
    },
    /// The tool terminated but measured nothing usable; discard the
    /// numbers.
    Failed {
        /// Why nothing came back.
        reason: String,
    },
}

impl ToolOutcome {
    /// Shorthand for a degraded outcome.
    pub fn degraded(reason: impl Into<String>) -> Self {
        ToolOutcome::Degraded {
            reason: reason.into(),
        }
    }

    /// Shorthand for a failed outcome.
    pub fn failed(reason: impl Into<String>) -> Self {
        ToolOutcome::Failed {
            reason: reason.into(),
        }
    }

    /// Whether the run was fully clean.
    pub fn is_complete(&self) -> bool {
        matches!(self, ToolOutcome::Complete)
    }

    /// Whether the numbers are at least partially usable.
    pub fn is_usable(&self) -> bool {
        !matches!(self, ToolOutcome::Failed { .. })
    }

    /// Whether the run produced nothing usable.
    pub fn is_failed(&self) -> bool {
        matches!(self, ToolOutcome::Failed { .. })
    }

    /// Folds two outcomes into the status of their combination: a
    /// combined run is only as healthy as its worst part, except that two
    /// failures stay failed rather than degraded.
    pub fn combine(&self, other: &ToolOutcome) -> ToolOutcome {
        use ToolOutcome::*;
        match (self, other) {
            (Complete, Complete) => Complete,
            (Failed { reason: a }, Failed { reason: b }) => {
                ToolOutcome::failed(format!("{a}; {b}"))
            }
            (Failed { reason }, _) | (_, Failed { reason }) => {
                ToolOutcome::degraded(format!("partial failure: {reason}"))
            }
            (Degraded { reason }, _) | (_, Degraded { reason }) => {
                ToolOutcome::degraded(reason.clone())
            }
        }
    }
}

impl fmt::Display for ToolOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolOutcome::Complete => write!(f, "complete"),
            ToolOutcome::Degraded { reason } => write!(f, "degraded ({reason})"),
            ToolOutcome::Failed { reason } => write!(f, "failed ({reason})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates() {
        assert!(ToolOutcome::Complete.is_complete());
        assert!(ToolOutcome::Complete.is_usable());
        assert!(ToolOutcome::degraded("x").is_usable());
        assert!(!ToolOutcome::degraded("x").is_complete());
        assert!(ToolOutcome::failed("x").is_failed());
        assert!(!ToolOutcome::failed("x").is_usable());
    }

    #[test]
    fn combine_takes_the_worst() {
        let c = ToolOutcome::Complete;
        let d = ToolOutcome::degraded("lost probes");
        let f = ToolOutcome::failed("no replies");
        assert!(c.combine(&c).is_complete());
        assert_eq!(c.combine(&d), d);
        assert!(c.combine(&f).is_usable(), "one good half keeps it usable");
        assert!(f.combine(&f).is_failed());
    }

    #[test]
    fn display_includes_reason() {
        assert_eq!(
            ToolOutcome::degraded("3 probes lost").to_string(),
            "degraded (3 probes lost)"
        );
        assert_eq!(ToolOutcome::Complete.to_string(), "complete");
    }
}
