//! # starlink-tools
//!
//! The measurement toolbox the paper deploys on its volunteer Raspberry
//! Pis (§3.2), re-implemented against the packet simulator:
//!
//! * [`traceroute`] — per-TTL probing with ICMP Time-Exceeded semantics,
//!   the instrument behind Fig. 5's hop-by-hop RTT comparison;
//! * [`mtr`] — repeated traceroute rounds with per-hop aggregation;
//! * [`maxmin`] — the Chan et al. max–min queueing-delay estimator the
//!   paper adapts for Table 2 ("taking the difference between the maximum
//!   and minimum observed latencies … eliminates the propagation delay");
//! * [`iperf`] — TCP and UDP throughput tests with per-interval loss
//!   reporting (Figs. 6 and 8);
//! * [`ping`] — fixed-interval echo RTTs (the Dishy's "pop ping" stat);
//! * [`speedtest`] — the Libretest-style DL/UL pair run from the nodes;
//! * [`cron`] — the 5-minute / 30-minute schedules the RPis ran on.
//!
//! Every tool is hardened for hostile conditions: probing tools take a
//! bounded retry budget with exponential backoff in *virtual* time, every
//! run finishes within its options' `virtual_time_budget()`, and every
//! report carries a [`ToolOutcome`] saying whether the numbers are clean
//! (`Complete`), partial (`Degraded`) or unusable (`Failed`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cron;
pub mod iperf;
pub mod maxmin;
pub mod mtr;
pub mod outcome;
pub mod ping;
pub mod speedtest;
pub mod traceroute;

pub use cron::Cron;
pub use iperf::{iperf_tcp, iperf_udp, IperfTcpReport, IperfUdpReport};
pub use maxmin::{QueueingEstimate, QueueingReport};
pub use mtr::{mtr, MtrReport};
pub use outcome::ToolOutcome;
pub use ping::{ping, PingOptions, PingReport};
pub use speedtest::{speedtest, SpeedtestResult};
pub use traceroute::{traceroute, HopResult, TracerouteOptions, TracerouteResult};
