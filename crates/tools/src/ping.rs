//! ping: fixed-interval ICMP echo round-trip measurement.
//!
//! The volunteer RPis used ping alongside mtr for debugging (§3.2); the
//! Dishy's own "pop ping latency" statistic is the same measurement. This
//! implementation sends echo requests at a fixed interval and reports the
//! RTT series with loss accounting.

use crate::outcome::ToolOutcome;
use starlink_netsim::{Network, NodeId, Payload};
use starlink_simcore::{Bytes, SimDuration, SimTime};
use std::collections::HashMap;

/// Parameters for a ping run.
#[derive(Debug, Clone, Copy)]
pub struct PingOptions {
    /// Number of echo requests.
    pub count: u32,
    /// Interval between requests.
    pub interval: SimDuration,
    /// On-wire packet size.
    pub size: Bytes,
    /// Wait for stragglers after the last request.
    pub timeout: SimDuration,
    /// Extra rounds re-probing unanswered slots. Each retry round waits
    /// twice as long as the previous one (exponential backoff in virtual
    /// time). `0` reproduces classic single-pass ping.
    pub retries: u32,
}

impl Default for PingOptions {
    fn default() -> Self {
        PingOptions {
            count: 10,
            interval: SimDuration::from_secs(1),
            size: Bytes::new(64),
            timeout: SimDuration::from_secs(2),
            retries: 0,
        }
    }
}

impl PingOptions {
    /// An upper bound on the virtual time a run can occupy: even against
    /// a totally black network the tool returns within this budget.
    pub fn virtual_time_budget(&self) -> SimDuration {
        let mut budget = SimDuration::ZERO;
        for round in 0..=self.retries {
            let per_round = self
                .interval
                .mul_f64(f64::from(self.count))
                .saturating_add(backoff_timeout(self.timeout, round));
            budget = budget.saturating_add(per_round);
        }
        budget
    }
}

/// The straggler wait for a retry round: `timeout * 2^round`, saturating.
fn backoff_timeout(timeout: SimDuration, round: u32) -> SimDuration {
    timeout.mul_f64(f64::powi(2.0, round.min(32) as i32))
}

/// Results of a ping run.
#[derive(Debug, Clone, PartialEq)]
pub struct PingReport {
    /// Per-probe RTTs in send order (`None` = lost).
    pub rtts: Vec<Option<SimDuration>>,
    /// How the run ended: `Complete` when every probe was answered,
    /// `Degraded` on partial loss, `Failed` when nothing came back.
    pub outcome: ToolOutcome,
    /// Retry rounds actually used (0 = first pass sufficed or no retries
    /// were configured).
    pub retry_rounds: u32,
}

impl PingReport {
    /// Echo requests sent.
    pub fn sent(&self) -> usize {
        self.rtts.len()
    }

    /// Replies received.
    pub fn received(&self) -> usize {
        self.rtts.iter().flatten().count()
    }

    /// Loss fraction.
    pub fn loss_fraction(&self) -> f64 {
        if self.rtts.is_empty() {
            return 0.0;
        }
        1.0 - self.received() as f64 / self.sent() as f64
    }

    /// Minimum RTT, ms.
    pub fn min_ms(&self) -> Option<f64> {
        self.rtts.iter().flatten().min().map(|d| d.as_millis_f64())
    }

    /// Mean RTT over received replies, ms.
    pub fn avg_ms(&self) -> Option<f64> {
        let v: Vec<f64> = self
            .rtts
            .iter()
            .flatten()
            .map(|d| d.as_millis_f64())
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Maximum RTT, ms.
    pub fn max_ms(&self) -> Option<f64> {
        self.rtts.iter().flatten().max().map(|d| d.as_millis_f64())
    }

    /// The classic one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} packets transmitted, {} received, {:.0}% packet loss; \
             rtt min/avg/max = {:.2}/{:.2}/{:.2} ms",
            self.sent(),
            self.received(),
            self.loss_fraction() * 100.0,
            self.min_ms().unwrap_or(f64::NAN),
            self.avg_ms().unwrap_or(f64::NAN),
            self.max_ms().unwrap_or(f64::NAN),
        )
    }
}

/// Pings `dst` from `src`, advancing simulated time.
///
/// With `opts.retries > 0`, probe slots still unanswered after a pass are
/// re-probed in further rounds, each waiting twice as long for stragglers
/// than the last. The run never exceeds
/// [`PingOptions::virtual_time_budget`] of virtual time, whatever the
/// network does.
pub fn ping(net: &mut Network, src: NodeId, dst: NodeId, opts: &PingOptions) -> PingReport {
    // probe id -> (slot index, send time); ids encode (round, slot) so
    // stragglers from earlier rounds still resolve to the right slot.
    let mut sent_at: HashMap<u64, (usize, SimTime)> = HashMap::new();
    let mut rtts: Vec<Option<SimDuration>> = vec![None; opts.count as usize];
    let mut pending: Vec<usize> = (0..opts.count as usize).collect();
    let mut retry_rounds = 0;

    for round in 0..=opts.retries {
        for &slot in &pending {
            let probe = (slot as u64) | (u64::from(round) << 32) | 0x5043_0000_0000_0000;
            net.send_packet(src, dst, opts.size, 64, Payload::EchoRequest { probe });
            sent_at.insert(probe, (slot, net.now()));
            let next = net.now() + opts.interval;
            net.run_until(next);
        }
        net.run_until(net.now() + backoff_timeout(opts.timeout, round));
        for (at, packet) in net.drain_mailbox(src) {
            if let Payload::EchoReply { probe } = packet.payload {
                if let Some(&(slot, t0)) = sent_at.get(&probe) {
                    // First answer per slot wins (a retry may race its
                    // original); keep the earliest RTT.
                    if rtts[slot].is_none() {
                        rtts[slot] = Some(at.since(t0));
                    }
                }
            }
        }
        pending.retain(|&slot| rtts[slot].is_none());
        if pending.is_empty() {
            break;
        }
        if round < opts.retries {
            retry_rounds = round + 1;
        }
    }

    let lost = rtts.iter().filter(|r| r.is_none()).count();
    starlink_obsv::counter_add("tools.ping.sent", rtts.len() as u64);
    starlink_obsv::counter_add("tools.ping.lost", lost as u64);
    for rtt in rtts.iter().flatten() {
        starlink_obsv::histogram_record("tools.ping.rtt_us", rtt.as_nanos() / 1_000);
    }
    let outcome = if !rtts.is_empty() && lost == rtts.len() {
        ToolOutcome::failed("no echo replies received")
    } else if lost > 0 {
        ToolOutcome::degraded(format!("{lost} of {} probes unanswered", rtts.len()))
    } else {
        ToolOutcome::Complete
    };
    PingReport {
        rtts,
        outcome,
        retry_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_netsim::{LinkConfig, NodeKind};
    use starlink_simcore::DataRate;

    fn net(loss: f64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(77);
        let a = net.add_node("a", NodeKind::Host);
        let b = net.add_node("b", NodeKind::Host);
        net.connect_duplex(
            a,
            b,
            LinkConfig::fixed(SimDuration::from_millis(15), DataRate::from_mbps(100), loss),
            LinkConfig::fixed(SimDuration::from_millis(15), DataRate::from_mbps(100), 0.0),
        );
        net.route_linear(&[a, b]);
        (net, a, b)
    }

    #[test]
    fn clean_path_all_replies() {
        let (mut n, a, b) = net(0.0);
        let report = ping(&mut n, a, b, &PingOptions::default());
        assert_eq!(report.sent(), 10);
        assert_eq!(report.received(), 10);
        assert_eq!(report.loss_fraction(), 0.0);
        let avg = report.avg_ms().unwrap();
        assert!((29.0..32.0).contains(&avg), "{avg}");
        assert!(report.summary().contains("0% packet loss"));
    }

    #[test]
    fn lossy_path_reports_loss() {
        let (mut n, a, b) = net(0.4);
        let report = ping(
            &mut n,
            a,
            b,
            &PingOptions {
                count: 100,
                interval: SimDuration::from_millis(100),
                ..PingOptions::default()
            },
        );
        let loss = report.loss_fraction();
        assert!((0.25..0.55).contains(&loss), "loss {loss}");
        assert!(report.min_ms().unwrap() <= report.max_ms().unwrap());
    }

    #[test]
    fn ping_populates_the_metrics_registry() {
        let (mut n, a, b) = net(0.0);
        assert!(starlink_obsv::metrics_begin().is_none());
        let report = ping(&mut n, a, b, &PingOptions::default());
        let reg = starlink_obsv::metrics_take().expect("registry installed above");
        assert_eq!(reg.counter("tools.ping.sent"), report.sent() as u64);
        assert_eq!(reg.counter("tools.ping.lost"), 0);
        let h = reg.histogram("tools.ping.rtt_us").expect("rtt samples");
        assert_eq!(h.count(), report.received() as u64);
        // ~30 ms RTT on the 2x15 ms path; the histogram must see it.
        assert!(h.min().unwrap() >= 20_000, "min {:?}", h.min());
    }

    #[test]
    fn empty_report_degenerates_gracefully() {
        let report = PingReport {
            rtts: vec![],
            outcome: ToolOutcome::Complete,
            retry_rounds: 0,
        };
        assert_eq!(report.loss_fraction(), 0.0);
        assert!(report.avg_ms().is_none());
    }

    #[test]
    fn outcomes_track_loss() {
        let (mut n, a, b) = net(0.0);
        let clean = ping(&mut n, a, b, &PingOptions::default());
        assert!(clean.outcome.is_complete());

        let (mut n, a, b) = net(0.4);
        let lossy = ping(
            &mut n,
            a,
            b,
            &PingOptions {
                count: 50,
                interval: SimDuration::from_millis(100),
                ..PingOptions::default()
            },
        );
        assert!(matches!(lossy.outcome, ToolOutcome::Degraded { .. }));
    }

    #[test]
    fn retries_recover_lost_probes() {
        let (mut n, a, b) = net(0.4);
        let opts = PingOptions {
            count: 20,
            interval: SimDuration::from_millis(100),
            retries: 4,
            ..PingOptions::default()
        };
        let start = n.now();
        let report = ping(&mut n, a, b, &opts);
        // With four retry rounds on 40% loss, expected residual loss per
        // slot is 0.4^5 ~ 1%; the run almost always completes cleanly.
        assert!(
            report.loss_fraction() < 0.15,
            "retries should claw back loss: {}",
            report.loss_fraction()
        );
        // And it never overstays its virtual-time budget.
        assert!(n.now().since(start) <= opts.virtual_time_budget());
    }

    #[test]
    fn dead_network_fails_within_budget() {
        let (mut n, a, b) = net(1.0); // every probe is lost
        let opts = PingOptions {
            count: 5,
            interval: SimDuration::from_millis(200),
            retries: 2,
            ..PingOptions::default()
        };
        let start = n.now();
        let report = ping(&mut n, a, b, &opts);
        assert!(report.outcome.is_failed());
        assert_eq!(report.received(), 0);
        assert_eq!(report.retry_rounds, 2);
        assert!(n.now().since(start) <= opts.virtual_time_budget());
    }
}
