//! ping: fixed-interval ICMP echo round-trip measurement.
//!
//! The volunteer RPis used ping alongside mtr for debugging (§3.2); the
//! Dishy's own "pop ping latency" statistic is the same measurement. This
//! implementation sends echo requests at a fixed interval and reports the
//! RTT series with loss accounting.

use starlink_netsim::{Network, NodeId, Payload};
use starlink_simcore::{Bytes, SimDuration, SimTime};
use std::collections::HashMap;

/// Parameters for a ping run.
#[derive(Debug, Clone, Copy)]
pub struct PingOptions {
    /// Number of echo requests.
    pub count: u32,
    /// Interval between requests.
    pub interval: SimDuration,
    /// On-wire packet size.
    pub size: Bytes,
    /// Wait for stragglers after the last request.
    pub timeout: SimDuration,
}

impl Default for PingOptions {
    fn default() -> Self {
        PingOptions {
            count: 10,
            interval: SimDuration::from_secs(1),
            size: Bytes::new(64),
            timeout: SimDuration::from_secs(2),
        }
    }
}

/// Results of a ping run.
#[derive(Debug, Clone)]
pub struct PingReport {
    /// Per-probe RTTs in send order (`None` = lost).
    pub rtts: Vec<Option<SimDuration>>,
}

impl PingReport {
    /// Echo requests sent.
    pub fn sent(&self) -> usize {
        self.rtts.len()
    }

    /// Replies received.
    pub fn received(&self) -> usize {
        self.rtts.iter().flatten().count()
    }

    /// Loss fraction.
    pub fn loss_fraction(&self) -> f64 {
        if self.rtts.is_empty() {
            return 0.0;
        }
        1.0 - self.received() as f64 / self.sent() as f64
    }

    /// Minimum RTT, ms.
    pub fn min_ms(&self) -> Option<f64> {
        self.rtts.iter().flatten().min().map(|d| d.as_millis_f64())
    }

    /// Mean RTT over received replies, ms.
    pub fn avg_ms(&self) -> Option<f64> {
        let v: Vec<f64> = self
            .rtts
            .iter()
            .flatten()
            .map(|d| d.as_millis_f64())
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Maximum RTT, ms.
    pub fn max_ms(&self) -> Option<f64> {
        self.rtts.iter().flatten().max().map(|d| d.as_millis_f64())
    }

    /// The classic one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{} packets transmitted, {} received, {:.0}% packet loss; \
             rtt min/avg/max = {:.2}/{:.2}/{:.2} ms",
            self.sent(),
            self.received(),
            self.loss_fraction() * 100.0,
            self.min_ms().unwrap_or(f64::NAN),
            self.avg_ms().unwrap_or(f64::NAN),
            self.max_ms().unwrap_or(f64::NAN),
        )
    }
}

/// Pings `dst` from `src`, advancing simulated time.
pub fn ping(net: &mut Network, src: NodeId, dst: NodeId, opts: &PingOptions) -> PingReport {
    let mut sent_at: HashMap<u64, (usize, SimTime)> = HashMap::new();
    for i in 0..opts.count {
        let probe = u64::from(i) | 0x5043_0000_0000_0000; // tag ping probes
        net.send_packet(src, dst, opts.size, 64, Payload::EchoRequest { probe });
        sent_at.insert(probe, (i as usize, net.now()));
        let next = net.now() + opts.interval;
        net.run_until(next);
    }
    net.run_until(net.now() + opts.timeout);

    let mut rtts = vec![None; opts.count as usize];
    for (at, packet) in net.drain_mailbox(src) {
        if let Payload::EchoReply { probe } = packet.payload {
            if let Some(&(idx, t0)) = sent_at.get(&probe) {
                rtts[idx] = Some(at.since(t0));
            }
        }
    }
    PingReport { rtts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_netsim::{LinkConfig, NodeKind};
    use starlink_simcore::DataRate;

    fn net(loss: f64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new(77);
        let a = net.add_node("a", NodeKind::Host);
        let b = net.add_node("b", NodeKind::Host);
        net.connect_duplex(
            a,
            b,
            LinkConfig::fixed(SimDuration::from_millis(15), DataRate::from_mbps(100), loss),
            LinkConfig::fixed(SimDuration::from_millis(15), DataRate::from_mbps(100), 0.0),
        );
        net.route_linear(&[a, b]);
        (net, a, b)
    }

    #[test]
    fn clean_path_all_replies() {
        let (mut n, a, b) = net(0.0);
        let report = ping(&mut n, a, b, &PingOptions::default());
        assert_eq!(report.sent(), 10);
        assert_eq!(report.received(), 10);
        assert_eq!(report.loss_fraction(), 0.0);
        let avg = report.avg_ms().unwrap();
        assert!((29.0..32.0).contains(&avg), "{avg}");
        assert!(report.summary().contains("0% packet loss"));
    }

    #[test]
    fn lossy_path_reports_loss() {
        let (mut n, a, b) = net(0.4);
        let report = ping(
            &mut n,
            a,
            b,
            &PingOptions {
                count: 100,
                interval: SimDuration::from_millis(100),
                ..PingOptions::default()
            },
        );
        let loss = report.loss_fraction();
        assert!((0.25..0.55).contains(&loss), "loss {loss}");
        assert!(report.min_ms().unwrap() <= report.max_ms().unwrap());
    }

    #[test]
    fn empty_report_degenerates_gracefully() {
        let report = PingReport { rtts: vec![] };
        assert_eq!(report.loss_fraction(), 0.0);
        assert!(report.avg_ms().is_none());
    }
}
