//! The RPi cron schedules.
//!
//! §3.2: "The RPi has a cron job that executes every 5 minutes, running
//! the speedtest utility", and Fig. 6(b) plots iperf "one every half
//! hour". [`Cron`] generates those tick times over an analysis window.

use starlink_simcore::{SimDuration, SimTime};

/// A fixed-interval schedule over a window.
#[derive(Debug, Clone, Copy)]
pub struct Cron {
    /// Interval between ticks.
    pub every: SimDuration,
    /// First tick.
    pub start: SimTime,
    /// End of the window (exclusive).
    pub end: SimTime,
}

impl Cron {
    /// A schedule firing `every` from `start` until `end`.
    ///
    /// # Panics
    /// Panics on a zero interval.
    pub fn new(every: SimDuration, start: SimTime, end: SimTime) -> Self {
        assert!(every > SimDuration::ZERO, "cron interval must be positive");
        Cron { every, start, end }
    }

    /// The paper's speedtest cadence: every 5 minutes.
    pub fn speedtest_schedule(start: SimTime, end: SimTime) -> Self {
        Self::new(SimDuration::from_mins(5), start, end)
    }

    /// The paper's iperf cadence: every 30 minutes.
    pub fn iperf_schedule(start: SimTime, end: SimTime) -> Self {
        Self::new(SimDuration::from_mins(30), start, end)
    }

    /// Number of ticks in the window.
    pub fn len(&self) -> usize {
        if self.end <= self.start {
            return 0;
        }
        let span = self.end.since(self.start).as_nanos();
        let every = self.every.as_nanos();
        (span / every) as usize + usize::from(!span.is_multiple_of(every))
    }

    /// Whether the window contains no ticks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the tick times.
    pub fn ticks(&self) -> impl Iterator<Item = SimTime> + '_ {
        let every = self.every;
        let end = self.end;
        let start = self.start;
        (0..)
            .map(move |i| start + every * i)
            .take_while(move |&t| t < end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_minute_schedule_over_a_day() {
        let cron = Cron::speedtest_schedule(SimTime::ZERO, SimTime::from_secs(86_400));
        let ticks: Vec<SimTime> = cron.ticks().collect();
        assert_eq!(ticks.len(), 288, "24h / 5min");
        assert_eq!(ticks[0], SimTime::ZERO);
        assert_eq!(ticks[1], SimTime::from_secs(300));
        assert_eq!(cron.len(), 288);
    }

    #[test]
    fn half_hour_schedule_matches_fig6b() {
        let cron = Cron::iperf_schedule(SimTime::ZERO, SimTime::from_secs(2 * 86_400));
        assert_eq!(cron.ticks().count(), 96, "2 days x 48 tests");
    }

    #[test]
    fn empty_window() {
        let cron = Cron::new(
            SimDuration::from_mins(5),
            SimTime::from_secs(100),
            SimTime::from_secs(100),
        );
        assert!(cron.is_empty());
        assert_eq!(cron.ticks().count(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = Cron::new(SimDuration::ZERO, SimTime::ZERO, SimTime::from_secs(1));
    }

    #[test]
    fn offset_start() {
        let cron = Cron::new(
            SimDuration::from_mins(10),
            SimTime::from_secs(60),
            SimTime::from_secs(1_860),
        );
        let ticks: Vec<u64> = cron.ticks().map(|t| t.as_secs()).collect();
        assert_eq!(ticks, vec![60, 660, 1_260]);
        assert_eq!(cron.len(), 3);
    }
}
