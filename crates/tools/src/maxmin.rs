//! The max–min queueing-delay estimator (Chan et al., adapted in §4 of
//! the paper).
//!
//! Repeated RTT samples to the same point share the same propagation
//! delay; only queueing varies. So `max − min` lower-bounds the maximum
//! queueing delay over the sample window, `median − min` estimates the
//! median queueing delay, and subtracting two hops' estimates isolates a
//! path segment (e.g. the bent pipe = the PoP hop minus the dish hop).

use crate::outcome::ToolOutcome;
use starlink_simcore::SimDuration;

/// Queueing statistics extracted from a set of RTT samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueingEstimate {
    /// Smallest observed RTT, ms (the propagation proxy).
    pub min_rtt_ms: f64,
    /// Median observed RTT, ms.
    pub median_rtt_ms: f64,
    /// Largest observed RTT, ms.
    pub max_rtt_ms: f64,
    /// Estimated median queueing delay: `median − min`, ms.
    pub median_queue_ms: f64,
    /// Estimated maximum queueing delay: `max − min`, ms.
    pub max_queue_ms: f64,
    /// Estimated mean queueing delay: `mean − min`, ms.
    pub mean_queue_ms: f64,
    /// Number of samples used.
    pub samples: usize,
}

/// A [`QueueingEstimate`] together with the health of the run that
/// produced it, in the same shape the ping/traceroute hardening uses:
/// callers branch on [`ToolOutcome`] instead of unwrapping an `Option`.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueingReport {
    /// The estimate, absent when the samples could not support one.
    pub estimate: Option<QueueingEstimate>,
    /// `Complete` when every sample was usable, `Degraded` when
    /// non-finite samples had to be discarded, `Failed` when fewer than
    /// 2 usable samples remained.
    pub outcome: ToolOutcome,
}

impl QueueingReport {
    /// Builds the report from raw RTT samples (losses already filtered
    /// out upstream). Non-finite samples (NaN/∞ from arithmetic on empty
    /// windows) are discarded and degrade the outcome rather than being
    /// trusted or panicking.
    pub fn from_rtts_ms(samples: &[f64]) -> QueueingReport {
        let usable = samples.iter().filter(|s| s.is_finite()).count();
        let discarded = samples.len() - usable;
        let estimate = QueueingEstimate::from_rtts_ms(samples);
        let outcome = if estimate.is_none() {
            ToolOutcome::failed(format!(
                "{usable} usable sample(s) of {}; the max-min method needs 2",
                samples.len()
            ))
        } else if discarded > 0 {
            ToolOutcome::degraded(format!("discarded {discarded} non-finite sample(s)"))
        } else {
            ToolOutcome::Complete
        };
        QueueingReport { estimate, outcome }
    }

    /// Builds the report from `SimDuration` samples.
    pub fn from_rtts(samples: &[SimDuration]) -> QueueingReport {
        let ms: Vec<f64> = samples.iter().map(|d| d.as_millis_f64()).collect();
        Self::from_rtts_ms(&ms)
    }
}

impl QueueingEstimate {
    /// Estimates from raw RTT samples (losses already filtered out).
    /// Returns `None` with fewer than 2 usable samples — the method needs
    /// a spread to say anything. Non-finite samples (NaN/∞ from upstream
    /// arithmetic on empty windows) are discarded rather than trusted.
    /// [`QueueingReport::from_rtts_ms`] additionally reports *why* an
    /// estimate is missing or weakened.
    pub fn from_rtts_ms(samples: &[f64]) -> Option<QueueingEstimate> {
        let mut v: Vec<f64> = samples.iter().copied().filter(|s| s.is_finite()).collect();
        if v.len() < 2 {
            return None;
        }
        v.sort_by(|a, b| a.total_cmp(b));
        let min = v[0];
        let max = v[v.len() - 1];
        let median = v[v.len() / 2];
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        Some(QueueingEstimate {
            min_rtt_ms: min,
            median_rtt_ms: median,
            max_rtt_ms: max,
            median_queue_ms: median - min,
            max_queue_ms: max - min,
            mean_queue_ms: mean - min,
            samples: v.len(),
        })
    }

    /// Estimates from `SimDuration` samples.
    pub fn from_rtts(samples: &[SimDuration]) -> Option<QueueingEstimate> {
        let ms: Vec<f64> = samples.iter().map(|d| d.as_millis_f64()).collect();
        Self::from_rtts_ms(&ms)
    }

    /// The queueing attributable to the segment between two measurement
    /// points: this estimate minus the nearer hop's estimate, floored at
    /// zero (sampling noise can invert small differences).
    pub fn segment_from(&self, nearer: &QueueingEstimate) -> QueueingEstimate {
        QueueingEstimate {
            min_rtt_ms: (self.min_rtt_ms - nearer.min_rtt_ms).max(0.0),
            median_rtt_ms: (self.median_rtt_ms - nearer.median_rtt_ms).max(0.0),
            max_rtt_ms: (self.max_rtt_ms - nearer.max_rtt_ms).max(0.0),
            median_queue_ms: (self.median_queue_ms - nearer.median_queue_ms).max(0.0),
            max_queue_ms: (self.max_queue_ms - nearer.max_queue_ms).max(0.0),
            mean_queue_ms: (self.mean_queue_ms - nearer.mean_queue_ms).max(0.0),
            samples: self.samples.min(nearer.samples),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unwrap-free accessor: the report's outcome explains any absence.
    fn est(samples: &[f64]) -> Result<QueueingEstimate, String> {
        let r = QueueingReport::from_rtts_ms(samples);
        r.estimate.ok_or_else(|| r.outcome.to_string())
    }

    #[test]
    fn estimates_from_known_samples() -> Result<(), String> {
        // Propagation 40 ms + queueing {0, 5, 10, 20, 45}.
        let e = est(&[40.0, 45.0, 50.0, 60.0, 85.0])?;
        assert_eq!(e.min_rtt_ms, 40.0);
        assert_eq!(e.max_rtt_ms, 85.0);
        assert_eq!(e.median_rtt_ms, 50.0);
        assert_eq!(e.max_queue_ms, 45.0);
        assert_eq!(e.median_queue_ms, 10.0);
        assert!((e.mean_queue_ms - 16.0).abs() < 1e-9);
        assert_eq!(e.samples, 5);
        Ok(())
    }

    #[test]
    fn propagation_cancels_out() -> Result<(), String> {
        // Same queueing pattern, different propagation: identical queue
        // estimates — the whole point of the method.
        let near: Vec<f64> = [0.0, 3.0, 8.0, 12.0].iter().map(|q| 10.0 + q).collect();
        let far: Vec<f64> = [0.0, 3.0, 8.0, 12.0].iter().map(|q| 90.0 + q).collect();
        let en = est(&near)?;
        let ef = est(&far)?;
        assert_eq!(en.max_queue_ms, ef.max_queue_ms);
        assert_eq!(en.median_queue_ms, ef.median_queue_ms);
        Ok(())
    }

    #[test]
    fn segment_isolation() -> Result<(), String> {
        // Hop A (dish): queue 0-5 ms over 2 ms prop. Hop B (PoP via bent
        // pipe): A plus 30-60 ms of its own queueing over 8 ms more prop.
        let hop_a = est(&[2.0, 4.0, 7.0])?;
        let hop_b = est(&[40.0, 62.0, 95.0])?;
        let segment = hop_b.segment_from(&hop_a);
        assert!(segment.median_queue_ms > 15.0);
        assert!(segment.max_queue_ms <= hop_b.max_queue_ms);
        Ok(())
    }

    #[test]
    fn too_few_samples_fail_with_a_reason() {
        for samples in [&[][..], &[10.0][..]] {
            let r = QueueingReport::from_rtts_ms(samples);
            assert!(r.estimate.is_none());
            assert!(r.outcome.is_failed());
            assert!(r.outcome.to_string().contains("needs 2"));
        }
    }

    #[test]
    fn non_finite_samples_degrade_the_outcome() -> Result<(), String> {
        let starved = QueueingReport::from_rtts_ms(&[f64::NAN, 10.0]);
        assert!(starved.estimate.is_none());
        assert!(starved.outcome.is_failed());

        let r = QueueingReport::from_rtts_ms(&[f64::NAN, 10.0, 20.0, f64::INFINITY]);
        assert!(matches!(r.outcome, ToolOutcome::Degraded { .. }));
        let e = r.estimate.ok_or("degraded run still has an estimate")?;
        assert_eq!(e.samples, 2);
        assert_eq!(e.min_rtt_ms, 10.0);
        assert_eq!(e.max_rtt_ms, 20.0);
        Ok(())
    }

    #[test]
    fn clean_samples_are_complete() {
        let r = QueueingReport::from_rtts_ms(&[10.0, 20.0, 30.0]);
        assert!(r.outcome.is_complete());
        assert!(r.estimate.is_some());
    }

    #[test]
    fn duration_interface_matches_ms_interface() {
        let durs = [
            SimDuration::from_millis(40),
            SimDuration::from_millis(55),
            SimDuration::from_millis(70),
        ];
        let a = QueueingReport::from_rtts(&durs);
        let b = QueueingReport::from_rtts_ms(&[40.0, 55.0, 70.0]);
        assert_eq!(a, b);
        assert!(a.outcome.is_complete());
    }

    #[test]
    fn segment_never_negative() -> Result<(), String> {
        let a = est(&[10.0, 40.0, 80.0])?;
        let b = est(&[50.0, 55.0, 60.0])?;
        let seg = b.segment_from(&a);
        assert!(seg.max_queue_ms >= 0.0);
        assert!(seg.median_queue_ms >= 0.0);
        assert!(seg.mean_queue_ms >= 0.0);
        Ok(())
    }
}
