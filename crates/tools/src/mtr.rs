//! mtr-style repeated path sampling.
//!
//! Runs multiple traceroute rounds and aggregates per-hop statistics —
//! the workflow behind the paper's Fig. 5 (20 rounds per access
//! technology) and the Table 2 queueing estimation (30 samples per node).

use crate::maxmin::QueueingEstimate;
use crate::outcome::ToolOutcome;
use crate::traceroute::{traceroute, TracerouteOptions};
use starlink_netsim::{Network, NodeId};
use starlink_simcore::SimDuration;

/// Aggregated per-hop statistics across rounds.
#[derive(Debug, Clone, PartialEq)]
pub struct MtrHop {
    /// Hop number (TTL).
    pub ttl: u8,
    /// Responder name (from the last round that heard it).
    pub name: String,
    /// All successful RTT samples across rounds.
    pub rtts: Vec<SimDuration>,
    /// Probes sent across rounds.
    pub sent: usize,
}

impl MtrHop {
    /// Loss fraction across all rounds.
    pub fn loss_fraction(&self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        1.0 - self.rtts.len() as f64 / self.sent as f64
    }

    /// Queueing estimate over this hop's samples.
    pub fn queueing(&self) -> Option<QueueingEstimate> {
        QueueingEstimate::from_rtts(&self.rtts)
    }

    /// Mean RTT in ms over answered probes.
    pub fn mean_rtt_ms(&self) -> Option<f64> {
        if self.rtts.is_empty() {
            return None;
        }
        Some(self.rtts.iter().map(|d| d.as_millis_f64()).sum::<f64>() / self.rtts.len() as f64)
    }
}

/// A complete mtr report.
#[derive(Debug, Clone, PartialEq)]
pub struct MtrReport {
    /// Per-hop aggregates.
    pub hops: Vec<MtrHop>,
    /// Number of rounds run.
    pub rounds: u32,
    /// How the run ended: `Complete` when every round reached the
    /// destination cleanly, `Degraded` on partial answers, `Failed` when
    /// no round heard anything.
    pub outcome: ToolOutcome,
}

/// Runs `rounds` traceroutes spaced by `round_gap` and aggregates.
pub fn mtr(
    net: &mut Network,
    src: NodeId,
    dst: NodeId,
    opts: &TracerouteOptions,
    rounds: u32,
    round_gap: SimDuration,
) -> MtrReport {
    let mut hops: Vec<MtrHop> = Vec::new();
    let mut round_outcome: Option<ToolOutcome> = None;
    for _ in 0..rounds {
        let result = traceroute(net, src, dst, opts);
        round_outcome = Some(match round_outcome {
            None => result.outcome.clone(),
            Some(acc) => acc.combine(&result.outcome),
        });
        for hop in &result.hops {
            let idx = (hop.ttl - 1) as usize;
            while hops.len() <= idx {
                hops.push(MtrHop {
                    ttl: hops.len() as u8 + 1,
                    name: String::from("*"),
                    rtts: Vec::new(),
                    sent: 0,
                });
            }
            let agg = &mut hops[idx];
            agg.sent += hop.rtts.len();
            if hop.node.is_some() {
                agg.name = hop.name.clone();
            }
            agg.rtts.extend(hop.rtts.iter().flatten().copied());
        }
        let next = net.now() + round_gap;
        net.run_until(next);
    }
    let outcome = round_outcome.unwrap_or_else(|| ToolOutcome::failed("zero rounds requested"));
    MtrReport {
        hops,
        rounds,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_netsim::{LinkConfig, NodeKind};
    use starlink_simcore::{DataRate, SimTime};

    fn jittery_net() -> (Network, NodeId, NodeId) {
        let mut net = Network::new(11);
        let c = net.add_node("client", NodeKind::Host);
        let r = net.add_node("pop", NodeKind::Router);
        let s = net.add_node("server", NodeKind::Host);
        // A slow link so queueing varies with cross traffic (none here,
        // but serialisation still adds spread for different probe gaps).
        net.connect_duplex(
            c,
            r,
            LinkConfig::fixed(SimDuration::from_millis(20), DataRate::from_mbps(10), 0.05),
            LinkConfig::ethernet(),
        );
        net.connect_duplex(r, s, LinkConfig::ethernet(), LinkConfig::ethernet());
        net.route_linear(&[c, r, s]);
        (net, c, s)
    }

    #[test]
    fn aggregates_across_rounds() {
        let (mut net, c, s) = jittery_net();
        let opts = TracerouteOptions {
            probes_per_hop: 3,
            max_ttl: 5,
            ..TracerouteOptions::default()
        };
        let report = mtr(&mut net, c, s, &opts, 10, SimDuration::from_millis(500));
        assert_eq!(report.rounds, 10);
        assert_eq!(report.hops.len(), 2);
        let pop = &report.hops[0];
        assert_eq!(pop.name, "pop");
        assert_eq!(pop.sent, 30, "3 probes x 10 rounds");
        // ~5% loss configured.
        assert!(pop.loss_fraction() < 0.3, "{}", pop.loss_fraction());
        assert!(pop.rtts.len() >= 20);
        assert!(pop.queueing().is_some());
    }

    #[test]
    fn rounds_advance_simulated_time() {
        let (mut net, c, s) = jittery_net();
        let opts = TracerouteOptions {
            max_ttl: 3,
            ..TracerouteOptions::default()
        };
        let before = net.now();
        let _ = mtr(&mut net, c, s, &opts, 3, SimDuration::from_secs(1));
        assert!(net.now() >= before + SimDuration::from_secs(3));
        assert!(net.now() < SimTime::from_secs(60));
    }

    #[test]
    fn outcome_reflects_round_health() {
        let (mut net, c, s) = jittery_net();
        let opts = TracerouteOptions {
            max_ttl: 4,
            ..TracerouteOptions::default()
        };
        let report = mtr(&mut net, c, s, &opts, 5, SimDuration::from_millis(200));
        // A 5%-lossy hop means rounds are typically degraded, never failed.
        assert!(report.outcome.is_usable());
    }

    #[test]
    fn mean_rtt_reported() {
        let (mut net, c, s) = jittery_net();
        let opts = TracerouteOptions {
            max_ttl: 4,
            ..TracerouteOptions::default()
        };
        let report = mtr(&mut net, c, s, &opts, 5, SimDuration::from_millis(200));
        let mean = report.hops[0].mean_rtt_ms().expect("answered");
        // 20 ms out + ~0.1 ms ethernet return + serialisation.
        assert!((19.5..26.0).contains(&mean), "{mean}");
    }
}
