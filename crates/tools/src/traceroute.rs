//! Traceroute: per-TTL probes and the replies routers send back.
//!
//! Works exactly like the classic tool: probes go out with TTL = 1, 2, …;
//! the router where the TTL dies answers with ICMP Time-Exceeded, and the
//! destination itself answers the probe (our probes are echo requests, so
//! handler-less hosts reply automatically — the moral equivalent of the
//! UDP-to-closed-port reply real traceroute relies on). The paper runs
//! its Fig. 5 comparison with 20 rounds and its Table 2 estimation with
//! 30 probes of 60-byte UDP datagrams; both call into this module.

use starlink_netsim::{Network, NodeId, Payload};
use starlink_simcore::{Bytes, SimDuration, SimTime};
use std::collections::HashMap;

/// Traceroute parameters.
#[derive(Debug, Clone, Copy)]
pub struct TracerouteOptions {
    /// Highest TTL probed.
    pub max_ttl: u8,
    /// Probes per TTL.
    pub probes_per_hop: u32,
    /// On-wire probe size (the paper uses 60-byte probes).
    pub probe_size: Bytes,
    /// Gap between consecutive probes.
    pub inter_probe_gap: SimDuration,
    /// How long to wait for stragglers after the last probe.
    pub timeout: SimDuration,
}

impl Default for TracerouteOptions {
    fn default() -> Self {
        TracerouteOptions {
            max_ttl: 30,
            probes_per_hop: 3,
            probe_size: Bytes::new(60),
            inter_probe_gap: SimDuration::from_millis(50),
            timeout: SimDuration::from_secs(2),
        }
    }
}

/// Results for one TTL value.
#[derive(Debug, Clone)]
pub struct HopResult {
    /// TTL probed (1-based hop number).
    pub ttl: u8,
    /// The responding node, if any probe was answered.
    pub node: Option<NodeId>,
    /// The responding node's name.
    pub name: String,
    /// Per-probe RTTs (`None` = probe lost).
    pub rtts: Vec<Option<SimDuration>>,
}

impl HopResult {
    /// Minimum RTT across answered probes.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.rtts.iter().flatten().min().copied()
    }

    /// Maximum RTT across answered probes.
    pub fn max_rtt(&self) -> Option<SimDuration> {
        self.rtts.iter().flatten().max().copied()
    }

    /// Mean RTT across answered probes, ms.
    pub fn mean_rtt_ms(&self) -> Option<f64> {
        let answered: Vec<f64> = self
            .rtts
            .iter()
            .flatten()
            .map(|d| d.as_millis_f64())
            .collect();
        if answered.is_empty() {
            None
        } else {
            Some(answered.iter().sum::<f64>() / answered.len() as f64)
        }
    }

    /// Fraction of probes that went unanswered.
    pub fn loss_fraction(&self) -> f64 {
        if self.rtts.is_empty() {
            return 0.0;
        }
        self.rtts.iter().filter(|r| r.is_none()).count() as f64 / self.rtts.len() as f64
    }
}

/// A complete traceroute run.
#[derive(Debug, Clone)]
pub struct TracerouteResult {
    /// One entry per TTL, up to the hop that reached the destination.
    pub hops: Vec<HopResult>,
    /// Whether the destination answered.
    pub reached: bool,
}

impl TracerouteResult {
    /// Number of hops to the destination (if reached).
    pub fn hop_count(&self) -> Option<usize> {
        self.reached.then_some(self.hops.len())
    }
}

/// Runs a traceroute from `src` to `dst` on `net`, advancing simulated
/// time as it goes (the run occupies `now()` onwards).
pub fn traceroute(
    net: &mut Network,
    src: NodeId,
    dst: NodeId,
    opts: &TracerouteOptions,
) -> TracerouteResult {
    // probe id -> (ttl, probe index, sent_at)
    let mut sent: HashMap<u64, (u8, usize, SimTime)> = HashMap::new();
    let mut probe_counter: u64 = 0;

    for ttl in 1..=opts.max_ttl {
        for probe in 0..opts.probes_per_hop {
            let probe_id = probe_counter;
            probe_counter += 1;
            let pkt_id = net.send_packet(
                src,
                dst,
                opts.probe_size,
                ttl,
                Payload::EchoRequest { probe: probe_id },
            );
            sent.insert(pkt_id, (ttl, probe as usize, net.now()));
            let next = net.now() + opts.inter_probe_gap;
            net.run_until(next);
        }
    }
    net.run_until(net.now() + opts.timeout);

    // (ttl index, probe index) -> send time, for matching echo replies
    // (which carry the probe number, not the original packet id).
    let send_times: HashMap<(usize, usize), SimTime> = sent
        .values()
        .map(|&(ttl, probe_idx, at)| (((ttl - 1) as usize, probe_idx), at))
        .collect();

    let mut hops: Vec<HopResult> = (1..=opts.max_ttl)
        .map(|ttl| HopResult {
            ttl,
            node: None,
            name: String::from("*"),
            rtts: vec![None; opts.probes_per_hop as usize],
        })
        .collect();
    let mut reached_at_ttl: Option<u8> = None;

    // We sent EchoRequests with probe ids equal to their send order:
    // probe_id = (ttl-1)*probes_per_hop + probe_index.
    let probe_meta = |probe_id: u64| -> (usize, usize) {
        let ttl_idx = (probe_id / u64::from(opts.probes_per_hop)) as usize;
        let probe_idx = (probe_id % u64::from(opts.probes_per_hop)) as usize;
        (ttl_idx, probe_idx)
    };

    // Echo replies are collected first: the destination's true hop number
    // is anchored at (last router TTL + 1), because a lossy path can eat
    // every probe at the destination's own TTL while higher-TTL probes
    // still reach it (TTL to spare).
    let mut echoes: Vec<(usize, usize, SimTime)> = Vec::new();
    let mut max_router_ttl: Option<u8> = None;

    for (at, packet) in net.drain_mailbox(src) {
        match packet.payload {
            Payload::TimeExceeded {
                original,
                at: router,
            } => {
                if let Some(&(ttl, probe_idx, sent_at)) = sent.get(&original) {
                    let hop = &mut hops[(ttl - 1) as usize];
                    hop.node = Some(router);
                    hop.name = net.node_name(router).to_string();
                    hop.rtts[probe_idx] = Some(at.since(sent_at));
                    max_router_ttl = Some(max_router_ttl.map_or(ttl, |m: u8| m.max(ttl)));
                }
            }
            Payload::EchoReply { probe } => {
                let (ttl_idx, probe_idx) = probe_meta(probe);
                echoes.push((ttl_idx, probe_idx, at));
            }
            _ => {}
        }
    }

    if !echoes.is_empty() {
        // Destination hop = one past the farthest router that answered,
        // or the smallest echo TTL when no router spoke at all.
        let min_echo_ttl = echoes
            .iter()
            .map(|&(t, _, _)| t as u8 + 1)
            .min()
            .expect("non-empty");
        let dest_ttl = max_router_ttl.map_or(min_echo_ttl, |m| m + 1);
        reached_at_ttl = Some(dest_ttl);
        let dest_idx = (dest_ttl - 1) as usize;
        hops[dest_idx].node = Some(dst);
        hops[dest_idx].name = net.node_name(dst).to_string();
        for (ttl_idx, probe_idx, at) in echoes {
            let Some(&s) = send_times.get(&(ttl_idx, probe_idx)) else {
                continue;
            };
            let rtt = Some(at.since(s));
            if ttl_idx == dest_idx {
                hops[dest_idx].rtts[probe_idx] = rtt;
            } else {
                // A higher-TTL probe that reached the destination: fold it
                // into the destination hop as an extra sample.
                hops[dest_idx].rtts.push(rtt);
            }
        }
    }

    // Truncate at the destination hop.
    if let Some(r) = reached_at_ttl {
        hops.truncate(r as usize);
    } else {
        // Keep only hops that answered at all, plus trailing silence.
        while hops.last().is_some_and(|h| h.node.is_none()) {
            hops.pop();
        }
    }

    TracerouteResult {
        hops,
        reached: reached_at_ttl.is_some(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_netsim::{LinkConfig, NodeKind};
    use starlink_simcore::DataRate;

    /// client - r1 - r2 - r3 - server with distinct per-link delays.
    fn test_net() -> (Network, NodeId, NodeId) {
        let mut net = Network::new(4);
        let c = net.add_node("client", NodeKind::Host);
        let r1 = net.add_node("gw", NodeKind::Router);
        let r2 = net.add_node("pop", NodeKind::Router);
        let r3 = net.add_node("transit", NodeKind::Router);
        let s = net.add_node("server", NodeKind::Host);
        let delays = [1u64, 15, 5, 20];
        let nodes = [c, r1, r2, r3, s];
        for i in 0..4 {
            let cfg = || {
                LinkConfig::fixed(
                    SimDuration::from_millis(delays[i]),
                    DataRate::from_mbps(100),
                    0.0,
                )
            };
            net.connect_duplex(nodes[i], nodes[i + 1], cfg(), cfg());
        }
        net.route_linear(&nodes);
        (net, c, s)
    }

    #[test]
    fn discovers_every_hop_in_order() {
        let (mut net, c, s) = test_net();
        let result = traceroute(&mut net, c, s, &TracerouteOptions::default());
        assert!(result.reached);
        assert_eq!(result.hop_count(), Some(4));
        assert_eq!(result.hops[0].name, "gw");
        assert_eq!(result.hops[1].name, "pop");
        assert_eq!(result.hops[2].name, "transit");
        assert_eq!(result.hops[3].name, "server");
    }

    #[test]
    fn rtts_accumulate_along_the_path() {
        let (mut net, c, s) = test_net();
        let result = traceroute(&mut net, c, s, &TracerouteOptions::default());
        // Cumulative one-way delays: 1, 16, 21, 41 ms -> RTTs 2, 32, 42, 82.
        let expect = [2.0, 32.0, 42.0, 82.0];
        for (hop, &want) in result.hops.iter().zip(&expect) {
            let got = hop.mean_rtt_ms().expect("answered");
            assert!(
                (got - want).abs() < 1.0,
                "hop {}: {got} ms, want ~{want}",
                hop.ttl
            );
        }
        // Monotone non-decreasing RTT per hop on a clean path.
        for pair in result.hops.windows(2) {
            assert!(pair[1].min_rtt() >= pair[0].min_rtt());
        }
    }

    #[test]
    fn lossy_hop_reports_missing_probes() {
        let mut net = Network::new(5);
        let c = net.add_node("client", NodeKind::Host);
        let r = net.add_node("router", NodeKind::Router);
        let s = net.add_node("server", NodeKind::Host);
        net.connect_duplex(
            c,
            r,
            LinkConfig::fixed(SimDuration::from_millis(5), DataRate::from_mbps(100), 0.4),
            LinkConfig::ethernet(),
        );
        net.connect_duplex(r, s, LinkConfig::ethernet(), LinkConfig::ethernet());
        net.route_linear(&[c, r, s]);
        let opts = TracerouteOptions {
            probes_per_hop: 30,
            ..TracerouteOptions::default()
        };
        let result = traceroute(&mut net, c, s, &opts);
        let loss = result.hops[0].loss_fraction();
        assert!(loss > 0.15, "lossy hop shows loss: {loss}");
        assert!(loss < 0.75, "but not everything vanished: {loss}");
    }

    #[test]
    fn unreachable_destination_reports_partial_path() {
        let mut net = Network::new(6);
        let c = net.add_node("client", NodeKind::Host);
        let r = net.add_node("router", NodeKind::Router);
        let s = net.add_node("server", NodeKind::Host);
        net.connect_duplex(c, r, LinkConfig::ethernet(), LinkConfig::ethernet());
        // No link r -> s; router will answer TTL-1 probes but nothing
        // reaches the destination.
        net.set_route(c, s, r);
        net.set_route(c, r, r);
        net.set_route(r, c, c);
        let result = traceroute(
            &mut net,
            c,
            s,
            &TracerouteOptions {
                max_ttl: 5,
                ..TracerouteOptions::default()
            },
        );
        assert!(!result.reached);
        assert_eq!(result.hops.len(), 1);
        assert_eq!(result.hops[0].name, "router");
    }

    #[test]
    fn sixty_byte_probes_by_default() {
        let opts = TracerouteOptions::default();
        assert_eq!(opts.probe_size, Bytes::new(60));
    }
}
