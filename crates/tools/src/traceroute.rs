//! Traceroute: per-TTL probes and the replies routers send back.
//!
//! Works exactly like the classic tool: probes go out with TTL = 1, 2, …;
//! the router where the TTL dies answers with ICMP Time-Exceeded, and the
//! destination itself answers the probe (our probes are echo requests, so
//! handler-less hosts reply automatically — the moral equivalent of the
//! UDP-to-closed-port reply real traceroute relies on). The paper runs
//! its Fig. 5 comparison with 20 rounds and its Table 2 estimation with
//! 30 probes of 60-byte UDP datagrams; both call into this module.

use crate::outcome::ToolOutcome;
use starlink_netsim::{Network, NodeId, Payload};
use starlink_simcore::{Bytes, SimDuration, SimTime};
use std::collections::HashMap;

/// Traceroute parameters.
#[derive(Debug, Clone, Copy)]
pub struct TracerouteOptions {
    /// Highest TTL probed.
    pub max_ttl: u8,
    /// Probes per TTL.
    pub probes_per_hop: u32,
    /// On-wire probe size (the paper uses 60-byte probes).
    pub probe_size: Bytes,
    /// Gap between consecutive probes.
    pub inter_probe_gap: SimDuration,
    /// How long to wait for stragglers after the last probe.
    pub timeout: SimDuration,
    /// Extra rounds re-probing (TTL, slot) pairs that got no answer.
    /// Each round's straggler wait doubles (exponential backoff in
    /// virtual time). `0` reproduces classic single-pass traceroute.
    pub retries: u32,
}

impl Default for TracerouteOptions {
    fn default() -> Self {
        TracerouteOptions {
            max_ttl: 30,
            probes_per_hop: 3,
            probe_size: Bytes::new(60),
            inter_probe_gap: SimDuration::from_millis(50),
            timeout: SimDuration::from_secs(2),
            retries: 0,
        }
    }
}

impl TracerouteOptions {
    /// An upper bound on the virtual time a run can occupy: even against
    /// a totally black network the tool returns within this budget.
    pub fn virtual_time_budget(&self) -> SimDuration {
        let probes = u64::from(self.max_ttl) * u64::from(self.probes_per_hop);
        let mut budget = SimDuration::ZERO;
        for round in 0..=self.retries {
            let per_round = self
                .inter_probe_gap
                .mul_f64(probes as f64)
                .saturating_add(backoff_timeout(self.timeout, round));
            budget = budget.saturating_add(per_round);
        }
        budget
    }
}

/// The straggler wait for a retry round: `timeout * 2^round`, saturating.
fn backoff_timeout(timeout: SimDuration, round: u32) -> SimDuration {
    timeout.mul_f64(f64::powi(2.0, round.min(32) as i32))
}

/// Results for one TTL value.
#[derive(Debug, Clone, PartialEq)]
pub struct HopResult {
    /// TTL probed (1-based hop number).
    pub ttl: u8,
    /// The responding node, if any probe was answered.
    pub node: Option<NodeId>,
    /// The responding node's name.
    pub name: String,
    /// Per-probe RTTs (`None` = probe lost).
    pub rtts: Vec<Option<SimDuration>>,
}

impl HopResult {
    /// Minimum RTT across answered probes.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.rtts.iter().flatten().min().copied()
    }

    /// Maximum RTT across answered probes.
    pub fn max_rtt(&self) -> Option<SimDuration> {
        self.rtts.iter().flatten().max().copied()
    }

    /// Mean RTT across answered probes, ms.
    pub fn mean_rtt_ms(&self) -> Option<f64> {
        let answered: Vec<f64> = self
            .rtts
            .iter()
            .flatten()
            .map(|d| d.as_millis_f64())
            .collect();
        if answered.is_empty() {
            None
        } else {
            Some(answered.iter().sum::<f64>() / answered.len() as f64)
        }
    }

    /// Fraction of probes that went unanswered.
    pub fn loss_fraction(&self) -> f64 {
        if self.rtts.is_empty() {
            return 0.0;
        }
        self.rtts.iter().filter(|r| r.is_none()).count() as f64 / self.rtts.len() as f64
    }
}

/// A complete traceroute run.
#[derive(Debug, Clone, PartialEq)]
pub struct TracerouteResult {
    /// One entry per TTL, up to the hop that reached the destination.
    pub hops: Vec<HopResult>,
    /// Whether the destination answered.
    pub reached: bool,
    /// How the run ended: `Complete` when the destination answered and
    /// every probe was accounted for, `Degraded` on partial answers,
    /// `Failed` when nothing responded at any TTL.
    pub outcome: ToolOutcome,
}

impl TracerouteResult {
    /// Number of hops to the destination (if reached).
    pub fn hop_count(&self) -> Option<usize> {
        self.reached.then_some(self.hops.len())
    }
}

/// Runs a traceroute from `src` to `dst` on `net`, advancing simulated
/// time as it goes (the run occupies `now()` onwards).
///
/// With `opts.retries > 0`, (TTL, slot) pairs still unanswered after a
/// pass are re-probed in further rounds, each waiting twice as long for
/// stragglers than the last. The run never exceeds
/// [`TracerouteOptions::virtual_time_budget`] of virtual time, whatever
/// the network does.
pub fn traceroute(
    net: &mut Network,
    src: NodeId,
    dst: NodeId,
    opts: &TracerouteOptions,
) -> TracerouteResult {
    let pph = u64::from(opts.probes_per_hop);
    let span = u64::from(opts.max_ttl) * pph;
    if span == 0 {
        return TracerouteResult {
            hops: Vec::new(),
            reached: false,
            outcome: ToolOutcome::failed("no probes configured (max_ttl or probes_per_hop is 0)"),
        };
    }

    // packet id -> (ttl, slot, sent_at), for matching Time-Exceeded
    // replies (they quote the original packet id).
    let mut sent: HashMap<u64, (u8, usize, SimTime)> = HashMap::new();
    // probe id -> send time, for matching echo replies (they carry the
    // probe number instead). Ids encode (round, ttl, slot):
    // probe_id = round*span + (ttl-1)*pph + slot.
    let mut echo_sent: HashMap<u64, SimTime> = HashMap::new();

    let mut hops: Vec<HopResult> = (1..=opts.max_ttl)
        .map(|ttl| HopResult {
            ttl,
            node: None,
            name: String::from("*"),
            rtts: vec![None; opts.probes_per_hop as usize],
        })
        .collect();

    // Echo replies are collected first: the destination's true hop number
    // is anchored at (last router TTL + 1), because a lossy path can eat
    // every probe at the destination's own TTL while higher-TTL probes
    // still reach it (TTL to spare). (ttl_idx, slot, recv_at, sent_at).
    let mut echoes: Vec<(usize, usize, SimTime, SimTime)> = Vec::new();
    let mut max_router_ttl: Option<u8> = None;
    let mut answered: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut pending: Vec<(u8, usize)> = (1..=opts.max_ttl)
        .flat_map(|ttl| (0..opts.probes_per_hop as usize).map(move |slot| (ttl, slot)))
        .collect();

    for round in 0..=opts.retries {
        for &(ttl, slot) in &pending {
            let probe_id = u64::from(round) * span + (u64::from(ttl) - 1) * pph + slot as u64;
            let pkt_id = net.send_packet(
                src,
                dst,
                opts.probe_size,
                ttl,
                Payload::EchoRequest { probe: probe_id },
            );
            sent.insert(pkt_id, (ttl, slot, net.now()));
            echo_sent.insert(probe_id, net.now());
            let next = net.now() + opts.inter_probe_gap;
            net.run_until(next);
        }
        net.run_until(net.now() + backoff_timeout(opts.timeout, round));

        for (at, packet) in net.drain_mailbox(src) {
            match packet.payload {
                Payload::TimeExceeded {
                    original,
                    at: router,
                } => {
                    if let Some(&(ttl, slot, sent_at)) = sent.get(&original) {
                        let hop = &mut hops[(ttl - 1) as usize];
                        hop.node = Some(router);
                        hop.name = net.node_name(router).to_string();
                        if hop.rtts[slot].is_none() {
                            hop.rtts[slot] = Some(at.since(sent_at));
                        }
                        answered.insert(((ttl - 1) as usize, slot));
                        max_router_ttl = Some(max_router_ttl.map_or(ttl, |m: u8| m.max(ttl)));
                    }
                }
                Payload::EchoReply { probe } => {
                    let ttl_idx = ((probe % span) / pph) as usize;
                    let slot = (probe % pph) as usize;
                    if let Some(&s) = echo_sent.get(&probe) {
                        echoes.push((ttl_idx, slot, at, s));
                        answered.insert((ttl_idx, slot));
                    }
                }
                _ => {}
            }
        }
        pending.retain(|&(ttl, slot)| !answered.contains(&((ttl - 1) as usize, slot)));
        if pending.is_empty() {
            break;
        }
    }

    let mut reached_at_ttl: Option<u8> = None;
    if !echoes.is_empty() {
        // Destination hop = one past the farthest router that answered,
        // or the smallest echo TTL when no router spoke at all.
        let min_echo_ttl = echoes.iter().map(|&(t, _, _, _)| t as u8 + 1).min();
        let dest_ttl = match (max_router_ttl, min_echo_ttl) {
            (Some(m), _) => m + 1,
            (None, Some(e)) => e,
            (None, None) => unreachable!("echoes is non-empty"),
        };
        reached_at_ttl = Some(dest_ttl);
        let dest_idx = (dest_ttl - 1) as usize;
        hops[dest_idx].node = Some(dst);
        hops[dest_idx].name = net.node_name(dst).to_string();
        // Fold at most one sample per (ttl, slot); a retry can race its
        // original and produce two echoes for the same slot.
        let mut folded: std::collections::HashSet<(usize, usize)> =
            std::collections::HashSet::new();
        for (ttl_idx, slot, at, s) in echoes {
            if !folded.insert((ttl_idx, slot)) {
                continue;
            }
            let rtt = Some(at.since(s));
            if ttl_idx == dest_idx {
                hops[dest_idx].rtts[slot] = rtt;
            } else {
                // A higher-TTL probe that reached the destination: fold it
                // into the destination hop as an extra sample.
                hops[dest_idx].rtts.push(rtt);
            }
        }
    }

    // Truncate at the destination hop.
    if let Some(r) = reached_at_ttl {
        hops.truncate(r as usize);
    } else {
        // Keep only hops that answered at all, plus trailing silence.
        while hops.last().is_some_and(|h| h.node.is_none()) {
            hops.pop();
        }
    }

    let reached = reached_at_ttl.is_some();
    let lost: usize = hops
        .iter()
        .map(|h| h.rtts.iter().filter(|r| r.is_none()).count())
        .sum();
    let outcome = if !reached && hops.is_empty() {
        ToolOutcome::failed("no responses at any TTL")
    } else if !reached {
        ToolOutcome::degraded(format!(
            "destination never answered; path known for {} hops",
            hops.len()
        ))
    } else if lost > 0 {
        ToolOutcome::degraded(format!("{lost} probes unanswered along the path"))
    } else {
        ToolOutcome::Complete
    };

    TracerouteResult {
        hops,
        reached,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_netsim::{LinkConfig, NodeKind};
    use starlink_simcore::DataRate;

    /// client - r1 - r2 - r3 - server with distinct per-link delays.
    fn test_net() -> (Network, NodeId, NodeId) {
        let mut net = Network::new(4);
        let c = net.add_node("client", NodeKind::Host);
        let r1 = net.add_node("gw", NodeKind::Router);
        let r2 = net.add_node("pop", NodeKind::Router);
        let r3 = net.add_node("transit", NodeKind::Router);
        let s = net.add_node("server", NodeKind::Host);
        let delays = [1u64, 15, 5, 20];
        let nodes = [c, r1, r2, r3, s];
        for i in 0..4 {
            let cfg = || {
                LinkConfig::fixed(
                    SimDuration::from_millis(delays[i]),
                    DataRate::from_mbps(100),
                    0.0,
                )
            };
            net.connect_duplex(nodes[i], nodes[i + 1], cfg(), cfg());
        }
        net.route_linear(&nodes);
        (net, c, s)
    }

    #[test]
    fn discovers_every_hop_in_order() {
        let (mut net, c, s) = test_net();
        let result = traceroute(&mut net, c, s, &TracerouteOptions::default());
        assert!(result.reached);
        assert_eq!(result.hop_count(), Some(4));
        assert_eq!(result.hops[0].name, "gw");
        assert_eq!(result.hops[1].name, "pop");
        assert_eq!(result.hops[2].name, "transit");
        assert_eq!(result.hops[3].name, "server");
    }

    #[test]
    fn rtts_accumulate_along_the_path() {
        let (mut net, c, s) = test_net();
        let result = traceroute(&mut net, c, s, &TracerouteOptions::default());
        // Cumulative one-way delays: 1, 16, 21, 41 ms -> RTTs 2, 32, 42, 82.
        let expect = [2.0, 32.0, 42.0, 82.0];
        for (hop, &want) in result.hops.iter().zip(&expect) {
            let got = hop.mean_rtt_ms().expect("answered");
            assert!(
                (got - want).abs() < 1.0,
                "hop {}: {got} ms, want ~{want}",
                hop.ttl
            );
        }
        // Monotone non-decreasing RTT per hop on a clean path.
        for pair in result.hops.windows(2) {
            assert!(pair[1].min_rtt() >= pair[0].min_rtt());
        }
    }

    #[test]
    fn lossy_hop_reports_missing_probes() {
        let mut net = Network::new(5);
        let c = net.add_node("client", NodeKind::Host);
        let r = net.add_node("router", NodeKind::Router);
        let s = net.add_node("server", NodeKind::Host);
        net.connect_duplex(
            c,
            r,
            LinkConfig::fixed(SimDuration::from_millis(5), DataRate::from_mbps(100), 0.4),
            LinkConfig::ethernet(),
        );
        net.connect_duplex(r, s, LinkConfig::ethernet(), LinkConfig::ethernet());
        net.route_linear(&[c, r, s]);
        let opts = TracerouteOptions {
            probes_per_hop: 30,
            ..TracerouteOptions::default()
        };
        let result = traceroute(&mut net, c, s, &opts);
        let loss = result.hops[0].loss_fraction();
        assert!(loss > 0.15, "lossy hop shows loss: {loss}");
        assert!(loss < 0.75, "but not everything vanished: {loss}");
    }

    #[test]
    fn unreachable_destination_reports_partial_path() {
        let mut net = Network::new(6);
        let c = net.add_node("client", NodeKind::Host);
        let r = net.add_node("router", NodeKind::Router);
        let s = net.add_node("server", NodeKind::Host);
        net.connect_duplex(c, r, LinkConfig::ethernet(), LinkConfig::ethernet());
        // No link r -> s; router will answer TTL-1 probes but nothing
        // reaches the destination.
        net.set_route(c, s, r);
        net.set_route(c, r, r);
        net.set_route(r, c, c);
        let result = traceroute(
            &mut net,
            c,
            s,
            &TracerouteOptions {
                max_ttl: 5,
                ..TracerouteOptions::default()
            },
        );
        assert!(!result.reached);
        assert_eq!(result.hops.len(), 1);
        assert_eq!(result.hops[0].name, "router");
    }

    #[test]
    fn sixty_byte_probes_by_default() {
        let opts = TracerouteOptions::default();
        assert_eq!(opts.probe_size, Bytes::new(60));
    }

    #[test]
    fn clean_path_outcome_is_complete() {
        let (mut net, c, s) = test_net();
        let result = traceroute(&mut net, c, s, &TracerouteOptions::default());
        assert!(result.outcome.is_complete(), "{}", result.outcome);
    }

    #[test]
    fn retries_fill_in_lossy_hops() {
        let mut net = Network::new(5);
        let c = net.add_node("client", NodeKind::Host);
        let r = net.add_node("router", NodeKind::Router);
        let s = net.add_node("server", NodeKind::Host);
        net.connect_duplex(
            c,
            r,
            LinkConfig::fixed(SimDuration::from_millis(5), DataRate::from_mbps(100), 0.5),
            LinkConfig::ethernet(),
        );
        net.connect_duplex(r, s, LinkConfig::ethernet(), LinkConfig::ethernet());
        net.route_linear(&[c, r, s]);
        let opts = TracerouteOptions {
            max_ttl: 4,
            probes_per_hop: 10,
            retries: 5,
            ..TracerouteOptions::default()
        };
        let start = net.now();
        let result = traceroute(&mut net, c, s, &opts);
        assert!(result.reached);
        // 50% loss per pass, 6 passes: residual per-slot loss ~1.6%.
        let loss = result.hops[0].loss_fraction();
        assert!(loss < 0.2, "retries should claw back loss: {loss}");
        assert!(net.now().since(start) <= opts.virtual_time_budget());
    }

    #[test]
    fn black_network_fails_within_budget() {
        let mut net = Network::new(8);
        let c = net.add_node("client", NodeKind::Host);
        let s = net.add_node("server", NodeKind::Host);
        net.connect_duplex(
            c,
            s,
            LinkConfig::fixed(SimDuration::from_millis(5), DataRate::from_mbps(100), 1.0),
            LinkConfig::ethernet(),
        );
        net.route_linear(&[c, s]);
        let opts = TracerouteOptions {
            max_ttl: 5,
            retries: 2,
            ..TracerouteOptions::default()
        };
        let start = net.now();
        let result = traceroute(&mut net, c, s, &opts);
        assert!(!result.reached);
        assert!(result.outcome.is_failed(), "{}", result.outcome);
        assert!(result.hops.is_empty());
        assert!(net.now().since(start) <= opts.virtual_time_budget());
    }

    #[test]
    fn zero_probe_config_fails_cleanly() {
        let (mut net, c, s) = test_net();
        let opts = TracerouteOptions {
            probes_per_hop: 0,
            ..TracerouteOptions::default()
        };
        let result = traceroute(&mut net, c, s, &opts);
        assert!(result.outcome.is_failed());
        assert!(result.hops.is_empty());
    }
}
