//! Libretest-style speedtest: a DL measurement followed by a UL
//! measurement against the node's assigned test server.
//!
//! The RPi image ran this every five minutes (§3.2). Internally it is
//! two TCP bulk tests (CUBIC, like a browser), reported in the Mbps pair
//! every speedtest UI shows.

use crate::iperf::iperf_tcp;
use crate::outcome::ToolOutcome;
use starlink_netsim::{Network, NodeId};
use starlink_simcore::{DataRate, SimDuration};
use starlink_transport::CcAlgorithm;

/// A DL/UL measurement pair.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedtestResult {
    /// Downlink, server -> client.
    pub downlink: DataRate,
    /// Uplink, client -> server.
    pub uplink: DataRate,
    /// Combined health of the two directional transfers.
    pub outcome: ToolOutcome,
}

/// Runs a speedtest between `client` and `server` (each direction gets
/// `per_direction` of test time).
pub fn speedtest(
    net: &mut Network,
    client: NodeId,
    server: NodeId,
    per_direction: SimDuration,
) -> SpeedtestResult {
    // Downlink: the server transmits.
    let dl = iperf_tcp(net, server, client, CcAlgorithm::Cubic, per_direction);
    // Uplink: the client transmits.
    let ul = iperf_tcp(net, client, server, CcAlgorithm::Cubic, per_direction);
    SpeedtestResult {
        downlink: dl.goodput,
        uplink: ul.goodput,
        outcome: dl.outcome.combine(&ul.outcome),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_netsim::{LinkConfig, NodeKind};
    use starlink_simcore::Bytes;

    #[test]
    fn measures_asymmetric_link() {
        let mut net = Network::new(31);
        let c = net.add_node("client", NodeKind::Host);
        let s = net.add_node("server", NodeKind::Host);
        // 80 Mbps down, 10 Mbps up — Starlink-shaped asymmetry.
        net.connect_duplex(
            c,
            s,
            LinkConfig::fixed(SimDuration::from_millis(20), DataRate::from_mbps(10), 0.0)
                .with_queue(Bytes::from_kb(128)),
            LinkConfig::fixed(SimDuration::from_millis(20), DataRate::from_mbps(80), 0.0)
                .with_queue(Bytes::from_kb(512)),
        );
        net.route_linear(&[c, s]);
        let result = speedtest(&mut net, c, s, SimDuration::from_secs(12));
        let dl = result.downlink.as_mbps();
        let ul = result.uplink.as_mbps();
        assert!(dl > 3.0 * ul, "asymmetry must show: dl {dl} vs ul {ul}");
        assert!((35.0..81.0).contains(&dl), "dl {dl}");
        assert!((4.0..10.5).contains(&ul), "ul {ul}");
    }
}
