//! Report rendering: ASCII tables, CSV and gnuplot-style `.dat` series.
//!
//! The bench harness prints every table and figure of the paper through
//! these renderers, so a `cargo bench` run reads like the evaluation
//! section.

use std::fmt::Write as _;

/// A simple right-padded ASCII table.
#[derive(Debug, Clone, Default)]
pub struct AsciiTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// A table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        AsciiTable {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} vs header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cols);
            for (i, cell) in cells.iter().enumerate() {
                parts.push(format!("{cell:<width$}", width = widths[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        let rule: String = {
            let total: usize = widths.iter().sum::<usize>() + 3 * cols + 1;
            "-".repeat(total)
        };
        let _ = writeln!(out, "{rule}");
        line(&mut out, &self.header);
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            line(&mut out, row);
        }
        let _ = writeln!(out, "{rule}");
        out
    }

    /// Renders as CSV (title omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// A named set of `(x, y)` series rendered as a gnuplot-compatible `.dat`
/// block (series separated by blank lines, `#`-prefixed headers).
#[derive(Debug, Clone, Default)]
pub struct DatSeries {
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl DatSeries {
    /// An empty collection.
    pub fn new() -> Self {
        DatSeries::default()
    }

    /// Adds a named series.
    pub fn series(&mut self, name: &str, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.to_string(), points));
        self
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series were added.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders the `.dat` text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, (name, points)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push_str("\n\n");
            }
            let _ = writeln!(out, "# {name}");
            for &(x, y) in points {
                let _ = writeln!(out, "{x:.6} {y:.6}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = AsciiTable::new("Demo", &["City", "Median PTT"]);
        t.row(&["London".into(), "327 ms".into()]);
        t.row(&["Sydney".into(), "622 ms".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| City   | Median PTT |"));
        assert!(s.contains("| London | 327 ms     |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = AsciiTable::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = AsciiTable::new("", &["name", "note"]);
        t.row(&["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert!(csv.starts_with("name,note\n"));
    }

    #[test]
    fn dat_series_blocks() {
        let mut d = DatSeries::new();
        d.series("starlink", vec![(1.0, 0.5), (2.0, 1.0)]);
        d.series("cellular", vec![(1.0, 0.2)]);
        let s = d.render();
        assert!(s.starts_with("# starlink\n"));
        assert!(s.contains("\n\n# cellular\n"));
        assert!(s.contains("1.000000 0.500000"));
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }
}
