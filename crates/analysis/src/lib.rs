//! # starlink-analysis
//!
//! Statistics and reporting for the *starlink-browser-view* reproduction:
//! the numeric machinery that turns raw measurement records into the
//! paper's tables and figures.
//!
//! * [`stats`] — quantiles, five-number (box-plot) summaries, online
//!   mean/variance;
//! * [`ecdf`] — empirical CDFs (Figs. 3, 6a) and CCDFs (Fig. 6c);
//! * [`render`] — ASCII tables for terminal reports, CSV for export, and
//!   gnuplot-style `.dat` series for replotting the figures;
//! * [`timeseries`] — binning, smoothing and autocorrelation (used to
//!   verify Fig. 6(b)'s 24-hour cycle quantitatively).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ecdf;
pub mod render;
pub mod stats;
pub mod timeseries;

pub use ecdf::{Ccdf, Ecdf};
pub use render::{AsciiTable, DatSeries};
pub use stats::{
    five_number_summary, mean, median, quantile, quantile_sorted, FiveNumber, Welford,
};
