//! Summary statistics.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// The `q`-quantile (0 ≤ q ≤ 1) with linear interpolation between order
/// statistics (Hyndman–Fan type 7, the R/NumPy default) on a copy of the
/// data. Returns `None` for an empty slice.
///
/// The previous nearest-rank `.round()` implementation biased `q1`/`q3`
/// on small samples (e.g. the quartiles of `[1, 2, 3, 4]` came out as
/// whole samples instead of 1.75/3.25) and silently returned `0.0` for
/// empty input.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`. NaN samples sort last (IEEE total
/// order) rather than aborting the run.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&v, q)
}

/// [`quantile`] over an already-sorted slice (no copy, no re-sort).
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    if sorted.is_empty() {
        return None;
    }
    let h = (sorted.len() as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let frac = h - lo as f64;
    let mut value = sorted[lo];
    if frac > 0.0 {
        value += frac * (sorted[lo + 1] - sorted[lo]);
    }
    Some(value)
}

/// The median (0.5-quantile). Returns `None` for an empty slice.
pub fn median(samples: &[f64]) -> Option<f64> {
    quantile(samples, 0.5)
}

/// A box-plot five-number summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FiveNumber {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl FiveNumber {
    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Computes the five-number summary. Returns `None` for empty input.
pub fn five_number_summary(samples: &[f64]) -> Option<FiveNumber> {
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    Some(FiveNumber {
        min: quantile_sorted(&v, 0.0)?,
        q1: quantile_sorted(&v, 0.25)?,
        median: quantile_sorted(&v, 0.5)?,
        q3: quantile_sorted(&v, 0.75)?,
        max: quantile_sorted(&v, 1.0)?,
    })
}

/// Welford's online mean/variance accumulator — numerically stable, used
/// where storing every sample would be wasteful (per-second loss series
/// over six simulated months).
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_data() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(median(&v), Some(3.0));
        assert_eq!(mean(&v), 3.0);
    }

    #[test]
    fn quantile_interpolates_between_order_statistics() {
        // Type-7 quartiles of [1,2,3,4]: h = 3q, so q1 = 1.75, median =
        // 2.5, q3 = 3.25 — the values R's `quantile()` and NumPy's
        // `percentile()` return by default. Nearest-rank returned whole
        // samples (2, 2, 3) here.
        let v = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&v, 0.25), Some(1.75));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(quantile(&v, 0.75), Some(3.25));
        // Two samples: the median is their midpoint.
        assert_eq!(median(&[10.0, 20.0]), Some(15.0));
        // A single sample is every quantile.
        assert_eq!(quantile(&[7.0], 0.1), Some(7.0));
        assert_eq!(quantile(&[7.0], 0.9), Some(7.0));
    }

    #[test]
    fn quantile_sorted_skips_the_copy() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            assert_eq!(quantile_sorted(&v, q), quantile(&v, q));
        }
        assert_eq!(quantile_sorted(&[], 0.5), None);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let v = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(median(&v), Some(3.0));
        // The input is not mutated (we copy).
        assert_eq!(v[0], 5.0);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[]), None);
        assert_eq!(quantile(&[], 0.25), None);
        assert!(five_number_summary(&[]).is_none());
    }

    #[test]
    fn five_number_summary_of_uniform() {
        let v: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        let f = five_number_summary(&v).unwrap();
        assert_eq!(f.min, 0.0);
        assert_eq!(f.q1, 25.0);
        assert_eq!(f.median, 50.0);
        assert_eq!(f.q3, 75.0);
        assert_eq!(f.max, 100.0);
        assert_eq!(f.iqr(), 50.0);
    }

    #[test]
    fn iqr_of_small_sample_uses_interpolated_quartiles() {
        let f = five_number_summary(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(f.q1, 1.75);
        assert_eq!(f.q3, 3.25);
        assert_eq!(f.iqr(), 1.5);
    }

    #[test]
    fn welford_matches_direct_computation() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &v {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_small_counts() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn quantile_rejects_out_of_range() {
        let _ = quantile(&[1.0], 1.5);
    }
}
