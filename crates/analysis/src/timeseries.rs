//! Time-series helpers: binning, moving averages and periodicity
//! detection.
//!
//! Used by the Fig. 6(b) analysis (and its tests) to verify that the
//! throughput series actually carries a 24-hour cycle, rather than just
//! eyeballing the plot.

/// Bins `(t_seconds, value)` samples into fixed-width means. Empty bins
/// yield `None`.
pub fn bin_means(samples: &[(f64, f64)], bin_width_s: f64) -> Vec<Option<f64>> {
    if samples.is_empty() || bin_width_s <= 0.0 {
        return Vec::new();
    }
    let max_t = samples.iter().map(|&(t, _)| t).fold(f64::MIN, f64::max);
    let bins = (max_t / bin_width_s).floor() as usize + 1;
    let mut sums = vec![0.0; bins];
    let mut counts = vec![0u32; bins];
    for &(t, v) in samples {
        if t < 0.0 {
            continue;
        }
        let i = ((t / bin_width_s) as usize).min(bins - 1);
        sums[i] += v;
        counts[i] += 1;
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| if c > 0 { Some(s / f64::from(c)) } else { None })
        .collect()
}

/// Centred moving average of width `window` (odd widths behave best);
/// edges use the available neighbours.
pub fn moving_average(values: &[f64], window: usize) -> Vec<f64> {
    if values.is_empty() || window == 0 {
        return values.to_vec();
    }
    let half = window / 2;
    (0..values.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(values.len());
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Sample autocorrelation at `lag` (biased estimator). Returns `None`
/// when the series is too short or has zero variance.
pub fn autocorrelation(values: &[f64], lag: usize) -> Option<f64> {
    let n = values.len();
    if lag >= n || n < 2 {
        return None;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let var: f64 = values.iter().map(|v| (v - mean).powi(2)).sum();
    if var == 0.0 {
        return None;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (values[i] - mean) * (values[i + lag] - mean))
        .sum();
    Some(cov / var)
}

/// The lag (within `[min_lag, max_lag]`) with the strongest positive
/// autocorrelation — a crude period detector.
pub fn dominant_period(values: &[f64], min_lag: usize, max_lag: usize) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for lag in min_lag..=max_lag.min(values.len().saturating_sub(1)) {
        if let Some(r) = autocorrelation(values, lag) {
            if best.is_none_or(|(_, br)| r > br) {
                best = Some((lag, r));
            }
        }
    }
    best.map(|(lag, _)| lag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_means_averages_per_bin() {
        let samples = [(0.5, 10.0), (0.9, 20.0), (1.5, 30.0), (3.2, 40.0)];
        let bins = bin_means(&samples, 1.0);
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[0], Some(15.0));
        assert_eq!(bins[1], Some(30.0));
        assert_eq!(bins[2], None);
        assert_eq!(bins[3], Some(40.0));
    }

    #[test]
    fn moving_average_smooths() {
        let noisy = [0.0, 10.0, 0.0, 10.0, 0.0, 10.0];
        let smooth = moving_average(&noisy, 3);
        // Interior points pull toward 5.0; spread shrinks.
        let spread = |v: &[f64]| {
            v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(spread(&smooth) < spread(&noisy));
        assert_eq!(smooth.len(), noisy.len());
    }

    #[test]
    fn autocorrelation_finds_a_sine_period() {
        // Period 24 samples.
        let values: Vec<f64> = (0..240)
            .map(|i| (i as f64 * std::f64::consts::TAU / 24.0).sin())
            .collect();
        let at_period = autocorrelation(&values, 24).unwrap();
        let off_period = autocorrelation(&values, 12).unwrap();
        assert!(at_period > 0.9, "{at_period}");
        assert!(off_period < 0.0, "{off_period}");
        assert_eq!(dominant_period(&values, 12, 36), Some(24));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(autocorrelation(&[1.0, 1.0, 1.0], 1).is_none());
        assert!(autocorrelation(&[1.0], 1).is_none());
        assert!(bin_means(&[], 1.0).is_empty());
        assert_eq!(moving_average(&[], 3), Vec::<f64>::new());
        assert!(dominant_period(&[1.0, 2.0], 5, 10).is_none());
    }
}
