//! Empirical distribution functions.
//!
//! [`Ecdf`] backs the CDF plots (Fig. 3's PTT comparison, Fig. 6a's
//! throughput comparison); [`Ccdf`] backs Fig. 6c, whose annotated points
//! — P(loss ≥ 5 %) = 0.12, P(loss ≥ 10 %) = 0.06 — are exactly
//! [`Ccdf::at`] evaluations.

/// An empirical CDF over a sample set.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds from samples. Ordering is IEEE total order, so a stray NaN
    /// from upstream arithmetic sorts to the end instead of aborting the
    /// whole analysis run.
    pub fn new(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Ecdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample set is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile of the sample set (linear interpolation, type 7 —
    /// same convention as [`crate::stats::quantile`]).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        crate::stats::quantile_sorted(&self.sorted, q.clamp(0.0, 1.0))
    }

    /// The plotted staircase as `(x, P(X <= x))` points, one per sample.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// Downsampled staircase with at most `max_points` points (for
    /// compact `.dat` exports).
    pub fn points_decimated(&self, max_points: usize) -> Vec<(f64, f64)> {
        let pts = self.points();
        if pts.len() <= max_points || max_points == 0 {
            return pts;
        }
        let step = pts.len() as f64 / max_points as f64;
        let mut out: Vec<(f64, f64)> = (0..max_points)
            .map(|i| pts[(i as f64 * step) as usize])
            .collect();
        // Always keep the endpoint so the curve closes at 1.0.
        if let Some(&last) = pts.last() {
            if out.last() != Some(&last) {
                out.push(last);
            }
        }
        out
    }
}

/// A complementary CDF view over the same samples.
#[derive(Debug, Clone)]
pub struct Ccdf {
    ecdf: Ecdf,
}

impl Ccdf {
    /// Builds from samples.
    pub fn new(samples: &[f64]) -> Self {
        Ccdf {
            ecdf: Ecdf::new(samples),
        }
    }

    /// `P(X >= x)`.
    pub fn at(&self, x: f64) -> f64 {
        if self.ecdf.sorted.is_empty() {
            return 0.0;
        }
        let below = self.ecdf.sorted.partition_point(|&v| v < x);
        1.0 - below as f64 / self.ecdf.sorted.len() as f64
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.ecdf.len()
    }

    /// Whether the sample set is empty.
    pub fn is_empty(&self) -> bool {
        self.ecdf.is_empty()
    }

    /// The plotted staircase as `(x, P(X >= x))` points.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.ecdf.sorted.len() as f64;
        self.ecdf
            .sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, 1.0 - i as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_of_known_points() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.at(0.5), 0.0);
        assert_eq!(e.at(1.0), 0.25);
        assert_eq!(e.at(2.5), 0.5);
        assert_eq!(e.at(4.0), 1.0);
        assert_eq!(e.at(99.0), 1.0);
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn ccdf_matches_fig6c_semantics() {
        // 100 loss samples: 12 at >=5%, of which 6 at >=10%.
        let mut samples = vec![0.01; 88];
        samples.extend(vec![0.07; 6]);
        samples.extend(vec![0.30; 6]);
        let c = Ccdf::new(&samples);
        assert!((c.at(0.05) - 0.12).abs() < 1e-12);
        assert!((c.at(0.10) - 0.06).abs() < 1e-12);
        assert_eq!(c.at(0.60), 0.0);
        assert_eq!(c.at(0.0), 1.0);
    }

    #[test]
    fn ecdf_is_monotone_and_bounded() {
        let samples: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64).collect();
        let e = Ecdf::new(&samples);
        let mut last = 0.0;
        for x in 0..110 {
            let p = e.at(x as f64);
            assert!(p >= last);
            assert!((0.0..=1.0).contains(&p));
            last = p;
        }
    }

    #[test]
    fn quantile_agrees_with_stats_module() {
        let samples = [5.0, 1.0, 3.0, 2.0, 4.0];
        let e = Ecdf::new(&samples);
        assert_eq!(e.quantile(0.5), crate::stats::median(&samples));
        assert_eq!(e.quantile(0.25), crate::stats::quantile(&samples, 0.25));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(5.0));
        // Interpolated, not nearest-rank: quartiles of five ordered values
        // land between samples.
        assert_eq!(e.quantile(0.375), Some(2.5));
    }

    #[test]
    fn points_form_a_staircase_to_one() {
        let e = Ecdf::new(&[3.0, 1.0, 2.0]);
        let pts = e.points();
        assert_eq!(pts, vec![(1.0, 1.0 / 3.0), (2.0, 2.0 / 3.0), (3.0, 1.0)]);
    }

    #[test]
    fn decimation_keeps_endpoints() {
        let samples: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let e = Ecdf::new(&samples);
        let pts = e.points_decimated(100);
        assert!(pts.len() <= 101);
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_inputs() {
        let e = Ecdf::new(&[]);
        assert!(e.is_empty());
        assert_eq!(e.at(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        let c = Ccdf::new(&[]);
        assert!(c.is_empty());
        assert_eq!(c.at(1.0), 0.0);
    }
}
