//! Crash-consistent checkpoint storage with deterministic disk faults.
//!
//! PR 6 gave the collector a durability story (checkpoint/resume), but the
//! storage path assumed a perfect disk. This module makes the disk a
//! first-class, *faultable* dependency:
//!
//! * [`DiskEnv`] — the narrow syscall surface the store needs (read,
//!   write, fsync file, fsync directory, rename, remove, list), with a
//!   real implementation ([`RealDisk`]) and an in-memory simulated one
//!   ([`SimDisk`]);
//! * [`FaultyDisk`] — a wrapper over any `DiskEnv` that injects torn
//!   writes (prefix-only persistence), silent bit rot, `ENOSPC`, and
//!   crash-before/after-rename at seeded operation indices, compiled from
//!   a [`StorageFaultPlan`] the same way `starlink-faults` compiles link
//!   fault plans from a scenario;
//! * [`CheckpointStore`] — a journaled last-good chain of
//!   generation-numbered checkpoint files (`ckpt-<gen>.slcp`), fsynced on
//!   file *and* directory, indexed by a tiny CRC-sealed `MANIFEST`.
//!   Recovery walks back from the newest generation to the newest blob
//!   that passes the caller's validator, moving damaged blobs into a
//!   `quarantine/` directory instead of deleting them.
//!
//! The store keeps conservation counters — every generation ever sealed
//! is `live`, `pruned`, or `quarantined`, and
//! `written == live + pruned + quarantined` at all times — which the
//! simtest storage oracle checks after every injected fault + restart.
//! [`CheckpointStore::debug_manifest_miscount_every`] plants a deliberate
//! undercount so the swarm can prove the oracle catches it.

use crate::wire::{crc32, WireError, WireReader, WireWriter};
use starlink_obsv::{counter_add, emit, StorageShedReason, TraceEvent};
use starlink_simcore::{SimRng, SimTime};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// The four magic bytes the MANIFEST starts with.
pub const MANIFEST_MAGIC: [u8; 4] = *b"SLMF";
/// The current MANIFEST format version.
pub const MANIFEST_VERSION: u16 = 1;
/// File name of the manifest inside a checkpoint directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
/// Subdirectory damaged blobs are moved into (never deleted).
pub const QUARANTINE_DIR: &str = "quarantine";
/// Default number of verified generations kept on disk.
pub const DEFAULT_RETAIN: u64 = 3;

/// Exact encoded size of a sealed manifest.
const MANIFEST_LEN: usize = 4 + 2 + 8 * 4 + 4;

/// A typed storage failure. Mirrors [`WireError`]'s role for the wire
/// format: every disk misbehaviour the store can observe maps to one
/// variant, so callers shed checkpoint attempts with a machine-readable
/// reason instead of a stringly `io::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The disk is out of space; nothing was persisted for this op.
    NoSpace,
    /// A (simulated) power loss: the process must restart and recover.
    Crashed,
    /// Any other I/O failure, with the failing operation named.
    Io {
        /// Which disk operation failed.
        op: &'static str,
        /// The underlying I/O error kind.
        kind: std::io::ErrorKind,
    },
}

impl StorageError {
    /// Stable machine-readable short code.
    pub fn code(&self) -> &'static str {
        match self {
            StorageError::NoSpace => "no-space",
            StorageError::Crashed => "crashed",
            StorageError::Io { .. } => "io",
        }
    }

    /// The shed-reason tag this failure traces as.
    pub fn shed_reason(&self) -> StorageShedReason {
        match self {
            StorageError::NoSpace => StorageShedReason::NoSpace,
            StorageError::Crashed => StorageShedReason::Crashed,
            StorageError::Io { .. } => StorageShedReason::Io,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSpace => write!(f, "no space left on device"),
            StorageError::Crashed => write!(f, "simulated power loss (restart to recover)"),
            StorageError::Io { op, kind } => write!(f, "i/o failure during {op}: {kind:?}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// The syscall surface the checkpoint store needs, small enough to
/// simulate exactly. Paths are relative to the store's root directory
/// (`""` names the root itself); implementations own the mapping onto a
/// real or in-memory namespace.
pub trait DiskEnv: Send {
    /// Reads a whole file; `Ok(None)` when it does not exist.
    fn read(&mut self, path: &str) -> Result<Option<Vec<u8>>, StorageError>;
    /// Creates or replaces a file with `bytes` (not yet durable).
    fn write(&mut self, path: &str, bytes: &[u8]) -> Result<(), StorageError>;
    /// Forces a file's contents to stable storage (`fsync`).
    fn sync_file(&mut self, path: &str) -> Result<(), StorageError>;
    /// Forces a directory's entries to stable storage (`fsync` on the
    /// directory — required for a rename or create to survive power loss).
    fn sync_dir(&mut self, dir: &str) -> Result<(), StorageError>;
    /// Atomically renames `from` to `to`, replacing any existing `to`.
    fn rename(&mut self, from: &str, to: &str) -> Result<(), StorageError>;
    /// Removes a file (missing files are not an error).
    fn remove(&mut self, path: &str) -> Result<(), StorageError>;
    /// The sorted file names directly inside `dir` (no recursion).
    fn list(&mut self, dir: &str) -> Result<Vec<String>, StorageError>;
    /// Creates `dir` (and parents) if absent.
    fn create_dir_all(&mut self, dir: &str) -> Result<(), StorageError>;
}

fn io_err(op: &'static str, e: std::io::Error) -> StorageError {
    if e.kind() == std::io::ErrorKind::StorageFull {
        StorageError::NoSpace
    } else {
        StorageError::Io { op, kind: e.kind() }
    }
}

/// [`DiskEnv`] over a real directory tree via `std::fs`, with genuine
/// `sync_all` on files and (on unix) on directories.
#[derive(Debug)]
pub struct RealDisk {
    root: PathBuf,
}

impl RealDisk {
    /// A disk rooted at `root` (created lazily by `create_dir_all`).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        RealDisk { root: root.into() }
    }

    fn full(&self, path: &str) -> PathBuf {
        if path.is_empty() {
            self.root.clone()
        } else {
            self.root.join(path)
        }
    }
}

impl DiskEnv for RealDisk {
    fn read(&mut self, path: &str) -> Result<Option<Vec<u8>>, StorageError> {
        match std::fs::read(self.full(path)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", e)),
        }
    }

    fn write(&mut self, path: &str, bytes: &[u8]) -> Result<(), StorageError> {
        std::fs::write(self.full(path), bytes).map_err(|e| io_err("write", e))
    }

    fn sync_file(&mut self, path: &str) -> Result<(), StorageError> {
        std::fs::File::open(self.full(path))
            .and_then(|f| f.sync_all())
            .map_err(|e| io_err("sync_file", e))
    }

    fn sync_dir(&mut self, dir: &str) -> Result<(), StorageError> {
        sync_real_dir(&self.full(dir))
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StorageError> {
        std::fs::rename(self.full(from), self.full(to)).map_err(|e| io_err("rename", e))
    }

    fn remove(&mut self, path: &str) -> Result<(), StorageError> {
        match std::fs::remove_file(self.full(path)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", e)),
        }
    }

    fn list(&mut self, dir: &str) -> Result<Vec<String>, StorageError> {
        let mut names = Vec::new();
        let entries = match std::fs::read_dir(self.full(dir)) {
            Ok(entries) => entries,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(names),
            Err(e) => return Err(io_err("list", e)),
        };
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list", e))?;
            let is_file = entry
                .file_type()
                .map(|t| t.is_file())
                .map_err(|e| io_err("list", e))?;
            if is_file {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn create_dir_all(&mut self, dir: &str) -> Result<(), StorageError> {
        std::fs::create_dir_all(self.full(dir)).map_err(|e| io_err("create_dir_all", e))
    }
}

/// `fsync` on a directory handle, so renames/creates inside it survive
/// power loss. On non-unix targets opening a directory read-only is not
/// portable; the call degrades to a no-op there.
pub fn sync_real_dir(dir: &Path) -> Result<(), StorageError> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)
            .and_then(|f| f.sync_all())
            .map_err(|e| io_err("sync_dir", e))
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// In-memory [`DiskEnv`]: a deterministic namespace for simulation tests.
/// Tracks which files have unsynced writes so tests can assert the store
/// really fsyncs before declaring a generation durable.
#[derive(Debug, Default)]
pub struct SimDisk {
    files: std::collections::BTreeMap<String, Vec<u8>>,
    dirs: BTreeSet<String>,
    dirty: BTreeSet<String>,
    file_syncs: u64,
    dir_syncs: u64,
}

impl SimDisk {
    /// An empty disk.
    pub fn new() -> Self {
        SimDisk::default()
    }

    /// Files with writes not yet followed by `sync_file`.
    pub fn dirty_files(&self) -> Vec<String> {
        self.dirty.iter().cloned().collect()
    }

    /// `(file fsyncs, directory fsyncs)` performed so far.
    pub fn sync_counts(&self) -> (u64, u64) {
        (self.file_syncs, self.dir_syncs)
    }

    /// Direct handle on a file's bytes (for corruption in tests).
    pub fn file_mut(&mut self, path: &str) -> Option<&mut Vec<u8>> {
        self.files.get_mut(path)
    }

    /// Direct read without going through the `DiskEnv` error surface.
    pub fn file(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|v| v.as_slice())
    }

    /// Every file path on the disk, sorted.
    pub fn paths(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }
}

impl DiskEnv for SimDisk {
    fn read(&mut self, path: &str) -> Result<Option<Vec<u8>>, StorageError> {
        Ok(self.files.get(path).cloned())
    }

    fn write(&mut self, path: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.files.insert(path.to_string(), bytes.to_vec());
        self.dirty.insert(path.to_string());
        Ok(())
    }

    fn sync_file(&mut self, path: &str) -> Result<(), StorageError> {
        if !self.files.contains_key(path) {
            return Err(StorageError::Io {
                op: "sync_file",
                kind: std::io::ErrorKind::NotFound,
            });
        }
        self.dirty.remove(path);
        self.file_syncs += 1;
        Ok(())
    }

    fn sync_dir(&mut self, _dir: &str) -> Result<(), StorageError> {
        self.dir_syncs += 1;
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StorageError> {
        match self.files.remove(from) {
            Some(bytes) => {
                self.files.insert(to.to_string(), bytes);
                if self.dirty.remove(from) {
                    self.dirty.insert(to.to_string());
                }
                Ok(())
            }
            None => Err(StorageError::Io {
                op: "rename",
                kind: std::io::ErrorKind::NotFound,
            }),
        }
    }

    fn remove(&mut self, path: &str) -> Result<(), StorageError> {
        self.files.remove(path);
        self.dirty.remove(path);
        Ok(())
    }

    fn list(&mut self, dir: &str) -> Result<Vec<String>, StorageError> {
        let prefix = if dir.is_empty() {
            String::new()
        } else {
            format!("{dir}/")
        };
        let names = self
            .files
            .keys()
            .filter_map(|path| {
                let rest = path.strip_prefix(&prefix)?;
                if rest.is_empty() || rest.contains('/') {
                    None
                } else {
                    Some(rest.to_string())
                }
            })
            .collect();
        Ok(names)
    }

    fn create_dir_all(&mut self, dir: &str) -> Result<(), StorageError> {
        if !dir.is_empty() {
            self.dirs.insert(dir.to_string());
        }
        Ok(())
    }
}

/// One injected disk fault, addressed by operation index: write faults
/// fire on the N-th `write` call (1-based), rename faults on the N-th
/// `rename` call. Indices count across the whole life of the
/// [`FaultyDisk`], surviving [`FaultyDisk::restart`], and every fault is
/// one-shot — fired faults never re-fire, so a crash/restart loop always
/// terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFault {
    /// The N-th write persists only a seeded prefix of the bytes, then
    /// the disk crashes (torn write at power loss).
    TornWrite {
        /// 1-based write index the fault fires on.
        write: u64,
        /// Fraction of the payload that lands, parts per million.
        keep_ppm: u32,
    },
    /// The N-th write lands fully, then one seeded bit flips silently.
    BitRot {
        /// 1-based write index the fault fires on.
        write: u64,
        /// Seed selecting which bit flips.
        bit_seed: u64,
    },
    /// The N-th write fails with out-of-space; nothing is persisted.
    Enospc {
        /// 1-based write index the fault fires on.
        write: u64,
    },
    /// The disk crashes just before the N-th rename applies.
    CrashBeforeRename {
        /// 1-based rename index the fault fires on.
        rename: u64,
    },
    /// The N-th rename applies, then the disk crashes.
    CrashAfterRename {
        /// 1-based rename index the fault fires on.
        rename: u64,
    },
}

/// A compiled set of one-shot disk faults, mirroring how
/// `starlink_faults::FaultPlan` compiles link faults: built explicitly or
/// drawn from a seed, then handed to a [`FaultyDisk`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageFaultPlan {
    faults: Vec<StorageFault>,
}

impl StorageFaultPlan {
    /// An empty plan (the wrapped disk behaves perfectly).
    pub fn new() -> Self {
        StorageFaultPlan::default()
    }

    /// Adds one fault.
    pub fn push(&mut self, fault: StorageFault) -> &mut Self {
        self.faults.push(fault);
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults in the plan.
    pub fn faults(&self) -> &[StorageFault] {
        &self.faults
    }

    /// Draws a plan from a seed: `torn_writes` torn writes, `bit_rots`
    /// bit flips and `enospc` out-of-space failures at write indices in
    /// `1..=24`, and `crashes` crash-around-rename faults at rename
    /// indices in `1..=16` (alternating before/after). The windows are
    /// small on purpose — short checkpointed runs must actually hit the
    /// injected indices.
    pub fn from_seed(
        seed: u64,
        torn_writes: u64,
        bit_rots: u64,
        enospc: u64,
        crashes: u64,
    ) -> Self {
        let mut rng = SimRng::seed_from(seed).stream("storage-fault-plan");
        let mut plan = StorageFaultPlan::new();
        for _ in 0..torn_writes {
            plan.push(StorageFault::TornWrite {
                write: rng.range_u64(1, 24),
                keep_ppm: rng.below(1_000_000) as u32,
            });
        }
        for _ in 0..bit_rots {
            plan.push(StorageFault::BitRot {
                write: rng.range_u64(1, 24),
                bit_seed: rng.next_u64(),
            });
        }
        for _ in 0..enospc {
            plan.push(StorageFault::Enospc {
                write: rng.range_u64(1, 24),
            });
        }
        for i in 0..crashes {
            let rename = rng.range_u64(1, 16);
            plan.push(if i % 2 == 0 {
                StorageFault::CrashBeforeRename { rename }
            } else {
                StorageFault::CrashAfterRename { rename }
            });
        }
        plan
    }
}

/// A [`DiskEnv`] wrapper that injects the faults of a
/// [`StorageFaultPlan`] at their seeded operation indices. After a crash
/// fault fires every operation fails with [`StorageError::Crashed`] until
/// [`FaultyDisk::restart`] — modelling the window between power loss and
/// the process coming back up.
pub struct FaultyDisk {
    inner: Box<dyn DiskEnv>,
    faults: Vec<(StorageFault, bool)>,
    writes: u64,
    renames: u64,
    crashed: bool,
}

impl FaultyDisk {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: Box<dyn DiskEnv>, plan: StorageFaultPlan) -> Self {
        FaultyDisk {
            inner,
            faults: plan.faults.into_iter().map(|f| (f, false)).collect(),
            writes: 0,
            renames: 0,
            crashed: false,
        }
    }

    /// A faultless wrapper (useful when one code path wants a single
    /// concrete disk type with faults merely optional).
    pub fn perfect(inner: Box<dyn DiskEnv>) -> Self {
        FaultyDisk::new(inner, StorageFaultPlan::new())
    }

    /// Whether a crash fault has fired and not been cleared.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Simulates the process coming back up after a power loss.
    /// Operation counters and already-fired faults are preserved.
    pub fn restart(&mut self) {
        self.crashed = false;
    }

    /// `(writes, renames)` performed (or attempted) so far.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.writes, self.renames)
    }

    /// How many faults have fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.faults.iter().filter(|(_, fired)| *fired).count() as u64
    }

    /// The wrapped disk.
    pub fn inner_mut(&mut self) -> &mut dyn DiskEnv {
        self.inner.as_mut()
    }

    /// Finds an unfired fault matching `pick` and marks it fired.
    fn take(&mut self, pick: impl Fn(&StorageFault) -> bool) -> Option<StorageFault> {
        for (fault, fired) in &mut self.faults {
            if !*fired && pick(fault) {
                *fired = true;
                return Some(*fault);
            }
        }
        None
    }

    fn guard(&self) -> Result<(), StorageError> {
        if self.crashed {
            Err(StorageError::Crashed)
        } else {
            Ok(())
        }
    }
}

impl fmt::Debug for FaultyDisk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyDisk")
            .field("faults", &self.faults)
            .field("writes", &self.writes)
            .field("renames", &self.renames)
            .field("crashed", &self.crashed)
            .finish_non_exhaustive()
    }
}

impl DiskEnv for FaultyDisk {
    fn read(&mut self, path: &str) -> Result<Option<Vec<u8>>, StorageError> {
        self.guard()?;
        self.inner.read(path)
    }

    fn write(&mut self, path: &str, bytes: &[u8]) -> Result<(), StorageError> {
        self.guard()?;
        self.writes += 1;
        let idx = self.writes;
        if self
            .take(|f| matches!(f, StorageFault::Enospc { write } if *write == idx))
            .is_some()
        {
            return Err(StorageError::NoSpace);
        }
        if let Some(StorageFault::TornWrite { keep_ppm, .. }) =
            self.take(|f| matches!(f, StorageFault::TornWrite { write, .. } if *write == idx))
        {
            let keep = (bytes.len() as u64 * u64::from(keep_ppm) / 1_000_000) as usize;
            self.inner.write(path, &bytes[..keep])?;
            self.crashed = true;
            return Err(StorageError::Crashed);
        }
        self.inner.write(path, bytes)?;
        if let Some(StorageFault::BitRot { bit_seed, .. }) =
            self.take(|f| matches!(f, StorageFault::BitRot { write, .. } if *write == idx))
        {
            if let Some(mut rotted) = self.inner.read(path)? {
                if !rotted.is_empty() {
                    let bit = bit_seed % (rotted.len() as u64 * 8);
                    rotted[(bit / 8) as usize] ^= 1 << (bit % 8);
                    self.inner.write(path, &rotted)?;
                }
            }
        }
        Ok(())
    }

    fn sync_file(&mut self, path: &str) -> Result<(), StorageError> {
        self.guard()?;
        self.inner.sync_file(path)
    }

    fn sync_dir(&mut self, dir: &str) -> Result<(), StorageError> {
        self.guard()?;
        self.inner.sync_dir(dir)
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), StorageError> {
        self.guard()?;
        self.renames += 1;
        let idx = self.renames;
        if self
            .take(|f| matches!(f, StorageFault::CrashBeforeRename { rename } if *rename == idx))
            .is_some()
        {
            self.crashed = true;
            return Err(StorageError::Crashed);
        }
        self.inner.rename(from, to)?;
        if self
            .take(|f| matches!(f, StorageFault::CrashAfterRename { rename } if *rename == idx))
            .is_some()
        {
            self.crashed = true;
            return Err(StorageError::Crashed);
        }
        Ok(())
    }

    fn remove(&mut self, path: &str) -> Result<(), StorageError> {
        self.guard()?;
        self.inner.remove(path)
    }

    fn list(&mut self, dir: &str) -> Result<Vec<String>, StorageError> {
        self.guard()?;
        self.inner.list(dir)
    }

    fn create_dir_all(&mut self, dir: &str) -> Result<(), StorageError> {
        self.guard()?;
        self.inner.create_dir_all(dir)
    }
}

/// The CRC-sealed index at the head of a checkpoint directory: which
/// generation is the newest *verified* one (0 = none yet), plus the
/// conservation counters. 37 bytes on disk:
///
/// ```text
/// +----------+---------+--------+---------+--------+-------------+-------+
/// | magic    | version | newest | written | pruned | quarantined | crc32 |
/// | "SLMF" 4 | u16     | u64    | u64     | u64    | u64         | u32   |
/// +----------+---------+--------+---------+--------+-------------+-------+
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Newest generation that was fully sealed (0 when none).
    pub newest: u64,
    /// Generations ever durably written (including later pruned or
    /// quarantined ones).
    pub written: u64,
    /// Generations removed by retention pruning.
    pub pruned: u64,
    /// Generations moved into `quarantine/`.
    pub quarantined: u64,
}

/// Encodes a manifest with its trailing CRC-32.
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.bytes(&MANIFEST_MAGIC);
    w.u16(MANIFEST_VERSION);
    w.u64(m.newest);
    w.u64(m.written);
    w.u64(m.pruned);
    w.u64(m.quarantined);
    w.seal()
}

/// Decodes a manifest, refusing damage with a typed [`WireError`]:
/// wrong magic, unsupported version, truncation, trailing bytes, and
/// checksum mismatch all map to the same codes the batch format uses.
pub fn decode_manifest(bytes: &[u8]) -> Result<Manifest, WireError> {
    if bytes.len() < 4 {
        return Err(WireError::Truncated {
            needed: MANIFEST_LEN,
            got: bytes.len(),
        });
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&bytes[..4]);
    if magic != MANIFEST_MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    if bytes.len() < MANIFEST_LEN {
        return Err(WireError::Truncated {
            needed: MANIFEST_LEN,
            got: bytes.len(),
        });
    }
    if bytes.len() > MANIFEST_LEN {
        return Err(WireError::TrailingBytes {
            extra: bytes.len() - MANIFEST_LEN,
        });
    }
    let body = &bytes[..MANIFEST_LEN - 4];
    let stated = u32::from_le_bytes(bytes[MANIFEST_LEN - 4..].try_into().expect("4 bytes"));
    let computed = crc32(body);
    if computed != stated {
        return Err(WireError::ChecksumMismatch { computed, stated });
    }
    let mut r = WireReader::new(body);
    let _ = r.bytes(4)?;
    let version = r.u16()?;
    if version != MANIFEST_VERSION {
        return Err(WireError::UnsupportedVersion { got: version });
    }
    Ok(Manifest {
        newest: r.u64()?,
        written: r.u64()?,
        pruned: r.u64()?,
        quarantined: r.u64()?,
    })
}

/// The canonical file name of generation `generation`, zero-padded so
/// lexicographic and numeric order agree.
pub fn generation_name(generation: u64) -> String {
    format!("ckpt-{generation:020}.slcp")
}

/// Inverse of [`generation_name`]; `None` for anything else (including
/// hostile names whose number overflows `u64`).
pub fn parse_generation_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("ckpt-")?.strip_suffix(".slcp")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// [`CheckpointStore::open`] failed partway through recovery. The disk
/// comes back with the error so a crashed [`FaultyDisk`] can be
/// [`restart`](FaultyDisk::restart)ed and recovery retried — the simtest
/// harness leans on this to survive faults injected *during* recovery.
pub struct OpenFailure<D> {
    /// The disk `open` had consumed.
    pub disk: D,
    /// Why recovery failed.
    pub error: StorageError,
}

impl<D> fmt::Debug for OpenFailure<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpenFailure")
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

/// What recovery found: the newest generation whose blob passed the
/// caller's validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredCheckpoint {
    /// The adopted generation.
    pub generation: u64,
    /// Its verified blob bytes.
    pub blob: Vec<u8>,
    /// How many newer damaged generations the walk quarantined past.
    pub walked_back: u64,
}

/// A live snapshot of the store's conservation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Generations ever durably written (adopted orphans included).
    pub written: u64,
    /// Generations currently on disk.
    pub live: u64,
    /// Generations removed by retention pruning.
    pub pruned: u64,
    /// Generations moved into quarantine.
    pub quarantined: u64,
    /// Checkpoint attempts shed by a storage failure (process-local).
    pub shed: u64,
    /// Damaged manifests moved into quarantine (not generations, so not
    /// part of the conservation sum).
    pub manifests_quarantined: u64,
}

impl StoreStats {
    /// The storage conservation invariant: every generation ever sealed
    /// is live, pruned, or quarantined.
    pub fn conservation_holds(&self) -> bool {
        self.written == self.live + self.pruned + self.quarantined
    }
}

/// A journaled last-good chain of checkpoint generations over a
/// [`DiskEnv`].
///
/// Write path ([`CheckpointStore::store`]): the blob lands as
/// `ckpt-<gen>.slcp`, is fsynced, the directory is fsynced, retention
/// prunes the oldest generations beyond `retain`, and the MANIFEST is
/// sealed (temp file + fsync + rename + directory fsync) pointing at the
/// new generation. Any failure sheds the attempt with a typed
/// [`StorageError`] and a `checkpoint_shed` trace event; the session loop
/// keeps serving.
///
/// Recovery path ([`CheckpointStore::open`]): read the MANIFEST (a
/// damaged one is quarantined, never trusted), scan the directory, adopt
/// orphan generations newer than the manifest (a crash between blob and
/// manifest seal), then walk back from the newest generation to the
/// newest blob the caller's validator accepts, quarantining damaged blobs
/// aside. Generations older than the adopted one are left untouched.
pub struct CheckpointStore<D: DiskEnv> {
    disk: D,
    retain: u64,
    next_gen: u64,
    newest_sealed: u64,
    live_gens: BTreeSet<u64>,
    written: u64,
    pruned: u64,
    quarantined: u64,
    shed: u64,
    manifests_quarantined: u64,
    quarantine_seq: u64,
    manifest_seals: u64,
    debug_miscount_every: u64,
}

impl<D: DiskEnv> CheckpointStore<D> {
    /// Opens (or creates) the store on `disk` and runs recovery: returns
    /// the store plus the newest checkpoint that passes `validate`, if
    /// any. On failure the disk comes back inside the [`OpenFailure`];
    /// an `error` of [`StorageError::Crashed`] means an injected power
    /// loss interrupted recovery itself — restart the disk and call
    /// `open` again.
    pub fn open(
        disk: D,
        retain: u64,
        validate: &mut dyn FnMut(&[u8]) -> bool,
        now: SimTime,
    ) -> Result<(Self, Option<RecoveredCheckpoint>), OpenFailure<D>> {
        let mut store = CheckpointStore {
            disk,
            retain: retain.max(1),
            next_gen: 1,
            newest_sealed: 0,
            live_gens: BTreeSet::new(),
            written: 0,
            pruned: 0,
            quarantined: 0,
            shed: 0,
            manifests_quarantined: 0,
            quarantine_seq: 0,
            manifest_seals: 0,
            debug_miscount_every: 0,
        };
        match store.recover(validate, now) {
            Ok(recovered) => Ok((store, recovered)),
            Err(error) => Err(OpenFailure {
                disk: store.disk,
                error,
            }),
        }
    }

    /// The recovery walk `open` runs; on error the caller still owns the
    /// store (and thus the disk).
    fn recover(
        &mut self,
        validate: &mut dyn FnMut(&[u8]) -> bool,
        now: SimTime,
    ) -> Result<Option<RecoveredCheckpoint>, StorageError> {
        let store = self;
        store.disk.create_dir_all("")?;
        store.disk.create_dir_all(QUARANTINE_DIR)?;
        store.quarantine_seq = store.disk.list(QUARANTINE_DIR)?.len() as u64;

        // The manifest: trust it only if its CRC seal verifies.
        let mut manifest = Manifest::default();
        let mut manifest_valid = false;
        if let Some(bytes) = store.disk.read(MANIFEST_NAME)? {
            match decode_manifest(&bytes) {
                Ok(m) => {
                    manifest = m;
                    manifest_valid = true;
                }
                Err(_) => {
                    store.quarantine_aside(MANIFEST_NAME, now)?;
                    store.manifests_quarantined += 1;
                }
            }
        }

        // Scan: leftover temp files are un-renamed garbage from a crash
        // mid-seal; generation files enter the walk; anything else in the
        // directory is foreign and moved aside without touching the
        // conservation counters (it was never a generation we sealed).
        let mut gens: Vec<u64> = Vec::new();
        for name in store.disk.list("")? {
            if name == MANIFEST_NAME {
                continue;
            }
            if name.ends_with(".tmp") {
                store.disk.remove(&name)?;
                continue;
            }
            match parse_generation_name(&name) {
                Some(g) => gens.push(g),
                None => {
                    store.quarantine_aside(&name, now)?;
                }
            }
        }
        gens.sort_unstable();

        let max_seen = gens.last().copied().unwrap_or(0).max(manifest.newest);
        store.next_gen = max_seen.saturating_add(1).max(1);

        if manifest_valid {
            store.written = manifest.written;
            store.pruned = manifest.pruned;
            store.quarantined = manifest.quarantined;
            // Orphans: durably written, but the crash hit before their
            // manifest seal — adopt them into the written count.
            let orphans = gens.iter().filter(|&&g| g > manifest.newest).count() as u64;
            store.written += orphans;
        }

        // Walk back from the newest generation to the newest valid blob.
        let mut recovered = None;
        let mut walked_back = 0u64;
        for &g in gens.iter().rev() {
            let name = generation_name(g);
            let blob = match store.disk.read(&name)? {
                Some(blob) => blob,
                None => continue,
            };
            if validate(&blob) {
                recovered = Some(RecoveredCheckpoint {
                    generation: g,
                    blob,
                    walked_back,
                });
                break;
            }
            store.quarantine_aside(&name, now)?;
            store.quarantined += 1;
            walked_back += 1;
        }

        // Everything still on disk at or below the adopted generation is
        // live; the walk stopped there, trusting the CRC chain below it.
        let adopted = recovered.as_ref().map(|r| r.generation).unwrap_or(0);
        store.live_gens = gens.iter().copied().filter(|&g| g <= adopted).collect();
        store.newest_sealed = adopted;

        if !manifest_valid {
            // Counters were lost with the manifest: rebuild them from the
            // disk itself. Quarantined generations are counted from the
            // quarantine directory, pruned history is gone.
            let q_gens = store
                .disk
                .list(QUARANTINE_DIR)?
                .iter()
                .filter(|n| n.starts_with("ckpt-"))
                .count() as u64;
            store.quarantined = q_gens;
            store.pruned = 0;
            store.written = store.live_gens.len() as u64 + q_gens;
        } else {
            // A crash after pruning but before the manifest seal leaves
            // the pruned counter stale; the gap between written and what
            // is accounted for on disk is exactly those lost prunes.
            store.pruned = store
                .written
                .saturating_sub(store.live_gens.len() as u64 + store.quarantined)
                .max(manifest.pruned)
                .min(store.written);
        }

        // Persist the recovered view so the next startup starts clean.
        store.write_manifest()?;

        if let Some(r) = &recovered {
            emit(|| TraceEvent::CheckpointRecovered {
                t_ns: now.as_nanos(),
                generation: r.generation,
                walked_back: r.walked_back,
            });
            counter_add("telemetry.storage.recovered", 1);
        }
        Ok(recovered)
    }

    /// Opens a store with the default retention.
    pub fn open_default(
        disk: D,
        validate: &mut dyn FnMut(&[u8]) -> bool,
        now: SimTime,
    ) -> Result<(Self, Option<RecoveredCheckpoint>), OpenFailure<D>> {
        CheckpointStore::open(disk, DEFAULT_RETAIN, validate, now)
    }

    /// Durably seals `blob` as the next generation and returns its
    /// number. On failure the attempt is shed: a typed error comes back,
    /// a `checkpoint_shed` event is traced, and the store stays usable
    /// (after [`StorageError::Crashed`], the *disk* needs a restart and
    /// the store must be re-opened).
    pub fn store(&mut self, blob: &[u8], now: SimTime) -> Result<u64, StorageError> {
        match self.try_store(blob, now) {
            Ok(generation) => {
                emit(|| TraceEvent::CheckpointWritten {
                    t_ns: now.as_nanos(),
                    generation,
                    bytes: blob.len() as u64,
                });
                counter_add("telemetry.storage.written", 1);
                Ok(generation)
            }
            Err(e) => {
                self.shed += 1;
                let generation = self.next_gen;
                let reason = e.shed_reason();
                emit(|| TraceEvent::CheckpointShed {
                    t_ns: now.as_nanos(),
                    generation,
                    reason,
                });
                counter_add("telemetry.storage.shed", 1);
                counter_add(reason.metric(), 1);
                Err(e)
            }
        }
    }

    fn try_store(&mut self, blob: &[u8], _now: SimTime) -> Result<u64, StorageError> {
        let generation = self.next_gen;
        if generation == u64::MAX {
            // A hostile generation file can push next_gen to the ceiling;
            // refuse to wrap rather than re-sealing an old number.
            return Err(StorageError::Io {
                op: "generation-overflow",
                kind: std::io::ErrorKind::Other,
            });
        }
        let name = generation_name(generation);
        self.disk.write(&name, blob)?;
        self.disk.sync_file(&name)?;
        self.disk.sync_dir("")?;
        // The blob is durable from here: account it even if the manifest
        // seal below fails (recovery adopts it as an orphan).
        self.live_gens.insert(generation);
        self.next_gen = generation + 1;
        self.newest_sealed = generation;
        self.manifest_seals += 1;
        let miscount = self.debug_miscount_every > 0
            && self
                .manifest_seals
                .is_multiple_of(self.debug_miscount_every);
        if !miscount {
            self.written += 1;
        }
        self.prune()?;
        self.write_manifest()?;
        Ok(generation)
    }

    /// Retention: removes the oldest live generations beyond `retain`,
    /// never touching the newest.
    fn prune(&mut self) -> Result<(), StorageError> {
        while self.live_gens.len() as u64 > self.retain {
            let oldest = *self.live_gens.iter().next().expect("non-empty");
            if oldest == self.newest_sealed {
                break;
            }
            self.disk.remove(&generation_name(oldest))?;
            self.live_gens.remove(&oldest);
            self.pruned += 1;
        }
        Ok(())
    }

    /// Seals the manifest via temp file + fsync + rename + directory
    /// fsync, so a crash at any point leaves either the old or the new
    /// manifest — never a torn one (and a torn *write* is caught by the
    /// CRC and quarantined at the next open).
    fn write_manifest(&mut self) -> Result<(), StorageError> {
        let m = Manifest {
            newest: self.newest_sealed,
            written: self.written,
            pruned: self.pruned,
            quarantined: self.quarantined,
        };
        let bytes = encode_manifest(&m);
        let tmp = "MANIFEST.tmp";
        self.disk.write(tmp, &bytes)?;
        self.disk.sync_file(tmp)?;
        self.disk.rename(tmp, MANIFEST_NAME)?;
        self.disk.sync_dir("")?;
        Ok(())
    }

    /// Moves `name` into the quarantine directory under a unique name,
    /// emitting the `checkpoint_quarantined` trace event.
    fn quarantine_aside(&mut self, name: &str, now: SimTime) -> Result<(), StorageError> {
        self.quarantine_seq += 1;
        let dest = format!("{QUARANTINE_DIR}/{name}.q{}", self.quarantine_seq);
        self.disk.rename(name, &dest)?;
        self.disk.sync_dir("")?;
        self.disk.sync_dir(QUARANTINE_DIR)?;
        let generation = parse_generation_name(name).unwrap_or(0);
        let manifest = name == MANIFEST_NAME;
        emit(|| TraceEvent::CheckpointQuarantined {
            t_ns: now.as_nanos(),
            generation,
            manifest,
        });
        counter_add("telemetry.storage.quarantined", 1);
        Ok(())
    }

    /// The conservation counters as of now.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            written: self.written,
            live: self.live_gens.len() as u64,
            pruned: self.pruned,
            quarantined: self.quarantined,
            shed: self.shed,
            manifests_quarantined: self.manifests_quarantined,
        }
    }

    /// The generation the next [`CheckpointStore::store`] will seal.
    pub fn next_generation(&self) -> u64 {
        self.next_gen
    }

    /// The live generations currently on disk, oldest first.
    pub fn live_generations(&self) -> Vec<u64> {
        self.live_gens.iter().copied().collect()
    }

    /// Mutable access to the disk (tests drive fault state through this).
    pub fn disk_mut(&mut self) -> &mut D {
        &mut self.disk
    }

    /// Consumes the store, returning the disk (used by the simtest
    /// harness to restart a crashed [`FaultyDisk`] and re-open).
    pub fn into_disk(self) -> D {
        self.disk
    }

    /// Test-only planted bug: every `every`-th manifest seal skips the
    /// `written` increment, silently undercounting the chain. The storage
    /// conservation oracle must catch this; it exists to prove it can
    /// (`swarm --inject-manifest-bug`).
    pub fn debug_manifest_miscount_every(&mut self, every: u64) {
        self.debug_miscount_every = every;
    }
}

impl<D: DiskEnv> fmt::Debug for CheckpointStore<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("next_gen", &self.next_gen)
            .field("newest_sealed", &self.newest_sealed)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_sim(disk: SimDisk) -> (CheckpointStore<SimDisk>, Option<RecoveredCheckpoint>) {
        CheckpointStore::open(disk, DEFAULT_RETAIN, &mut |_| true, SimTime::ZERO)
            .expect("sim disk cannot fail")
    }

    #[test]
    fn manifest_round_trips_and_rejects_damage() {
        let m = Manifest {
            newest: 7,
            written: 9,
            pruned: 1,
            quarantined: 1,
        };
        let bytes = encode_manifest(&m);
        assert_eq!(bytes.len(), MANIFEST_LEN);
        assert_eq!(decode_manifest(&bytes), Ok(m));

        let mut bad = bytes.clone();
        bad[10] ^= 0x40;
        assert!(matches!(
            decode_manifest(&bad),
            Err(WireError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            decode_manifest(&bytes[..MANIFEST_LEN - 1]),
            Err(WireError::Truncated { .. })
        ));
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            decode_manifest(&long),
            Err(WireError::TrailingBytes { .. })
        ));
        assert!(matches!(
            decode_manifest(b"NOPE"),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn generation_names_round_trip_and_refuse_hostile_input() {
        assert_eq!(generation_name(7), "ckpt-00000000000000000007.slcp");
        assert_eq!(parse_generation_name(&generation_name(7)), Some(7));
        assert_eq!(
            parse_generation_name(&generation_name(u64::MAX)),
            Some(u64::MAX)
        );
        assert_eq!(parse_generation_name("ckpt-.slcp"), None);
        assert_eq!(parse_generation_name("ckpt--1.slcp"), None);
        // One past u64::MAX must not parse (or panic).
        assert_eq!(
            parse_generation_name("ckpt-18446744073709551616.slcp"),
            None
        );
        assert_eq!(parse_generation_name("MANIFEST"), None);
        assert_eq!(parse_generation_name("ckpt-5.blob"), None);
    }

    #[test]
    fn store_seals_generations_durably_and_prunes_with_conservation() {
        let (mut store, recovered) = open_sim(SimDisk::new());
        assert!(recovered.is_none());
        for i in 0..6u64 {
            let gen = store
                .store(format!("blob-{i}").as_bytes(), SimTime::from_secs(i))
                .expect("perfect disk");
            assert_eq!(gen, i + 1);
        }
        let stats = store.stats();
        assert_eq!(stats.written, 6);
        assert_eq!(stats.live, DEFAULT_RETAIN);
        assert_eq!(stats.pruned, 6 - DEFAULT_RETAIN);
        assert_eq!(stats.quarantined, 0);
        assert!(stats.conservation_holds());
        assert_eq!(store.live_generations(), vec![4, 5, 6]);

        // Nothing the store calls durable may still be dirty.
        let disk = store.into_disk();
        assert!(disk.dirty_files().is_empty(), "{:?}", disk.dirty_files());
        let (fsyncs, dsyncs) = disk.sync_counts();
        assert!(fsyncs >= 12, "blob + manifest fsyncs, got {fsyncs}");
        assert!(dsyncs >= 12, "directory fsyncs, got {dsyncs}");
    }

    #[test]
    fn recovery_walks_back_past_damage_and_quarantines() {
        let (mut store, _) = open_sim(SimDisk::new());
        for i in 0..3u64 {
            store
                .store(format!("blob-{i}").as_bytes(), SimTime::from_secs(i))
                .unwrap();
        }
        let mut disk = store.into_disk();
        // Corrupt the newest generation behind the store's back.
        disk.file_mut(&generation_name(3)).unwrap()[0] ^= 0xFF;

        let mut validate = |blob: &[u8]| blob.starts_with(b"blob-");
        let (store, recovered) =
            CheckpointStore::open(disk, DEFAULT_RETAIN, &mut validate, SimTime::ZERO).unwrap();
        let r = recovered.expect("generation 2 is intact");
        assert_eq!(r.generation, 2);
        assert_eq!(r.blob, b"blob-1");
        assert_eq!(r.walked_back, 1);
        let stats = store.stats();
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.live, 2);
        assert_eq!(stats.written, 3);
        assert!(stats.conservation_holds());
        let mut disk = store.into_disk();
        let q = disk.list(QUARANTINE_DIR).unwrap();
        assert_eq!(q.len(), 1, "damaged blob preserved: {q:?}");
        assert!(q[0].starts_with("ckpt-"), "{q:?}");
    }

    #[test]
    fn damaged_manifest_is_quarantined_and_counters_rebuilt() {
        let (mut store, _) = open_sim(SimDisk::new());
        for i in 0..2u64 {
            store
                .store(format!("blob-{i}").as_bytes(), SimTime::from_secs(i))
                .unwrap();
        }
        let mut disk = store.into_disk();
        disk.file_mut(MANIFEST_NAME).unwrap().truncate(5);

        let (store, recovered) = open_sim(disk);
        assert_eq!(recovered.expect("blobs intact").generation, 2);
        let stats = store.stats();
        assert_eq!(stats.manifests_quarantined, 1);
        assert_eq!(stats.written, 2);
        assert_eq!(stats.live, 2);
        assert!(stats.conservation_holds());
    }

    #[test]
    fn orphan_generations_are_adopted_into_the_written_count() {
        let (mut store, _) = open_sim(SimDisk::new());
        store.store(b"blob-0", SimTime::ZERO).unwrap();
        let mut disk = store.into_disk();
        // A crash between blob write and manifest seal: the blob exists,
        // the manifest still points at generation 1.
        disk.write(&generation_name(2), b"blob-1").unwrap();

        let (store, recovered) = open_sim(disk);
        assert_eq!(recovered.expect("orphan is valid").generation, 2);
        let stats = store.stats();
        assert_eq!(stats.written, 2, "orphan adopted");
        assert!(stats.conservation_holds());
        assert_eq!(store.next_generation(), 3);
    }

    #[test]
    fn enospc_sheds_the_attempt_and_the_store_stays_usable() {
        let mut plan = StorageFaultPlan::new();
        // Write #1 is the manifest `open` seals; #2 is the first blob.
        plan.push(StorageFault::Enospc { write: 2 });
        let disk = FaultyDisk::new(Box::new(SimDisk::new()), plan);
        let (mut store, _) =
            CheckpointStore::open(disk, DEFAULT_RETAIN, &mut |_| true, SimTime::ZERO).unwrap();
        let err = store.store(b"blob", SimTime::ZERO).unwrap_err();
        assert_eq!(err, StorageError::NoSpace);
        assert_eq!(store.stats().shed, 1);
        // The next attempt succeeds with the same generation number.
        let gen = store.store(b"blob", SimTime::ZERO).unwrap();
        assert_eq!(gen, 1);
        assert!(store.stats().conservation_holds());
    }

    #[test]
    fn torn_manifest_write_recovers_to_the_previous_generation() {
        // Fire a torn write on some write op of the second store() call
        // and assert recovery lands on a valid earlier generation no
        // matter which op it hits.
        for write_idx in 3..=6u64 {
            let mut plan = StorageFaultPlan::new();
            plan.push(StorageFault::TornWrite {
                write: write_idx,
                keep_ppm: 500_000,
            });
            let disk = FaultyDisk::new(Box::new(SimDisk::new()), plan);
            let (mut store, _) = CheckpointStore::open(
                disk,
                DEFAULT_RETAIN,
                &mut |b: &[u8]| b.len() == 6,
                SimTime::ZERO,
            )
            .unwrap();
            let mut sealed = Vec::new();
            for i in 0..4u64 {
                match store.store(format!("blob-{i}").as_bytes(), SimTime::from_secs(i)) {
                    Ok(g) => sealed.push(g),
                    Err(StorageError::Crashed) => break,
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            let mut disk = store.into_disk();
            assert!(disk.crashed());
            disk.restart();
            let (store, recovered) = CheckpointStore::open(
                disk,
                DEFAULT_RETAIN,
                &mut |b: &[u8]| b.len() == 6,
                SimTime::ZERO,
            )
            .unwrap();
            if let Some(r) = recovered {
                assert!(r.blob.len() == 6, "write {write_idx}: torn blob adopted");
            }
            assert!(
                store.stats().conservation_holds(),
                "write {write_idx}: {:?}",
                store.stats()
            );
        }
    }

    #[test]
    fn crash_around_rename_never_loses_the_chain() {
        for (idx, before) in [(2u64, true), (2, false), (3, true), (3, false)] {
            let mut plan = StorageFaultPlan::new();
            plan.push(if before {
                StorageFault::CrashBeforeRename { rename: idx }
            } else {
                StorageFault::CrashAfterRename { rename: idx }
            });
            let disk = FaultyDisk::new(Box::new(SimDisk::new()), plan);
            let (mut store, _) =
                CheckpointStore::open(disk, DEFAULT_RETAIN, &mut |_| true, SimTime::ZERO).unwrap();
            let mut last_ok = 0;
            for i in 0..4u64 {
                match store.store(format!("blob-{i}").as_bytes(), SimTime::from_secs(i)) {
                    Ok(g) => last_ok = g,
                    Err(StorageError::Crashed) => break,
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            let mut disk = store.into_disk();
            disk.restart();
            let (store, recovered) =
                CheckpointStore::open(disk, DEFAULT_RETAIN, &mut |_| true, SimTime::ZERO).unwrap();
            let r = recovered.expect("at least the first generation persisted");
            assert!(
                r.generation >= last_ok,
                "rename {idx} before={before}: recovered {} < sealed {last_ok}",
                r.generation
            );
            assert!(store.stats().conservation_holds());
        }
    }

    #[test]
    fn bit_rot_is_caught_by_the_validator_walk() {
        let mut plan = StorageFaultPlan::new();
        // Write #6 is the *newest* generation's blob (open seals a
        // manifest: write 1; each store() is blob + manifest tmp: store
        // #1 = 2,3; #2 = 4,5; #3 = 6,7) — rot there forces the recovery
        // walk to actually step back past it.
        plan.push(StorageFault::BitRot {
            write: 6,
            bit_seed: 0x5EED,
        });
        let disk = FaultyDisk::new(Box::new(SimDisk::new()), plan);
        let blob = |i: u64| format!("blob-{i}-padded-for-rot").into_bytes();
        let reference: Vec<Vec<u8>> = (0..3).map(blob).collect();
        let mut validate = {
            let reference = reference.clone();
            move |b: &[u8]| reference.iter().any(|r| r == b)
        };
        let (mut store, _) =
            CheckpointStore::open(disk, DEFAULT_RETAIN, &mut validate, SimTime::ZERO).unwrap();
        for i in 0..3u64 {
            store.store(&blob(i), SimTime::from_secs(i)).unwrap();
        }
        let disk = store.into_disk();
        let mut validate2 = {
            let reference = reference.clone();
            move |b: &[u8]| reference.iter().any(|r| r == b)
        };
        let (store, recovered) =
            CheckpointStore::open(disk, DEFAULT_RETAIN, &mut validate2, SimTime::ZERO).unwrap();
        let r = recovered.expect("undamaged generations exist");
        assert!(
            reference.iter().any(|x| x == &r.blob),
            "recovered blob must be byte-identical to a sealed generation"
        );
        let stats = store.stats();
        assert_eq!(stats.quarantined, 1, "rotted blob quarantined: {stats:?}");
        assert!(stats.conservation_holds());
    }

    #[test]
    fn planted_manifest_miscount_breaks_conservation() {
        let (mut store, _) = open_sim(SimDisk::new());
        store.debug_manifest_miscount_every(2);
        for i in 0..4u64 {
            store
                .store(format!("blob-{i}").as_bytes(), SimTime::from_secs(i))
                .unwrap();
        }
        let stats = store.stats();
        assert!(
            !stats.conservation_holds(),
            "the planted undercount must be visible: {stats:?}"
        );
    }

    #[test]
    fn fault_plans_compile_deterministically_from_seeds() {
        let a = StorageFaultPlan::from_seed(42, 2, 1, 1, 2);
        let b = StorageFaultPlan::from_seed(42, 2, 1, 1, 2);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 6);
        assert_ne!(a, StorageFaultPlan::from_seed(43, 2, 1, 1, 2));
    }

    #[test]
    fn faulty_disk_faults_are_one_shot_across_restarts() {
        let mut plan = StorageFaultPlan::new();
        plan.push(StorageFault::Enospc { write: 1 });
        let mut disk = FaultyDisk::new(Box::new(SimDisk::new()), plan);
        assert_eq!(disk.write("a", b"x"), Err(StorageError::NoSpace));
        assert_eq!(disk.write("a", b"x"), Ok(()));
        assert_eq!(disk.faults_fired(), 1);

        let mut plan = StorageFaultPlan::new();
        plan.push(StorageFault::CrashBeforeRename { rename: 1 });
        let mut disk = FaultyDisk::new(Box::new(SimDisk::new()), plan);
        disk.write("a", b"x").unwrap();
        assert_eq!(disk.rename("a", "b"), Err(StorageError::Crashed));
        assert_eq!(disk.write("c", b"y"), Err(StorageError::Crashed));
        disk.restart();
        assert_eq!(disk.rename("a", "b"), Ok(()), "fault must not re-fire");
    }

    #[test]
    fn hostile_directory_contents_never_panic_recovery() {
        let mut disk = SimDisk::new();
        disk.write("ckpt-not-a-number.slcp", b"junk").unwrap();
        disk.write(&generation_name(u64::MAX), b"valid").unwrap();
        disk.write("stray.tmp", b"garbage").unwrap();
        disk.write(MANIFEST_NAME, b"torn").unwrap();
        let (mut store, recovered) = open_sim(disk);
        assert_eq!(
            recovered.expect("hostile gen validates").generation,
            u64::MAX
        );
        // next_gen saturated at the ceiling: storing must fail typed, not wrap.
        assert!(matches!(
            store.store(b"more", SimTime::ZERO),
            Err(StorageError::Io { .. })
        ));
        assert!(store.stats().conservation_holds());
    }
}
