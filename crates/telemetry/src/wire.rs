//! The versioned, checksummed wire format the extension uploads.
//!
//! A real browser extension posts its buffered records over a flaky
//! Starlink uplink; the collector must detect truncation (a connection
//! that died mid-POST) and corruption (damaged bytes that survived
//! transport checksums) instead of silently ingesting garbage. This
//! module defines that contract:
//!
//! ```text
//! +----------+---------+-------+--------+--------+----------+----------+---------+-------+
//! | magic    | version | flags | user   | seq    | #pages   | #tests   | payload | crc32 |
//! | "SLTB" 4 | u16     | u16   | u64    | u64    | u32      | u32      | ...     | u32   |
//! +----------+---------+-------+--------+--------+----------+----------+---------+-------+
//! ```
//!
//! All integers are little-endian; floats travel as their IEEE-754 bit
//! patterns so encode → decode is *byte-exact* (a reproducibility
//! requirement: checkpointed and straight-through runs must produce
//! identical datasets). The CRC-32 covers everything before it.
//!
//! Decoding never panics: every malformed input maps to a typed
//! [`WireError`], which doubles as the collector's machine-readable
//! quarantine reason.

use crate::aschange::ExitAs;
use crate::population::IspClass;
use crate::records::{PageRecord, SpeedtestRecord};
use starlink_channel::{AccessTech, WeatherCondition};
use starlink_geo::City;
use starlink_simcore::SimTime;
use starlink_web::PttBreakdown;
use std::fmt;

/// The four magic bytes every batch starts with.
pub const MAGIC: [u8; 4] = *b"SLTB";
/// The current wire-format version.
pub const VERSION: u16 = 1;

/// Size of the fixed batch header (magic through record counts).
pub const HEADER_LEN: usize = 4 + 2 + 2 + 8 + 8 + 4 + 4;
/// Encoded size of one [`PageRecord`].
pub const PAGE_RECORD_LEN: usize = 8 + 1 + 1 + 8 + 8 + 6 * 8 + 8 + 1 + 1;
/// Encoded size of one [`SpeedtestRecord`].
pub const SPEEDTEST_RECORD_LEN: usize = 8 + 1 + 1 + 8 + 8 + 8;

/// Why a batch failed to decode. Every variant is a machine-readable
/// quarantine reason; [`WireError::code`] gives the stable short name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes are not [`MAGIC`].
    BadMagic {
        /// What was found instead.
        found: [u8; 4],
    },
    /// The version field names a format this decoder does not speak.
    UnsupportedVersion {
        /// The version stated in the header.
        got: u16,
    },
    /// The buffer ends before the encoded length says it should — the
    /// upload died mid-transfer.
    Truncated {
        /// Bytes the header implies.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Bytes follow the checksum — two uploads were concatenated or the
    /// length field was damaged.
    TrailingBytes {
        /// How many extra bytes.
        extra: usize,
    },
    /// The CRC-32 over the batch does not match the stated one.
    ChecksumMismatch {
        /// Checksum computed over the received bytes.
        computed: u32,
        /// Checksum stated in the trailer.
        stated: u32,
    },
    /// A field decoded to a value outside its domain (unknown city code,
    /// weather code, …) even though the checksum passed.
    BadField {
        /// Which field.
        field: &'static str,
    },
}

impl WireError {
    /// Stable machine-readable short code for quarantine records.
    pub fn code(&self) -> &'static str {
        match self {
            WireError::BadMagic { .. } => "bad-magic",
            WireError::UnsupportedVersion { .. } => "unsupported-version",
            WireError::Truncated { .. } => "truncated",
            WireError::TrailingBytes { .. } => "trailing-bytes",
            WireError::ChecksumMismatch { .. } => "checksum-mismatch",
            WireError::BadField { .. } => "bad-field",
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic { found } => write!(f, "bad magic bytes {found:02x?}"),
            WireError::UnsupportedVersion { got } => {
                write!(f, "unsupported wire version {got} (speak {VERSION})")
            }
            WireError::Truncated { needed, got } => {
                write!(f, "truncated batch ({got} of {needed} bytes)")
            }
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the checksum")
            }
            WireError::ChecksumMismatch { computed, stated } => write!(
                f,
                "checksum mismatch (computed {computed:08x}, stated {stated:08x})"
            ),
            WireError::BadField { field } => write!(f, "malformed field '{field}'"),
        }
    }
}

impl std::error::Error for WireError {}

/// One upload: a user's buffered records for (usually) one campaign day.
///
/// The `(user, seq)` pair is the idempotency key: a collector that has
/// already accepted a batch with the same pair treats a re-upload as the
/// duplicate it is.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    /// The uploading user's random identifier.
    pub user: u64,
    /// Monotonic per-user upload sequence number.
    pub seq: u64,
    /// Buffered page-load records.
    pub pages: Vec<PageRecord>,
    /// Buffered speedtest records.
    pub speedtests: Vec<SpeedtestRecord>,
}

impl RecordBatch {
    /// Total records carried.
    pub fn len(&self) -> usize {
        self.pages.len() + self.speedtests.len()
    }

    /// Whether the batch carries no records.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty() && self.speedtests.is_empty()
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum algorithm
/// every real HTTP/zip stack uses, implemented bitwise to stay
/// dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------
// Primitive writers/readers (little-endian, bounds-checked)
// ---------------------------------------------------------------------

/// Append-only encoder over a byte vector.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an f64 as its IEEE-754 bit pattern (byte-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed UTF-8 string (u32 length).
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    /// Appends the CRC-32 of everything written so far.
    pub fn seal(mut self) -> Vec<u8> {
        let crc = crc32(&self.buf);
        self.u32(crc);
        self.buf
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: self.pos + n,
                got: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads an f64 from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadField { field: "utf8" })
    }
}

// ---------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------

fn isp_code(isp: IspClass) -> u8 {
    match isp {
        IspClass::Starlink => 0,
        // AccessTech codes are 0-based; shift past the Starlink marker.
        IspClass::NonStarlink(tech) => 1 + tech.code(),
    }
}

fn isp_from_code(code: u8) -> Option<IspClass> {
    match code {
        0 => Some(IspClass::Starlink),
        n => AccessTech::from_code(n - 1).map(IspClass::NonStarlink),
    }
}

fn exit_as_code(exit: Option<ExitAs>) -> u8 {
    match exit {
        None => 0,
        Some(ExitAs::Google) => 1,
        Some(ExitAs::SpaceX) => 2,
    }
}

fn exit_as_from_code(code: u8) -> Result<Option<ExitAs>, WireError> {
    match code {
        0 => Ok(None),
        1 => Ok(Some(ExitAs::Google)),
        2 => Ok(Some(ExitAs::SpaceX)),
        _ => Err(WireError::BadField { field: "exit_as" }),
    }
}

/// Encodes one page record (fixed [`PAGE_RECORD_LEN`] bytes).
pub fn encode_page(w: &mut WireWriter, r: &PageRecord) {
    w.u64(r.user);
    w.u8(r.city.code());
    w.u8(isp_code(r.isp));
    w.u64(r.at.as_nanos());
    w.u64(r.rank);
    w.f64(r.ptt.redirect_ms);
    w.f64(r.ptt.dns_ms);
    w.f64(r.ptt.connect_ms);
    w.f64(r.ptt.tls_ms);
    w.f64(r.ptt.request_ms);
    w.f64(r.ptt.response_ms);
    w.f64(r.plt_ms);
    w.u8(exit_as_code(r.exit_as));
    w.u8(r.weather.code());
}

/// Decodes one page record.
pub fn decode_page(r: &mut WireReader<'_>) -> Result<PageRecord, WireError> {
    let user = r.u64()?;
    let city = City::from_code(r.u8()?).ok_or(WireError::BadField { field: "city" })?;
    let isp = isp_from_code(r.u8()?).ok_or(WireError::BadField { field: "isp" })?;
    let at = SimTime::from_nanos(r.u64()?);
    let rank = r.u64()?;
    let ptt = PttBreakdown {
        redirect_ms: r.f64()?,
        dns_ms: r.f64()?,
        connect_ms: r.f64()?,
        tls_ms: r.f64()?,
        request_ms: r.f64()?,
        response_ms: r.f64()?,
    };
    let plt_ms = r.f64()?;
    let exit_as = exit_as_from_code(r.u8()?)?;
    let weather =
        WeatherCondition::from_code(r.u8()?).ok_or(WireError::BadField { field: "weather" })?;
    Ok(PageRecord {
        user,
        city,
        isp,
        at,
        rank,
        ptt,
        plt_ms,
        exit_as,
        weather,
    })
}

/// Encodes one speedtest record (fixed [`SPEEDTEST_RECORD_LEN`] bytes).
pub fn encode_speedtest(w: &mut WireWriter, r: &SpeedtestRecord) {
    w.u64(r.user);
    w.u8(r.city.code());
    w.u8(u8::from(r.starlink));
    w.u64(r.at_secs);
    w.f64(r.downlink_mbps);
    w.f64(r.uplink_mbps);
}

/// Decodes one speedtest record.
pub fn decode_speedtest(r: &mut WireReader<'_>) -> Result<SpeedtestRecord, WireError> {
    let user = r.u64()?;
    let city = City::from_code(r.u8()?).ok_or(WireError::BadField { field: "city" })?;
    let starlink = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::BadField { field: "starlink" }),
    };
    Ok(SpeedtestRecord {
        user,
        city,
        starlink,
        at_secs: r.u64()?,
        downlink_mbps: r.f64()?,
        uplink_mbps: r.f64()?,
    })
}

// ---------------------------------------------------------------------
// Batch encoding
// ---------------------------------------------------------------------

/// Encodes a batch into its framed, checksummed wire form.
pub fn encode_batch(batch: &RecordBatch) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.bytes(&MAGIC);
    w.u16(VERSION);
    w.u16(0); // flags, reserved
    w.u64(batch.user);
    w.u64(batch.seq);
    w.u32(batch.pages.len() as u32);
    w.u32(batch.speedtests.len() as u32);
    for p in &batch.pages {
        encode_page(&mut w, p);
    }
    for s in &batch.speedtests {
        encode_speedtest(&mut w, s);
    }
    w.seal()
}

/// The best-effort view of a batch header, read *without* validating the
/// checksum. The collector uses it to attribute quarantined uploads to a
/// user when the damage spared the header.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeekedHeader {
    /// The stated uploader, if the header bytes were present.
    pub user: Option<u64>,
    /// The stated sequence number.
    pub seq: Option<u64>,
    /// Total records the header claims (pages + speedtests).
    pub claimed_records: Option<u64>,
}

/// Reads what it can of the header without trusting it.
pub fn peek_header(bytes: &[u8]) -> PeekedHeader {
    let mut r = WireReader::new(bytes);
    let mut peek = PeekedHeader::default();
    if r.bytes(4).map(|m| m != MAGIC).unwrap_or(true) {
        return peek;
    }
    if r.u16().is_err() || r.u16().is_err() {
        return peek;
    }
    peek.user = r.u64().ok();
    peek.seq = r.u64().ok();
    if let (Ok(pages), Ok(tests)) = (r.u32(), r.u32()) {
        peek.claimed_records = Some(u64::from(pages) + u64::from(tests));
    }
    peek
}

/// Decodes and validates a framed batch.
///
/// Checks run in trust order: magic, version, framing length (truncation
/// and trailing garbage), checksum, then field domains. Never panics.
pub fn decode_batch(bytes: &[u8]) -> Result<RecordBatch, WireError> {
    let mut r = WireReader::new(bytes);
    let magic = r.bytes(4)?;
    if magic != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic);
        return Err(WireError::BadMagic { found });
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(WireError::UnsupportedVersion { got: version });
    }
    let _flags = r.u16()?;
    let user = r.u64()?;
    let seq = r.u64()?;
    let page_count = r.u32()? as usize;
    let speedtest_count = r.u32()? as usize;

    let body = page_count
        .checked_mul(PAGE_RECORD_LEN)
        .and_then(|p| {
            speedtest_count
                .checked_mul(SPEEDTEST_RECORD_LEN)
                .and_then(|s| p.checked_add(s))
        })
        .ok_or(WireError::BadField {
            field: "record counts",
        })?;
    let total = HEADER_LEN + body + 4;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            got: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(WireError::TrailingBytes {
            extra: bytes.len() - total,
        });
    }
    let stated = u32::from_le_bytes([
        bytes[total - 4],
        bytes[total - 3],
        bytes[total - 2],
        bytes[total - 1],
    ]);
    let computed = crc32(&bytes[..total - 4]);
    if stated != computed {
        return Err(WireError::ChecksumMismatch { computed, stated });
    }

    let mut pages = Vec::with_capacity(page_count);
    for _ in 0..page_count {
        pages.push(decode_page(&mut r)?);
    }
    let mut speedtests = Vec::with_capacity(speedtest_count);
    for _ in 0..speedtest_count {
        speedtests.push(decode_speedtest(&mut r)?);
    }
    Ok(RecordBatch {
        user,
        seq,
        pages,
        speedtests,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> RecordBatch {
        let page = PageRecord {
            user: 0xDEAD_BEEF,
            city: City::London,
            isp: IspClass::Starlink,
            at: SimTime::from_secs(1234),
            rank: 42,
            ptt: PttBreakdown {
                redirect_ms: 1.5,
                dns_ms: 20.25,
                connect_ms: 30.0,
                tls_ms: 40.0,
                request_ms: 100.125,
                response_ms: 60.5,
            },
            plt_ms: 352.375,
            exit_as: Some(ExitAs::Google),
            weather: WeatherCondition::ModerateRain,
        };
        let test = SpeedtestRecord {
            user: 0xDEAD_BEEF,
            city: City::London,
            starlink: true,
            at_secs: 5678,
            downlink_mbps: 123.25,
            uplink_mbps: 11.5,
        };
        RecordBatch {
            user: 0xDEAD_BEEF,
            seq: 7,
            pages: vec![page.clone(), page],
            speedtests: vec![test],
        }
    }

    #[test]
    fn round_trip_is_byte_exact() {
        let batch = sample_batch();
        let bytes = encode_batch(&batch);
        let back = decode_batch(&bytes).expect("clean bytes decode");
        assert_eq!(batch, back);
        // Re-encoding the decoded batch reproduces the same bytes.
        assert_eq!(encode_batch(&back), bytes);
    }

    #[test]
    fn empty_batch_round_trips() {
        let batch = RecordBatch {
            user: 1,
            seq: 0,
            pages: vec![],
            speedtests: vec![],
        };
        let bytes = encode_batch(&batch);
        assert_eq!(bytes.len(), HEADER_LEN + 4);
        assert_eq!(decode_batch(&bytes).expect("empty decodes"), batch);
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = encode_batch(&sample_batch());
        for cut in 0..bytes.len() {
            let err = decode_batch(&bytes[..cut]).expect_err("prefix must not decode");
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn single_byte_corruption_is_detected() {
        let bytes = encode_batch(&sample_batch());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            let result = decode_batch(&bad);
            assert!(result.is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_batch(&sample_batch());
        bytes.push(0);
        assert_eq!(
            decode_batch(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = encode_batch(&sample_batch());
        bytes[4] = 9; // version LE low byte
        assert_eq!(
            decode_batch(&bytes),
            Err(WireError::UnsupportedVersion { got: 9 })
        );
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = encode_batch(&sample_batch());
        bytes[0] = b'X';
        assert!(matches!(
            decode_batch(&bytes),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn peek_header_survives_checksum_damage() {
        let batch = sample_batch();
        let mut bytes = encode_batch(&batch);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // corrupt the checksum only
        assert!(decode_batch(&bytes).is_err());
        let peek = peek_header(&bytes);
        assert_eq!(peek.user, Some(batch.user));
        assert_eq!(peek.seq, Some(batch.seq));
        assert_eq!(peek.claimed_records, Some(3));
    }

    #[test]
    fn peek_header_handles_garbage() {
        assert_eq!(peek_header(&[]), PeekedHeader::default());
        assert_eq!(peek_header(b"garbage"), PeekedHeader::default());
        let peek = peek_header(&encode_batch(&sample_batch())[..HEADER_LEN - 2]);
        assert!(peek.user.is_some());
        assert!(peek.claimed_records.is_none());
    }

    #[test]
    fn crc32_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(
            WireError::Truncated { needed: 1, got: 0 }.code(),
            "truncated"
        );
        assert_eq!(
            WireError::ChecksumMismatch {
                computed: 0,
                stated: 1
            }
            .code(),
            "checksum-mismatch"
        );
        assert_eq!(WireError::BadMagic { found: [0; 4] }.code(), "bad-magic");
    }

    #[test]
    fn isp_codes_cover_every_class() {
        for tech in AccessTech::ALL {
            let isp = IspClass::NonStarlink(tech);
            assert_eq!(isp_from_code(isp_code(isp)), Some(isp));
        }
        assert_eq!(isp_from_code(0), Some(IspClass::Starlink));
        assert_eq!(isp_from_code(99), None);
    }
}
