//! The extension side of an SLCS session: frame building, reply
//! interpretation, and a deterministic batch source for load tests.
//!
//! [`SessionClient`] is transport-agnostic — it produces and consumes
//! byte frames, leaving delivery to its caller (the in-sim campaign
//! hands them straight to the server; the `collector-load` binary writes
//! them down a TCP socket). Retry pacing belongs to
//! [`crate::retry::RetryPolicy`], shared with the legacy upload path so
//! session retries and upload retries cannot drift apart.

use crate::aschange::ExitAs;
use crate::population::IspClass;
use crate::records::{PageRecord, SpeedtestRecord};
use crate::retry::RetryPolicy;
use crate::slcs::{decode_frame, encode_frame, AckStatus, Frame, ShedReason};
use crate::wire::{encode_batch, RecordBatch, WireError};
use starlink_channel::WeatherCondition;
use starlink_geo::City;
use starlink_simcore::SimTime;
use starlink_web::PttBreakdown;

/// A server reply, from the client's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerReply {
    /// The referenced frame was accepted.
    Ack {
        /// Echoed sequence number.
        seq: u64,
        /// What the collector did with the batch.
        status: AckStatus,
    },
    /// The referenced frame was shed; retry after the hint.
    Reject {
        /// Echoed sequence number.
        seq: u64,
        /// Why the server shed the frame.
        reason: ShedReason,
        /// Server's backoff hint, nanoseconds.
        retry_after_ns: u64,
    },
}

/// One client session: builds outbound frames and interprets replies.
#[derive(Debug, Clone)]
pub struct SessionClient {
    session: u64,
    user: u64,
    policy: RetryPolicy,
}

impl SessionClient {
    /// A client for `user` on session id `session` retrying per `policy`.
    pub fn new(session: u64, user: u64, policy: RetryPolicy) -> Self {
        SessionClient {
            session,
            user,
            policy,
        }
    }

    /// The session identifier.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The user this session uploads for.
    pub fn user(&self) -> u64 {
        self.user
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The HELLO frame that opens (or refreshes) the session.
    pub fn hello(&self) -> Vec<u8> {
        encode_frame(&Frame::Hello {
            session: self.session,
            user: self.user,
        })
    }

    /// A BATCH frame carrying sealed SLTB bytes.
    pub fn batch(&self, seq: u64, payload: Vec<u8>) -> Vec<u8> {
        encode_frame(&Frame::Batch {
            session: self.session,
            seq,
            payload,
        })
    }

    /// The DRAIN frame that asks the server to flush and close.
    pub fn drain(&self) -> Vec<u8> {
        encode_frame(&Frame::Drain {
            session: self.session,
        })
    }

    /// Decodes a server reply. Frames that are well-formed but not a
    /// reply (a stray HELLO or BATCH) are a `bad-field` error: a correct
    /// server never sends them.
    pub fn parse_reply(&self, bytes: &[u8]) -> Result<ServerReply, WireError> {
        match decode_frame(bytes)? {
            Frame::Ack { seq, status, .. } => Ok(ServerReply::Ack { seq, status }),
            Frame::Reject {
                seq,
                reason,
                retry_after_ns,
                ..
            } => Ok(ServerReply::Reject {
                seq,
                reason,
                retry_after_ns,
            }),
            _ => Err(WireError::BadField { field: "reply" }),
        }
    }
}

/// A deterministic sealed SLTB batch for load generation: pure
/// arithmetic in `(user, seq)`, so every run of the load generator — and
/// every restart after a kill — produces byte-identical uploads.
pub fn synthetic_batch(user: u64, seq: u64, pages: u32) -> Vec<u8> {
    let city = City::ALL[(user as usize) % City::ALL.len()];
    let mut out = RecordBatch {
        user,
        seq,
        pages: Vec::with_capacity(pages as usize),
        speedtests: Vec::new(),
    };
    for i in 0..u64::from(pages) {
        let at = SimTime::from_secs(seq * 86_400 + 72_000 + i);
        out.pages.push(PageRecord {
            user,
            city,
            isp: IspClass::Starlink,
            at,
            rank: 1 + (user.wrapping_mul(31).wrapping_add(seq * 7 + i)) % 50_000,
            ptt: PttBreakdown {
                redirect_ms: 0.0,
                dns_ms: 20.0 + (i % 10) as f64,
                connect_ms: 35.0 + (seq % 5) as f64,
                tls_ms: 40.0,
                request_ms: 55.0 + (i % 7) as f64,
                response_ms: 60.0,
            },
            plt_ms: 900.0 + ((user + seq + i) % 400) as f64,
            exit_as: if (user + seq).is_multiple_of(2) {
                Some(ExitAs::Google)
            } else {
                None
            },
            weather: WeatherCondition::ClearSky,
        });
    }
    out.speedtests.push(SpeedtestRecord {
        user,
        city,
        starlink: true,
        at_secs: seq * 86_400 + 71_000,
        downlink_mbps: 100.0 + (user % 120) as f64,
        uplink_mbps: 10.0 + (user % 9) as f64,
    });
    encode_batch(&out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode_batch;
    use starlink_simcore::SimDuration;

    fn client() -> SessionClient {
        SessionClient::new(7, 42, RetryPolicy::new(3, SimDuration::from_secs(1)))
    }

    #[test]
    fn frames_round_trip_through_the_codec() {
        let c = client();
        assert_eq!(
            decode_frame(&c.hello()),
            Ok(Frame::Hello {
                session: 7,
                user: 42
            })
        );
        assert_eq!(
            decode_frame(&c.batch(3, vec![1, 2, 3])),
            Ok(Frame::Batch {
                session: 7,
                seq: 3,
                payload: vec![1, 2, 3]
            })
        );
        assert_eq!(decode_frame(&c.drain()), Ok(Frame::Drain { session: 7 }));
    }

    #[test]
    fn replies_parse_and_non_replies_are_refused() {
        let c = client();
        let ack = encode_frame(&Frame::Ack {
            session: 7,
            seq: 2,
            status: AckStatus::Duplicate,
        });
        assert_eq!(
            c.parse_reply(&ack),
            Ok(ServerReply::Ack {
                seq: 2,
                status: AckStatus::Duplicate
            })
        );
        let reject = encode_frame(&Frame::Reject {
            session: 7,
            seq: 2,
            reason: ShedReason::Throttled,
            retry_after_ns: 5,
        });
        assert_eq!(
            c.parse_reply(&reject),
            Ok(ServerReply::Reject {
                seq: 2,
                reason: ShedReason::Throttled,
                retry_after_ns: 5
            })
        );
        assert_eq!(
            c.parse_reply(&c.hello()),
            Err(WireError::BadField { field: "reply" })
        );
        assert!(c.parse_reply(b"junk").is_err());
    }

    #[test]
    fn synthetic_batches_are_deterministic_and_decode() {
        let a = synthetic_batch(11, 2, 8);
        let b = synthetic_batch(11, 2, 8);
        assert_eq!(a, b);
        let batch = decode_batch(&a).expect("synthetic batches are sound");
        assert_eq!(batch.user, 11);
        assert_eq!(batch.seq, 2);
        assert_eq!(batch.pages.len(), 8);
        assert_eq!(batch.speedtests.len(), 1);
        assert_ne!(synthetic_batch(11, 3, 8), a);
        assert_ne!(synthetic_batch(12, 2, 8), a);
    }
}
