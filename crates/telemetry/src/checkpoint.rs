//! Checkpoint/resume for the resilient campaign driver.
//!
//! A six-month measurement campaign must survive its own machine dying.
//! [`ResilientCampaign::checkpoint`] serialises the complete driver
//! state at a day boundary — per-user RNG states, coverage counters,
//! offline spools and the collector (accepted records, dedup set,
//! quarantine) — into a versioned, CRC-protected binary blob, and
//! [`ResilientCampaign::resume`] rebuilds the driver from it.
//!
//! Guarantees:
//!
//! * **byte-identity** — a run checkpointed, killed and resumed at any
//!   day boundary (any number of times) finishes with a dataset whose
//!   [`crate::records::Dataset::digest`] equals the straight-through
//!   run's;
//! * **scenario safety** — resuming under a different seed, campaign
//!   shape, or fault plan is refused with a typed
//!   [`CheckpointError::Mismatch`], because mixing states from two
//!   scenarios would silently fabricate a dataset no single scenario
//!   produced;
//! * **corruption safety** — a truncated or bit-flipped checkpoint
//!   fails its CRC and is refused, like any other damaged upload in
//!   this crate.

use crate::ingest::{Collector, IngestOptions, QuarantinedBatch, ResilientCampaign, SpooledBatch};
use crate::pipeline::CampaignConfig;
use crate::wire::{
    crc32, decode_page, decode_speedtest, encode_page, encode_speedtest, WireError, WireReader,
    WireWriter,
};
use starlink_simcore::{SimRng, SimTime};
use std::fmt;

/// The four magic bytes every checkpoint starts with.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"SLCP";
/// The current checkpoint format version. Version 2 added the blob-kind
/// byte, the admission-service options, per-user shed counters, and the
/// spool `rejected` flag.
pub const CHECKPOINT_VERSION: u16 = 2;

/// Blob-kind byte: a full resilient-campaign driver state.
const KIND_CAMPAIGN: u8 = 1;
/// Blob-kind byte: a standalone collector-server dataset state (what the
/// `collector-serve` binary persists between kills).
const KIND_SERVER: u8 = 2;
/// Blob-kind byte: a population-scale sharded-campaign ledger
/// ([`crate::shard::ScaledCampaign`]).
pub(crate) const KIND_SCALED: u8 = 3;

/// Why a checkpoint could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob is structurally damaged (bad magic, truncation, CRC
    /// failure, …).
    Wire(WireError),
    /// The blob is intact but belongs to a different scenario: the named
    /// field differs between the checkpoint and the provided
    /// configuration/options.
    Mismatch {
        /// Which field disagreed.
        field: &'static str,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Wire(e) => write!(f, "damaged checkpoint: {e}"),
            CheckpointError::Mismatch { field } => {
                write!(
                    f,
                    "checkpoint belongs to a different scenario ({field} differs)"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Wire(e)
    }
}

fn put_opt_u64(w: &mut WireWriter, v: Option<u64>) {
    match v {
        Some(x) => {
            w.u8(1);
            w.u64(x);
        }
        None => w.u8(0),
    }
}

fn get_opt_u64(r: &mut WireReader<'_>) -> Result<Option<u64>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        _ => Err(WireError::BadField { field: "option" }),
    }
}

/// Maps a decoded reason-code string back to the `'static` table the
/// quarantine API exposes. Codes outside the known set mean a corrupted
/// (yet CRC-colliding) or future-format checkpoint.
fn intern_reason(code: &str) -> Result<&'static str, WireError> {
    const KNOWN: [&str; 6] = [
        "bad-magic",
        "unsupported-version",
        "truncated",
        "trailing-bytes",
        "checksum-mismatch",
        "bad-field",
    ];
    KNOWN
        .iter()
        .find(|&&k| k == code)
        .copied()
        .ok_or(WireError::BadField {
            field: "reason-code",
        })
}

/// Serialises the collector's complete state (dedup set, records,
/// quarantine) — shared by the campaign blob and the standalone server
/// blob so the two formats cannot drift.
fn put_collector(w: &mut WireWriter, c: &Collector) {
    w.u32(c.seen.len() as u32);
    for &(user, seq) in &c.seen {
        w.u64(user);
        w.u64(seq);
    }
    w.u64(c.duplicates);
    w.u32(c.pages.len() as u32);
    for p in &c.pages {
        encode_page(w, p);
    }
    w.u32(c.speedtests.len() as u32);
    for s in &c.speedtests {
        encode_speedtest(w, s);
    }
    w.u32(c.quarantine.len() as u32);
    for q in &c.quarantine {
        w.str(q.reason_code);
        w.str(&q.detail);
        put_opt_u64(w, q.user);
        put_opt_u64(w, q.seq);
        put_opt_u64(w, q.claimed_records);
        w.u64(q.wire_len);
        w.u64(q.at.as_nanos());
    }
}

/// Inverse of [`put_collector`].
fn get_collector(r: &mut WireReader<'_>) -> Result<Collector, CheckpointError> {
    let mut c = Collector::new();
    let seen = r.u32()? as usize;
    for _ in 0..seen {
        let user = r.u64()?;
        let seq = r.u64()?;
        c.seen.insert((user, seq));
    }
    c.duplicates = r.u64()?;
    let pages = r.u32()? as usize;
    for _ in 0..pages {
        c.pages.push(decode_page(r)?);
    }
    let speedtests = r.u32()? as usize;
    for _ in 0..speedtests {
        c.speedtests.push(decode_speedtest(r)?);
    }
    let quarantined = r.u32()? as usize;
    for _ in 0..quarantined {
        let code = r.str()?;
        let detail = r.str()?;
        let user = get_opt_u64(r)?;
        let seq = get_opt_u64(r)?;
        let claimed_records = get_opt_u64(r)?;
        let wire_len = r.u64()?;
        let at = SimTime::from_nanos(r.u64()?);
        c.quarantine.push(QuarantinedBatch {
            reason_code: intern_reason(&code)?,
            detail,
            user,
            seq,
            claimed_records,
            wire_len,
            at,
        });
    }
    Ok(c)
}

/// Verifies the trailing CRC and the magic/version/kind preamble, then
/// returns a reader positioned at the blob body.
pub(crate) fn open_blob<'a>(bytes: &'a [u8], kind: u8) -> Result<WireReader<'a>, CheckpointError> {
    if bytes.len() < 4 {
        return Err(WireError::Truncated {
            needed: 4,
            got: bytes.len(),
        }
        .into());
    }
    let body = &bytes[..bytes.len() - 4];
    let stated = u32::from_le_bytes([
        bytes[bytes.len() - 4],
        bytes[bytes.len() - 3],
        bytes[bytes.len() - 2],
        bytes[bytes.len() - 1],
    ]);
    let computed = crc32(body);
    if stated != computed {
        return Err(WireError::ChecksumMismatch { computed, stated }.into());
    }

    let mut r = WireReader::new(body);
    let magic = r.bytes(4)?;
    if magic != CHECKPOINT_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic);
        return Err(WireError::BadMagic { found }.into());
    }
    let version = r.u16()?;
    if version != CHECKPOINT_VERSION {
        return Err(WireError::UnsupportedVersion { got: version }.into());
    }
    if r.u8()? != kind {
        return Err(WireError::BadField {
            field: "checkpoint-kind",
        }
        .into());
    }
    Ok(r)
}

/// Serialises a standalone collector's dataset state — the
/// `collector-serve` binary's crash-recovery blob (SLCP v2, kind 2).
pub fn encode_server_checkpoint(collector: &Collector) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.bytes(&CHECKPOINT_MAGIC);
    w.u16(CHECKPOINT_VERSION);
    w.u8(KIND_SERVER);
    put_collector(&mut w, collector);
    w.seal()
}

/// Rebuilds a collector from a server checkpoint blob, verifying the
/// CRC first like every other artefact in this crate.
pub fn decode_server_checkpoint(bytes: &[u8]) -> Result<Collector, CheckpointError> {
    let mut r = open_blob(bytes, KIND_SERVER)?;
    let collector = get_collector(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::TrailingBytes {
            extra: r.remaining(),
        }
        .into());
    }
    Ok(collector)
}

impl ResilientCampaign {
    /// Serialises the complete driver state (valid at day boundaries —
    /// i.e. between [`ResilientCampaign::run_day`] calls) into a
    /// versioned, CRC-protected blob.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(&CHECKPOINT_MAGIC);
        w.u16(CHECKPOINT_VERSION);
        w.u8(KIND_CAMPAIGN);

        let cfg = self.campaign.config();
        w.u64(cfg.seed);
        w.u64(cfg.days);
        w.f64(cfg.pages_per_day);
        w.u64(cfg.tranco_size);

        w.u64(self.options.plan.fingerprint());
        w.u32(self.options.max_retries);
        w.u64(self.options.base_backoff.as_nanos());
        w.u64(self.options.spool_days);
        w.f64(self.options.ack_loss);
        match self.options.service {
            None => w.u8(0),
            Some(s) => {
                w.u8(1);
                w.u64(s.session_rate_milli);
                w.u64(s.session_burst);
                w.u64(s.queue_batches);
                w.u64(s.global_bytes);
                w.u64(s.drain_bytes_per_sec);
            }
        }

        w.u64(self.next_day);

        w.u32(self.rngs.len() as u32);
        for (i, rng) in self.rngs.iter().enumerate() {
            let cov = self.coverage.row(i);
            for part in rng.state() {
                w.u64(part);
            }
            w.u64(cov.user);
            w.u8(cov.city_code);
            w.u64(cov.generated);
            w.u64(cov.delivered);
            w.u64(cov.quarantined);
            w.u64(cov.shed);
            w.u64(cov.lost);
            w.u64(cov.duplicates);
            w.u64(cov.retries);
        }

        w.u32(self.spool.len() as u32);
        for b in &self.spool {
            w.u32(b.user_idx as u32);
            w.u64(b.seq);
            w.u64(b.created_day);
            w.u32(b.pages);
            w.u32(b.speedtests);
            w.u8(b.delivered as u8);
            w.u8(b.rejected as u8);
            w.u32(b.bytes.len() as u32);
            w.bytes(&b.bytes);
        }

        put_collector(&mut w, &self.collector);

        w.seal()
    }

    /// Rebuilds a driver from a checkpoint, verifying both the blob's
    /// integrity (CRC) and that it belongs to *this* scenario (same
    /// seed, campaign shape, and fault-plan fingerprint).
    pub fn resume(
        config: CampaignConfig,
        options: IngestOptions,
        bytes: &[u8],
    ) -> Result<Self, CheckpointError> {
        let mut r = open_blob(bytes, KIND_CAMPAIGN)?;

        let mismatch = |cond: bool, field: &'static str| {
            if cond {
                Err(CheckpointError::Mismatch { field })
            } else {
                Ok(())
            }
        };
        mismatch(r.u64()? != config.seed, "seed")?;
        mismatch(r.u64()? != config.days, "days")?;
        mismatch(
            r.f64()?.to_bits() != config.pages_per_day.to_bits(),
            "pages_per_day",
        )?;
        mismatch(r.u64()? != config.tranco_size, "tranco_size")?;
        mismatch(r.u64()? != options.plan.fingerprint(), "fault plan")?;
        mismatch(r.u32()? != options.max_retries, "max_retries")?;
        mismatch(r.u64()? != options.base_backoff.as_nanos(), "base_backoff")?;
        mismatch(r.u64()? != options.spool_days, "spool_days")?;
        mismatch(r.f64()?.to_bits() != options.ack_loss.to_bits(), "ack_loss")?;
        match r.u8()? {
            0 => mismatch(options.service.is_some(), "service")?,
            1 => {
                let Some(s) = options.service else {
                    return Err(CheckpointError::Mismatch { field: "service" });
                };
                mismatch(r.u64()? != s.session_rate_milli, "service")?;
                mismatch(r.u64()? != s.session_burst, "service")?;
                mismatch(r.u64()? != s.queue_batches, "service")?;
                mismatch(r.u64()? != s.global_bytes, "service")?;
                mismatch(r.u64()? != s.drain_bytes_per_sec, "service")?;
            }
            _ => return Err(WireError::BadField { field: "service" }.into()),
        }

        let next_day = r.u64()?;

        let mut fresh = ResilientCampaign::new(config, options);
        let users = r.u32()? as usize;
        if users != fresh.rngs.len() {
            return Err(CheckpointError::Mismatch {
                field: "population",
            });
        }
        for i in 0..users {
            let state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
            fresh.rngs[i] = SimRng::from_state(state);
            let user = r.u64()?;
            let city_code = r.u8()?;
            let cov = &mut fresh.coverage;
            if user != cov.user[i] || city_code != cov.city_code[i] {
                return Err(CheckpointError::Mismatch {
                    field: "population",
                });
            }
            cov.generated[i] = r.u64()?;
            cov.delivered[i] = r.u64()?;
            cov.quarantined[i] = r.u64()?;
            cov.shed[i] = r.u64()?;
            cov.lost[i] = r.u64()?;
            cov.duplicates[i] = r.u64()?;
            cov.retries[i] = r.u64()?;
        }

        let spooled = r.u32()? as usize;
        let mut spool = Vec::new();
        for _ in 0..spooled {
            let user_idx = r.u32()? as usize;
            if user_idx >= users {
                return Err(WireError::BadField {
                    field: "spool user",
                }
                .into());
            }
            let seq = r.u64()?;
            let created_day = r.u64()?;
            let pages = r.u32()?;
            let speedtests = r.u32()?;
            let flag = |b: u8| match b {
                0 => Ok(false),
                1 => Ok(true),
                _ => Err(WireError::BadField {
                    field: "spool flag",
                }),
            };
            let delivered = flag(r.u8()?)?;
            let rejected = flag(r.u8()?)?;
            let len = r.u32()? as usize;
            let bytes = r.bytes(len)?.to_vec();
            spool.push(SpooledBatch {
                user_idx,
                seq,
                created_day,
                pages,
                speedtests,
                delivered,
                rejected,
                bytes,
            });
        }
        fresh.spool = spool;

        fresh.collector = get_collector(&mut r)?;
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: r.remaining(),
            }
            .into());
        }

        fresh.next_day = next_day;
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::Dataset;

    fn config(seed: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            days: 8,
            pages_per_day: 8.0,
            tranco_size: 50_000,
        }
    }

    fn straight_through(seed: u64, options: &IngestOptions) -> Dataset {
        ResilientCampaign::new(config(seed), options.clone())
            .run_to_end()
            .dataset
    }

    #[test]
    fn resume_reproduces_the_straight_run_byte_for_byte() {
        let options = IngestOptions::fault_storm(28, 8);
        let reference = straight_through(13, &options);

        // Interrupt after every single day.
        let mut rc = ResilientCampaign::new(config(13), options.clone());
        while !rc.is_finished() {
            rc.run_day();
            let blob = rc.checkpoint();
            rc = ResilientCampaign::resume(config(13), options.clone(), &blob)
                .expect("own checkpoint must restore");
        }
        let resumed = rc.finish().dataset;
        assert_eq!(resumed.digest(), reference.digest());
        assert_eq!(resumed.pages.len(), reference.pages.len());
    }

    #[test]
    fn resume_restores_mid_campaign_state() {
        let options = IngestOptions::fault_storm(28, 8);
        let mut rc = ResilientCampaign::new(config(5), options.clone());
        for _ in 0..4 {
            rc.run_day();
        }
        let blob = rc.checkpoint();
        let restored = ResilientCampaign::resume(config(5), options, &blob).unwrap();
        assert_eq!(restored.next_day(), 4);
        assert_eq!(restored.spooled(), rc.spooled());
        assert_eq!(
            restored.coverage().total(),
            rc.coverage().total(),
            "coverage counters must survive the round trip"
        );
    }

    #[test]
    fn corrupted_checkpoints_are_refused() {
        let rc = ResilientCampaign::new(config(1), IngestOptions::perfect());
        let blob = rc.checkpoint();
        for cut in [0, blob.len() / 2, blob.len() - 1] {
            assert!(matches!(
                ResilientCampaign::resume(config(1), IngestOptions::perfect(), &blob[..cut]),
                Err(CheckpointError::Wire(_))
            ));
        }
        let mut bad = blob.clone();
        bad[10] ^= 0x55;
        assert!(matches!(
            ResilientCampaign::resume(config(1), IngestOptions::perfect(), &bad),
            Err(CheckpointError::Wire(WireError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn scenario_mismatches_are_refused_with_the_field_named() {
        let mut rc = ResilientCampaign::new(config(1), IngestOptions::perfect());
        rc.run_day();
        let blob = rc.checkpoint();

        let err = ResilientCampaign::resume(config(2), IngestOptions::perfect(), &blob)
            .expect_err("wrong seed must be refused");
        assert_eq!(err, CheckpointError::Mismatch { field: "seed" });

        let storm = IngestOptions::fault_storm(28, 8);
        let err = ResilientCampaign::resume(config(1), storm, &blob)
            .expect_err("wrong plan must be refused");
        assert_eq!(
            err,
            CheckpointError::Mismatch {
                field: "fault plan"
            }
        );

        let mut other = config(1);
        other.days = 99;
        let err = ResilientCampaign::resume(other, IngestOptions::perfect(), &blob)
            .expect_err("wrong shape must be refused");
        assert_eq!(err, CheckpointError::Mismatch { field: "days" });
    }

    #[test]
    fn service_mode_resume_is_byte_identical() {
        let mut options = IngestOptions::fault_storm(28, 8);
        options.service = Some(crate::server::AdmissionConfig::overloaded());
        let reference = ResilientCampaign::new(config(13), options.clone()).run_to_end();

        // Interrupt after every single day.
        let mut rc = ResilientCampaign::new(config(13), options.clone());
        while !rc.is_finished() {
            rc.run_day();
            let blob = rc.checkpoint();
            rc = ResilientCampaign::resume(config(13), options.clone(), &blob)
                .expect("own checkpoint must restore");
        }
        let resumed = rc.finish();
        assert_eq!(resumed.dataset.digest(), reference.dataset.digest());
        assert_eq!(
            resumed.coverage.total(),
            reference.coverage.total(),
            "shed accounting must survive kill/resume"
        );
    }

    #[test]
    fn service_budget_mismatches_are_refused() {
        let mut options = IngestOptions::perfect();
        options.service = Some(crate::server::AdmissionConfig::generous());
        let rc = ResilientCampaign::new(config(1), options.clone());
        let blob = rc.checkpoint();

        let err = ResilientCampaign::resume(config(1), IngestOptions::perfect(), &blob)
            .expect_err("dropping the service must be refused");
        assert_eq!(err, CheckpointError::Mismatch { field: "service" });

        let mut other = options.clone();
        other.service = Some(crate::server::AdmissionConfig::overloaded());
        let err = ResilientCampaign::resume(config(1), other, &blob)
            .expect_err("different budgets must be refused");
        assert_eq!(err, CheckpointError::Mismatch { field: "service" });

        assert!(ResilientCampaign::resume(config(1), options, &blob).is_ok());
    }

    #[test]
    fn server_checkpoint_round_trips_the_collector() {
        let mut c = Collector::new();
        c.submit(&crate::client::synthetic_batch(7, 0, 4), SimTime::ZERO);
        c.submit(
            &crate::client::synthetic_batch(7, 0, 4),
            SimTime::from_secs(1),
        );
        c.submit(&[1, 2, 3], SimTime::from_secs(5));
        let blob = encode_server_checkpoint(&c);
        let back = decode_server_checkpoint(&blob).expect("own blob must restore");
        assert_eq!(back.dataset().digest(), c.dataset().digest());
        assert_eq!(back.accepted_batches(), 1);
        assert_eq!(back.duplicates(), c.duplicates());
        assert_eq!(back.quarantine().len(), 1);
        assert_eq!(encode_server_checkpoint(&back), blob);

        let mut bad = blob.clone();
        bad[8] ^= 1;
        assert!(matches!(
            decode_server_checkpoint(&bad),
            Err(CheckpointError::Wire(WireError::ChecksumMismatch { .. }))
        ));

        // A campaign blob is not a server blob, and vice versa.
        let rc = ResilientCampaign::new(config(1), IngestOptions::perfect());
        assert!(matches!(
            decode_server_checkpoint(&rc.checkpoint()),
            Err(CheckpointError::Wire(WireError::BadField {
                field: "checkpoint-kind"
            }))
        ));
        assert!(matches!(
            ResilientCampaign::resume(config(1), IngestOptions::perfect(), &blob),
            Err(CheckpointError::Wire(WireError::BadField {
                field: "checkpoint-kind"
            }))
        ));
    }

    #[test]
    fn checkpoint_is_deterministic() {
        let make = || {
            let options = IngestOptions::fault_storm(28, 8);
            let mut rc = ResilientCampaign::new(config(3), options);
            rc.run_day();
            rc.run_day();
            rc.checkpoint()
        };
        assert_eq!(make(), make());
    }
}
