//! Checkpoint/resume for the resilient campaign driver.
//!
//! A six-month measurement campaign must survive its own machine dying.
//! [`ResilientCampaign::checkpoint`] serialises the complete driver
//! state at a day boundary — per-user RNG states, coverage counters,
//! offline spools and the collector (accepted records, dedup set,
//! quarantine) — into a versioned, CRC-protected binary blob, and
//! [`ResilientCampaign::resume`] rebuilds the driver from it.
//!
//! Guarantees:
//!
//! * **byte-identity** — a run checkpointed, killed and resumed at any
//!   day boundary (any number of times) finishes with a dataset whose
//!   [`crate::records::Dataset::digest`] equals the straight-through
//!   run's;
//! * **scenario safety** — resuming under a different seed, campaign
//!   shape, or fault plan is refused with a typed
//!   [`CheckpointError::Mismatch`], because mixing states from two
//!   scenarios would silently fabricate a dataset no single scenario
//!   produced;
//! * **corruption safety** — a truncated or bit-flipped checkpoint
//!   fails its CRC and is refused, like any other damaged upload in
//!   this crate.

use crate::ingest::{IngestOptions, QuarantinedBatch, ResilientCampaign, SpooledBatch};
use crate::pipeline::CampaignConfig;
use crate::wire::{
    crc32, decode_page, decode_speedtest, encode_page, encode_speedtest, WireError, WireReader,
    WireWriter,
};
use starlink_simcore::{SimRng, SimTime};
use std::fmt;

/// The four magic bytes every checkpoint starts with.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"SLCP";
/// The current checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Why a checkpoint could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The blob is structurally damaged (bad magic, truncation, CRC
    /// failure, …).
    Wire(WireError),
    /// The blob is intact but belongs to a different scenario: the named
    /// field differs between the checkpoint and the provided
    /// configuration/options.
    Mismatch {
        /// Which field disagreed.
        field: &'static str,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Wire(e) => write!(f, "damaged checkpoint: {e}"),
            CheckpointError::Mismatch { field } => {
                write!(
                    f,
                    "checkpoint belongs to a different scenario ({field} differs)"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Wire(e)
    }
}

fn put_opt_u64(w: &mut WireWriter, v: Option<u64>) {
    match v {
        Some(x) => {
            w.u8(1);
            w.u64(x);
        }
        None => w.u8(0),
    }
}

fn get_opt_u64(r: &mut WireReader<'_>) -> Result<Option<u64>, WireError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        _ => Err(WireError::BadField { field: "option" }),
    }
}

/// Maps a decoded reason-code string back to the `'static` table the
/// quarantine API exposes. Codes outside the known set mean a corrupted
/// (yet CRC-colliding) or future-format checkpoint.
fn intern_reason(code: &str) -> Result<&'static str, WireError> {
    const KNOWN: [&str; 6] = [
        "bad-magic",
        "unsupported-version",
        "truncated",
        "trailing-bytes",
        "checksum-mismatch",
        "bad-field",
    ];
    KNOWN
        .iter()
        .find(|&&k| k == code)
        .copied()
        .ok_or(WireError::BadField {
            field: "reason-code",
        })
}

impl ResilientCampaign {
    /// Serialises the complete driver state (valid at day boundaries —
    /// i.e. between [`ResilientCampaign::run_day`] calls) into a
    /// versioned, CRC-protected blob.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(&CHECKPOINT_MAGIC);
        w.u16(CHECKPOINT_VERSION);

        let cfg = self.campaign.config();
        w.u64(cfg.seed);
        w.u64(cfg.days);
        w.f64(cfg.pages_per_day);
        w.u64(cfg.tranco_size);

        w.u64(self.options.plan.fingerprint());
        w.u32(self.options.max_retries);
        w.u64(self.options.base_backoff.as_nanos());
        w.u64(self.options.spool_days);
        w.f64(self.options.ack_loss);

        w.u64(self.next_day);

        w.u32(self.rngs.len() as u32);
        for (rng, cov) in self.rngs.iter().zip(&self.coverage) {
            for part in rng.state() {
                w.u64(part);
            }
            w.u64(cov.user);
            w.u8(cov.city_code);
            w.u64(cov.generated);
            w.u64(cov.delivered);
            w.u64(cov.quarantined);
            w.u64(cov.lost);
            w.u64(cov.duplicates);
            w.u64(cov.retries);
        }

        w.u32(self.spool.len() as u32);
        for b in &self.spool {
            w.u32(b.user_idx as u32);
            w.u64(b.seq);
            w.u64(b.created_day);
            w.u32(b.pages);
            w.u32(b.speedtests);
            w.u8(b.delivered as u8);
            w.u32(b.bytes.len() as u32);
            w.bytes(&b.bytes);
        }

        w.u32(self.collector.seen.len() as u32);
        for &(user, seq) in &self.collector.seen {
            w.u64(user);
            w.u64(seq);
        }
        w.u64(self.collector.duplicates);
        w.u32(self.collector.pages.len() as u32);
        for p in &self.collector.pages {
            encode_page(&mut w, p);
        }
        w.u32(self.collector.speedtests.len() as u32);
        for s in &self.collector.speedtests {
            encode_speedtest(&mut w, s);
        }
        w.u32(self.collector.quarantine.len() as u32);
        for q in &self.collector.quarantine {
            w.str(q.reason_code);
            w.str(&q.detail);
            put_opt_u64(&mut w, q.user);
            put_opt_u64(&mut w, q.seq);
            put_opt_u64(&mut w, q.claimed_records);
            w.u64(q.wire_len);
            w.u64(q.at.as_nanos());
        }

        w.seal()
    }

    /// Rebuilds a driver from a checkpoint, verifying both the blob's
    /// integrity (CRC) and that it belongs to *this* scenario (same
    /// seed, campaign shape, and fault-plan fingerprint).
    pub fn resume(
        config: CampaignConfig,
        options: IngestOptions,
        bytes: &[u8],
    ) -> Result<Self, CheckpointError> {
        if bytes.len() < 4 {
            return Err(WireError::Truncated {
                needed: 4,
                got: bytes.len(),
            }
            .into());
        }
        let body = &bytes[..bytes.len() - 4];
        let stated = u32::from_le_bytes([
            bytes[bytes.len() - 4],
            bytes[bytes.len() - 3],
            bytes[bytes.len() - 2],
            bytes[bytes.len() - 1],
        ]);
        let computed = crc32(body);
        if stated != computed {
            return Err(WireError::ChecksumMismatch { computed, stated }.into());
        }

        let mut r = WireReader::new(body);
        let magic = r.bytes(4)?;
        if magic != CHECKPOINT_MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(magic);
            return Err(WireError::BadMagic { found }.into());
        }
        let version = r.u16()?;
        if version != CHECKPOINT_VERSION {
            return Err(WireError::UnsupportedVersion { got: version }.into());
        }

        let mismatch = |cond: bool, field: &'static str| {
            if cond {
                Err(CheckpointError::Mismatch { field })
            } else {
                Ok(())
            }
        };
        mismatch(r.u64()? != config.seed, "seed")?;
        mismatch(r.u64()? != config.days, "days")?;
        mismatch(
            r.f64()?.to_bits() != config.pages_per_day.to_bits(),
            "pages_per_day",
        )?;
        mismatch(r.u64()? != config.tranco_size, "tranco_size")?;
        mismatch(r.u64()? != options.plan.fingerprint(), "fault plan")?;
        mismatch(r.u32()? != options.max_retries, "max_retries")?;
        mismatch(r.u64()? != options.base_backoff.as_nanos(), "base_backoff")?;
        mismatch(r.u64()? != options.spool_days, "spool_days")?;
        mismatch(r.f64()?.to_bits() != options.ack_loss.to_bits(), "ack_loss")?;

        let next_day = r.u64()?;

        let mut fresh = ResilientCampaign::new(config, options);
        let users = r.u32()? as usize;
        if users != fresh.rngs.len() {
            return Err(CheckpointError::Mismatch {
                field: "population",
            });
        }
        for i in 0..users {
            let state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
            fresh.rngs[i] = SimRng::from_state(state);
            let cov = &mut fresh.coverage[i];
            let user = r.u64()?;
            let city_code = r.u8()?;
            if user != cov.user || city_code != cov.city_code {
                return Err(CheckpointError::Mismatch {
                    field: "population",
                });
            }
            cov.generated = r.u64()?;
            cov.delivered = r.u64()?;
            cov.quarantined = r.u64()?;
            cov.lost = r.u64()?;
            cov.duplicates = r.u64()?;
            cov.retries = r.u64()?;
        }

        let spooled = r.u32()? as usize;
        let mut spool = Vec::new();
        for _ in 0..spooled {
            let user_idx = r.u32()? as usize;
            if user_idx >= users {
                return Err(WireError::BadField {
                    field: "spool user",
                }
                .into());
            }
            let seq = r.u64()?;
            let created_day = r.u64()?;
            let pages = r.u32()?;
            let speedtests = r.u32()?;
            let delivered = match r.u8()? {
                0 => false,
                1 => true,
                _ => {
                    return Err(WireError::BadField {
                        field: "spool delivered flag",
                    }
                    .into())
                }
            };
            let len = r.u32()? as usize;
            let bytes = r.bytes(len)?.to_vec();
            spool.push(SpooledBatch {
                user_idx,
                seq,
                created_day,
                pages,
                speedtests,
                delivered,
                bytes,
            });
        }
        fresh.spool = spool;

        let seen = r.u32()? as usize;
        for _ in 0..seen {
            let user = r.u64()?;
            let seq = r.u64()?;
            fresh.collector.seen.insert((user, seq));
        }
        fresh.collector.duplicates = r.u64()?;
        let pages = r.u32()? as usize;
        for _ in 0..pages {
            fresh.collector.pages.push(decode_page(&mut r)?);
        }
        let speedtests = r.u32()? as usize;
        for _ in 0..speedtests {
            fresh.collector.speedtests.push(decode_speedtest(&mut r)?);
        }
        let quarantined = r.u32()? as usize;
        for _ in 0..quarantined {
            let code = r.str()?;
            let detail = r.str()?;
            let user = get_opt_u64(&mut r)?;
            let seq = get_opt_u64(&mut r)?;
            let claimed_records = get_opt_u64(&mut r)?;
            let wire_len = r.u64()?;
            let at = SimTime::from_nanos(r.u64()?);
            fresh.collector.quarantine.push(QuarantinedBatch {
                reason_code: intern_reason(&code)?,
                detail,
                user,
                seq,
                claimed_records,
                wire_len,
                at,
            });
        }
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: r.remaining(),
            }
            .into());
        }

        fresh.next_day = next_day;
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::Dataset;

    fn config(seed: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            days: 8,
            pages_per_day: 8.0,
            tranco_size: 50_000,
        }
    }

    fn straight_through(seed: u64, options: &IngestOptions) -> Dataset {
        ResilientCampaign::new(config(seed), options.clone())
            .run_to_end()
            .dataset
    }

    #[test]
    fn resume_reproduces_the_straight_run_byte_for_byte() {
        let options = IngestOptions::fault_storm(28, 8);
        let reference = straight_through(13, &options);

        // Interrupt after every single day.
        let mut rc = ResilientCampaign::new(config(13), options.clone());
        while !rc.is_finished() {
            rc.run_day();
            let blob = rc.checkpoint();
            rc = ResilientCampaign::resume(config(13), options.clone(), &blob)
                .expect("own checkpoint must restore");
        }
        let resumed = rc.finish().dataset;
        assert_eq!(resumed.digest(), reference.digest());
        assert_eq!(resumed.pages.len(), reference.pages.len());
    }

    #[test]
    fn resume_restores_mid_campaign_state() {
        let options = IngestOptions::fault_storm(28, 8);
        let mut rc = ResilientCampaign::new(config(5), options.clone());
        for _ in 0..4 {
            rc.run_day();
        }
        let blob = rc.checkpoint();
        let restored = ResilientCampaign::resume(config(5), options, &blob).unwrap();
        assert_eq!(restored.next_day(), 4);
        assert_eq!(restored.spooled(), rc.spooled());
        assert_eq!(
            restored.coverage().total(),
            rc.coverage().total(),
            "coverage counters must survive the round trip"
        );
    }

    #[test]
    fn corrupted_checkpoints_are_refused() {
        let rc = ResilientCampaign::new(config(1), IngestOptions::perfect());
        let blob = rc.checkpoint();
        for cut in [0, blob.len() / 2, blob.len() - 1] {
            assert!(matches!(
                ResilientCampaign::resume(config(1), IngestOptions::perfect(), &blob[..cut]),
                Err(CheckpointError::Wire(_))
            ));
        }
        let mut bad = blob.clone();
        bad[10] ^= 0x55;
        assert!(matches!(
            ResilientCampaign::resume(config(1), IngestOptions::perfect(), &bad),
            Err(CheckpointError::Wire(WireError::ChecksumMismatch { .. }))
        ));
    }

    #[test]
    fn scenario_mismatches_are_refused_with_the_field_named() {
        let mut rc = ResilientCampaign::new(config(1), IngestOptions::perfect());
        rc.run_day();
        let blob = rc.checkpoint();

        let err = ResilientCampaign::resume(config(2), IngestOptions::perfect(), &blob)
            .expect_err("wrong seed must be refused");
        assert_eq!(err, CheckpointError::Mismatch { field: "seed" });

        let storm = IngestOptions::fault_storm(28, 8);
        let err = ResilientCampaign::resume(config(1), storm, &blob)
            .expect_err("wrong plan must be refused");
        assert_eq!(
            err,
            CheckpointError::Mismatch {
                field: "fault plan"
            }
        );

        let mut other = config(1);
        other.days = 99;
        let err = ResilientCampaign::resume(other, IngestOptions::perfect(), &blob)
            .expect_err("wrong shape must be refused");
        assert_eq!(err, CheckpointError::Mismatch { field: "days" });
    }

    #[test]
    fn checkpoint_is_deterministic() {
        let make = || {
            let options = IngestOptions::fault_storm(28, 8);
            let mut rc = ResilientCampaign::new(config(3), options);
            rc.run_day();
            rc.run_day();
            rc.checkpoint()
        };
        assert_eq!(make(), make());
    }
}
