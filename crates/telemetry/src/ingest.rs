//! Resilient telemetry ingestion: lossy uploads, quarantine, churn.
//!
//! The paper's dataset was collected by a browser extension POSTing
//! buffered measurements over the very Starlink links being measured —
//! an upload path that suffers the same outages, loss bouts and
//! corruption as the payload describes. This module closes that loop
//! for the reproduction:
//!
//! * each simulated user buffers one [`crate::pipeline::UserDay`] of
//!   records and uploads it as a checksummed [`crate::wire`] batch;
//! * the uplink is a star network ([`ResilientCampaign`] topology
//!   conventions below) whose faults come from a PR-1 [`FaultPlan`] —
//!   outages force bounded retries with exponential backoff in *virtual*
//!   time, churned (offline) users spool batches for later days;
//! * the [`Collector`] validates every upload, de-duplicates re-sends
//!   (lost ACKs make uploads idempotent, not exactly-once), and
//!   quarantines malformed batches with machine-readable reasons;
//! * optionally ([`IngestOptions::service`]) the collector fronts as a
//!   [`crate::server::CollectorServer`]: uploads travel as SLCS frames
//!   through admission control, and overload sheds batches with typed
//!   REJECTs the client answers with backoff and spooling;
//! * ground-truth accounting guarantees that, per user,
//!   `delivered + quarantined + shed + lost = generated` — the
//!   dataset's coverage is *known*, never silently eroded, even when
//!   the server is drowning.
//!
//! Determinism contract: the same `(CampaignConfig, IngestOptions)`
//! yields a byte-identical final [`Dataset`] whether the campaign runs
//! straight through or is checkpointed, killed and resumed any number of
//! times (see [`crate::checkpoint`]).

use crate::pipeline::{Campaign, CampaignConfig};
use crate::records::{Dataset, PageRecord, SpeedtestRecord};
use crate::retry::RetryPolicy;
use crate::server::{AdmissionConfig, CollectorServer};
use crate::slcs::{decode_frame, encode_frame, AckStatus, Frame};
use crate::wire::{decode_batch, encode_batch, peek_header, RecordBatch, WireError};
use starlink_faults::{CompiledPlan, FaultPlan, LinkRef};
use starlink_netsim::{FaultEffect, LinkConfig, Network, NodeId, NodeKind};
use starlink_simcore::{SimDuration, SimRng, SimTime};
use std::collections::BTreeSet;

/// UTC second-of-day at which uploads begin (20:00 — the extension
/// flushed in the evening, when its users were browsing anyway).
const UPLOAD_SECS_OF_DAY: u64 = 72_000;
/// Per-user stagger between upload start times, seconds.
const UPLOAD_STAGGER_SECS: u64 = 97;

/// Knobs of the resilient upload path.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Faults applied to the uplink star network (see the topology
    /// conventions on [`ResilientCampaign`]).
    pub plan: FaultPlan,
    /// Upload attempts beyond the first before a batch is spooled.
    pub max_retries: u32,
    /// First retry backoff; attempt `k` waits `base_backoff * 2^k`
    /// (virtual time, with deterministic jitter).
    pub base_backoff: SimDuration,
    /// Days a spooled batch survives before it is declared lost.
    pub spool_days: u64,
    /// Probability that a successful upload's ACK is lost, causing an
    /// idempotent re-upload the next day.
    pub ack_loss: f64,
    /// When set, uploads travel as SLCS frames through a
    /// [`CollectorServer`] enforcing these admission budgets; when
    /// `None` the collector is reached directly (the pre-service path,
    /// kept byte-identical to the seed corpus).
    pub service: Option<AdmissionConfig>,
}

impl IngestOptions {
    /// A perfect uplink: no faults, no ACK loss. With these options the
    /// collected dataset equals [`Campaign::run`]'s, canonically sorted.
    pub fn perfect() -> Self {
        IngestOptions {
            plan: FaultPlan::new(),
            max_retries: 6,
            base_backoff: SimDuration::from_secs(30),
            spool_days: 3,
            ack_loss: 0.0,
            service: None,
        }
    }

    /// A deterministic fault storm for `users` users over `days` days:
    /// evening collector blackouts (retry pressure), burst corruption on
    /// a quarter of the uplinks (quarantines), link flaps on another
    /// quarter (loss + retries), multi-day user churn (spooling), and
    /// lossy ACKs (duplicate re-uploads). The plan is pure arithmetic —
    /// no randomness — so two storms over the same shape are identical.
    pub fn fault_storm(users: usize, days: u64) -> Self {
        let mut plan = FaultPlan::new();
        let day = |d: u64| d * 86_400;
        for d in 0..days {
            // Collector PoP blackout 20:05–20:35 every fifth day.
            if d % 5 == 2 {
                plan.gateway_blackout(
                    ResilientCampaign::COLLECTOR,
                    SimTime::from_secs(day(d) + UPLOAD_SECS_OF_DAY + 300),
                    SimDuration::from_mins(30),
                );
            }
            for i in 0..users {
                match i % 4 {
                    // Burst corruption across the whole upload window.
                    1 => {
                        plan.burst_corruption(
                            ResilientCampaign::uplink(i),
                            SimTime::from_secs(day(d) + UPLOAD_SECS_OF_DAY - 3_600),
                            SimDuration::from_hours(4),
                            0.35,
                        );
                    }
                    // Evening link flaps: 2 min period, 40% down.
                    2 => {
                        plan.link_flap(
                            ResilientCampaign::uplink(i),
                            SimTime::from_secs(day(d) + UPLOAD_SECS_OF_DAY),
                            SimTime::from_secs(day(d) + UPLOAD_SECS_OF_DAY + 7_200),
                            SimDuration::from_mins(2),
                            0.4,
                        );
                    }
                    _ => {}
                }
            }
        }
        // User churn: every fifth user disappears for two days each week
        // (holiday, power cut, dish packed away) and uploads catch up
        // from the spool afterwards.
        for i in (0..users).filter(|i| i % 5 == 3) {
            let mut d = 2 + (i as u64 % 3);
            while d < days {
                plan.node_dropout(
                    ResilientCampaign::user_node(i),
                    SimTime::from_secs(day(d)),
                    SimDuration::from_days(2),
                );
                d += 7;
            }
        }
        IngestOptions {
            plan,
            max_retries: 6,
            base_backoff: SimDuration::from_secs(30),
            spool_days: 3,
            ack_loss: 0.05,
            service: None,
        }
    }

    /// The retry policy this configuration implies — one definition for
    /// every upload path (direct, service, and the real load client).
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy::new(self.max_retries, self.base_backoff)
    }
}

// ---------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------

/// What the collector did with one upload.
#[derive(Debug, Clone, PartialEq)]
pub enum Ingested {
    /// The batch validated and was new: its records are in the dataset.
    Accepted {
        /// Page records ingested.
        pages: u64,
        /// Speedtest records ingested.
        speedtests: u64,
    },
    /// A batch with this `(user, seq)` was already accepted; nothing was
    /// ingested (idempotent re-upload).
    Duplicate,
    /// The batch failed validation and was quarantined.
    Quarantined {
        /// Why it failed to decode.
        reason: WireError,
    },
}

/// One quarantined upload: never silently dropped, always explained.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedBatch {
    /// Stable machine-readable reason ([`WireError::code`]).
    pub reason_code: &'static str,
    /// Human-readable detail (the [`WireError`] rendering).
    pub detail: String,
    /// The uploader, if the header survived the damage.
    pub user: Option<u64>,
    /// The upload sequence number, if readable.
    pub seq: Option<u64>,
    /// Records the (untrusted) header claimed to carry.
    pub claimed_records: Option<u64>,
    /// Size of the received upload, bytes.
    pub wire_len: u64,
    /// When the upload arrived.
    pub at: SimTime,
}

/// The ingestion endpoint: validates, de-duplicates and quarantines.
///
/// `submit` is idempotent in `(user, seq)`: a re-upload of an
/// already-accepted batch is reported (and counted) as a duplicate, not
/// ingested twice. Malformed uploads are never silently dropped — each
/// one becomes a [`QuarantinedBatch`] carrying the typed decode error.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    pub(crate) seen: BTreeSet<(u64, u64)>,
    pub(crate) pages: Vec<PageRecord>,
    pub(crate) speedtests: Vec<SpeedtestRecord>,
    pub(crate) duplicates: u64,
    pub(crate) quarantine: Vec<QuarantinedBatch>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Ingests one upload, returning what happened to it.
    pub fn submit(&mut self, bytes: &[u8], at: SimTime) -> Ingested {
        match decode_batch(bytes) {
            Ok(batch) => {
                if !self.seen.insert((batch.user, batch.seq)) {
                    self.duplicates += batch.len() as u64;
                    starlink_obsv::counter_add("telemetry.ingest.duplicates", 1);
                    return Ingested::Duplicate;
                }
                let (p, s) = (batch.pages.len() as u64, batch.speedtests.len() as u64);
                self.pages.extend(batch.pages);
                self.speedtests.extend(batch.speedtests);
                starlink_obsv::counter_add("telemetry.ingest.accepted", 1);
                starlink_obsv::counter_add("telemetry.ingest.records", p + s);
                Ingested::Accepted {
                    pages: p,
                    speedtests: s,
                }
            }
            Err(reason) => {
                starlink_obsv::counter_add("telemetry.ingest.quarantined", 1);
                let peek = peek_header(bytes);
                self.quarantine.push(QuarantinedBatch {
                    reason_code: reason.code(),
                    detail: reason.to_string(),
                    user: peek.user,
                    seq: peek.seq,
                    claimed_records: peek.claimed_records,
                    wire_len: bytes.len() as u64,
                    at,
                });
                Ingested::Quarantined { reason }
            }
        }
    }

    /// Batches accepted so far.
    pub fn accepted_batches(&self) -> usize {
        self.seen.len()
    }

    /// Records rejected as duplicates so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// The quarantined uploads, in arrival order.
    pub fn quarantine(&self) -> &[QuarantinedBatch] {
        &self.quarantine
    }

    /// The accepted records as a canonically-sorted [`Dataset`].
    pub fn dataset(&self) -> Dataset {
        let mut ds = Dataset {
            pages: self.pages.clone(),
            speedtests: self.speedtests.clone(),
        };
        ds.sort_canonical();
        ds
    }
}

// ---------------------------------------------------------------------
// Coverage accounting
// ---------------------------------------------------------------------

/// Ground-truth ingestion accounting for one user.
///
/// Invariant (checked by [`CoverageReport::sums_hold`]):
/// `delivered + quarantined + shed + lost = generated` once the
/// campaign finishes (in-flight spooled records are declared lost at
/// the end; records whose final chain was refused by admission control
/// are declared shed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserCoverage {
    /// The user's random identifier.
    pub user: u64,
    /// Wire code of the user's city ([`starlink_geo::City::code`]).
    pub city_code: u8,
    /// Records the user's extension generated.
    pub generated: u64,
    /// Records accepted by the collector (first delivery only).
    pub delivered: u64,
    /// Records in batches quarantined after in-flight corruption.
    pub quarantined: u64,
    /// Records shed by server admission control: the batch's last upload
    /// chain ended in a typed REJECT and the spool gave up on it.
    pub shed: u64,
    /// Records lost outright (spool expiry or campaign end).
    pub lost: u64,
    /// Records re-delivered and deduplicated (lost ACKs); informational,
    /// outside the sum invariant.
    pub duplicates: u64,
    /// Upload attempts beyond the first, summed over all batches.
    pub retries: u64,
}

impl UserCoverage {
    /// Fraction of generated records that were delivered (1.0 when the
    /// user generated nothing).
    pub fn delivered_fraction(&self) -> f64 {
        if self.generated == 0 {
            1.0
        } else {
            self.delivered as f64 / self.generated as f64
        }
    }

    /// The user's city.
    pub fn city(&self) -> starlink_geo::City {
        starlink_geo::City::from_code(self.city_code).unwrap_or(starlink_geo::City::ALL[0])
    }
}

/// Aggregated coverage numbers (whole campaign or one city).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageTotals {
    /// Total records generated.
    pub generated: u64,
    /// Total records delivered.
    pub delivered: u64,
    /// Total records quarantined.
    pub quarantined: u64,
    /// Total records shed by admission control.
    pub shed: u64,
    /// Total records lost.
    pub lost: u64,
    /// Total duplicate records deduplicated.
    pub duplicates: u64,
    /// Total retries.
    pub retries: u64,
}

impl CoverageTotals {
    fn absorb(&mut self, u: &UserCoverage) {
        self.generated += u.generated;
        self.delivered += u.delivered;
        self.quarantined += u.quarantined;
        self.shed += u.shed;
        self.lost += u.lost;
        self.duplicates += u.duplicates;
        self.retries += u.retries;
    }

    /// Fraction delivered (1.0 when nothing was generated).
    pub fn delivered_fraction(&self) -> f64 {
        if self.generated == 0 {
            1.0
        } else {
            self.delivered as f64 / self.generated as f64
        }
    }
}

/// Struct-of-arrays twin of a `Vec<UserCoverage>`: the campaign
/// drivers' working ledger.
///
/// The hot path of a campaign day increments exactly one counter per
/// batch outcome; keeping each counter in its own flat column means
/// those updates touch one cache line per column instead of striding
/// across whole rows, and a per-shard ledger slice merges column-wise
/// into the global ledger ([`crate::shard`]). Rows are materialised
/// only at the edges ([`CoverageColumns::row`],
/// [`CoverageColumns::report`]) — for rendering, checkpoints and the
/// public [`CoverageReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageColumns {
    /// User random identifiers, population order.
    pub user: Vec<u64>,
    /// City wire codes, parallel to `user`.
    pub city_code: Vec<u8>,
    /// Records generated, parallel to `user`.
    pub generated: Vec<u64>,
    /// Records delivered, parallel to `user`.
    pub delivered: Vec<u64>,
    /// Records quarantined, parallel to `user`.
    pub quarantined: Vec<u64>,
    /// Records shed by admission control, parallel to `user`.
    pub shed: Vec<u64>,
    /// Records lost outright, parallel to `user`.
    pub lost: Vec<u64>,
    /// Duplicate records deduplicated, parallel to `user`.
    pub duplicates: Vec<u64>,
    /// Upload retries, parallel to `user`.
    pub retries: Vec<u64>,
}

impl CoverageColumns {
    /// A zeroed ledger for `(user id, city code)` pairs, in population
    /// order.
    pub fn for_users(users: impl IntoIterator<Item = (u64, u8)>) -> Self {
        let mut c = CoverageColumns::default();
        for (user, city_code) in users {
            c.user.push(user);
            c.city_code.push(city_code);
        }
        let n = c.user.len();
        c.generated = vec![0; n];
        c.delivered = vec![0; n];
        c.quarantined = vec![0; n];
        c.shed = vec![0; n];
        c.lost = vec![0; n];
        c.duplicates = vec![0; n];
        c.retries = vec![0; n];
        c
    }

    /// Number of users the ledger tracks.
    pub fn len(&self) -> usize {
        self.user.len()
    }

    /// Whether the ledger tracks no users.
    pub fn is_empty(&self) -> bool {
        self.user.is_empty()
    }

    /// User `i`'s row, materialised from the columns.
    pub fn row(&self, i: usize) -> UserCoverage {
        UserCoverage {
            user: self.user[i],
            city_code: self.city_code[i],
            generated: self.generated[i],
            delivered: self.delivered[i],
            quarantined: self.quarantined[i],
            shed: self.shed[i],
            lost: self.lost[i],
            duplicates: self.duplicates[i],
            retries: self.retries[i],
        }
    }

    /// The row-major public report.
    pub fn report(&self) -> CoverageReport {
        CoverageReport {
            rows: (0..self.len()).map(|i| self.row(i)).collect(),
        }
    }
}

/// Per-user and per-city ingestion coverage for a finished campaign.
#[derive(Debug, Clone, Default)]
pub struct CoverageReport {
    /// One row per user, in population order.
    pub rows: Vec<UserCoverage>,
}

impl CoverageReport {
    /// Campaign-wide totals.
    pub fn total(&self) -> CoverageTotals {
        let mut t = CoverageTotals::default();
        for r in &self.rows {
            t.absorb(r);
        }
        t
    }

    /// Per-city totals, in [`starlink_geo::City::ALL`] order, cities with
    /// no users omitted.
    pub fn per_city(&self) -> Vec<(starlink_geo::City, CoverageTotals)> {
        let mut out = Vec::new();
        for city in starlink_geo::City::ALL {
            let mut t = CoverageTotals::default();
            let mut any = false;
            for r in self.rows.iter().filter(|r| r.city_code == city.code()) {
                t.absorb(r);
                any = true;
            }
            if any {
                out.push((city, t));
            }
        }
        out
    }

    /// Whether `delivered + quarantined + shed + lost = generated` holds
    /// for every user.
    pub fn sums_hold(&self) -> bool {
        self.rows
            .iter()
            .all(|r| r.delivered + r.quarantined + r.shed + r.lost == r.generated)
    }

    /// Campaign-wide delivered fraction.
    pub fn delivered_fraction(&self) -> f64 {
        self.total().delivered_fraction()
    }

    /// A fixed-width per-city table plus a totals line, for harness
    /// output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>9} {:>9} {:>11} {:>6} {:>7} {:>6} {:>8} {:>9}\n",
            "city",
            "generated",
            "delivered",
            "quarantined",
            "shed",
            "lost",
            "dup",
            "retries",
            "coverage"
        ));
        let mut row = |label: &str, t: &CoverageTotals| {
            out.push_str(&format!(
                "{:<12} {:>9} {:>9} {:>11} {:>6} {:>7} {:>6} {:>8} {:>8.1}%\n",
                label,
                t.generated,
                t.delivered,
                t.quarantined,
                t.shed,
                t.lost,
                t.duplicates,
                t.retries,
                100.0 * t.delivered_fraction()
            ));
        };
        for (city, totals) in self.per_city() {
            row(city.name(), &totals);
        }
        row("TOTAL", &self.total());
        out
    }
}

// ---------------------------------------------------------------------
// The resilient campaign driver
// ---------------------------------------------------------------------

/// A batch waiting in a user's offline spool for a later upload day.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SpooledBatch {
    pub(crate) user_idx: usize,
    pub(crate) seq: u64,
    pub(crate) created_day: u64,
    pub(crate) pages: u32,
    pub(crate) speedtests: u32,
    /// Whether the records already reached the collector (the ACK was
    /// lost): the re-upload exists only to clear the client buffer, so
    /// no terminal outcome may count these records a second time.
    pub(crate) delivered: bool,
    /// Whether the most recent upload chain ended in a typed server
    /// REJECT: if the spool gives up on this batch it is accounted
    /// *shed* (admission control refused it), not *lost* (the network
    /// ate it).
    pub(crate) rejected: bool,
    pub(crate) bytes: Vec<u8>,
}

impl SpooledBatch {
    fn records(&self) -> u64 {
        u64::from(self.pages) + u64::from(self.speedtests)
    }
}

/// Everything a finished resilient campaign produced.
#[derive(Debug, Clone)]
pub struct Collection {
    /// The canonically-sorted collected dataset.
    pub dataset: Dataset,
    /// Per-user/per-city ground-truth coverage.
    pub coverage: CoverageReport,
    /// Every quarantined upload, with machine-readable reasons.
    pub quarantine: Vec<QuarantinedBatch>,
    /// Records rejected as duplicates (lost-ACK re-uploads).
    pub duplicates: u64,
}

/// What happened to one batch's upload chain on one day.
enum UploadOutcome {
    /// Accepted and ACKed: clear the batch.
    Accepted { retries: u64 },
    /// Accepted but the ACK was lost: records counted delivered, batch
    /// respooled and will be deduplicated on re-upload.
    AcceptedAckLost { retries: u64 },
    /// Re-upload of an already-accepted batch: clear it.
    DuplicateCleared { retries: u64 },
    /// Damaged in flight and quarantined by the collector: terminal (the
    /// transport ACKed receipt, so the extension cleared its buffer).
    Quarantined { retries: u64 },
    /// Every attempt failed: spool for the next day. `rejected` records
    /// whether the chain's failures included a typed server REJECT.
    Exhausted { retries: u64, rejected: bool },
    /// The user's node is down: no attempt possible, spool.
    Offline,
}

/// The day-major campaign driver with a resilient upload path.
///
/// Topology conventions (fixed, so [`FaultPlan`]s can be written without
/// a network in hand): node 0 is the collector, node `i + 1` is user
/// `i`, link `2 i` is user `i`'s uplink and link `2 i + 1` its downlink.
/// [`ResilientCampaign::COLLECTOR`], [`ResilientCampaign::user_node`]
/// and [`ResilientCampaign::uplink`] encode these.
///
/// Unlike [`Campaign::run`] (user-major, kept byte-identical to the
/// seed corpus), this driver iterates day-major so a run can stop at any
/// day boundary, be checkpointed ([`ResilientCampaign::checkpoint`]) and
/// resumed ([`ResilientCampaign::resume`]) with a byte-identical final
/// dataset. Both orders consume identical per-user RNG streams.
pub struct ResilientCampaign {
    pub(crate) campaign: Campaign,
    pub(crate) options: IngestOptions,
    pub(crate) compiled: CompiledPlan,
    pub(crate) rngs: Vec<SimRng>,
    pub(crate) next_day: u64,
    pub(crate) spool: Vec<SpooledBatch>,
    pub(crate) collector: Collector,
    pub(crate) coverage: CoverageColumns,
    /// The admission front-end, present iff `options.service` is. Not
    /// checkpointed: its transient state is reset at every day boundary
    /// ([`CollectorServer::end_of_day`]), so a resumed run rebuilds an
    /// equivalent server from the options.
    pub(crate) server: Option<CollectorServer>,
    /// Planted-bug hook (see
    /// [`ResilientCampaign::debug_skip_shed_accounting_every`]).
    debug_shed_miscount_every: u64,
    /// Shed-terminal batches seen so far, driving the hook's cadence.
    shed_events: u64,
}

impl std::fmt::Debug for ResilientCampaign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientCampaign")
            .field("seed", &self.campaign.config().seed)
            .field("next_day", &self.next_day)
            .field("days", &self.campaign.config().days)
            .field("spooled", &self.spool.len())
            .field("accepted_batches", &self.collector.accepted_batches())
            .field("quarantined", &self.collector.quarantine.len())
            .finish_non_exhaustive()
    }
}

impl ResilientCampaign {
    /// The collector's node id (topology convention).
    pub const COLLECTOR: NodeId = NodeId(0);

    /// User `i`'s node id (topology convention).
    pub fn user_node(i: usize) -> NodeId {
        NodeId(i + 1)
    }

    /// User `i`'s uplink (topology convention).
    pub fn uplink(i: usize) -> LinkRef {
        LinkRef::Index(2 * i)
    }

    /// Builds the campaign, the star uplink network, and compiles the
    /// fault plan against it.
    ///
    /// # Panics
    /// Panics if `options.plan` references links or nodes outside the
    /// star topology — a scenario-construction bug, not a runtime fault.
    pub fn new(config: CampaignConfig, options: IngestOptions) -> Self {
        let campaign = Campaign::new(config);
        let users = campaign.population().users.len();

        let mut net = Network::new(campaign.config().seed ^ 0x0126_9E57);
        let collector = net.add_node("collector", NodeKind::Host);
        debug_assert_eq!(collector, Self::COLLECTOR);
        for i in 0..users {
            let node = net.add_node(&format!("user{i}"), NodeKind::Host);
            net.connect_duplex(
                node,
                collector,
                LinkConfig::ethernet(),
                LinkConfig::ethernet(),
            );
        }
        let compiled = options
            .plan
            .compile(&net)
            .expect("fault plan must fit the star uplink topology");

        let root = SimRng::seed_from(campaign.config().seed);
        let rngs = (0..users)
            .map(|i| root.stream("campaign.user").substream(i as u64))
            .collect();
        let coverage = CoverageColumns::for_users(
            campaign
                .population()
                .users
                .iter()
                .map(|u| (u.id, u.city.code())),
        );

        let server = options.service.map(CollectorServer::new);
        ResilientCampaign {
            campaign,
            options,
            compiled,
            rngs,
            next_day: 0,
            spool: Vec::new(),
            collector: Collector::new(),
            coverage,
            server,
            debug_shed_miscount_every: 0,
            shed_events: 0,
        }
    }

    /// The wrapped generative campaign.
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// The ingestion options in force.
    pub fn options(&self) -> &IngestOptions {
        &self.options
    }

    /// The next day to simulate.
    pub fn next_day(&self) -> u64 {
        self.next_day
    }

    /// Whether every campaign day has been run.
    pub fn is_finished(&self) -> bool {
        self.next_day >= self.campaign.config().days
    }

    /// The coverage accounting so far (in-flight spool not yet counted).
    pub fn coverage(&self) -> CoverageReport {
        self.coverage.report()
    }

    /// Batches currently waiting in offline spools.
    pub fn spooled(&self) -> usize {
        self.spool.len()
    }

    /// The admission front-end, when running in service mode.
    pub fn server(&self) -> Option<&CollectorServer> {
        self.server.as_ref()
    }

    /// Planted-bug hook mirroring netsim's
    /// `debug_skip_link_delivered_every`: every `every`-th batch that
    /// terminates as *shed* is silently dropped from the coverage
    /// ledger, breaking `delivered + quarantined + shed + lost ==
    /// generated`. Exists so the simtest swarm can prove its oracles
    /// catch shed miscounting; `0` (the default) disables it.
    pub fn debug_skip_shed_accounting_every(&mut self, every: u64) {
        self.debug_shed_miscount_every = every;
    }

    /// Applies the terminal outcome for a batch the spool is giving up
    /// on: already-delivered batches cost nothing, rejected batches are
    /// shed, the rest are lost.
    fn account_terminal(&mut self, b: &SpooledBatch) {
        if b.delivered {
            return;
        }
        if b.rejected {
            self.shed_events += 1;
            let every = self.debug_shed_miscount_every;
            if every > 0 && self.shed_events.is_multiple_of(every) {
                return; // planted bug: the records vanish from the ledger
            }
            self.coverage.shed[b.user_idx] += b.records();
        } else {
            self.coverage.lost[b.user_idx] += b.records();
        }
    }

    /// Runs the next day: spool catch-up, then generation and upload for
    /// every user. Returns `false` if the campaign was already finished.
    pub fn run_day(&mut self) -> bool {
        if self.is_finished() {
            return false;
        }
        let day = self.next_day;

        // Expire spooled batches that outlived the spool horizon.
        let spool_days = self.options.spool_days;
        let mut expired: Vec<SpooledBatch> = Vec::new();
        self.spool.retain(|b| {
            if day.saturating_sub(b.created_day) > spool_days {
                expired.push(b.clone());
                false
            } else {
                true
            }
        });
        for b in expired {
            self.account_terminal(&b);
        }

        // Catch up the spool, then generate and upload today's batches,
        // user-index order — a deterministic schedule.
        let carried = std::mem::take(&mut self.spool);
        for b in carried {
            self.drive_batch(b, day);
        }
        for i in 0..self.rngs.len() {
            let user = self.campaign.population().users[i].clone();
            let mut rng = std::mem::replace(&mut self.rngs[i], SimRng::seed_from(0));
            let generated = self.campaign.user_day(&user, day, &mut rng);
            self.rngs[i] = rng;

            let batch = RecordBatch {
                user: user.id,
                seq: day,
                pages: generated.pages,
                speedtests: generated.speedtests,
            };
            self.coverage.generated[i] += batch.len() as u64;
            let spooled = SpooledBatch {
                user_idx: i,
                seq: day,
                created_day: day,
                pages: batch.pages.len() as u32,
                speedtests: batch.speedtests.len() as u32,
                delivered: false,
                rejected: false,
                bytes: encode_batch(&batch),
            };
            self.drive_batch(spooled, day);
        }
        if let Some(server) = &mut self.server {
            // Day boundary: reset transient admission state so a
            // checkpointed-and-resumed run (fresh server, re-HELLO)
            // admits identically to a straight-through one.
            server.end_of_day(SimTime::from_secs((day + 1) * 86_400));
        }
        self.next_day += 1;
        true
    }

    /// Runs every remaining day and finishes.
    pub fn run_to_end(mut self) -> Collection {
        while self.run_day() {}
        self.finish()
    }

    /// Declares the campaign over: anything still spooled is accounted
    /// terminally (shed if admission refused it, lost otherwise), the
    /// service — if any — drains, and the collected dataset, coverage
    /// and quarantine are returned.
    pub fn finish(mut self) -> Collection {
        for b in std::mem::take(&mut self.spool) {
            self.account_terminal(&b);
        }
        if let Some(server) = &mut self.server {
            let t = SimTime::from_secs(self.campaign.config().days * 86_400);
            let drain = encode_frame(&Frame::Drain { session: 0 });
            let _ = server.handle_frame(&mut self.collector, &drain, t);
        }
        Collection {
            dataset: self.collector.dataset(),
            coverage: self.coverage.report(),
            quarantine: self.collector.quarantine,
            duplicates: self.collector.duplicates,
        }
    }

    /// Drives one batch's upload chain for `day` and applies the outcome
    /// to coverage, collector and spool.
    fn drive_batch(&mut self, batch: SpooledBatch, day: u64) {
        let records = batch.records();
        let user_idx = batch.user_idx;
        match self.upload(&batch, day) {
            UploadOutcome::Accepted { retries } => {
                if !batch.delivered {
                    self.coverage.delivered[user_idx] += records;
                }
                self.coverage.retries[user_idx] += retries;
            }
            UploadOutcome::AcceptedAckLost { retries } => {
                if !batch.delivered {
                    self.coverage.delivered[user_idx] += records;
                }
                self.coverage.retries[user_idx] += retries;
                self.spool.push(SpooledBatch {
                    delivered: true,
                    ..batch
                });
            }
            UploadOutcome::DuplicateCleared { retries } => {
                self.coverage.duplicates[user_idx] += records;
                self.coverage.retries[user_idx] += retries;
            }
            UploadOutcome::Quarantined { retries } => {
                // A quarantined re-upload of an already-delivered batch
                // costs nothing: the records are safely in the dataset.
                if !batch.delivered {
                    self.coverage.quarantined[user_idx] += records;
                }
                self.coverage.retries[user_idx] += retries;
            }
            UploadOutcome::Exhausted { retries, rejected } => {
                self.coverage.retries[user_idx] += retries;
                // The latest chain's verdict supersedes older ones; a
                // chain with no attempts (Offline) preserves the flag.
                self.spool.push(SpooledBatch { rejected, ..batch });
            }
            UploadOutcome::Offline => {
                self.spool.push(batch);
            }
        }
    }

    /// The per-(user, seq, day) upload RNG: stateless derivation, so an
    /// interrupted run replays identical draws after resume.
    fn upload_rng(&self, user_idx: usize, seq: u64, day: u64) -> SimRng {
        SimRng::seed_from(self.campaign.config().seed)
            .stream("ingest.upload")
            .substream(user_idx as u64)
            .substream(seq)
            .substream(day)
    }

    fn link_effect(&self, link: usize, t: SimTime) -> FaultEffect {
        self.compiled
            .links
            .get(&link)
            .map(|s| s.effect_at(t))
            .unwrap_or(FaultEffect::NONE)
    }

    fn node_down(&self, node: NodeId, t: SimTime) -> bool {
        self.compiled
            .nodes
            .get(&node)
            .map(|s| s.is_down_at(t))
            .unwrap_or(false)
    }

    /// Attempts to upload one batch with bounded retries and exponential
    /// backoff, entirely in virtual time.
    fn upload(&mut self, batch: &SpooledBatch, day: u64) -> UploadOutcome {
        if self.server.is_some() {
            self.upload_service(batch, day)
        } else {
            self.upload_direct(batch, day)
        }
    }

    /// The pre-service upload path: the collector is reached directly.
    /// Draw order is frozen — this path reproduces the seed corpus
    /// byte-for-byte.
    fn upload_direct(&mut self, batch: &SpooledBatch, day: u64) -> UploadOutcome {
        let i = batch.user_idx;
        let policy = self.options.retry_policy();
        let mut rng = self.upload_rng(i, batch.seq, day);
        let mut t =
            SimTime::from_secs(day * 86_400 + UPLOAD_SECS_OF_DAY + i as u64 * UPLOAD_STAGGER_SECS);
        if self.node_down(Self::user_node(i), t) {
            return UploadOutcome::Offline;
        }
        for attempt in 0..=u64::from(self.options.max_retries) {
            let retries = attempt;
            if self.node_down(Self::user_node(i), t) {
                // Went offline mid-chain: spool what's left.
                return UploadOutcome::Exhausted {
                    retries,
                    rejected: false,
                };
            }
            let effect = self.link_effect(2 * i, t);
            let reachable = !effect.down && !self.node_down(Self::COLLECTOR, t);
            if reachable {
                if rng.bernoulli(effect.corrupt) {
                    // Damaged in flight but delivered: the collector
                    // quarantines it and ACKs receipt.
                    let damaged = damage(&batch.bytes, &mut rng);
                    return match self.collector.submit(&damaged, t) {
                        Ingested::Quarantined { .. } => UploadOutcome::Quarantined { retries },
                        Ingested::Accepted { .. } => UploadOutcome::Accepted { retries },
                        Ingested::Duplicate => UploadOutcome::DuplicateCleared { retries },
                    };
                }
                if !rng.bernoulli(effect.extra_loss) {
                    return match self.collector.submit(&batch.bytes, t) {
                        Ingested::Accepted { .. } => {
                            if rng.bernoulli(self.options.ack_loss) {
                                UploadOutcome::AcceptedAckLost { retries }
                            } else {
                                UploadOutcome::Accepted { retries }
                            }
                        }
                        Ingested::Duplicate => UploadOutcome::DuplicateCleared { retries },
                        Ingested::Quarantined { .. } => UploadOutcome::Quarantined { retries },
                    };
                }
                // else: lost in flight, fall through to backoff.
            }
            t = t.saturating_add(policy.backoff(attempt, &mut rng));
        }
        UploadOutcome::Exhausted {
            retries: u64::from(self.options.max_retries),
            rejected: false,
        }
    }

    /// The service-mode upload path: the same fault gates as
    /// [`ResilientCampaign::upload_direct`], but every contact travels
    /// as SLCS frames through the admission server, and typed REJECTs
    /// extend the backoff chain instead of ending it.
    fn upload_service(&mut self, batch: &SpooledBatch, day: u64) -> UploadOutcome {
        let mut server = self.server.take().expect("service mode");
        let out = self.upload_service_inner(&mut server, batch, day);
        self.server = Some(server);
        out
    }

    fn upload_service_inner(
        &mut self,
        server: &mut CollectorServer,
        batch: &SpooledBatch,
        day: u64,
    ) -> UploadOutcome {
        let i = batch.user_idx;
        let session = i as u64 + 1;
        let user = self.campaign.population().users[i].id;
        let policy = self.options.retry_policy();
        let mut rng = self.upload_rng(i, batch.seq, day);
        let mut t =
            SimTime::from_secs(day * 86_400 + UPLOAD_SECS_OF_DAY + i as u64 * UPLOAD_STAGGER_SECS);
        if self.node_down(Self::user_node(i), t) {
            return UploadOutcome::Offline;
        }
        let mut rejected = false;
        for attempt in 0..=u64::from(self.options.max_retries) {
            let retries = attempt;
            if self.node_down(Self::user_node(i), t) {
                return UploadOutcome::Exhausted { retries, rejected };
            }
            let effect = self.link_effect(2 * i, t);
            let reachable = !effect.down && !self.node_down(Self::COLLECTOR, t);
            // Server hint from a REJECT this attempt; stretches backoff.
            let mut retry_after = SimDuration::ZERO;
            if reachable {
                // Transport-level corruption damages the SLTB payload
                // *inside* a sound SLCS frame: framing survives (the
                // session layer has its own integrity), admission runs
                // normally, and the collector quarantines the payload.
                let corrupt = rng.bernoulli(effect.corrupt);
                let payload = if corrupt {
                    damage(&batch.bytes, &mut rng)
                } else {
                    batch.bytes.clone()
                };
                if corrupt || !rng.bernoulli(effect.extra_loss) {
                    // Open/refresh the session, then submit the batch.
                    let hello = encode_frame(&Frame::Hello { session, user });
                    let _ = server.handle_frame(&mut self.collector, &hello, t);
                    let frame = encode_frame(&Frame::Batch {
                        session,
                        seq: batch.seq,
                        payload,
                    });
                    let reply = server.handle_frame(&mut self.collector, &frame, t);
                    match decode_frame(&reply).expect("server replies are well-formed") {
                        Frame::Ack { status, .. } => {
                            return match status {
                                AckStatus::Accepted => {
                                    if rng.bernoulli(self.options.ack_loss) {
                                        UploadOutcome::AcceptedAckLost { retries }
                                    } else {
                                        UploadOutcome::Accepted { retries }
                                    }
                                }
                                AckStatus::Duplicate => UploadOutcome::DuplicateCleared { retries },
                                AckStatus::Quarantined => UploadOutcome::Quarantined { retries },
                            };
                        }
                        Frame::Reject { retry_after_ns, .. } => {
                            rejected = true;
                            retry_after = SimDuration::from_nanos(retry_after_ns);
                            // Fall through to backoff and retry.
                        }
                        _ => unreachable!("handle_frame replies only ACK or REJECT"),
                    }
                }
                // else: lost in flight, fall through to backoff.
            }
            t = t.saturating_add(policy.backoff(attempt, &mut rng).max(retry_after));
        }
        UploadOutcome::Exhausted {
            retries: u64::from(self.options.max_retries),
            rejected,
        }
    }
}

/// Damages `bytes` the way a corrupting channel does: either truncation
/// (connection died mid-transfer) or a handful of flipped bytes.
fn damage(bytes: &[u8], rng: &mut SimRng) -> Vec<u8> {
    let mut out = bytes.to_vec();
    if out.is_empty() {
        return out;
    }
    if rng.bernoulli(0.35) {
        // Truncate somewhere strictly inside the frame.
        let keep = rng.below(out.len() as u64) as usize;
        out.truncate(keep);
    } else {
        let flips = 1 + rng.below(8);
        for _ in 0..flips {
            let at = rng.below(out.len() as u64) as usize;
            out[at] ^= (1 + rng.below(255)) as u8;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireError;

    fn small_config(seed: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            days: 10,
            pages_per_day: 8.0,
            tranco_size: 50_000,
        }
    }

    #[test]
    fn perfect_ingest_reproduces_the_straight_run() {
        let config = small_config(21);
        let mut direct = Campaign::new(config.clone()).run();
        direct.sort_canonical();

        let collection = ResilientCampaign::new(config, IngestOptions::perfect()).run_to_end();
        assert_eq!(collection.dataset.digest(), direct.digest());
        assert!(collection.quarantine.is_empty());
        assert_eq!(collection.duplicates, 0);
        let total = collection.coverage.total();
        assert_eq!(total.delivered, total.generated);
        assert_eq!(total.lost + total.quarantined, 0);
        assert!(collection.coverage.sums_hold());
    }

    #[test]
    fn collector_deduplicates_re_uploads() {
        let batch = RecordBatch {
            user: 5,
            seq: 3,
            pages: vec![],
            speedtests: vec![],
        };
        let bytes = encode_batch(&batch);
        let mut collector = Collector::new();
        assert!(matches!(
            collector.submit(&bytes, SimTime::ZERO),
            Ingested::Accepted { .. }
        ));
        assert!(matches!(
            collector.submit(&bytes, SimTime::from_secs(1)),
            Ingested::Duplicate
        ));
        assert_eq!(collector.accepted_batches(), 1);
    }

    #[test]
    fn collector_quarantines_with_typed_reasons() {
        let bytes = encode_batch(&RecordBatch {
            user: 9,
            seq: 1,
            pages: vec![],
            speedtests: vec![],
        });
        let mut collector = Collector::new();
        let out = collector.submit(&bytes[..bytes.len() - 2], SimTime::ZERO);
        assert!(matches!(
            out,
            Ingested::Quarantined {
                reason: WireError::Truncated { .. }
            }
        ));
        let q = &collector.quarantine()[0];
        assert_eq!(q.reason_code, "truncated");
        assert_eq!(q.user, Some(9));
        assert_eq!(q.seq, Some(1));
    }

    #[test]
    fn fault_storm_coverage_sums_to_generated() {
        let config = small_config(33);
        let options = IngestOptions::fault_storm(28, config.days);
        let collection = ResilientCampaign::new(config, options).run_to_end();
        assert!(collection.coverage.sums_hold(), "coverage must sum to 100%");
        let total = collection.coverage.total();
        assert!(total.generated > 500, "{} generated", total.generated);
        // The storm must actually bite: quarantines, retries, and churn.
        assert!(!collection.quarantine.is_empty(), "no quarantines");
        assert!(total.retries > 0, "no retries");
        assert!(total.quarantined > 0, "no quarantined records");
        // But most data still arrives (it's a measurement campaign, not
        // a total blackout).
        assert!(
            collection.coverage.delivered_fraction() > 0.5,
            "only {:.0}% delivered",
            100.0 * collection.coverage.delivered_fraction()
        );
    }

    #[test]
    fn fault_storm_is_deterministic() {
        let run = |seed| {
            let config = small_config(seed);
            let options = IngestOptions::fault_storm(28, config.days);
            ResilientCampaign::new(config, options).run_to_end()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.dataset.digest(), b.dataset.digest());
        assert_eq!(a.coverage.total(), b.coverage.total());
        assert_eq!(a.quarantine.len(), b.quarantine.len());
        let c = run(8);
        assert_ne!(a.dataset.digest(), c.dataset.digest());
    }

    #[test]
    fn churned_users_catch_up_from_the_spool() {
        let config = small_config(11);
        let mut options = IngestOptions::perfect();
        // User 3 offline for days 2–3 (node 4 in the star topology).
        options.plan.node_dropout(
            ResilientCampaign::user_node(3),
            SimTime::from_secs(2 * 86_400),
            SimDuration::from_days(2),
        );
        let mut rc = ResilientCampaign::new(config, options);
        for _ in 0..4 {
            rc.run_day();
        }
        assert!(rc.spooled() >= 2, "offline days must spool");
        let collection = rc.run_to_end();
        // Spool horizon (3 days) covers the 2-day outage: nothing lost.
        let total = collection.coverage.total();
        assert_eq!(total.lost, 0, "spool must catch up after churn");
        assert_eq!(total.delivered, total.generated);
    }

    #[test]
    fn generous_service_delivers_everything() {
        let config = small_config(21);
        let mut direct = Campaign::new(config.clone()).run();
        direct.sort_canonical();

        let mut options = IngestOptions::perfect();
        options.service = Some(AdmissionConfig::generous());
        let collection = ResilientCampaign::new(config, options).run_to_end();
        assert_eq!(
            collection.dataset.digest(),
            direct.digest(),
            "a healthy service must be invisible to the dataset"
        );
        let total = collection.coverage.total();
        assert_eq!(total.delivered, total.generated);
        assert_eq!(total.shed + total.lost + total.quarantined, 0);
        assert!(collection.coverage.sums_hold());
    }

    #[test]
    fn overloaded_service_sheds_but_conserves_exactly() {
        let config = small_config(33);
        let mut options = IngestOptions::fault_storm(28, config.days);
        options.service = Some(AdmissionConfig::overloaded());
        let mut rc = ResilientCampaign::new(config, options);
        while rc.run_day() {}
        let server = rc.server().expect("service mode");
        assert!(
            server.stats().shed_total() > 0,
            "overload must produce typed rejects"
        );
        let collection = rc.finish();
        let total = collection.coverage.total();
        assert!(total.shed > 0, "no records were terminally shed");
        assert!(total.delivered > 0, "server starved every user");
        // The headline invariant: overload degrades coverage, never the
        // ledger. Every generated record is accounted exactly once.
        assert!(collection.coverage.sums_hold());
        assert_eq!(
            total.delivered + total.quarantined + total.shed + total.lost,
            total.generated
        );
    }

    #[test]
    fn overloaded_service_is_deterministic() {
        let run = || {
            let config = small_config(9);
            let mut options = IngestOptions::fault_storm(28, config.days);
            options.service = Some(AdmissionConfig::overloaded());
            ResilientCampaign::new(config, options).run_to_end()
        };
        let a = run();
        let b = run();
        assert_eq!(a.dataset.digest(), b.dataset.digest());
        assert_eq!(a.coverage.total(), b.coverage.total());
    }

    #[test]
    fn planted_shed_miscount_breaks_the_ledger() {
        let config = small_config(33);
        let mut options = IngestOptions::fault_storm(28, config.days);
        options.service = Some(AdmissionConfig::overloaded());
        let mut rc = ResilientCampaign::new(config, options);
        rc.debug_skip_shed_accounting_every(1);
        while rc.run_day() {}
        let collection = rc.finish();
        assert!(
            !collection.coverage.sums_hold(),
            "the planted bug must be visible to the conservation check"
        );
    }

    #[test]
    fn coverage_report_renders_cities_and_totals() {
        let config = small_config(3);
        let collection = ResilientCampaign::new(config, IngestOptions::perfect()).run_to_end();
        let rendered = collection.coverage.render();
        assert!(rendered.contains("TOTAL"));
        assert!(rendered.contains("London"));
        assert!(rendered.contains("100.0%"));
        assert!(!collection.coverage.per_city().is_empty());
    }
}
