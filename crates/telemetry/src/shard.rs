//! The deterministic sharded campaign engine: a million-subscriber
//! campaign whose output is byte-identical at any worker count.
//!
//! ## How shard-count invisibility is achieved
//!
//! 1. **Stateless per-(user, day) randomness** — every subscriber-day
//!    draws from `seed → stream("scale.user") → substream(user) →
//!    substream(day)`. No draw depends on any other user, so a shard's
//!    result is a pure function of `(config, population, user range,
//!    day)`.
//! 2. **Contiguous shard plan** — [`ShardPlan`] cuts the user index
//!    space into contiguous, disjoint, covering ranges in index order.
//!    Workers *claim* shard indices from an atomic counter (the repro
//!    harness's `--jobs` trick), so thread scheduling decides only who
//!    computes a shard, never what the shard computes.
//! 3. **In-order merge** — per-shard ledgers are buffered per shard
//!    index and folded into the global struct-of-arrays ledger in shard
//!    order (= user-index order) by the driving thread.
//! 4. **Post-merge observability** — `campaign.shard.*` counters and
//!    the `campaign_day` trace event are emitted *after* the merge, on
//!    the driving thread, from merged jobs-invariant quantities (obsv
//!    sinks are thread-local: a worker thread could not reach the
//!    session's sink anyway). Traces and metrics therefore cannot leak
//!    the worker count.
//!
//! The coverage invariant (`delivered + quarantined + shed + lost ==
//! generated`) is tracked exactly, per user, in the per-shard ledgers
//! and survives the merge by construction; [`CampaignLedger::sums_hold`]
//! checks it over the merged columns.
//!
//! The checkpoint blob (SLCP v2, kind 3) serialises the merged ledger
//! in user-index order and stores **no worker count**, so a run
//! checkpointed at `--jobs J` resumes byte-identically at any `--jobs
//! K` — the regression test
//! `resuming_under_a_different_worker_count_is_byte_identical` pins
//! this.

use crate::checkpoint::{
    open_blob, CheckpointError, CHECKPOINT_MAGIC, CHECKPOINT_VERSION, KIND_SCALED,
};
use crate::ingest::CoverageTotals;
use crate::scale::{CityCatalog, DiurnalCurve, ScaleConfig, ScaledPopulation};
use crate::wire::{WireError, WireWriter};
use starlink_obsv::{counter_add, emit, TraceEvent};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Folds one `u64` into an FNV-1a accumulator, byte by byte (matching
/// [`crate::records::Dataset::digest`]'s flavour of FNV).
fn fnv_fold(mut hash: u64, value: u64) -> u64 {
    for b in value.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A deterministic partition of the user index space into contiguous,
/// disjoint, covering ranges — one per worker slot.
///
/// The first `users % shards` shards hold one extra user, so shard
/// sizes differ by at most one and the plan is a pure function of
/// `(users, jobs)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    users: u64,
    ranges: Vec<(u64, u64)>,
}

impl ShardPlan {
    /// Plans `users` across `jobs` shards (`jobs` is clamped to ≥ 1).
    pub fn new(users: u64, jobs: usize) -> Self {
        let shards = jobs.max(1) as u64;
        let base = users / shards;
        let extra = users % shards;
        let mut ranges = Vec::with_capacity(shards as usize);
        let mut start = 0;
        for k in 0..shards {
            let len = base + u64::from(k < extra);
            ranges.push((start, start + len));
            start += len;
        }
        ShardPlan { users, ranges }
    }

    /// Number of shards (= the clamped worker count).
    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    /// Total users the plan covers.
    pub fn users(&self) -> u64 {
        self.users
    }

    /// Shard `k`'s user range.
    pub fn range(&self, k: usize) -> Range<u64> {
        let (s, e) = self.ranges[k];
        s..e
    }
}

/// The merged campaign ledger, struct-of-arrays: one entry per user in
/// five coverage columns plus a per-user dataset-digest accumulator,
/// and a campaign-wide UTC-hour page-view histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignLedger {
    /// Records generated, per user.
    pub generated: Vec<u64>,
    /// Records delivered to the collector, per user.
    pub delivered: Vec<u64>,
    /// Records quarantined after in-flight corruption, per user.
    pub quarantined: Vec<u64>,
    /// Records shed by admission control, per user.
    pub shed: Vec<u64>,
    /// Records lost outright, per user.
    pub lost: Vec<u64>,
    /// Per-user FNV-1a accumulators over the user's record stream;
    /// folding them in user order yields [`CampaignLedger::dataset_digest`].
    pub digest: Vec<u64>,
    /// Page views per UTC hour, campaign-wide — the observable the
    /// time-zone-offset diurnal curves exist to shape.
    pub hour_hist: [u64; 24],
}

impl CampaignLedger {
    fn new(users: u64) -> Self {
        let n = users as usize;
        let mut digest = Vec::with_capacity(n);
        for u in 0..users {
            digest.push(fnv_fold(FNV_OFFSET, u));
        }
        CampaignLedger {
            generated: vec![0; n],
            delivered: vec![0; n],
            quarantined: vec![0; n],
            shed: vec![0; n],
            lost: vec![0; n],
            digest,
            hour_hist: [0; 24],
        }
    }

    /// Number of users the ledger tracks.
    pub fn len(&self) -> usize {
        self.generated.len()
    }

    /// Whether the ledger tracks no users.
    pub fn is_empty(&self) -> bool {
        self.generated.is_empty()
    }

    /// Campaign-wide totals over the merged columns.
    pub fn totals(&self) -> CoverageTotals {
        CoverageTotals {
            generated: self.generated.iter().sum(),
            delivered: self.delivered.iter().sum(),
            quarantined: self.quarantined.iter().sum(),
            shed: self.shed.iter().sum(),
            lost: self.lost.iter().sum(),
            duplicates: 0,
            retries: 0,
        }
    }

    /// Whether `delivered + quarantined + shed + lost == generated`
    /// holds for **every** user in the merged ledger.
    pub fn sums_hold(&self) -> bool {
        (0..self.len()).all(|i| {
            self.delivered[i] + self.quarantined[i] + self.shed[i] + self.lost[i]
                == self.generated[i]
        })
    }

    /// The campaign dataset digest: per-user accumulators folded in
    /// user-index order. Independent of sharding because each per-user
    /// accumulator is, and the fold order is fixed.
    pub fn dataset_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for &d in &self.digest {
            h = fnv_fold(h, d);
        }
        h
    }
}

/// Per-city coverage totals for the scaled campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CityCoverage {
    /// City id (index into the [`CityCatalog`]).
    pub city: u32,
    /// Subscribers homed in the city.
    pub users: u64,
    /// The city's coverage totals.
    pub totals: CoverageTotals,
}

/// One shard's ledger deltas for one day, in local (range-relative)
/// index space. Pure output of [`run_shard`]; merged in shard order.
struct ShardDayResult {
    start: u64,
    generated: Vec<u64>,
    delivered: Vec<u64>,
    quarantined: Vec<u64>,
    shed: Vec<u64>,
    lost: Vec<u64>,
    /// Updated (not delta) digest accumulators for the range.
    digest: Vec<u64>,
    hour_hist: [u64; 24],
}

/// The immutable campaign context every shard reads: shared by
/// reference across worker threads, never written during a day.
struct ShardCtx<'a> {
    config: &'a ScaleConfig,
    catalog: &'a CityCatalog,
    population: &'a ScaledPopulation,
    curve: &'a DiurnalCurve,
    drop_every: u64,
}

/// Runs shard `shard_index` (users `range`) for `day`: a pure function
/// of its arguments — no shared mutable state, no I/O, no host clock.
fn run_shard(
    ctx: &ShardCtx<'_>,
    shard_index: usize,
    range: Range<u64>,
    day: u64,
    base_digest: &[u64],
) -> ShardDayResult {
    let ShardCtx {
        config,
        catalog,
        population,
        curve,
        drop_every,
    } = *ctx;
    let n = (range.end - range.start) as usize;
    let mut out = ShardDayResult {
        start: range.start,
        generated: vec![0; n],
        delivered: vec![0; n],
        quarantined: vec![0; n],
        shed: vec![0; n],
        lost: vec![0; n],
        digest: base_digest.to_vec(),
        hour_hist: [0; 24],
    };
    let pages_mean = config.pages_per_day_milli as f64 / 1000.0;
    let user_root = starlink_simcore::SimRng::seed_from(config.seed).stream("scale.user");
    for (local, u) in range.enumerate() {
        let mut rng = user_root.substream(u).substream(day);
        let activity = population.activity_milli[u as usize] as f64 / 1000.0;
        let pages = (activity * pages_mean * rng.lognormal(0.0, 0.3)).round() as u64;
        out.generated[local] += pages;

        // The planted shard bug (`--inject-shard-bug`): in shard 1 only,
        // every `drop_every`-th user's batches vanish after generation —
        // never delivered, never accounted, never folded into the
        // digest. Invisible to an unsharded run, so both the merged
        // coverage-conservation oracle and the digest comparison against
        // the single-shard reference must catch it.
        let dropped =
            drop_every > 0 && shard_index == 1 && (local as u64).is_multiple_of(drop_every);

        let tz = catalog.tz_offset_milli_hours(population.city[u as usize] as usize);
        let mut h = out.digest[local];
        for _ in 0..pages {
            let local_hour = curve.draw_local_hour(&mut rng);
            let utc = DiurnalCurve::utc_hour(local_hour, tz);
            if !dropped {
                out.hour_hist[utc as usize] += 1;
                h = fnv_fold(h, u64::from(utc));
            }
        }
        // One fate per day-batch, mirroring the resilient driver's
        // terminal outcomes: most batches deliver, thin slices are lost
        // in flight, quarantined after corruption, or shed by admission.
        let x = rng.f64();
        if !dropped {
            let fate = if x < 0.03 {
                out.lost[local] += pages;
                1
            } else if x < 0.06 {
                out.quarantined[local] += pages;
                2
            } else if x < 0.08 {
                out.shed[local] += pages;
                3
            } else {
                out.delivered[local] += pages;
                4
            };
            h = fnv_fold(h, day);
            h = fnv_fold(h, pages);
            h = fnv_fold(h, fate);
            out.digest[local] = h;
        }
    }
    out
}

/// The population-scale campaign driver: day-major like
/// [`crate::ingest::ResilientCampaign`], sharded across workers inside
/// each day, checkpointable at day boundaries.
#[derive(Debug, Clone)]
pub struct ScaledCampaign {
    config: ScaleConfig,
    catalog: CityCatalog,
    population: ScaledPopulation,
    curve: DiurnalCurve,
    ledger: CampaignLedger,
    next_day: u64,
    /// Planted-bug hook (see [`ScaledCampaign::debug_drop_user_in_shard_every`]).
    debug_drop_in_shard_every: u64,
}

impl ScaledCampaign {
    /// Builds the catalogue, materialises the population and zeroes the
    /// ledger.
    pub fn new(config: ScaleConfig) -> Self {
        let catalog = CityCatalog::generate(config.cities, config.seed);
        let population = ScaledPopulation::generate(&config, &catalog);
        let ledger = CampaignLedger::new(config.users);
        ScaledCampaign {
            config,
            catalog,
            population,
            curve: DiurnalCurve::browse(),
            ledger,
            next_day: 0,
            debug_drop_in_shard_every: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ScaleConfig {
        &self.config
    }

    /// The city catalogue.
    pub fn catalog(&self) -> &CityCatalog {
        &self.catalog
    }

    /// The subscriber population.
    pub fn population(&self) -> &ScaledPopulation {
        &self.population
    }

    /// The merged ledger so far.
    pub fn ledger(&self) -> &CampaignLedger {
        &self.ledger
    }

    /// The next day to simulate.
    pub fn next_day(&self) -> u64 {
        self.next_day
    }

    /// Whether every campaign day has been run.
    pub fn is_finished(&self) -> bool {
        self.next_day >= self.config.days
    }

    /// Planted-bug hook mirroring
    /// [`crate::ingest::ResilientCampaign::debug_skip_shed_accounting_every`]:
    /// in shard index 1 **only**, every `every`-th user of the shard has
    /// its batches dropped after generation. `0` (the default) disables
    /// it; single-shard runs are untouched either way, which is exactly
    /// what makes the bug catchable by comparing against the `--jobs 1`
    /// reference.
    pub fn debug_drop_user_in_shard_every(&mut self, every: u64) {
        self.debug_drop_in_shard_every = every;
    }

    /// Runs the next day across `jobs` workers and merges the per-shard
    /// ledgers in shard order. Returns `false` if the campaign was
    /// already finished.
    pub fn run_day(&mut self, jobs: usize) -> bool {
        if self.is_finished() {
            return false;
        }
        let day = self.next_day;
        let plan = ShardPlan::new(self.config.users, jobs);
        let shards = plan.shards();

        let results: Vec<ShardDayResult> = {
            let ctx = ShardCtx {
                config: &self.config,
                catalog: &self.catalog,
                population: &self.population,
                curve: &self.curve,
                drop_every: self.debug_drop_in_shard_every,
            };
            let ctx = &ctx;
            let digest = &self.ledger.digest;
            let shard = move |k: usize| {
                let range = plan.range(k);
                let base = &digest[range.start as usize..range.end as usize];
                run_shard(ctx, k, range, day, base)
            };
            if shards == 1 {
                vec![shard(0)]
            } else {
                // The repro harness's `--jobs` trick: workers claim shard
                // indices from an atomic counter and park results in an
                // index-addressed table; the driving thread folds the
                // table in shard order after all workers join.
                let slots: Vec<Mutex<Option<ShardDayResult>>> =
                    (0..shards).map(|_| Mutex::new(None)).collect();
                let next = AtomicUsize::new(0);
                std::thread::scope(|s| {
                    for _ in 0..shards.min(jobs) {
                        s.spawn(|| loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= shards {
                                break;
                            }
                            let result = shard(k);
                            *slots[k].lock().expect("shard slot poisoned") = Some(result);
                        });
                    }
                });
                slots
                    .into_iter()
                    .map(|m| {
                        m.into_inner()
                            .expect("shard slot poisoned")
                            .expect("every shard index was claimed")
                    })
                    .collect()
            }
        };

        // Merge in shard order (= user-index order).
        let (mut d_gen, mut d_del, mut d_quar, mut d_shed, mut d_lost) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        for r in results {
            let s = r.start as usize;
            for (j, &v) in r.generated.iter().enumerate() {
                self.ledger.generated[s + j] += v;
                d_gen += v;
            }
            for (j, &v) in r.delivered.iter().enumerate() {
                self.ledger.delivered[s + j] += v;
                d_del += v;
            }
            for (j, &v) in r.quarantined.iter().enumerate() {
                self.ledger.quarantined[s + j] += v;
                d_quar += v;
            }
            for (j, &v) in r.shed.iter().enumerate() {
                self.ledger.shed[s + j] += v;
                d_shed += v;
            }
            for (j, &v) in r.lost.iter().enumerate() {
                self.ledger.lost[s + j] += v;
                d_lost += v;
            }
            for (j, &v) in r.digest.iter().enumerate() {
                self.ledger.digest[s + j] = v;
            }
            for (h, &v) in r.hour_hist.iter().enumerate() {
                self.ledger.hour_hist[h] += v;
            }
        }

        // Post-merge observability: every quantity below is a merged
        // total, independent of the shard count, so traces and metrics
        // stay byte-identical at any `--jobs`.
        counter_add("campaign.shard.users", self.config.users);
        counter_add("campaign.shard.generated", d_gen);
        counter_add("campaign.shard.delivered", d_del);
        counter_add("campaign.shard.quarantined", d_quar);
        counter_add("campaign.shard.shed", d_shed);
        counter_add("campaign.shard.lost", d_lost);
        counter_add("campaign.shard.days", 1);
        let users = self.config.users;
        emit(|| TraceEvent::CampaignDayMerged {
            t_ns: (day + 1) * 86_400 * 1_000_000_000,
            day,
            users,
            generated: d_gen,
            delivered: d_del,
        });

        self.next_day += 1;
        true
    }

    /// Runs every remaining day at the given worker count.
    pub fn run_to_end(&mut self, jobs: usize) {
        while self.run_day(jobs) {}
    }

    /// The campaign dataset digest so far.
    pub fn dataset_digest(&self) -> u64 {
        self.ledger.dataset_digest()
    }

    /// Per-city coverage, in city-id order, cities with no users
    /// omitted.
    pub fn per_city(&self) -> Vec<CityCoverage> {
        let cities = self.catalog.len();
        let mut users = vec![0u64; cities];
        let mut totals = vec![CoverageTotals::default(); cities];
        for (u, &c) in self.population.city.iter().enumerate() {
            let c = c as usize;
            users[c] += 1;
            totals[c].generated += self.ledger.generated[u];
            totals[c].delivered += self.ledger.delivered[u];
            totals[c].quarantined += self.ledger.quarantined[u];
            totals[c].shed += self.ledger.shed[u];
            totals[c].lost += self.ledger.lost[u];
        }
        (0..cities)
            .filter(|&c| users[c] > 0)
            .map(|c| CityCoverage {
                city: c as u32,
                users: users[c],
                totals: totals[c],
            })
            .collect()
    }

    /// A fixed-width per-city coverage table plus a totals line, shaped
    /// like [`crate::ingest::CoverageReport::render`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>8} {:>11} {:>11} {:>11} {:>8} {:>8} {:>9}\n",
            "city", "users", "generated", "delivered", "quarantined", "shed", "lost", "coverage"
        ));
        let mut row = |label: &str, users: u64, t: &CoverageTotals| {
            out.push_str(&format!(
                "{:<12} {:>8} {:>11} {:>11} {:>11} {:>8} {:>8} {:>8.1}%\n",
                label,
                users,
                t.generated,
                t.delivered,
                t.quarantined,
                t.shed,
                t.lost,
                100.0 * t.delivered_fraction()
            ));
        };
        for c in self.per_city() {
            row(self.catalog.name(c.city as usize), c.users, &c.totals);
        }
        row("TOTAL", self.config.users, &self.ledger.totals());
        out
    }

    /// Serialises the merged ledger (valid at day boundaries) into an
    /// SLCP v2 blob, kind 3. The blob stores **no worker count**: the
    /// ledger is written in user-index order, so a resume may use any
    /// `--jobs` and still finish byte-identically.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.bytes(&CHECKPOINT_MAGIC);
        w.u16(CHECKPOINT_VERSION);
        w.u8(KIND_SCALED);
        w.u64(self.config.seed);
        w.u64(self.config.users);
        w.u32(self.config.cities);
        w.u64(self.config.days);
        w.u64(self.config.pages_per_day_milli);
        w.u64(self.next_day);
        for column in [
            &self.ledger.generated,
            &self.ledger.delivered,
            &self.ledger.quarantined,
            &self.ledger.shed,
            &self.ledger.lost,
            &self.ledger.digest,
        ] {
            for &v in column.iter() {
                w.u64(v);
            }
        }
        for &v in &self.ledger.hour_hist {
            w.u64(v);
        }
        w.seal()
    }

    /// Rebuilds a driver from a checkpoint, verifying the CRC and that
    /// the blob belongs to *this* scenario; any disagreement is a typed
    /// [`CheckpointError::Mismatch`] naming the field.
    pub fn resume(config: ScaleConfig, bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = open_blob(bytes, KIND_SCALED)?;
        let mismatch = |cond: bool, field: &'static str| {
            if cond {
                Err(CheckpointError::Mismatch { field })
            } else {
                Ok(())
            }
        };
        mismatch(r.u64()? != config.seed, "seed")?;
        mismatch(r.u64()? != config.users, "users")?;
        mismatch(r.u32()? != config.cities, "cities")?;
        mismatch(r.u64()? != config.days, "days")?;
        mismatch(
            r.u64()? != config.pages_per_day_milli,
            "pages_per_day_milli",
        )?;
        let next_day = r.u64()?;
        if next_day > config.days {
            return Err(WireError::BadField { field: "next_day" }.into());
        }
        let mut fresh = ScaledCampaign::new(config);
        let n = config.users as usize;
        for column in [
            &mut fresh.ledger.generated,
            &mut fresh.ledger.delivered,
            &mut fresh.ledger.quarantined,
            &mut fresh.ledger.shed,
            &mut fresh.ledger.lost,
            &mut fresh.ledger.digest,
        ] {
            for v in column.iter_mut().take(n) {
                *v = r.u64()?;
            }
        }
        for v in fresh.ledger.hour_hist.iter_mut() {
            *v = r.u64()?;
        }
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: r.remaining(),
            }
            .into());
        }
        fresh.next_day = next_day;
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleConfig {
        ScaleConfig {
            seed: 11,
            users: 700,
            cities: 25,
            days: 2,
            pages_per_day_milli: 6_000,
        }
    }

    #[test]
    fn plan_is_contiguous_disjoint_and_covering() {
        for users in [0u64, 1, 7, 100, 101] {
            for jobs in 1..=16 {
                let plan = ShardPlan::new(users, jobs);
                assert_eq!(plan.shards(), jobs);
                let mut cursor = 0;
                for k in 0..plan.shards() {
                    let r = plan.range(k);
                    assert_eq!(r.start, cursor, "ranges must be contiguous in order");
                    cursor = r.end;
                }
                assert_eq!(cursor, users, "ranges must cover every user");
            }
        }
    }

    #[test]
    fn output_is_byte_identical_at_any_worker_count() {
        let mut reference = ScaledCampaign::new(small());
        reference.run_to_end(1);
        for jobs in [2usize, 3, 8, 16] {
            let mut sharded = ScaledCampaign::new(small());
            sharded.run_to_end(jobs);
            assert_eq!(
                sharded.dataset_digest(),
                reference.dataset_digest(),
                "digest diverged at jobs={jobs}"
            );
            assert_eq!(sharded.ledger(), reference.ledger());
            assert_eq!(sharded.per_city(), reference.per_city());
            assert_eq!(sharded.render(), reference.render());
        }
    }

    #[test]
    fn coverage_invariant_holds_exactly() {
        let mut c = ScaledCampaign::new(small());
        c.run_to_end(4);
        assert!(c.ledger().sums_hold());
        let t = c.ledger().totals();
        assert_eq!(t.delivered + t.quarantined + t.shed + t.lost, t.generated);
        assert!(t.generated > 0);
        assert!(t.delivered > t.lost, "most records must deliver");
    }

    #[test]
    fn timezone_offsets_spread_the_utc_histogram() {
        let mut c = ScaledCampaign::new(ScaleConfig {
            seed: 3,
            users: 2_000,
            cities: 100,
            days: 1,
            pages_per_day_milli: 8_000,
        });
        c.run_to_end(4);
        let hist = c.ledger().hour_hist;
        assert!(
            hist.iter().all(|&h| h > 0),
            "100 cities of time zones must fill every UTC hour"
        );
        // The worldwide spread flattens the curve but must not erase it:
        // the Zipf head sits at European longitudes, so UTC evenings
        // still peak well above UTC nights.
        let (min, max) = (*hist.iter().min().unwrap(), *hist.iter().max().unwrap());
        assert!(4 * max > 5 * min, "diurnal curve flattened away: {hist:?}");
        assert!(
            hist[19] > hist[6],
            "UTC evening must out-browse UTC morning"
        );
    }

    #[test]
    fn planted_shard_bug_is_invisible_unsharded_and_caught_sharded() {
        let mut reference = ScaledCampaign::new(small());
        reference.run_to_end(1);

        let mut clean_single = ScaledCampaign::new(small());
        clean_single.debug_drop_user_in_shard_every(1);
        clean_single.run_to_end(1);
        assert_eq!(
            clean_single.dataset_digest(),
            reference.dataset_digest(),
            "a single-shard run has no shard 1: the bug must be invisible"
        );
        assert!(clean_single.ledger().sums_hold());

        let mut buggy = ScaledCampaign::new(small());
        buggy.debug_drop_user_in_shard_every(1);
        buggy.run_to_end(4);
        assert_ne!(
            buggy.dataset_digest(),
            reference.dataset_digest(),
            "dropped batches must change the dataset digest"
        );
        assert!(
            !buggy.ledger().sums_hold(),
            "dropped batches must break delivered+quarantined+shed+lost==generated"
        );
    }

    #[test]
    fn checkpoint_round_trips_at_day_boundaries() {
        let mut reference = ScaledCampaign::new(small());
        reference.run_to_end(3);

        let mut rc = ScaledCampaign::new(small());
        while !rc.is_finished() {
            rc.run_day(3);
            let blob = rc.checkpoint();
            rc = ScaledCampaign::resume(small(), &blob).expect("own checkpoint must restore");
        }
        assert_eq!(rc.dataset_digest(), reference.dataset_digest());
        assert_eq!(rc.ledger(), reference.ledger());
    }

    #[test]
    fn resuming_under_a_different_worker_count_is_byte_identical() {
        let mut reference = ScaledCampaign::new(small());
        reference.run_to_end(1);

        // Checkpoint written mid-campaign at --jobs 4 …
        let mut rc = ScaledCampaign::new(small());
        rc.run_day(4);
        let blob = rc.checkpoint();

        // … must finish byte-identically at --jobs 1, 2 and 9.
        for jobs in [1usize, 2, 9] {
            let mut resumed =
                ScaledCampaign::resume(small(), &blob).expect("own checkpoint must restore");
            resumed.run_to_end(jobs);
            assert_eq!(
                resumed.dataset_digest(),
                reference.dataset_digest(),
                "resume at jobs={jobs} diverged from the straight run"
            );
            assert_eq!(resumed.ledger(), reference.ledger());
        }
    }

    #[test]
    fn scenario_mismatches_are_refused_with_the_field_named() {
        let mut rc = ScaledCampaign::new(small());
        rc.run_day(2);
        let blob = rc.checkpoint();

        for (field, config) in [
            (
                "seed",
                ScaleConfig {
                    seed: 12,
                    ..small()
                },
            ),
            (
                "users",
                ScaleConfig {
                    users: 701,
                    ..small()
                },
            ),
            (
                "cities",
                ScaleConfig {
                    cities: 26,
                    ..small()
                },
            ),
            ("days", ScaleConfig { days: 3, ..small() }),
            (
                "pages_per_day_milli",
                ScaleConfig {
                    pages_per_day_milli: 7_000,
                    ..small()
                },
            ),
        ] {
            let err = ScaledCampaign::resume(config, &blob)
                .expect_err("a different scenario must be refused");
            assert_eq!(err, CheckpointError::Mismatch { field });
        }

        let mut bad = blob.clone();
        bad[10] ^= 0x40;
        assert!(matches!(
            ScaledCampaign::resume(small(), &bad),
            Err(CheckpointError::Wire(_))
        ));
    }
}
