//! The six-month campaign driver.
//!
//! Reproduces the extension deployment generatively: every user browses
//! daily (Zipf-sampled sites, daytime-biased hours), every page load runs
//! through the [`starlink_web::PageLoadModel`] over the path its ISP
//! class implies, and occasionally a user clicks the in-extension
//! speedtest. Weather runs per-city; Starlink users feel it, terrestrial
//! users do not. The output is the anonymised [`Dataset`] the paper's
//! §4–5 analyses (and our Table 1 / Table 3 / Fig. 3 / Fig. 4 benches)
//! consume.

use crate::aschange::ExitAs;
use crate::population::{IspClass, Population, User};
use crate::records::{Dataset, PageRecord, SpeedtestRecord};
use starlink_channel::{AccessTech, CityProfile, WeatherCondition, WeatherTimeline};
use starlink_geo::City;
use starlink_simcore::{DataRate, SimDuration, SimRng, SimTime};
use starlink_web::{PageLoadModel, PathInputs, Tranco};
use std::collections::HashMap;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed: same seed, byte-identical dataset.
    pub seed: u64,
    /// Campaign length in days (the paper ran ~182).
    pub days: u64,
    /// Mean pages per day for an activity-1.0 user.
    pub pages_per_day: f64,
    /// Tranco list size.
    pub tranco_size: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 1,
            days: 182,
            pages_per_day: 22.0,
            tranco_size: 1_000_000,
        }
    }
}

/// The assembled campaign.
pub struct Campaign {
    config: CampaignConfig,
    population: Population,
    tranco: Tranco,
    model: PageLoadModel,
    weather: HashMap<City, WeatherTimeline>,
}

/// One user-day of generated records — the unit the uploader buffers
/// into a single wire batch.
#[derive(Debug, Clone, Default)]
pub struct UserDay {
    /// Page loads generated that day.
    pub pages: Vec<PageRecord>,
    /// Speedtests run that day (zero or one under the current model).
    pub speedtests: Vec<SpeedtestRecord>,
}

impl UserDay {
    /// Total records in the day.
    pub fn len(&self) -> usize {
        self.pages.len() + self.speedtests.len()
    }

    /// Whether the user generated nothing that day.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty() && self.speedtests.is_empty()
    }
}

/// Hour-of-day weights for browsing activity (local time): quiet at
/// night, building through the day, heaviest in the evening. Shared
/// with the population-scale engine ([`crate::scale`]) so the 28-user
/// paper campaign and the million-user campaign browse on the same
/// diurnal curve.
pub(crate) const BROWSE_WEIGHTS: [f64; 24] = [
    0.3, 0.15, 0.08, 0.05, 0.05, 0.1, // 00-05
    0.3, 0.7, 1.0, 1.1, 1.1, 1.0, // 06-11
    1.1, 1.0, 0.9, 0.9, 1.0, 1.2, // 12-17
    1.5, 1.8, 2.0, 1.9, 1.4, 0.8, // 18-23
];

impl Campaign {
    /// Builds the campaign: population, web, and per-city weather.
    pub fn new(config: CampaignConfig) -> Self {
        let root = SimRng::seed_from(config.seed);
        let population = Population::generate(config.seed);
        let tranco = Tranco::new(config.seed, config.tranco_size);
        let duration = SimDuration::from_days(config.days);
        let mut weather = HashMap::new();
        for city in population.cities() {
            let mut wrng = root.stream("weather").substream(city as u64);
            weather.insert(city, WeatherTimeline::generate(&mut wrng, duration, 0.85));
        }
        Campaign {
            config,
            population,
            tranco,
            model: PageLoadModel::default(),
            weather,
        }
    }

    /// The user population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The configuration the campaign was built with.
    pub fn config(&self) -> &CampaignConfig {
        &self.config
    }

    /// The weather a city saw at `t`.
    pub fn weather_at(&self, city: City, t: SimTime) -> WeatherCondition {
        self.weather[&city].condition_at(t)
    }

    /// Runs the full campaign and returns the collected dataset.
    pub fn run(&self) -> Dataset {
        let root = SimRng::seed_from(self.config.seed);
        let mut dataset = Dataset::default();
        for (i, user) in self.population.users.iter().enumerate() {
            let mut rng = root.stream("campaign.user").substream(i as u64);
            self.run_user(user, &mut rng, &mut dataset);
        }
        dataset
    }

    fn run_user(&self, user: &User, rng: &mut SimRng, dataset: &mut Dataset) {
        for day in 0..self.config.days {
            let batch = self.user_day(user, day, rng);
            dataset.pages.extend(batch.pages);
            dataset.speedtests.extend(batch.speedtests);
        }
    }

    /// Generates one user's records for one campaign day.
    ///
    /// This is the checkpointable unit of work: the resilient ingestion
    /// driver iterates day-major (all users for day 0, then day 1, …) so a
    /// run can stop and resume at day boundaries, while [`Campaign::run`]
    /// iterates user-major. Both draw from the *same* per-user RNG stream
    /// in the same order, so the record values are identical either way —
    /// only the in-memory ordering differs, and canonical sorting erases
    /// even that.
    pub fn user_day(&self, user: &User, day: u64, rng: &mut SimRng) -> UserDay {
        let lon = user.city.position().lon_deg;
        let profile = CityProfile::for_city(user.city);
        let mut out = UserDay::default();
        let pages = (user.activity * self.config.pages_per_day * rng.lognormal(0.0, 0.3)) as usize;
        for _ in 0..pages {
            let local_hour = rng.choose_weighted(&BROWSE_WEIGHTS) as f64 + rng.f64();
            let t = local_to_campaign(day, local_hour, lon);
            let weather = self.weather_at(user.city, t);
            out.pages
                .push(self.one_page(user, &profile, t, weather, rng));
        }
        // Occasional user-triggered speedtest, at a daytime hour.
        if rng.bernoulli(user.speedtest_propensity) {
            let local_hour = 9.0 + rng.f64() * 13.0;
            let t = local_to_campaign(day, local_hour, lon);
            let weather = self.weather_at(user.city, t);
            out.speedtests
                .push(self.one_speedtest(user, &profile, t, weather, rng));
        }
        out
    }

    fn one_page(
        &self,
        user: &User,
        profile: &CityProfile,
        t: SimTime,
        weather: WeatherCondition,
        rng: &mut SimRng,
    ) -> PageRecord {
        let site = self.tranco.sample_visit(rng);
        let tech_profile = user.isp.tech().profile();

        let access_rtt_ms = tech_profile.first_hop_ms.sample_non_negative(rng)
            + tech_profile.access_ms.sample_non_negative(rng);

        // Transit: CDN-hosted sites terminate near the exit point; origin
        // sites are a real trip, scaled by the city's remoteness from
        // hosting fabric (Sydney pays trans-Pacific penalties).
        let transit_rtt_ms = if site.cdn_hosted {
            rng.range_f64(2.0, 12.0) * profile.remoteness
        } else {
            (10.0 + 45.0 * site.origin_distance_factor) * profile.remoteness
        };

        let (exit_as, peering_multiplier, weather_multiplier, downlink) = match user.isp {
            IspClass::Starlink => {
                let exit = ExitAs::at(user.city, t);
                // Page transfers mostly come from nearby CDN fabric, which
                // sustains ~30% more than the transatlantic Iowa speedtest
                // path the ceiling was calibrated on.
                let dl = profile.sample_speedtest_dl(t, weather, rng).scale(1.3);
                (
                    Some(exit),
                    exit.peering_multiplier(),
                    weather.latency_multiplier(),
                    dl,
                )
            }
            IspClass::NonStarlink(tech) => {
                let jitter = rng.lognormal(0.0, 0.15);
                let dl = tech.profile().downlink.scale(jitter.min(1.0));
                (None, 1.0, 1.0, dl)
            }
        };

        let path = PathInputs {
            access_rtt_ms,
            transit_rtt_ms,
            downlink: downlink.max(DataRate::from_mbps(1)),
            weather_multiplier,
            peering_multiplier,
        };
        let plt = self.model.sample_plt(&site, &path, rng);

        PageRecord {
            user: user.id,
            city: user.city,
            isp: user.isp,
            at: t,
            rank: site.rank,
            ptt: plt.ptt,
            plt_ms: plt.total_ms(),
            exit_as,
            weather,
        }
    }

    fn one_speedtest(
        &self,
        user: &User,
        profile: &CityProfile,
        t: SimTime,
        weather: WeatherCondition,
        rng: &mut SimRng,
    ) -> SpeedtestRecord {
        let (dl, ul) = match user.isp {
            IspClass::Starlink => (
                profile.sample_speedtest_dl(t, weather, rng).as_mbps(),
                profile.sample_speedtest_ul(t, weather, rng).as_mbps(),
            ),
            IspClass::NonStarlink(tech) => {
                let p = tech.profile();
                let j = rng.lognormal(0.0, 0.2).min(1.0);
                // The long path to Iowa shaves terrestrial results too.
                (p.downlink.as_mbps() * j * 0.8, p.uplink.as_mbps() * j * 0.8)
            }
        };
        SpeedtestRecord {
            user: user.id,
            city: user.city,
            starlink: user.isp.is_starlink(),
            at_secs: t.as_secs(),
            downlink_mbps: dl,
            uplink_mbps: ul,
        }
    }
}

/// Converts (campaign day, local hour, longitude) to campaign time.
/// Longitude stands in for the time zone: 15° of longitude per hour.
pub(crate) fn local_to_campaign(day: u64, local_hour: f64, lon_deg: f64) -> SimTime {
    let utc_hour = local_hour - lon_deg / 15.0;
    let secs = day as f64 * 86_400.0 + utc_hour * 3_600.0;
    SimTime::from_secs(secs.max(0.0) as u64)
}

/// Non-Starlink access technology helper used in tests.
#[allow(dead_code)]
fn cellular() -> AccessTech {
    AccessTech::Cellular
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign(seed: u64) -> Dataset {
        Campaign::new(CampaignConfig {
            seed,
            days: 30,
            pages_per_day: 15.0,
            tranco_size: 100_000,
        })
        .run()
    }

    #[test]
    fn campaign_produces_a_paper_scale_dataset() {
        let ds = Campaign::new(CampaignConfig {
            days: 182,
            pages_per_day: 22.0,
            ..CampaignConfig::default()
        })
        .run();
        // The paper reports "more than 50,000 readings" over 6 months.
        assert!(ds.pages.len() > 50_000, "{} readings", ds.pages.len());
        assert!(!ds.speedtests.is_empty());
    }

    #[test]
    fn campaign_is_deterministic() {
        let a = small_campaign(5);
        let b = small_campaign(5);
        assert_eq!(a.pages.len(), b.pages.len());
        for (x, y) in a.pages.iter().take(100).zip(b.pages.iter()) {
            assert_eq!(x.user, y.user);
            assert_eq!(x.rank, y.rank);
            assert_eq!(x.ptt_ms(), y.ptt_ms());
        }
    }

    #[test]
    fn table1_shape_starlink_beats_non_starlink() {
        let ds = small_campaign(1);
        for city in [City::London, City::Seattle, City::Sydney] {
            let sl = ds.city_aggregate(city, true);
            let non = ds.city_aggregate(city, false);
            assert!(
                sl.requests > 100,
                "{city}: {} starlink requests",
                sl.requests
            );
            assert!(
                non.requests > 50,
                "{city}: {} non-starlink requests",
                non.requests
            );
            assert!(
                sl.median_ptt_ms < non.median_ptt_ms,
                "{city}: starlink {:.0} ms must beat non-starlink {:.0} ms",
                sl.median_ptt_ms,
                non.median_ptt_ms
            );
        }
    }

    #[test]
    fn table1_shape_sydney_slowest_london_fastest() {
        let ds = small_campaign(2);
        let london = ds.city_aggregate(City::London, true).median_ptt_ms;
        let seattle = ds.city_aggregate(City::Seattle, true).median_ptt_ms;
        let sydney = ds.city_aggregate(City::Sydney, true).median_ptt_ms;
        assert!(london < seattle, "london {london} vs seattle {seattle}");
        assert!(seattle < sydney, "seattle {seattle} vs sydney {sydney}");
    }

    #[test]
    fn london_starlink_median_in_table1_band() {
        let ds = small_campaign(3);
        let m = ds.city_aggregate(City::London, true).median_ptt_ms;
        // Table 1: 327 ms.
        assert!((230.0..450.0).contains(&m), "median {m} ms");
    }

    #[test]
    fn fig3_as_change_rises_ptt() {
        let ds = Campaign::new(CampaignConfig {
            seed: 4,
            days: 182,
            pages_per_day: 22.0,
            tranco_size: 100_000,
        })
        .run();
        for popular in [true, false] {
            let before: Vec<f64> = ds.fig3_samples(City::London, popular, ExitAs::Google);
            let after: Vec<f64> = ds.fig3_samples(City::London, popular, ExitAs::SpaceX);
            assert!(before.len() > 200, "{popular}: {} before", before.len());
            assert!(after.len() > 200, "{popular}: {} after", after.len());
            let med = |mut v: Vec<f64>| {
                v.sort_by(f64::total_cmp);
                v[v.len() / 2]
            };
            let mb = med(before);
            let ma = med(after);
            assert!(
                ma > mb,
                "popular={popular}: PTT should rise after the AS change ({mb} -> {ma})"
            );
            // "Slightly": under 40%.
            assert!(
                ma < mb * 1.4,
                "popular={popular}: rise too large ({mb} -> {ma})"
            );
        }
    }

    #[test]
    fn fig4_weather_orders_medians() {
        let ds = Campaign::new(CampaignConfig {
            seed: 6,
            days: 182,
            pages_per_day: 22.0,
            tranco_size: 100_000,
        })
        .run();
        let med = |w: WeatherCondition| {
            let mut v = ds.fig4_samples(City::London, w);
            assert!(v.len() > 50, "{}: only {} samples", w.label(), v.len());
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        let clear = med(WeatherCondition::ClearSky);
        let rain = med(WeatherCondition::ModerateRain);
        let ratio = rain / clear;
        // Fig. 4: moderate rain roughly doubles the clear-sky median.
        assert!((1.5..2.4).contains(&ratio), "rain/clear {ratio}");
    }

    #[test]
    fn speedtest_table3_ordering() {
        let ds = Campaign::new(CampaignConfig {
            seed: 7,
            days: 182,
            pages_per_day: 10.0,
            tranco_size: 50_000,
        })
        .run();
        let (london, _) = ds.speedtest_medians(City::London);
        let (seattle, _) = ds.speedtest_medians(City::Seattle);
        let (toronto, _) = ds.speedtest_medians(City::Toronto);
        let (warsaw, _) = ds.speedtest_medians(City::Warsaw);
        assert!(
            london > seattle && seattle > toronto && toronto > warsaw,
            "Table 3 ordering violated: {london} {seattle} {toronto} {warsaw}"
        );
    }

    #[test]
    fn day_major_iteration_yields_the_same_records() {
        // The resilient ingestion driver walks day-major; run() walks
        // user-major. Same per-user RNG streams ⇒ same record values.
        let campaign = Campaign::new(CampaignConfig {
            seed: 9,
            days: 5,
            pages_per_day: 10.0,
            tranco_size: 50_000,
        });
        let user_major = campaign.run();

        let root = SimRng::seed_from(9);
        let mut rngs: Vec<SimRng> = (0..campaign.population().users.len())
            .map(|i| root.stream("campaign.user").substream(i as u64))
            .collect();
        let mut pages = Vec::new();
        let mut speedtests = Vec::new();
        for day in 0..5 {
            for (user, rng) in campaign.population().users.iter().zip(rngs.iter_mut()) {
                let batch = campaign.user_day(user, day, rng);
                pages.extend(batch.pages);
                speedtests.extend(batch.speedtests);
            }
        }

        assert_eq!(pages.len(), user_major.pages.len());
        assert_eq!(speedtests.len(), user_major.speedtests.len());
        let key = |r: &PageRecord| (r.user, r.at, r.rank, r.plt_ms.to_bits());
        let mut a: Vec<_> = pages.iter().map(key).collect();
        let mut b: Vec<_> = user_major.pages.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "day-major records differ from user-major");
    }

    #[test]
    fn local_to_campaign_respects_longitude() {
        // 09:00 local in Sydney (151°E) is 22:56 UTC the previous day...
        // with day offset: day 1 at 09:00 local = day 0, 22:56 UTC.
        let sydney = local_to_campaign(1, 9.0, 151.2);
        let london = local_to_campaign(1, 9.0, -0.13);
        assert!(sydney < london);
        let diff_hours = (london.as_secs() as f64 - sydney.as_secs() as f64) / 3_600.0;
        assert!((diff_hours - 10.09).abs() < 0.05, "{diff_hours}");
    }
}
