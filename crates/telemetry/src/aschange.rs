//! The exit-AS timeline: Google AS36492 → SpaceX AS14593.
//!
//! The paper's IPinfo lookups showed Starlink users in London and Sydney
//! initially appearing to come from Google's AS36492 and then switching to
//! SpaceX's own AS14593 — between 16 and 24 Feb 2022 in London, and
//! between 1 and 2 Apr 2022 in Sydney. Seattle was on AS14593 throughout.
//! The paper reads this as a change in Starlink's exit-point/peering
//! configuration, and Fig. 3 uses it as a natural experiment: PTTs rose
//! slightly after the switch, consistent with Google's better peering.
//!
//! The campaign clock starts 1 Dec 2021 00:00 UTC (the paper collected
//! data "for 6 months, starting from Dec 2021").

use starlink_geo::City;
use starlink_simcore::{SimDuration, SimTime};

/// Google's AS number (the early exit point).
pub const AS_GOOGLE: u32 = 36_492;
/// SpaceX's AS number.
pub const AS_SPACEX: u32 = 14_593;

/// Days from the campaign epoch (1 Dec 2021) to a calendar day.
const fn campaign_day(days: u64) -> SimTime {
    SimTime::from_secs(days * 86_400)
}

/// 16 Feb 2022: last day London was observed on the Google AS
/// (Dec 31 + Jan 31 + Feb 15 = 77 days after 1 Dec).
pub const LONDON_SWITCH_START: SimTime = campaign_day(77);
/// 24 Feb 2022: first day London was observed on the SpaceX AS.
pub const LONDON_SWITCH_END: SimTime = campaign_day(85);
/// 1 Apr 2022 (121 days after 1 Dec): Sydney still on Google's AS.
pub const SYDNEY_SWITCH_START: SimTime = campaign_day(121);
/// 2 Apr 2022: Sydney observed on SpaceX's AS.
pub const SYDNEY_SWITCH_END: SimTime = campaign_day(122);

/// Which AS a Starlink user's traffic exits from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitAs {
    /// AS36492 — Google as the cloud egress, with Google's peering.
    Google,
    /// AS14593 — SpaceX's own network.
    SpaceX,
}

impl ExitAs {
    /// The AS number.
    pub fn asn(self) -> u32 {
        match self {
            ExitAs::Google => AS_GOOGLE,
            ExitAs::SpaceX => AS_SPACEX,
        }
    }

    /// Peering-quality multiplier on transit RTT: the paper conjectures
    /// "the Google AS might have had slightly better peering
    /// arrangements, which may result in additional AS hops in some
    /// cases" after the move.
    pub fn peering_multiplier(self) -> f64 {
        match self {
            ExitAs::Google => 1.0,
            ExitAs::SpaceX => 1.22,
        }
    }

    /// The exit AS for a Starlink user in `city` at campaign time `t`.
    /// Within a city's observed switch window the change is modelled as
    /// completing at the window midpoint.
    pub fn at(city: City, t: SimTime) -> ExitAs {
        let switch_at = match city {
            City::London | City::Wiltshire => {
                Some(midpoint(LONDON_SWITCH_START, LONDON_SWITCH_END))
            }
            City::Sydney | City::Brisbane => Some(midpoint(SYDNEY_SWITCH_START, SYDNEY_SWITCH_END)),
            // Seattle (and the rest of the US cohort) was on AS14593 for
            // the whole campaign.
            City::Seattle | City::Austin | City::Denver | City::NorthCarolina => None,
            // EU sites: follow the London schedule (the paper only
            // observed London and Sydney switching; EU egress moved with
            // the European reconfiguration).
            _ => Some(midpoint(LONDON_SWITCH_START, LONDON_SWITCH_END)),
        };
        match switch_at {
            Some(at) if t < at => ExitAs::Google,
            _ => ExitAs::SpaceX,
        }
    }
}

fn midpoint(a: SimTime, b: SimTime) -> SimTime {
    a + (b.since(a)) / 2
}

/// The full six-month campaign length.
pub const CAMPAIGN_LENGTH: SimDuration = SimDuration::from_days(182);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn london_switches_mid_february() {
        assert_eq!(ExitAs::at(City::London, campaign_day(70)), ExitAs::Google);
        assert_eq!(ExitAs::at(City::London, campaign_day(90)), ExitAs::SpaceX);
    }

    #[test]
    fn sydney_switches_first_of_april() {
        assert_eq!(ExitAs::at(City::Sydney, campaign_day(120)), ExitAs::Google);
        assert_eq!(ExitAs::at(City::Sydney, campaign_day(122)), ExitAs::SpaceX);
        // Sydney is still on Google when London has already moved.
        assert_eq!(ExitAs::at(City::Sydney, campaign_day(100)), ExitAs::Google);
        assert_eq!(ExitAs::at(City::London, campaign_day(100)), ExitAs::SpaceX);
    }

    #[test]
    fn seattle_never_changes() {
        for day in [0, 50, 100, 150, 181] {
            assert_eq!(
                ExitAs::at(City::Seattle, campaign_day(day)),
                ExitAs::SpaceX,
                "day {day}"
            );
        }
    }

    #[test]
    fn asn_values_match_the_paper() {
        assert_eq!(ExitAs::Google.asn(), 36492);
        assert_eq!(ExitAs::SpaceX.asn(), 14593);
    }

    #[test]
    fn spacex_peering_is_slightly_worse() {
        assert!(ExitAs::SpaceX.peering_multiplier() > ExitAs::Google.peering_multiplier());
        // "Slightly": well under 1.5x.
        assert!(ExitAs::SpaceX.peering_multiplier() < 1.5);
    }

    #[test]
    fn switch_windows_are_ordered_in_the_campaign() {
        assert!(LONDON_SWITCH_START < LONDON_SWITCH_END);
        assert!(LONDON_SWITCH_END < SYDNEY_SWITCH_START);
        assert!(SYDNEY_SWITCH_END < SimTime::ZERO + CAMPAIGN_LENGTH);
    }
}
