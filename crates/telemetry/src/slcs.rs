//! SLCS v1 — the framed session protocol between extension and collector.
//!
//! SLTB batches (see [`crate::wire`]) describe *what* a user uploads; SLCS
//! describes *how* the conversation goes. Every exchange is a sequence of
//! CRC-sealed frames over one session:
//!
//! ```text
//! +----------+---------+------+---------+-------+--------+---------+-------+
//! | magic    | version | type | session | seq   | paylen | payload | crc32 |
//! | "SLCS" 4 | u16     | u8   | u64     | u64   | u32    | ...     | u32   |
//! +----------+---------+------+---------+-------+--------+---------+-------+
//! ```
//!
//! Frame types:
//!
//! | code | frame  | payload                                   |
//! |------|--------|-------------------------------------------|
//! | 1    | HELLO  | user id (u64)                             |
//! | 2    | BATCH  | one sealed SLTB batch                     |
//! | 3    | ACK    | status byte ([`AckStatus`])               |
//! | 4    | REJECT | reason tag (u16) + retry-after nanos (u64)|
//! | 5    | DRAIN  | empty                                     |
//!
//! All integers are little-endian; the trailing CRC-32 covers everything
//! before it. Decoding never panics and never over-reads: a hostile
//! `paylen` is bounds-checked before any allocation, and every malformed
//! input maps to a typed [`WireError`] — the same quarantine vocabulary
//! the batch decoder speaks.
//!
//! REJECT reasons are [`ShedReason`]s; the wire code is the reason's
//! trace-digest tag, so the admission log and the protocol can never
//! disagree about what a reject meant.

use crate::wire::{crc32, WireError, WireReader, WireWriter};
pub use starlink_obsv::ShedReason;

/// The four magic bytes every SLCS frame starts with.
pub const SLCS_MAGIC: [u8; 4] = *b"SLCS";
/// The current session-protocol version.
pub const SLCS_VERSION: u16 = 1;
/// Size of the fixed frame header (magic through payload length).
pub const SLCS_HEADER_LEN: usize = 4 + 2 + 1 + 8 + 8 + 4;
/// Largest payload a frame may declare; anything bigger is hostile.
pub const SLCS_MAX_PAYLOAD: usize = 16 << 20;

/// How the collector disposed of an accepted BATCH frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckStatus {
    /// New `(user, seq)` pair; records ingested.
    Accepted,
    /// Already-seen `(user, seq)` pair; batch discarded as a re-upload.
    Duplicate,
    /// Batch was admitted but failed to decode; quarantined with a typed
    /// reason on the server side.
    Quarantined,
}

impl AckStatus {
    /// Stable one-byte wire code.
    pub fn code(self) -> u8 {
        match self {
            AckStatus::Accepted => 1,
            AckStatus::Duplicate => 2,
            AckStatus::Quarantined => 3,
        }
    }

    /// Inverse of [`AckStatus::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(AckStatus::Accepted),
            2 => Some(AckStatus::Duplicate),
            3 => Some(AckStatus::Quarantined),
            _ => None,
        }
    }
}

/// One SLCS frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client opens (or refreshes) a session for `user`.
    Hello {
        /// Session identifier chosen by the client.
        session: u64,
        /// The uploading user's random identifier.
        user: u64,
    },
    /// Client submits one sealed SLTB batch.
    Batch {
        /// The session the batch rides on.
        session: u64,
        /// The client's per-session frame sequence number.
        seq: u64,
        /// The sealed SLTB bytes, carried opaquely.
        payload: Vec<u8>,
    },
    /// Server accepted the referenced frame.
    Ack {
        /// Echoed session.
        session: u64,
        /// Echoed sequence number.
        seq: u64,
        /// What the collector did with the batch.
        status: AckStatus,
    },
    /// Server shed the referenced frame.
    Reject {
        /// Echoed session (0 when the offending frame was undecodable).
        session: u64,
        /// Echoed sequence number (0 when undecodable).
        seq: u64,
        /// Why the frame was shed.
        reason: ShedReason,
        /// Server's hint: nanoseconds to wait before retrying.
        retry_after_ns: u64,
    },
    /// Client asks the server to flush, checkpoint, and close the session.
    Drain {
        /// The session to drain.
        session: u64,
    },
}

impl Frame {
    /// The session this frame belongs to.
    pub fn session(&self) -> u64 {
        match *self {
            Frame::Hello { session, .. }
            | Frame::Batch { session, .. }
            | Frame::Ack { session, .. }
            | Frame::Reject { session, .. }
            | Frame::Drain { session } => session,
        }
    }

    fn type_code(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Batch { .. } => 2,
            Frame::Ack { .. } => 3,
            Frame::Reject { .. } => 4,
            Frame::Drain { .. } => 5,
        }
    }
}

/// Encodes a frame into its sealed wire form.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let (seq, payload): (u64, Vec<u8>) = match frame {
        Frame::Hello { user, .. } => {
            let mut w = WireWriter::new();
            w.u64(*user);
            (0, w.into_bytes())
        }
        Frame::Batch { seq, payload, .. } => (*seq, payload.clone()),
        Frame::Ack { seq, status, .. } => (*seq, vec![status.code()]),
        Frame::Reject {
            seq,
            reason,
            retry_after_ns,
            ..
        } => {
            let mut w = WireWriter::new();
            w.u16(reason.tag() as u16);
            w.u64(*retry_after_ns);
            (*seq, w.into_bytes())
        }
        Frame::Drain { .. } => (0, Vec::new()),
    };
    let mut w = WireWriter::new();
    w.bytes(&SLCS_MAGIC);
    w.u16(SLCS_VERSION);
    w.u8(frame.type_code());
    w.u64(frame.session());
    w.u64(seq);
    w.u32(payload.len() as u32);
    w.bytes(&payload);
    w.seal()
}

/// Reads the total encoded length of the frame starting at `bytes[0]`,
/// validating only magic, version, and the declared payload length.
///
/// This is the stream-framing primitive: a TCP reader calls it on the
/// first [`SLCS_HEADER_LEN`] bytes to learn how many more to read before
/// handing the whole frame to [`decode_frame`]. Hostile lengths are
/// refused here, before any buffer is sized from them.
pub fn peek_frame_len(bytes: &[u8]) -> Result<usize, WireError> {
    let mut r = WireReader::new(bytes);
    let magic = r.bytes(4)?;
    if magic != SLCS_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic);
        return Err(WireError::BadMagic { found });
    }
    let version = r.u16()?;
    if version != SLCS_VERSION {
        return Err(WireError::UnsupportedVersion { got: version });
    }
    let _type = r.u8()?;
    let _session = r.u64()?;
    let _seq = r.u64()?;
    let paylen = r.u32()? as usize;
    if paylen > SLCS_MAX_PAYLOAD {
        return Err(WireError::BadField { field: "paylen" });
    }
    Ok(SLCS_HEADER_LEN + paylen + 4)
}

/// Decodes and validates one complete sealed frame.
///
/// Checks run in trust order: magic, version, declared length (truncation
/// and trailing garbage), checksum, then frame type and payload domains.
/// Never panics, never reads past `bytes`.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
    let total = peek_frame_len(bytes)?;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            got: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(WireError::TrailingBytes {
            extra: bytes.len() - total,
        });
    }
    let stated = u32::from_le_bytes([
        bytes[total - 4],
        bytes[total - 3],
        bytes[total - 2],
        bytes[total - 1],
    ]);
    let computed = crc32(&bytes[..total - 4]);
    if stated != computed {
        return Err(WireError::ChecksumMismatch { computed, stated });
    }

    let mut r = WireReader::new(&bytes[..total - 4]);
    let _magic = r.bytes(4)?;
    let _version = r.u16()?;
    let frame_type = r.u8()?;
    let session = r.u64()?;
    let seq = r.u64()?;
    let paylen = r.u32()? as usize;
    let payload = r.bytes(paylen)?;

    match frame_type {
        1 => {
            let mut p = WireReader::new(payload);
            let user = p.u64()?;
            if p.remaining() != 0 {
                return Err(WireError::BadField { field: "hello" });
            }
            Ok(Frame::Hello { session, user })
        }
        2 => Ok(Frame::Batch {
            session,
            seq,
            payload: payload.to_vec(),
        }),
        3 => {
            let mut p = WireReader::new(payload);
            let status = AckStatus::from_code(p.u8()?).ok_or(WireError::BadField {
                field: "ack-status",
            })?;
            if p.remaining() != 0 {
                return Err(WireError::BadField { field: "ack" });
            }
            Ok(Frame::Ack {
                session,
                seq,
                status,
            })
        }
        4 => {
            let mut p = WireReader::new(payload);
            let reason = ShedReason::from_tag(u64::from(p.u16()?)).ok_or(WireError::BadField {
                field: "reject-reason",
            })?;
            let retry_after_ns = p.u64()?;
            if p.remaining() != 0 {
                return Err(WireError::BadField { field: "reject" });
            }
            Ok(Frame::Reject {
                session,
                seq,
                reason,
                retry_after_ns,
            })
        }
        5 => {
            if !payload.is_empty() {
                return Err(WireError::BadField { field: "drain" });
            }
            Ok(Frame::Drain { session })
        }
        _ => Err(WireError::BadField {
            field: "frame-type",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn every_frame() -> Vec<Frame> {
        vec![
            Frame::Hello {
                session: 7,
                user: 0xDEAD_BEEF,
            },
            Frame::Batch {
                session: 7,
                seq: 3,
                payload: vec![1, 2, 3, 4, 5],
            },
            Frame::Ack {
                session: 7,
                seq: 3,
                status: AckStatus::Accepted,
            },
            Frame::Reject {
                session: 7,
                seq: 4,
                reason: ShedReason::QueueFull,
                retry_after_ns: 1_500_000_000,
            },
            Frame::Drain { session: 7 },
        ]
    }

    #[test]
    fn every_frame_round_trips() {
        for frame in every_frame() {
            let bytes = encode_frame(&frame);
            assert_eq!(peek_frame_len(&bytes), Ok(bytes.len()), "{frame:?}");
            assert_eq!(decode_frame(&bytes).as_ref(), Ok(&frame));
        }
    }

    #[test]
    fn ack_statuses_round_trip() {
        for status in [
            AckStatus::Accepted,
            AckStatus::Duplicate,
            AckStatus::Quarantined,
        ] {
            assert_eq!(AckStatus::from_code(status.code()), Some(status));
        }
        assert_eq!(AckStatus::from_code(0), None);
        assert_eq!(AckStatus::from_code(9), None);
    }

    #[test]
    fn every_shed_reason_survives_the_wire() {
        for reason in ShedReason::ALL {
            let frame = Frame::Reject {
                session: 1,
                seq: 2,
                reason,
                retry_after_ns: 9,
            };
            assert_eq!(decode_frame(&encode_frame(&frame)), Ok(frame));
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        for frame in every_frame() {
            let bytes = encode_frame(&frame);
            for cut in SLCS_HEADER_LEN..bytes.len() {
                let err = decode_frame(&bytes[..cut]).expect_err("prefix decoded");
                assert!(
                    matches!(err, WireError::Truncated { .. }),
                    "{frame:?} cut at {cut}: {err}"
                );
            }
        }
    }

    #[test]
    fn hostile_paylen_is_refused_before_allocation() {
        let mut bytes = encode_frame(&Frame::Drain { session: 1 });
        let at = SLCS_HEADER_LEN - 4;
        bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            peek_frame_len(&bytes),
            Err(WireError::BadField { field: "paylen" })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_frame(&Frame::Drain { session: 1 });
        bytes.push(0);
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let good = encode_frame(&Frame::Drain { session: 1 });
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            peek_frame_len(&bad),
            Err(WireError::BadMagic { .. })
        ));
        let mut bad = good;
        bad[4] = 9;
        assert_eq!(
            peek_frame_len(&bad),
            Err(WireError::UnsupportedVersion { got: 9 })
        );
    }

    #[test]
    fn single_byte_corruption_never_forges_a_frame() {
        let bytes = encode_frame(&Frame::Batch {
            session: 5,
            seq: 1,
            payload: vec![0xAA; 16],
        });
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            assert!(decode_frame(&bad).is_err(), "flip at byte {i} undetected");
        }
    }
}
