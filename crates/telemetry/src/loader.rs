//! Reconnect bookkeeping for the load generator.
//!
//! The `collector-load` binary drives strictly sequential uploads per
//! user. Before this module it treated every ACK as final: after a
//! server kill it reconnected and carried on from the pre-crash ACK
//! frontier, leaning on a whole-run verify pass to patch holes at the
//! end. That is wrong in a sharper way once the server persists through
//! a [`crate::storage::CheckpointStore`]: a restart can recover an
//! *older generation*, silently discarding batches it acked after that
//! generation was sealed — and nothing in the SLCS reply stream tells
//! the client which generation survived.
//!
//! [`LoaderUser`] makes the frontier honest. ACKs are only *tentative*
//! until proven against the current server incarnation; a reconnect
//! invalidates the proof (the peer may be a freshly recovered process),
//! and the loader re-offers the whole tentative frontier before sending
//! anything new. The collector's dedup set — which is part of the
//! checkpoint, so it travels with whatever generation was recovered —
//! makes re-proving cheap: batches the recovered generation kept come
//! back `Duplicate`, and batches it lost come back `Accepted`, which is
//! exactly the gap being resent. The re-proof is what makes the final
//! dataset byte-identical to an uninterrupted run no matter where the
//! kill landed relative to the checkpoint cadence.

use crate::ingest::Ingested;
use crate::slcs::AckStatus;

/// What a reconnect means for the upload plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconnectOutcome {
    /// Nothing was ever kept: continue from the first batch.
    FreshStart,
    /// The tentative frontier `first..=last` must be re-offered (and
    /// re-proved) against the new server incarnation before any fresh
    /// upload; the recovered generation may predate any of it.
    Reverify {
        /// First sequence number to re-offer.
        first: u64,
        /// Last sequence number to re-offer (the tentative frontier).
        last: u64,
    },
}

/// Sequential upload state for one load-generator user, with
/// restart-aware frontier accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoaderUser {
    user: u64,
    total: u64,
    /// Next sequence number to offer (1-based; `total + 1` when done).
    cursor: u64,
    /// Tentative frontier: highest contiguous seq ever kept-acked.
    acked: u64,
    /// Batches a restart had actually lost (acked before a reconnect,
    /// `Accepted` — not `Duplicate` — when re-offered after it).
    gap_resent: u64,
    /// Reconnects observed.
    reconnects: u64,
}

impl LoaderUser {
    /// A user that will upload sequence numbers `1..=total`.
    pub fn new(user: u64, total: u64) -> Self {
        LoaderUser {
            user,
            total,
            cursor: 1,
            acked: 0,
            gap_resent: 0,
            reconnects: 0,
        }
    }

    /// The user identifier.
    pub fn user(&self) -> u64 {
        self.user
    }

    /// The next sequence number to offer, or `None` when every batch has
    /// been kept by the current server incarnation.
    pub fn next_seq(&self) -> Option<u64> {
        if self.cursor <= self.total {
            Some(self.cursor)
        } else {
            None
        }
    }

    /// Whether the offer at `seq` re-proves an already-acked batch
    /// (true) or is a fresh upload (false).
    pub fn is_reproof(&self, seq: u64) -> bool {
        seq <= self.acked
    }

    /// Records a kept ACK (`Accepted`, `Duplicate`, or `Quarantined` —
    /// the server holds the batch either way) for the cursor's sequence
    /// number and advances.
    pub fn on_kept(&mut self, seq: u64, status: AckStatus) {
        debug_assert_eq!(seq, self.cursor, "uploads are strictly sequential");
        if self.is_reproof(seq) {
            // Re-proving the frontier: `Duplicate` means the recovered
            // generation kept it; anything else means the restart had
            // lost it and this offer just resent the gap.
            if status != AckStatus::Duplicate {
                self.gap_resent += 1;
            }
        } else {
            self.acked = seq;
        }
        self.cursor = seq + 1;
    }

    /// Invalidates the incarnation proof: the peer on the next exchange
    /// may be a restarted server that recovered an older checkpoint
    /// generation, so the whole tentative frontier must be re-offered.
    pub fn on_reconnect(&mut self) -> ReconnectOutcome {
        self.reconnects += 1;
        self.cursor = 1;
        if self.acked == 0 {
            ReconnectOutcome::FreshStart
        } else {
            ReconnectOutcome::Reverify {
                first: 1,
                last: self.acked,
            }
        }
    }

    /// Every batch offered and kept, with the frontier proven against
    /// the server incarnation that saw the last offer.
    pub fn is_done(&self) -> bool {
        self.cursor > self.total
    }

    /// Batches a restart had lost and this loader resent.
    pub fn gap_resent(&self) -> u64 {
        self.gap_resent
    }

    /// Reconnects observed.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }
}

/// Maps a direct [`crate::ingest::Collector::submit`] result onto the
/// ACK status a served session would have returned — the in-process
/// equivalence the loader tests (and the simtest harness) rely on.
pub fn ack_status_of(ingested: &Ingested) -> AckStatus {
    match ingested {
        Ingested::Accepted { .. } => AckStatus::Accepted,
        Ingested::Duplicate => AckStatus::Duplicate,
        Ingested::Quarantined { .. } => AckStatus::Quarantined,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{decode_server_checkpoint, encode_server_checkpoint};
    use crate::client::synthetic_batch;
    use crate::ingest::Collector;
    use starlink_simcore::SimTime;

    /// Drives `user` to completion against `collector`, honouring the
    /// loader's cursor, and returns when every batch is kept.
    fn drive(user: &mut LoaderUser, collector: &mut Collector, pages: u32) {
        while let Some(seq) = user.next_seq() {
            let payload = synthetic_batch(user.user(), seq, pages);
            let status = ack_status_of(&collector.submit(&payload, SimTime::from_secs(seq)));
            user.on_kept(seq, status);
        }
    }

    #[test]
    fn uninterrupted_run_needs_no_resends() {
        let mut collector = Collector::new();
        let mut user = LoaderUser::new(3, 8);
        drive(&mut user, &mut collector, 4);
        assert!(user.is_done());
        assert_eq!(user.gap_resent(), 0);
        assert_eq!(collector.accepted_batches(), 8);
    }

    #[test]
    fn restart_onto_an_older_generation_resends_exactly_the_gap() {
        // Reference: a straight-through run.
        let mut reference = Collector::new();
        let mut ref_user = LoaderUser::new(7, 8);
        drive(&mut ref_user, &mut reference, 4);

        // Interrupted run: the server seals a checkpoint generation
        // after seq 5, keeps acking through seq 8, then dies and comes
        // back on the older generation — batches 6..=8 are gone from the
        // dataset but their acks already reached the client.
        let mut collector = Collector::new();
        let mut user = LoaderUser::new(7, 8);
        for seq in 1..=8u64 {
            assert_eq!(user.next_seq(), Some(seq));
            let payload = synthetic_batch(7, seq, 4);
            let status = ack_status_of(&collector.submit(&payload, SimTime::from_secs(seq)));
            user.on_kept(seq, status);
        }
        let generation_after_5 = {
            let mut at_5 = Collector::new();
            for seq in 1..=5u64 {
                at_5.submit(&synthetic_batch(7, seq, 4), SimTime::from_secs(seq));
            }
            encode_server_checkpoint(&at_5)
        };
        let mut recovered =
            decode_server_checkpoint(&generation_after_5).expect("generation blob is valid");
        assert_eq!(recovered.accepted_batches(), 5, "restart lost 6..=8");

        // The loader must NOT assume its pre-crash frontier of 8.
        assert_eq!(
            user.on_reconnect(),
            ReconnectOutcome::Reverify { first: 1, last: 8 }
        );
        drive(&mut user, &mut recovered, 4);
        assert!(user.is_done());
        assert_eq!(
            user.gap_resent(),
            3,
            "exactly the batches the recovered generation lost"
        );
        assert_eq!(
            recovered.dataset().digest(),
            reference.dataset().digest(),
            "after the gap resend the dataset matches the uninterrupted run"
        );
    }

    #[test]
    fn reconnect_without_data_loss_proves_the_frontier_by_duplicates() {
        let mut collector = Collector::new();
        let mut user = LoaderUser::new(1, 4);
        for seq in 1..=2u64 {
            let payload = synthetic_batch(1, seq, 3);
            let status = ack_status_of(&collector.submit(&payload, SimTime::from_secs(seq)));
            user.on_kept(seq, status);
        }
        // TCP blip, same server process: re-proof costs two Duplicates.
        assert_eq!(
            user.on_reconnect(),
            ReconnectOutcome::Reverify { first: 1, last: 2 }
        );
        drive(&mut user, &mut collector, 3);
        assert_eq!(user.gap_resent(), 0);
        assert_eq!(collector.accepted_batches(), 4);
        // Each synthetic batch carries `pages` page records plus one
        // speedtest; both re-offers were deduplicated whole.
        assert_eq!(collector.duplicates(), 2 * 4, "records re-offered, deduped");
    }

    #[test]
    fn double_crash_reproves_from_scratch_each_time() {
        let mut user = LoaderUser::new(2, 6);
        let mut collector = Collector::new();
        for seq in 1..=3u64 {
            let payload = synthetic_batch(2, seq, 2);
            let status = ack_status_of(&collector.submit(&payload, SimTime::from_secs(seq)));
            user.on_kept(seq, status);
        }
        // Crash onto an empty dataset (generation 0 — nothing sealed).
        let mut empty = Collector::new();
        user.on_reconnect();
        for seq in 1..=3u64 {
            let payload = synthetic_batch(2, seq, 2);
            let status = ack_status_of(&empty.submit(&payload, SimTime::from_secs(seq)));
            user.on_kept(seq, status);
        }
        assert_eq!(user.gap_resent(), 3);
        // Second crash, this time nothing was lost.
        user.on_reconnect();
        drive(&mut user, &mut empty, 2);
        assert_eq!(user.gap_resent(), 3, "no new losses, no new resends");
        assert_eq!(empty.accepted_batches(), 6);
        assert_eq!(user.reconnects(), 2);
    }

    #[test]
    fn fresh_start_reconnect_has_nothing_to_reverify() {
        let mut user = LoaderUser::new(1, 5);
        assert_eq!(user.on_reconnect(), ReconnectOutcome::FreshStart);
        assert_eq!(user.next_seq(), Some(1));
    }
}
