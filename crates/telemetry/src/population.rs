//! The extension's user population.
//!
//! 28 users installed the extension and shared data: 18 on Starlink, 10 on
//! the connections Starlink's rural market typically compares against
//! (cellular and long-loop DSL). The paper's Table 1 cities — London,
//! Seattle, Sydney — carry most of the data because they had users of all
//! ISP classes; the remaining cities hold one or two users each.
//!
//! Per the paper's ethics section, a user is nothing but a random
//! identifier plus (city, ISP class): no IPs, no device identifiers. The
//! ISP class is what the IPinfo lookup in the real pipeline produced; the
//! address itself was discarded immediately.

use starlink_channel::AccessTech;
use starlink_geo::City;
use starlink_simcore::SimRng;

/// A user's ISP classification (the only network identity retained).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IspClass {
    /// Starlink subscriber.
    Starlink,
    /// Non-Starlink subscriber on the given access technology.
    NonStarlink(AccessTech),
}

impl IspClass {
    /// Whether this user counts into the paper's "Starlink" columns.
    pub fn is_starlink(self) -> bool {
        matches!(self, IspClass::Starlink)
    }

    /// The underlying access technology.
    pub fn tech(self) -> AccessTech {
        match self {
            IspClass::Starlink => AccessTech::Starlink,
            IspClass::NonStarlink(t) => t,
        }
    }
}

/// One (anonymised) extension user.
#[derive(Debug, Clone)]
pub struct User {
    /// Random identifier — the only key records carry.
    pub id: u64,
    /// Home city.
    pub city: City,
    /// ISP classification.
    pub isp: IspClass,
    /// Relative browsing intensity (pages/day multiplier).
    pub activity: f64,
    /// Probability of running the in-extension speedtest on a given day.
    pub speedtest_propensity: f64,
}

/// The deployed population.
#[derive(Debug, Clone)]
pub struct Population {
    /// All users who shared data.
    pub users: Vec<User>,
}

/// Struct-of-arrays view of a [`Population`]: one column per attribute,
/// parallel by user index.
///
/// The 28-user paper population stays row-major (it is tiny and its
/// byte-identity is pinned by the seed corpus); the columns exist so
/// batch consumers — the sharded campaign engine, coverage ledgers,
/// analysis sweeps — can iterate one attribute without dragging whole
/// rows through the cache.
#[derive(Debug, Clone, Default)]
pub struct PopulationColumns {
    /// Random identifiers, population order.
    pub id: Vec<u64>,
    /// Home-city wire codes, parallel to `id`.
    pub city_code: Vec<u8>,
    /// ISP classifications, parallel to `id`.
    pub isp: Vec<IspClass>,
    /// Browsing-intensity multipliers, parallel to `id`.
    pub activity: Vec<f64>,
    /// Daily speedtest probabilities, parallel to `id`.
    pub speedtest_propensity: Vec<f64>,
}

impl PopulationColumns {
    /// Number of users.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    /// User `i`'s row, materialised from the columns.
    pub fn row(&self, i: usize) -> User {
        User {
            id: self.id[i],
            city: City::from_code(self.city_code[i]).unwrap_or(City::ALL[0]),
            isp: self.isp[i],
            activity: self.activity[i],
            speedtest_propensity: self.speedtest_propensity[i],
        }
    }
}

/// (city, starlink users, non-starlink users, activity weight) — London,
/// Seattle and Sydney get both classes and the highest activity, mirroring
/// Table 1's data volumes.
const PLAN: [(City, u32, u32, f64); 10] = [
    (City::London, 4, 2, 2.2),
    (City::Seattle, 2, 1, 1.1),
    (City::Sydney, 2, 1, 1.0),
    (City::Toronto, 2, 1, 0.7),
    (City::Warsaw, 2, 1, 0.7),
    (City::Berlin, 1, 1, 0.5),
    (City::Amsterdam, 1, 1, 0.5),
    (City::Austin, 1, 1, 0.5),
    (City::Denver, 1, 1, 0.5),
    (City::Brisbane, 2, 0, 0.5),
];

impl Population {
    /// Generates the 28-user population deterministically from `seed`.
    pub fn generate(seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed).stream("telemetry.population");
        let mut users = Vec::with_capacity(28);
        for &(city, starlink, non_starlink, weight) in &PLAN {
            for _ in 0..starlink {
                users.push(Self::make_user(&mut rng, city, IspClass::Starlink, weight));
            }
            for _ in 0..non_starlink {
                // The non-Starlink population skews cellular, the rest on
                // rural DSL — what Starlink's target market migrates from.
                let cell_share =
                    starlink_channel::CityProfile::for_city(city).non_starlink_cellular_share;
                let tech = if rng.bernoulli(cell_share) {
                    AccessTech::Cellular
                } else {
                    AccessTech::RuralBroadband
                };
                users.push(Self::make_user(
                    &mut rng,
                    city,
                    IspClass::NonStarlink(tech),
                    weight,
                ));
            }
        }
        Population { users }
    }

    fn make_user(rng: &mut SimRng, city: City, isp: IspClass, weight: f64) -> User {
        User {
            id: rng.next_u64(),
            city,
            isp,
            activity: weight * rng.lognormal(0.0, 0.35),
            speedtest_propensity: rng.range_f64(0.08, 0.30),
        }
    }

    /// All users in `city`.
    pub fn in_city(&self, city: City) -> impl Iterator<Item = &User> {
        self.users.iter().filter(move |u| u.city == city)
    }

    /// Count of Starlink users.
    pub fn starlink_count(&self) -> usize {
        self.users.iter().filter(|u| u.isp.is_starlink()).count()
    }

    /// The struct-of-arrays view of this population.
    pub fn columns(&self) -> PopulationColumns {
        let mut c = PopulationColumns::default();
        for u in &self.users {
            c.id.push(u.id);
            c.city_code.push(u.city.code());
            c.isp.push(u.isp);
            c.activity.push(u.activity);
            c.speedtest_propensity.push(u.speedtest_propensity);
        }
        c
    }

    /// Distinct cities covered.
    pub fn cities(&self) -> Vec<City> {
        let mut cities: Vec<City> = self.users.iter().map(|u| u.city).collect();
        cities.sort_by_key(|c| c.name());
        cities.dedup();
        cities
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_matches_the_paper_deployment() {
        let p = Population::generate(1);
        assert_eq!(p.users.len(), 28, "28 users shared data");
        assert_eq!(p.starlink_count(), 18, "18 of them on Starlink");
        assert_eq!(p.cities().len(), 10, "10 cities");
    }

    #[test]
    fn table1_cities_have_both_classes() {
        let p = Population::generate(2);
        for city in [City::London, City::Seattle, City::Sydney] {
            let starlink = p.in_city(city).filter(|u| u.isp.is_starlink()).count();
            let non = p.in_city(city).filter(|u| !u.isp.is_starlink()).count();
            assert!(starlink >= 1, "{city}: no Starlink users");
            assert!(non >= 1, "{city}: no comparison users");
        }
    }

    #[test]
    fn london_is_the_heaviest_cohort() {
        let p = Population::generate(3);
        let activity = |city: City| p.in_city(city).map(|u| u.activity).sum::<f64>();
        let london = activity(City::London);
        for city in [City::Seattle, City::Sydney, City::Toronto] {
            assert!(london > activity(city), "London must dominate {city}");
        }
    }

    #[test]
    fn user_ids_are_unique_and_opaque() {
        let p = Population::generate(4);
        let mut ids: Vec<u64> = p.users.iter().map(|u| u.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 28, "ids must be unique");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Population::generate(9);
        let b = Population::generate(9);
        for (x, y) in a.users.iter().zip(&b.users) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.city, y.city);
        }
    }

    #[test]
    fn columns_round_trip_the_rows() {
        let p = Population::generate(6);
        let c = p.columns();
        assert_eq!(c.len(), p.users.len());
        for (i, u) in p.users.iter().enumerate() {
            let row = c.row(i);
            assert_eq!(row.id, u.id);
            assert_eq!(row.city, u.city);
            assert_eq!(row.isp, u.isp);
            assert_eq!(row.activity.to_bits(), u.activity.to_bits());
            assert_eq!(
                row.speedtest_propensity.to_bits(),
                u.speedtest_propensity.to_bits()
            );
        }
    }

    #[test]
    fn non_starlink_mix_is_cellular_heavy() {
        // Aggregate across seeds to smooth the small population.
        let mut cellular = 0;
        let mut dsl = 0;
        for seed in 0..30 {
            let p = Population::generate(seed);
            for u in &p.users {
                match u.isp {
                    IspClass::NonStarlink(AccessTech::Cellular) => cellular += 1,
                    IspClass::NonStarlink(AccessTech::RuralBroadband) => dsl += 1,
                    _ => {}
                }
            }
        }
        assert!(cellular > dsl, "cellular {cellular} vs dsl {dsl}");
    }
}
