//! The anonymised records the extension uploads, and the dataset store.
//!
//! Records deliberately mirror the paper's data-management policy: a
//! random user id, the city and ISP class, the timing decomposition — and
//! nothing else. CSV export (see [`Dataset::speedtests_csv`]) matches the
//! paper's stated goal of providing datasets "that can be utilized to
//! equip LEO simulations with real-world data".

use crate::aschange::ExitAs;
use crate::population::IspClass;
use starlink_channel::WeatherCondition;
use starlink_geo::City;
use starlink_simcore::SimTime;
use starlink_web::PttBreakdown;

/// One page-load record.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRecord {
    /// The uploader's random identifier.
    pub user: u64,
    /// City (the only location information retained).
    pub city: City,
    /// ISP class from the (discarded) IPinfo lookup.
    pub isp: IspClass,
    /// Campaign timestamp of the load.
    pub at: SimTime,
    /// Tranco-style rank of the visited site.
    pub rank: u64,
    /// The PTT decomposition, ms.
    pub ptt: PttBreakdown,
    /// Full page-load time, ms (PTT + compute share).
    pub plt_ms: f64,
    /// The exit AS in force (Starlink users only; `None` otherwise).
    pub exit_as: Option<ExitAs>,
    /// Weather at the user's site during the load.
    pub weather: WeatherCondition,
}

impl PageRecord {
    /// Total PTT, ms.
    pub fn ptt_ms(&self) -> f64 {
        self.ptt.total_ms()
    }

    /// Whether the site is "popular" under the paper's rank-200 split.
    pub fn is_popular(&self) -> bool {
        self.rank <= starlink_web::POPULAR_RANK_CUTOFF
    }
}

/// One in-extension (Libretest-style) speedtest record.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedtestRecord {
    /// The uploader's random identifier.
    pub user: u64,
    /// City name.
    pub city: City,
    /// Whether the user is a Starlink subscriber.
    pub starlink: bool,
    /// Campaign timestamp.
    pub at_secs: u64,
    /// Measured downlink, Mbps.
    pub downlink_mbps: f64,
    /// Measured uplink, Mbps.
    pub uplink_mbps: f64,
}

/// The collected dataset.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Page-load records.
    pub pages: Vec<PageRecord>,
    /// Speedtest records.
    pub speedtests: Vec<SpeedtestRecord>,
}

/// A Table 1 row: one (city, ISP class) aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct CityAggregate {
    /// Number of page requests.
    pub requests: usize,
    /// Number of distinct domains.
    pub domains: usize,
    /// Median PTT, ms (0 if no records).
    pub median_ptt_ms: f64,
}

impl Dataset {
    /// Total records.
    pub fn len(&self) -> usize {
        self.pages.len() + self.speedtests.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty() && self.speedtests.is_empty()
    }

    /// The Table 1 aggregate for `(city, starlink?)`.
    pub fn city_aggregate(&self, city: City, starlink: bool) -> CityAggregate {
        let mut ptts: Vec<f64> = Vec::new();
        let mut ranks: Vec<u64> = Vec::new();
        for r in self
            .pages
            .iter()
            .filter(|r| r.city == city && r.isp.is_starlink() == starlink)
        {
            ptts.push(r.ptt_ms());
            ranks.push(r.rank);
        }
        ranks.sort_unstable();
        ranks.dedup();
        let median = median_of(&mut ptts);
        CityAggregate {
            requests: ptts.len(),
            domains: ranks.len(),
            median_ptt_ms: median,
        }
    }

    /// Median speedtest downlink/uplink (Mbps) for Starlink users in a
    /// city — a Table 3 cell pair.
    pub fn speedtest_medians(&self, city: City) -> (f64, f64) {
        let mut dl: Vec<f64> = Vec::new();
        let mut ul: Vec<f64> = Vec::new();
        for r in self
            .speedtests
            .iter()
            .filter(|r| r.city == city && r.starlink)
        {
            dl.push(r.downlink_mbps);
            ul.push(r.uplink_mbps);
        }
        (median_of(&mut dl), median_of(&mut ul))
    }

    /// PTT samples filtered for the Fig. 3 CDFs: Starlink users in `city`,
    /// split by popularity and exit AS.
    pub fn fig3_samples(&self, city: City, popular: bool, exit_as: ExitAs) -> Vec<f64> {
        self.pages
            .iter()
            .filter(|r| {
                r.city == city
                    && r.isp.is_starlink()
                    && r.is_popular() == popular
                    && r.exit_as == Some(exit_as)
            })
            .map(|r| r.ptt_ms())
            .collect()
    }

    /// PTT samples for the Fig. 4 weather boxes: Starlink users in `city`
    /// visiting popular (CDN-class, "google services"-like) sites under
    /// `weather`.
    pub fn fig4_samples(&self, city: City, weather: WeatherCondition) -> Vec<f64> {
        self.pages
            .iter()
            .filter(|r| {
                r.city == city && r.isp.is_starlink() && r.weather == weather && r.rank <= 500
            })
            .map(|r| r.ptt_ms())
            .collect()
    }

    /// Removes every record whose timestamp falls inside one of the given
    /// dropout windows (half-open `[start, end)`), modelling telemetry
    /// nodes that were offline and never uploaded. Returns how many
    /// records were dropped.
    pub fn apply_node_dropouts(&mut self, windows: &[(SimTime, SimTime)]) -> usize {
        let in_window = |t: SimTime| windows.iter().any(|&(s, e)| s <= t && t < e);
        let before = self.len();
        self.pages.retain(|r| !in_window(r.at));
        self.speedtests
            .retain(|r| !in_window(SimTime::from_secs(r.at_secs)));
        before - self.len()
    }

    /// Sorts both record vectors into the canonical order: by user, then
    /// timestamp, then the remaining fields as tie-breakers.
    ///
    /// A straight-through campaign run collects records user-major; an
    /// interrupted-and-resumed run collects them day-major. Canonical
    /// sorting erases that ordering difference, so "same seed ⇒ identical
    /// dataset" can be checked byte-for-byte with [`Dataset::digest`].
    pub fn sort_canonical(&mut self) {
        self.pages.sort_by(|a, b| {
            (
                a.user,
                a.at,
                a.rank,
                a.plt_ms.to_bits(),
                a.ptt.request_ms.to_bits(),
            )
                .cmp(&(
                    b.user,
                    b.at,
                    b.rank,
                    b.plt_ms.to_bits(),
                    b.ptt.request_ms.to_bits(),
                ))
        });
        self.speedtests.sort_by(|a, b| {
            (a.user, a.at_secs, a.downlink_mbps.to_bits()).cmp(&(
                b.user,
                b.at_secs,
                b.downlink_mbps.to_bits(),
            ))
        });
    }

    /// A 64-bit FNV-1a digest over the wire encoding of every record, in
    /// the dataset's current order. Two datasets with equal digests after
    /// [`Dataset::sort_canonical`] are byte-identical.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut hash = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        let mut w = crate::wire::WireWriter::new();
        for r in &self.pages {
            crate::wire::encode_page(&mut w, r);
        }
        for r in &self.speedtests {
            crate::wire::encode_speedtest(&mut w, r);
        }
        eat(&w.into_bytes());
        eat(&(self.pages.len() as u64).to_le_bytes());
        eat(&(self.speedtests.len() as u64).to_le_bytes());
        hash
    }

    /// Exports the speedtest records as CSV.
    pub fn speedtests_csv(&self) -> String {
        let mut out = String::from("user,city,starlink,at_secs,downlink_mbps,uplink_mbps\n");
        for r in &self.speedtests {
            out.push_str(&format!(
                "{:016x},{},{},{},{:.1},{:.1}\n",
                r.user,
                r.city.name(),
                r.starlink,
                r.at_secs,
                r.downlink_mbps,
                r.uplink_mbps
            ));
        }
        out
    }
}

/// Median (sorts in place; 0 for empty input). Uses a total order so that
/// a stray NaN from an upstream model sorts last instead of panicking.
fn median_of(v: &mut [f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_web::PttBreakdown;

    fn record(city: City, starlink: bool, rank: u64, ptt_ms: f64) -> PageRecord {
        let isp = if starlink {
            IspClass::Starlink
        } else {
            IspClass::NonStarlink(starlink_channel::AccessTech::Cellular)
        };
        PageRecord {
            user: 1,
            city,
            isp,
            at: SimTime::ZERO,
            rank,
            ptt: PttBreakdown {
                request_ms: ptt_ms,
                ..PttBreakdown::default()
            },
            plt_ms: ptt_ms + 100.0,
            exit_as: starlink.then_some(ExitAs::Google),
            weather: WeatherCondition::ClearSky,
        }
    }

    #[test]
    fn city_aggregate_counts_and_medians() {
        let mut ds = Dataset::default();
        for (rank, ptt) in [(1, 100.0), (2, 300.0), (1, 200.0)] {
            ds.pages.push(record(City::London, true, rank, ptt));
        }
        ds.pages.push(record(City::London, false, 9, 999.0));
        ds.pages.push(record(City::Seattle, true, 1, 50.0));

        let agg = ds.city_aggregate(City::London, true);
        assert_eq!(agg.requests, 3);
        assert_eq!(agg.domains, 2);
        assert_eq!(agg.median_ptt_ms, 200.0);

        let non = ds.city_aggregate(City::London, false);
        assert_eq!(non.requests, 1);
        assert_eq!(non.median_ptt_ms, 999.0);
    }

    #[test]
    fn empty_aggregate_is_zeroed() {
        let ds = Dataset::default();
        let agg = ds.city_aggregate(City::Warsaw, true);
        assert_eq!(agg.requests, 0);
        assert_eq!(agg.median_ptt_ms, 0.0);
        assert!(ds.is_empty());
    }

    #[test]
    fn fig3_filter_selects_correct_slice() {
        let mut ds = Dataset::default();
        ds.pages.push(record(City::Sydney, true, 100, 10.0)); // popular
        ds.pages.push(record(City::Sydney, true, 5_000, 20.0)); // unpopular
        ds.pages.push(record(City::Sydney, false, 100, 30.0)); // non-starlink
        let popular = ds.fig3_samples(City::Sydney, true, ExitAs::Google);
        assert_eq!(popular, vec![10.0]);
        let unpopular = ds.fig3_samples(City::Sydney, false, ExitAs::Google);
        assert_eq!(unpopular, vec![20.0]);
        assert!(ds
            .fig3_samples(City::Sydney, true, ExitAs::SpaceX)
            .is_empty());
    }

    #[test]
    fn speedtest_median_and_csv() {
        let mut ds = Dataset::default();
        for (dl, ul) in [(100.0, 10.0), (120.0, 12.0), (140.0, 11.0)] {
            ds.speedtests.push(SpeedtestRecord {
                user: 7,
                city: City::London,
                starlink: true,
                at_secs: 0,
                downlink_mbps: dl,
                uplink_mbps: ul,
            });
        }
        let (dl, ul) = ds.speedtest_medians(City::London);
        assert_eq!(dl, 120.0);
        assert_eq!(ul, 11.0);
        let csv = ds.speedtests_csv();
        assert!(csv.starts_with("user,city,"));
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("London"));
    }

    #[test]
    fn canonical_sort_and_digest_erase_collection_order() {
        let mut a = Dataset::default();
        let mut b = Dataset::default();
        let r1 = record(City::London, true, 1, 100.0);
        let mut r2 = record(City::Seattle, true, 2, 200.0);
        r2.user = 9;
        a.pages = vec![r1.clone(), r2.clone()];
        b.pages = vec![r2, r1];
        assert_ne!(a.digest(), b.digest(), "order must matter pre-sort");
        a.sort_canonical();
        b.sort_canonical();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.pages, b.pages);
    }

    #[test]
    fn digest_distinguishes_datasets() {
        let mut a = Dataset::default();
        a.pages.push(record(City::London, true, 1, 100.0));
        let mut b = a.clone();
        b.pages[0].plt_ms += 0.000_001;
        assert_ne!(a.digest(), b.digest());
        assert_ne!(Dataset::default().digest(), a.digest());
    }

    #[test]
    fn node_dropouts_remove_windowed_records() {
        let mut ds = Dataset::default();
        for secs in [10u64, 50, 90] {
            let mut r = record(City::London, true, 1, 100.0);
            r.at = SimTime::from_secs(secs);
            ds.pages.push(r);
            ds.speedtests.push(SpeedtestRecord {
                user: 7,
                city: City::London,
                starlink: true,
                at_secs: secs,
                downlink_mbps: 100.0,
                uplink_mbps: 10.0,
            });
        }
        let dropped = ds.apply_node_dropouts(&[(SimTime::from_secs(40), SimTime::from_secs(60))]);
        assert_eq!(dropped, 2);
        assert_eq!(ds.pages.len(), 2);
        assert_eq!(ds.speedtests.len(), 2);
        assert!(ds.pages.iter().all(|r| r.at.as_secs() != 50));
    }
}
