//! `collector-serve` — the collector as a real TCP service.
//!
//! ```text
//! collector-serve --listen 127.0.0.1:7878 \
//!     [--checkpoint PATH] [--checkpoint-every N] [--digest PATH] \
//!     [--exit-on-drain] [--rate-milli R] [--burst B] [--queue Q] \
//!     [--global-bytes G] [--drain-bps D]
//! ```
//!
//! Speaks SLCS v1 over TCP: thread-per-connection, one reply frame per
//! request frame, all admission state behind one lock so concurrent
//! sessions see a single consistent budget. Wall-clock time maps onto the
//! virtual clock as nanoseconds since process start; the admission layer
//! tolerates the non-monotonic interleavings real threads produce.
//!
//! Durability: with `--checkpoint`, every `--checkpoint-every` admitted
//! batches the collector state is sealed to a temp file and atomically
//! renamed into place, and a checkpoint found at startup is resumed
//! (SIGKILL + restart = at-most-one-checkpoint of lost acks, which the
//! loader's verify pass re-sends; the final dataset is byte-identical to
//! an uninterrupted run). A DRAIN frame seals a final checkpoint, writes
//! the canonical dataset digest to `--digest`, and — with
//! `--exit-on-drain` — stops the process once the reply is flushed.

use starlink_telemetry::slcs::{peek_frame_len, SLCS_HEADER_LEN};
use starlink_telemetry::SLCS_MAGIC;
use starlink_telemetry::{
    decode_server_checkpoint, encode_server_checkpoint, AdmissionConfig, Collector, CollectorServer,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use starlink_simcore::SimTime;

struct Opts {
    listen: String,
    checkpoint: Option<PathBuf>,
    checkpoint_every: u64,
    digest: Option<PathBuf>,
    exit_on_drain: bool,
    config: AdmissionConfig,
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: collector-serve --listen ADDR [--checkpoint PATH] [--checkpoint-every N]\n\
         \x20      [--digest PATH] [--exit-on-drain] [--rate-milli R] [--burst B]\n\
         \x20      [--queue Q] [--global-bytes G] [--drain-bps D]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        listen: String::new(),
        checkpoint: None,
        checkpoint_every: 64,
        digest: None,
        exit_on_drain: false,
        config: AdmissionConfig::generous(),
    };
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>, name: &str| -> u64 {
        it.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage(&format!("{name} needs a number")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => opts.listen = it.next().unwrap_or_else(|| usage("--listen needs ADDR")),
            "--checkpoint" => {
                opts.checkpoint = Some(PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| usage("--checkpoint needs PATH")),
                ))
            }
            "--checkpoint-every" => opts.checkpoint_every = num(&mut it, "--checkpoint-every"),
            "--digest" => {
                opts.digest = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| usage("--digest needs PATH")),
                ))
            }
            "--exit-on-drain" => opts.exit_on_drain = true,
            "--rate-milli" => opts.config.session_rate_milli = num(&mut it, "--rate-milli"),
            "--burst" => opts.config.session_burst = num(&mut it, "--burst"),
            "--queue" => opts.config.queue_batches = num(&mut it, "--queue"),
            "--global-bytes" => opts.config.global_bytes = num(&mut it, "--global-bytes"),
            "--drain-bps" => opts.config.drain_bytes_per_sec = num(&mut it, "--drain-bps"),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag: {other}")),
        }
    }
    if opts.listen.is_empty() {
        usage("--listen is required");
    }
    opts
}

/// Everything the connection threads share.
struct Core {
    server: CollectorServer,
    collector: Collector,
    /// Admitted batches (accepted + duplicate + quarantined) at the last
    /// checkpoint, for the every-N trigger.
    admitted_at_checkpoint: u64,
}

impl Core {
    fn admitted(&self) -> u64 {
        let s = self.server.stats();
        s.accepted + s.duplicates + s.quarantined
    }
}

/// Seals the collector to `path` via temp-file + atomic rename, so a kill
/// mid-write can never leave a torn checkpoint behind.
fn write_checkpoint(path: &Path, collector: &Collector) -> std::io::Result<()> {
    let blob = encode_server_checkpoint(collector);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &blob)?;
    std::fs::rename(&tmp, path)
}

fn write_digest(path: &Path, collector: &Collector) -> std::io::Result<()> {
    std::fs::write(path, format!("{:016x}\n", collector.dataset().digest()))
}

/// Reads one SLCS frame off the stream: fixed header first, then exactly
/// the length the (validated) header claims — a hostile length never
/// triggers a large allocation because `peek_frame_len` enforces the
/// payload cap before we size the buffer.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; SLCS_HEADER_LEN];
    stream.read_exact(&mut header)?;
    let total = peek_frame_len(&header)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut frame = vec![0u8; total];
    frame[..SLCS_HEADER_LEN].copy_from_slice(&header);
    stream.read_exact(&mut frame[SLCS_HEADER_LEN..])?;
    Ok(frame)
}

fn serve_connection(
    mut stream: TcpStream,
    core: &Mutex<Core>,
    opts: &Opts,
    epoch: Instant,
    drained: &AtomicBool,
) -> std::io::Result<()> {
    loop {
        let frame = read_frame(&mut stream)?;
        let now = SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
        let is_drain = frame.get(4 + 2) == Some(&5) && frame.starts_with(&SLCS_MAGIC);
        let reply = {
            let mut core = core.lock().expect("no poisoned admission state");
            let Core {
                server, collector, ..
            } = &mut *core;
            let reply = server.handle_frame(collector, &frame, now);
            let admitted = core.admitted();
            if let Some(path) = &opts.checkpoint {
                let due = opts.checkpoint_every > 0
                    && admitted.saturating_sub(core.admitted_at_checkpoint)
                        >= opts.checkpoint_every;
                if due || is_drain {
                    write_checkpoint(path, &core.collector)?;
                    core.admitted_at_checkpoint = admitted;
                }
            }
            if is_drain {
                if let Some(path) = &opts.digest {
                    write_digest(path, &core.collector)?;
                }
            }
            reply
        };
        stream.write_all(&reply)?;
        if is_drain {
            stream.flush()?;
            drained.store(true, Ordering::SeqCst);
            return Ok(());
        }
    }
}

fn main() {
    let opts = parse_opts();
    let mut core = Core {
        server: CollectorServer::new(opts.config),
        collector: Collector::new(),
        admitted_at_checkpoint: 0,
    };
    if let Some(path) = &opts.checkpoint {
        match std::fs::read(path) {
            Ok(bytes) => match decode_server_checkpoint(&bytes) {
                Ok(collector) => {
                    eprintln!(
                        "[serve] resumed {} batch(es) from {}",
                        collector.accepted_batches(),
                        path.display()
                    );
                    core.collector = collector;
                }
                Err(e) => {
                    eprintln!("[serve] refusing checkpoint {}: {e}", path.display());
                    std::process::exit(1);
                }
            },
            Err(_) => eprintln!(
                "[serve] no checkpoint at {}, starting fresh",
                path.display()
            ),
        }
    }

    let listener = TcpListener::bind(&opts.listen)
        .unwrap_or_else(|e| usage(&format!("cannot listen on {}: {e}", opts.listen)));
    eprintln!("[serve] listening on {}", opts.listen);

    let core = Arc::new(Mutex::new(core));
    let opts = Arc::new(opts);
    let drained = Arc::new(AtomicBool::new(false));
    let epoch = Instant::now();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("[serve] accept failed: {e}");
                continue;
            }
        };
        let (core, opts, drained) = (Arc::clone(&core), Arc::clone(&opts), Arc::clone(&drained));
        std::thread::spawn(move || {
            let result = serve_connection(stream, &core, &opts, epoch, &drained);
            if let Err(e) = result {
                // Disconnects are routine (the loader reconnects after a
                // server kill test); only surface unexpected shapes.
                if e.kind() != std::io::ErrorKind::UnexpectedEof {
                    eprintln!("[serve] connection ended: {e}");
                }
            }
            if drained.load(Ordering::SeqCst) && opts.exit_on_drain {
                eprintln!("[serve] drained; exiting");
                std::process::exit(0);
            }
        });
    }
}
