//! `collector-serve` — the collector as a real TCP service.
//!
//! ```text
//! collector-serve --listen 127.0.0.1:7878 \
//!     [--checkpoint PATH | --checkpoint-dir DIR] [--checkpoint-every N] \
//!     [--retain K] [--digest PATH] [--exit-on-drain] \
//!     [--storage-faults SEED | --torn-write-at N | --bit-rot-at N \
//!      | --enospc-at N | --crash-before-rename-at N | --crash-after-rename-at N] \
//!     [--rate-milli R] [--burst B] [--queue Q] [--global-bytes G] [--drain-bps D]
//! ```
//!
//! Speaks SLCS v1 over TCP: thread-per-connection, one reply frame per
//! request frame, all admission state behind one lock so concurrent
//! sessions see a single consistent budget. Wall-clock time maps onto the
//! virtual clock as nanoseconds since process start; the admission layer
//! tolerates the non-monotonic interleavings real threads produce.
//!
//! Durability comes in two tiers:
//!
//! * `--checkpoint PATH` — the legacy single-file path: temp file,
//!   `fsync`, atomic rename, directory `fsync` (power-loss safe, but a
//!   damaged blob at startup is fatal);
//! * `--checkpoint-dir DIR` — the journaled last-good chain
//!   ([`CheckpointStore`]): generation-numbered `ckpt-<gen>.slcp` files
//!   behind a CRC-sealed MANIFEST, `--retain K` generations kept, and
//!   startup recovery that walks back to the newest generation
//!   `decode_server_checkpoint` accepts, quarantining damaged blobs
//!   aside. A storage failure during a checkpoint *sheds the attempt*
//!   (typed, traced) and the service keeps admitting.
//!
//! Disk faults are injectable deterministically for the CI storage-smoke
//! matrix: `--storage-faults SEED` draws a mixed plan the same way the
//! simtest scenario generator does, and the `--…-at N` flags plant one
//! fault at an exact operation index. An injected power loss exits with
//! code 13 so a restart loop can tell "injected crash" from a real
//! failure; the next start recovers from the chain.
//!
//! A DRAIN frame seals a final checkpoint, writes the canonical dataset
//! digest to `--digest`, and — with `--exit-on-drain` — stops the
//! process once the reply is flushed.

use starlink_simcore::SimTime;
use starlink_telemetry::slcs::{peek_frame_len, SLCS_HEADER_LEN};
use starlink_telemetry::storage::{
    sync_real_dir, CheckpointStore, FaultyDisk, RealDisk, StorageError, StorageFault,
    StorageFaultPlan, DEFAULT_RETAIN,
};
use starlink_telemetry::SLCS_MAGIC;
use starlink_telemetry::{
    decode_server_checkpoint, encode_server_checkpoint, AdmissionConfig, Collector, CollectorServer,
};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Exit code for an injected (simulated) power loss, distinct from real
/// failures so restart loops can keep the matrix going.
const EXIT_INJECTED_CRASH: i32 = 13;

struct Opts {
    listen: String,
    checkpoint: Option<PathBuf>,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: u64,
    retain: u64,
    digest: Option<PathBuf>,
    exit_on_drain: bool,
    plan: StorageFaultPlan,
    config: AdmissionConfig,
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: collector-serve --listen ADDR [--checkpoint PATH | --checkpoint-dir DIR]\n\
         \x20      [--checkpoint-every N] [--retain K] [--digest PATH] [--exit-on-drain]\n\
         \x20      [--storage-faults SEED] [--torn-write-at N] [--bit-rot-at N]\n\
         \x20      [--enospc-at N] [--crash-before-rename-at N] [--crash-after-rename-at N]\n\
         \x20      [--rate-milli R] [--burst B] [--queue Q] [--global-bytes G] [--drain-bps D]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        listen: String::new(),
        checkpoint: None,
        checkpoint_dir: None,
        checkpoint_every: 64,
        retain: DEFAULT_RETAIN,
        digest: None,
        exit_on_drain: false,
        plan: StorageFaultPlan::new(),
        config: AdmissionConfig::generous(),
    };
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>, name: &str| -> u64 {
        it.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage(&format!("{name} needs a number")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => opts.listen = it.next().unwrap_or_else(|| usage("--listen needs ADDR")),
            "--checkpoint" => {
                opts.checkpoint = Some(PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| usage("--checkpoint needs PATH")),
                ))
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(PathBuf::from(
                    it.next()
                        .unwrap_or_else(|| usage("--checkpoint-dir needs DIR")),
                ))
            }
            "--checkpoint-every" => opts.checkpoint_every = num(&mut it, "--checkpoint-every"),
            "--retain" => opts.retain = num(&mut it, "--retain"),
            "--digest" => {
                opts.digest = Some(PathBuf::from(
                    it.next().unwrap_or_else(|| usage("--digest needs PATH")),
                ))
            }
            "--exit-on-drain" => opts.exit_on_drain = true,
            "--storage-faults" => {
                // One of each write fault plus a crash pair, drawn like
                // the simtest scenario generator draws them.
                let seed = num(&mut it, "--storage-faults");
                opts.plan = StorageFaultPlan::from_seed(seed, 1, 1, 1, 2);
            }
            "--torn-write-at" => {
                opts.plan.push(StorageFault::TornWrite {
                    write: num(&mut it, "--torn-write-at"),
                    keep_ppm: 500_000,
                });
            }
            "--bit-rot-at" => {
                opts.plan.push(StorageFault::BitRot {
                    write: num(&mut it, "--bit-rot-at"),
                    bit_seed: 0x0b17_0b17_0b17_0b17,
                });
            }
            "--enospc-at" => {
                opts.plan.push(StorageFault::Enospc {
                    write: num(&mut it, "--enospc-at"),
                });
            }
            "--crash-before-rename-at" => {
                opts.plan.push(StorageFault::CrashBeforeRename {
                    rename: num(&mut it, "--crash-before-rename-at"),
                });
            }
            "--crash-after-rename-at" => {
                opts.plan.push(StorageFault::CrashAfterRename {
                    rename: num(&mut it, "--crash-after-rename-at"),
                });
            }
            "--rate-milli" => opts.config.session_rate_milli = num(&mut it, "--rate-milli"),
            "--burst" => opts.config.session_burst = num(&mut it, "--burst"),
            "--queue" => opts.config.queue_batches = num(&mut it, "--queue"),
            "--global-bytes" => opts.config.global_bytes = num(&mut it, "--global-bytes"),
            "--drain-bps" => opts.config.drain_bytes_per_sec = num(&mut it, "--drain-bps"),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag: {other}")),
        }
    }
    if opts.listen.is_empty() {
        usage("--listen is required");
    }
    if opts.checkpoint.is_some() && opts.checkpoint_dir.is_some() {
        usage("--checkpoint and --checkpoint-dir are mutually exclusive");
    }
    if !opts.plan.is_empty() && opts.checkpoint_dir.is_none() {
        usage("storage faults need --checkpoint-dir (the store is the faultable surface)");
    }
    opts
}

/// Everything the connection threads share.
struct Core {
    server: CollectorServer,
    collector: Collector,
    /// The journaled chain, when `--checkpoint-dir` is in use.
    store: Option<CheckpointStore<FaultyDisk>>,
    /// Admitted batches (accepted + duplicate + quarantined) at the last
    /// checkpoint, for the every-N trigger.
    admitted_at_checkpoint: u64,
}

impl Core {
    fn admitted(&self) -> u64 {
        let s = self.server.stats();
        s.accepted + s.duplicates + s.quarantined
    }
}

/// Seals the collector to `path` via temp file, `fsync`, atomic rename,
/// and directory `fsync`, so neither a kill mid-write nor a power loss
/// right after the rename can leave a torn or vanishing checkpoint.
fn write_checkpoint(path: &Path, collector: &Collector) -> std::io::Result<()> {
    let blob = encode_server_checkpoint(collector);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &blob)?;
    std::fs::File::open(&tmp)?.sync_all()?;
    std::fs::rename(&tmp, path)?;
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    sync_real_dir(&parent).map_err(|e| std::io::Error::other(e.to_string()))
}

fn write_digest(path: &Path, collector: &Collector) -> std::io::Result<()> {
    std::fs::write(path, format!("{:016x}\n", collector.dataset().digest()))
}

/// Seals a generation into the journaled chain. Storage failures shed
/// the attempt — the admission loop keeps serving — except an injected
/// power loss, which takes the process down with the dedicated exit code
/// (a restart recovers from the chain).
fn store_generation(store: &mut CheckpointStore<FaultyDisk>, collector: &Collector, now: SimTime) {
    let blob = encode_server_checkpoint(collector);
    match store.store(&blob, now) {
        Ok(generation) => {
            eprintln!("[serve] sealed checkpoint generation {generation}");
        }
        Err(StorageError::Crashed) => {
            eprintln!("[serve] injected power loss during checkpoint; dying for recovery");
            std::process::exit(EXIT_INJECTED_CRASH);
        }
        Err(e) => {
            eprintln!("[serve] checkpoint attempt shed ({e}); still serving");
        }
    }
}

/// Reads one SLCS frame off the stream: fixed header first, then exactly
/// the length the (validated) header claims — a hostile length never
/// triggers a large allocation because `peek_frame_len` enforces the
/// payload cap before we size the buffer.
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; SLCS_HEADER_LEN];
    stream.read_exact(&mut header)?;
    let total = peek_frame_len(&header)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut frame = vec![0u8; total];
    frame[..SLCS_HEADER_LEN].copy_from_slice(&header);
    stream.read_exact(&mut frame[SLCS_HEADER_LEN..])?;
    Ok(frame)
}

fn serve_connection(
    mut stream: TcpStream,
    core: &Mutex<Core>,
    opts: &Opts,
    epoch: Instant,
    drained: &AtomicBool,
) -> std::io::Result<()> {
    loop {
        let frame = read_frame(&mut stream)?;
        let now = SimTime::from_nanos(epoch.elapsed().as_nanos() as u64);
        let is_drain = frame.get(4 + 2) == Some(&5) && frame.starts_with(&SLCS_MAGIC);
        let reply = {
            let mut core = core.lock().expect("no poisoned admission state");
            let Core {
                server, collector, ..
            } = &mut *core;
            let reply = server.handle_frame(collector, &frame, now);
            let admitted = core.admitted();
            let due = opts.checkpoint_every > 0
                && admitted.saturating_sub(core.admitted_at_checkpoint) >= opts.checkpoint_every;
            if due || is_drain {
                let Core {
                    collector, store, ..
                } = &mut *core;
                if let Some(store) = store {
                    store_generation(store, collector, now);
                    core.admitted_at_checkpoint = admitted;
                } else if let Some(path) = &opts.checkpoint {
                    write_checkpoint(path, &core.collector)?;
                    core.admitted_at_checkpoint = admitted;
                }
            }
            if is_drain {
                if let Some(path) = &opts.digest {
                    write_digest(path, &core.collector)?;
                }
            }
            reply
        };
        stream.write_all(&reply)?;
        if is_drain {
            stream.flush()?;
            drained.store(true, Ordering::SeqCst);
            return Ok(());
        }
    }
}

/// Opens the journaled chain under `dir` and recovers the newest
/// generation that decodes, if any. An injected crash *during recovery*
/// also exits 13: the faults are one-shot, so the restart gets further.
fn open_store(
    dir: &Path,
    retain: u64,
    plan: StorageFaultPlan,
) -> (CheckpointStore<FaultyDisk>, Option<Collector>) {
    let mut disk = FaultyDisk::new(Box::new(RealDisk::new(dir)), plan);
    let mut validate = |blob: &[u8]| decode_server_checkpoint(blob).is_ok();
    // Injected faults are one-shot, so a non-crash open failure (ENOSPC
    // on the initial manifest seal, say) gets a bounded retry on the
    // same disk before giving up.
    for attempt in 0..5 {
        match CheckpointStore::open(disk, retain, &mut validate, SimTime::ZERO) {
            Ok((store, recovered)) => {
                let collector = recovered.map(|r| {
                    eprintln!(
                        "[serve] recovered checkpoint generation {} (walked back {})",
                        r.generation, r.walked_back
                    );
                    decode_server_checkpoint(&r.blob).expect("recovery validated this blob")
                });
                if collector.is_none() {
                    eprintln!(
                        "[serve] no recoverable generation in {}, starting fresh",
                        dir.display()
                    );
                }
                return (store, collector);
            }
            Err(f) if f.error == StorageError::Crashed => {
                eprintln!("[serve] injected power loss during recovery; dying for restart");
                std::process::exit(EXIT_INJECTED_CRASH);
            }
            Err(f) if attempt < 4 => {
                eprintln!("[serve] checkpoint store open shed ({}); retrying", f.error);
                disk = f.disk;
            }
            Err(f) => {
                eprintln!(
                    "[serve] cannot open checkpoint store {}: {}",
                    dir.display(),
                    f.error
                );
                std::process::exit(1);
            }
        }
    }
    unreachable!("loop returns or exits within 5 attempts");
}

fn main() {
    let opts = parse_opts();
    let mut core = Core {
        server: CollectorServer::new(opts.config),
        collector: Collector::new(),
        store: None,
        admitted_at_checkpoint: 0,
    };
    if let Some(dir) = &opts.checkpoint_dir {
        let (store, recovered) = open_store(dir, opts.retain, opts.plan.clone());
        if let Some(collector) = recovered {
            eprintln!(
                "[serve] resumed {} batch(es) from the chain",
                collector.accepted_batches()
            );
            core.collector = collector;
        }
        core.store = Some(store);
    } else if let Some(path) = &opts.checkpoint {
        match std::fs::read(path) {
            Ok(bytes) => match decode_server_checkpoint(&bytes) {
                Ok(collector) => {
                    eprintln!(
                        "[serve] resumed {} batch(es) from {}",
                        collector.accepted_batches(),
                        path.display()
                    );
                    core.collector = collector;
                }
                Err(e) => {
                    eprintln!("[serve] refusing checkpoint {}: {e}", path.display());
                    std::process::exit(1);
                }
            },
            Err(_) => eprintln!(
                "[serve] no checkpoint at {}, starting fresh",
                path.display()
            ),
        }
    }

    let listener = TcpListener::bind(&opts.listen)
        .unwrap_or_else(|e| usage(&format!("cannot listen on {}: {e}", opts.listen)));
    eprintln!("[serve] listening on {}", opts.listen);

    let core = Arc::new(Mutex::new(core));
    let opts = Arc::new(opts);
    let drained = Arc::new(AtomicBool::new(false));
    let epoch = Instant::now();
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("[serve] accept failed: {e}");
                continue;
            }
        };
        let (core, opts, drained) = (Arc::clone(&core), Arc::clone(&opts), Arc::clone(&drained));
        std::thread::spawn(move || {
            let result = serve_connection(stream, &core, &opts, epoch, &drained);
            if let Err(e) = result {
                // Disconnects are routine (the loader reconnects after a
                // server kill test); only surface unexpected shapes.
                if e.kind() != std::io::ErrorKind::UnexpectedEof {
                    eprintln!("[serve] connection ended: {e}");
                }
            }
            if drained.load(Ordering::SeqCst) && opts.exit_on_drain {
                eprintln!("[serve] drained; exiting");
                std::process::exit(0);
            }
        });
    }
}
