//! `collector-load` — a threaded load generator for `collector-serve`.
//!
//! ```text
//! collector-load --connect 127.0.0.1:7878 --users N --batches M \
//!     [--pages P] [--pace-ms MS] [--seed S] [--out PATH]
//! ```
//!
//! One thread per user drives a full SLCS session: HELLO, then `M`
//! [`synthetic_batch`] uploads, honouring every REJECT's `retry_after`
//! hint combined with the shared [`RetryPolicy`] backoff (jitter drawn
//! from a per-user seeded [`SimRng`], so pacing is reproducible). A
//! dropped connection — including the server being SIGKILLed and
//! restarted mid-run — is answered by reconnect-with-retry plus a fresh
//! HELLO, never by giving up.
//!
//! ACKs are treated as **tentative** ([`LoaderUser`]): a reconnect means
//! the peer may be a restarted server that recovered an *older*
//! checkpoint generation, so the loader rewinds and re-offers its whole
//! acked frontier — batches the recovered generation kept come back
//! `Duplicate`, batches it lost are resent (the `gap_resent` counter) —
//! instead of assuming the pre-crash frontier survived.
//!
//! After the upload phase a **verify pass** re-sends every batch once
//! more and requires an `Accepted` or `Duplicate` ack for each. Batches
//! the server acked but lost to a kill after its last checkpoint are
//! re-admitted here; batches it kept are deduplicated. The pass is what
//! makes a killed-and-restarted server's dataset byte-identical to an
//! uninterrupted one. Finally one session sends DRAIN (sealing the
//! server's digest) and the bench report lands in `--out` as
//! `collector-bench-v1` JSON: sustained batches/sec, shed rate, and p99
//! admission latency.

use starlink_simcore::{SimDuration, SimRng};
use starlink_telemetry::slcs::{peek_frame_len, SLCS_HEADER_LEN};
use starlink_telemetry::{
    synthetic_batch, AckStatus, LoaderUser, ReconnectOutcome, RetryPolicy, ServerReply,
    SessionClient,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Opts {
    connect: String,
    users: u64,
    batches: u64,
    pages: u32,
    pace_ms: u64,
    seed: u64,
    out: PathBuf,
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!(
        "usage: collector-load --connect ADDR --users N --batches M [--pages P]\n\
         \x20      [--pace-ms MS] [--seed S] [--out PATH]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        connect: String::new(),
        users: 4,
        batches: 32,
        pages: 6,
        pace_ms: 0,
        seed: 61,
        out: PathBuf::from("target/collector/BENCH_collector.json"),
    };
    let mut it = std::env::args().skip(1);
    let num = |it: &mut dyn Iterator<Item = String>, name: &str| -> u64 {
        it.next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| usage(&format!("{name} needs a number")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => {
                opts.connect = it.next().unwrap_or_else(|| usage("--connect needs ADDR"))
            }
            "--users" => opts.users = num(&mut it, "--users"),
            "--batches" => opts.batches = num(&mut it, "--batches"),
            "--pages" => opts.pages = num(&mut it, "--pages") as u32,
            "--pace-ms" => opts.pace_ms = num(&mut it, "--pace-ms"),
            "--seed" => opts.seed = num(&mut it, "--seed"),
            "--out" => {
                opts.out = PathBuf::from(it.next().unwrap_or_else(|| usage("--out needs PATH")))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag: {other}")),
        }
    }
    if opts.connect.is_empty() {
        usage("--connect is required");
    }
    if opts.users == 0 || opts.batches == 0 {
        usage("--users and --batches must be positive");
    }
    opts
}

/// Counters and the admission-latency ledger shared across the user
/// threads.
#[derive(Default)]
struct Tally {
    accepted: AtomicU64,
    duplicates: AtomicU64,
    rejects: AtomicU64,
    reconnects: AtomicU64,
    /// Batches resent during an in-flight frontier re-proof: acked, then
    /// `Accepted` (not `Duplicate`) again after a reconnect — the server
    /// restart had recovered a generation that predates them.
    gap_resent: AtomicU64,
    verify_resent: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
}

/// The longest a REJECT hint or backoff is honoured in real time; the
/// hints are virtual-time durations and an overload hint can be large.
const MAX_SLEEP: Duration = Duration::from_secs(2);
/// Give-up horizon for (re)connecting — covers the kill-to-restart
/// window in the CI smoke test with a wide margin.
const CONNECT_DEADLINE: Duration = Duration::from_secs(60);

fn connect_with_retry(addr: &str) -> TcpStream {
    let started = Instant::now();
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .expect("a fresh stream accepts a timeout");
                return stream;
            }
            Err(e) if started.elapsed() < CONNECT_DEADLINE => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(200));
            }
            Err(e) => {
                eprintln!("[load] cannot reach {addr} after {CONNECT_DEADLINE:?}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Reads one SLCS reply frame (header, then the validated remainder).
fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut header = [0u8; SLCS_HEADER_LEN];
    stream.read_exact(&mut header)?;
    let total = peek_frame_len(&header)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let mut frame = vec![0u8; total];
    frame[..SLCS_HEADER_LEN].copy_from_slice(&header);
    stream.read_exact(&mut frame[SLCS_HEADER_LEN..])?;
    Ok(frame)
}

/// One request/reply exchange; any I/O failure bubbles up so the caller
/// can reconnect.
fn exchange(stream: &mut TcpStream, frame: &[u8]) -> std::io::Result<Vec<u8>> {
    stream.write_all(frame)?;
    read_frame(stream)
}

/// Opens (or reopens) a connection and completes the HELLO handshake.
fn open_session(addr: &str, client: &SessionClient) -> TcpStream {
    loop {
        let mut stream = connect_with_retry(addr);
        match exchange(&mut stream, &client.hello()) {
            Ok(reply) if client.parse_reply(&reply).is_ok() => return stream,
            _ => std::thread::sleep(Duration::from_millis(200)),
        }
    }
}

fn honour(hint_ns: u64) -> Duration {
    Duration::from_nanos(hint_ns).min(MAX_SLEEP)
}

/// Uploads one batch until the server keeps it (`Accepted` or
/// `Duplicate`), reconnecting through failures and pacing by the larger
/// of the server's hint and the shared backoff schedule.
fn upload_until_kept(
    addr: &str,
    stream: &mut TcpStream,
    client: &SessionClient,
    seq: u64,
    payload: &[u8],
    rng: &mut SimRng,
    tally: &Tally,
) {
    let policy = *client.policy();
    let mut attempt: u64 = 0;
    loop {
        let frame = client.batch(seq, payload.to_vec());
        let sent = Instant::now();
        let reply = match exchange(stream, &frame) {
            Ok(reply) => reply,
            Err(_) => {
                tally.reconnects.fetch_add(1, Ordering::Relaxed);
                *stream = open_session(addr, client);
                continue;
            }
        };
        let latency_us = sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        match client.parse_reply(&reply) {
            Ok(ServerReply::Ack { status, .. }) => {
                tally
                    .latencies_us
                    .lock()
                    .expect("latency ledger is never poisoned")
                    .push(latency_us);
                match status {
                    AckStatus::Duplicate => tally.duplicates.fetch_add(1, Ordering::Relaxed),
                    // Quarantined batches are kept (and accounted) too.
                    _ => tally.accepted.fetch_add(1, Ordering::Relaxed),
                };
                return;
            }
            Ok(ServerReply::Reject { retry_after_ns, .. }) => {
                tally.rejects.fetch_add(1, Ordering::Relaxed);
                let backoff = policy.backoff(attempt, rng);
                let wait = honour(retry_after_ns.max(backoff.as_nanos()));
                attempt += 1;
                std::thread::sleep(wait);
            }
            Err(_) => {
                // A reply that does not parse means the stream is skewed;
                // resynchronise by reconnecting.
                tally.reconnects.fetch_add(1, Ordering::Relaxed);
                *stream = open_session(addr, client);
            }
        }
    }
}

/// The upload phase for one user, with restart-aware frontier
/// accounting: every reconnect invalidates the ACK frontier and the
/// whole tentative prefix is re-offered before fresh uploads resume, so
/// a server restart onto an older checkpoint generation gets its gap
/// resent immediately rather than discovered at the final verify pass.
fn user_session(addr: &str, opts: &Opts, user: u64, tally: &Tally) {
    let policy = RetryPolicy::new(u32::MAX, SimDuration::from_millis(50));
    let client = SessionClient::new(user, user, policy);
    let mut rng = SimRng::seed_from(opts.seed ^ user).stream("collector-load");
    let mut loader = LoaderUser::new(user, opts.batches);
    let mut stream = open_session(addr, &client);
    let mut attempt: u64 = 0;
    let reconnect = |stream: &mut TcpStream, loader: &mut LoaderUser| {
        tally.reconnects.fetch_add(1, Ordering::Relaxed);
        *stream = open_session(addr, &client);
        if let ReconnectOutcome::Reverify { first, last } = loader.on_reconnect() {
            eprintln!("[load] user {user}: re-proving batches {first}..={last} after reconnect");
        }
    };
    while let Some(seq) = loader.next_seq() {
        let payload = synthetic_batch(user, seq, opts.pages);
        let frame = client.batch(seq, payload);
        let sent = Instant::now();
        let reply = match exchange(&mut stream, &frame) {
            Ok(reply) => reply,
            Err(_) => {
                reconnect(&mut stream, &mut loader);
                continue;
            }
        };
        let latency_us = sent.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        match client.parse_reply(&reply) {
            Ok(ServerReply::Ack { status, .. }) => {
                tally
                    .latencies_us
                    .lock()
                    .expect("latency ledger is never poisoned")
                    .push(latency_us);
                let reproof = loader.is_reproof(seq);
                match status {
                    AckStatus::Duplicate => tally.duplicates.fetch_add(1, Ordering::Relaxed),
                    // Quarantined batches are kept (and accounted) too.
                    _ => tally.accepted.fetch_add(1, Ordering::Relaxed),
                };
                if reproof && status != AckStatus::Duplicate {
                    tally.gap_resent.fetch_add(1, Ordering::Relaxed);
                }
                loader.on_kept(seq, status);
                attempt = 0;
                // Re-proofs run at full speed; only fresh uploads pace.
                if opts.pace_ms > 0 && !reproof {
                    std::thread::sleep(Duration::from_millis(opts.pace_ms));
                }
            }
            Ok(ServerReply::Reject { retry_after_ns, .. }) => {
                tally.rejects.fetch_add(1, Ordering::Relaxed);
                let backoff = client.policy().backoff(attempt, &mut rng);
                let wait = honour(retry_after_ns.max(backoff.as_nanos()));
                attempt += 1;
                std::thread::sleep(wait);
            }
            Err(_) => {
                // A reply that does not parse means the stream is skewed;
                // resynchronise by reconnecting (which also re-proves).
                reconnect(&mut stream, &mut loader);
            }
        }
    }
}

/// The post-kill safety net: re-offer every batch and count the ones the
/// server had actually lost (acked before a kill, gone after restart).
fn verify_session(addr: &str, opts: &Opts, user: u64, tally: &Tally) {
    let policy = RetryPolicy::new(u32::MAX, SimDuration::from_millis(50));
    let client = SessionClient::new(user, user, policy);
    let mut rng = SimRng::seed_from(opts.seed ^ user).stream("collector-verify");
    let mut stream = open_session(addr, &client);
    for seq in 1..=opts.batches {
        let before = tally.accepted.load(Ordering::Relaxed);
        let payload = synthetic_batch(user, seq, opts.pages);
        upload_until_kept(addr, &mut stream, &client, seq, &payload, &mut rng, tally);
        if tally.accepted.load(Ordering::Relaxed) > before {
            // Freshly accepted during verify = the upload-phase ack was
            // lost to a kill after the server's last checkpoint.
            tally.verify_resent.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn p99_us(latencies: &mut [u64]) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    latencies[((latencies.len() - 1) * 99) / 100]
}

fn render_bench_json(opts: &Opts, tally: &Tally, elapsed: Duration, p99: u64) -> String {
    let accepted = tally.accepted.load(Ordering::Relaxed);
    let duplicates = tally.duplicates.load(Ordering::Relaxed);
    let rejects = tally.rejects.load(Ordering::Relaxed);
    let attempts = accepted + duplicates + rejects;
    let shed_rate = if attempts > 0 {
        rejects as f64 / attempts as f64
    } else {
        0.0
    };
    let elapsed_ms = elapsed.as_millis().max(1) as u64;
    let delivered = opts.users * opts.batches;
    let batches_per_sec = delivered as f64 * 1_000.0 / elapsed_ms as f64;
    format!(
        "{{\n  \"schema\": \"collector-bench-v1\",\n  \
         \"users\": {},\n  \"batches_per_user\": {},\n  \"pages_per_batch\": {},\n  \
         \"delivered_batches\": {},\n  \"accepted\": {},\n  \"duplicates\": {},\n  \
         \"rejects\": {},\n  \"reconnects\": {},\n  \"gap_resent\": {},\n  \"verify_resent\": {},\n  \
         \"shed_rate\": {:.4},\n  \"elapsed_ms\": {},\n  \"batches_per_sec\": {:.2},\n  \
         \"p99_admission_latency_us\": {}\n}}\n",
        opts.users,
        opts.batches,
        opts.pages,
        delivered,
        accepted,
        duplicates,
        rejects,
        tally.reconnects.load(Ordering::Relaxed),
        tally.gap_resent.load(Ordering::Relaxed),
        tally.verify_resent.load(Ordering::Relaxed),
        shed_rate,
        elapsed_ms,
        batches_per_sec,
        p99,
    )
}

fn main() {
    let opts = Arc::new(parse_opts());
    let tally = Arc::new(Tally::default());
    let started = Instant::now();

    for phase in ["upload", "verify"] {
        let handles: Vec<_> = (1..=opts.users)
            .map(|user| {
                let (opts, tally) = (Arc::clone(&opts), Arc::clone(&tally));
                std::thread::spawn(move || match phase {
                    "upload" => user_session(&opts.connect, &opts, user, &tally),
                    _ => verify_session(&opts.connect, &opts, user, &tally),
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("a load thread panicked");
        }
        eprintln!(
            "[load] {phase} phase done: accepted={} duplicates={} rejects={} reconnects={}",
            tally.accepted.load(Ordering::Relaxed),
            tally.duplicates.load(Ordering::Relaxed),
            tally.rejects.load(Ordering::Relaxed),
            tally.reconnects.load(Ordering::Relaxed),
        );
    }
    let elapsed = started.elapsed();

    // One session closes the service: DRAIN seals the server's digest.
    let drain_client = SessionClient::new(1, 1, RetryPolicy::new(4, SimDuration::from_millis(50)));
    let mut stream = open_session(&opts.connect, &drain_client);
    match exchange(&mut stream, &drain_client.drain()) {
        Ok(reply) => match drain_client.parse_reply(&reply) {
            Ok(r) => eprintln!("[load] drain acknowledged: {r:?}"),
            Err(e) => eprintln!("[load] drain reply malformed: {e}"),
        },
        Err(e) => eprintln!("[load] drain exchange failed: {e}"),
    }

    let p99 = p99_us(&mut tally.latencies_us.lock().expect("latency ledger").clone());
    let json = render_bench_json(&opts, &tally, elapsed, p99);
    if let Some(dir) = opts.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("bench output directory is creatable");
        }
    }
    std::fs::write(&opts.out, &json).expect("bench output is writable");
    println!("{json}");
    eprintln!("[load] wrote {}", opts.out.display());
}
