//! The collector as a service: sessions, admission control, backpressure.
//!
//! [`CollectorServer`] wraps a [`Collector`] with the SLCS v1 session
//! protocol and an admission-control state machine. Every inbound frame
//! passes through, in order:
//!
//! 1. **decode** — malformed bytes are shed with
//!    [`ShedReason::BadFrame`] (never a panic, never an over-read);
//! 2. **drain gate** — a draining server sheds new work with
//!    [`ShedReason::Draining`];
//! 3. **session check** — a BATCH on an unopened session is shed with
//!    [`ShedReason::UnknownSession`];
//! 4. **token bucket** — each session refills at
//!    `session_rate_milli / 1000` batches per virtual second up to
//!    `session_burst`; an empty bucket sheds with
//!    [`ShedReason::Throttled`] and a computed retry-after hint;
//! 5. **queue bound** — at most `queue_batches` admitted batches may sit
//!    in the ingest queue, which drains at `drain_bytes_per_sec`;
//!    overflow sheds with [`ShedReason::QueueFull`];
//! 6. **byte budget** — the queued backlog may not exceed
//!    `global_bytes`; overflow sheds with [`ShedReason::Overloaded`].
//!
//! Only a batch that clears every gate reaches [`Collector::submit`], so
//! an accepted batch is *never* silently dropped afterwards — the shed
//! accounting invariant (`delivered + quarantined + shed + lost ==
//! generated`) rests on that ordering.
//!
//! All state advances in **virtual time** from the `now` passed to
//! [`CollectorServer::handle_frame`]; the server never consults a clock
//! or an RNG, so traced twin runs are byte-identical and enabling the
//! server cannot perturb the simulation.

use crate::ingest::{Collector, Ingested};
use crate::slcs::{decode_frame, encode_frame, AckStatus, Frame, ShedReason};
use starlink_simcore::SimTime;
use std::collections::{BTreeMap, VecDeque};

const NANOS_PER_SEC: u128 = 1_000_000_000;
/// Milli-tokens one batch admission costs.
const BATCH_COST_MILLI: u64 = 1_000;

/// Admission-control budgets for a [`CollectorServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Per-session token refill rate, in milli-batches per virtual
    /// second (1000 = one batch per second).
    pub session_rate_milli: u64,
    /// Per-session bucket capacity, in whole batches.
    pub session_burst: u64,
    /// Most admitted batches the ingest queue may hold.
    pub queue_batches: u64,
    /// Global in-flight byte budget across the whole queue.
    pub global_bytes: u64,
    /// Rate at which the ingest queue drains, bytes per virtual second.
    pub drain_bytes_per_sec: u64,
}

impl AdmissionConfig {
    /// Budgets sized so a healthy campaign never sheds: generous
    /// per-session rates and a queue that drains faster than the
    /// population can fill it.
    pub fn generous() -> Self {
        AdmissionConfig {
            session_rate_milli: 2_000,
            session_burst: 8,
            queue_batches: 256,
            global_bytes: 8 << 20,
            drain_bytes_per_sec: 1 << 20,
        }
    }

    /// Budgets roughly 10× too small for the reference 28-user storm:
    /// a one-batch burst, a two-deep queue draining at a trickle, and a
    /// tight byte budget. Most upload chains meet typed REJECTs and the
    /// campaign exercises backoff, spooling, and terminal shed
    /// accounting.
    pub fn overloaded() -> Self {
        AdmissionConfig {
            session_rate_milli: 200,
            session_burst: 1,
            queue_batches: 2,
            global_bytes: 2_048,
            drain_bytes_per_sec: 16,
        }
    }
}

/// Per-session admission state.
#[derive(Debug, Clone)]
struct Session {
    user: u64,
    /// Milli-batches available; admission costs [`BATCH_COST_MILLI`].
    tokens_milli: u64,
    /// Sub-milli-token accumulator, in milli-token-nanoseconds.
    acc: u128,
    /// Virtual time of the last refill.
    last: SimTime,
}

/// Process-local service counters (observability, not checkpointed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// HELLO frames honoured (sessions opened or refreshed).
    pub hellos: u64,
    /// Batches admitted and newly ingested.
    pub accepted: u64,
    /// Batches admitted but deduplicated as re-uploads.
    pub duplicates: u64,
    /// Batches admitted but quarantined by the collector.
    pub quarantined: u64,
    /// DRAIN frames honoured.
    pub drains: u64,
    /// Sheds per [`ShedReason`], indexed by `tag() - 1`.
    pub shed: [u64; 6],
}

impl ServerStats {
    /// Total frames shed, all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// Sheds for one reason.
    pub fn shed_by(&self, reason: ShedReason) -> u64 {
        self.shed[(reason.tag() - 1) as usize]
    }
}

/// A session-based collector service with admission control.
///
/// The server owns *admission* state only; the [`Collector`] (the
/// dataset) is passed into [`CollectorServer::handle_frame`] by its
/// owner — the resilient campaign in the sim harness, the serve binary's
/// core in the real one — so checkpointing the dataset stays the owner's
/// concern.
#[derive(Debug, Clone)]
pub struct CollectorServer {
    config: AdmissionConfig,
    sessions: BTreeMap<u64, Session>,
    /// Admitted-batch sizes awaiting ingest drain, arrival order.
    queue: VecDeque<u64>,
    backlog_bytes: u64,
    /// Drain accumulator, in byte-nanoseconds.
    drain_acc: u128,
    last_drain: SimTime,
    draining: bool,
    stats: ServerStats,
}

impl CollectorServer {
    /// A fresh server enforcing `config`.
    pub fn new(config: AdmissionConfig) -> Self {
        CollectorServer {
            config,
            sessions: BTreeMap::new(),
            queue: VecDeque::new(),
            backlog_bytes: 0,
            drain_acc: 0,
            last_drain: SimTime::ZERO,
            draining: false,
            stats: ServerStats::default(),
        }
    }

    /// The budgets in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// The service counters so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Admitted batches currently awaiting ingest drain.
    pub fn queue_depth(&self) -> u64 {
        self.queue.len() as u64
    }

    /// Bytes currently queued.
    pub fn backlog_bytes(&self) -> u64 {
        self.backlog_bytes
    }

    /// Whether a DRAIN has been honoured and new work is refused.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Handles one inbound frame at virtual time `now` and returns the
    /// encoded response frame (always exactly one: ACK or REJECT).
    pub fn handle_frame(
        &mut self,
        collector: &mut Collector,
        bytes: &[u8],
        now: SimTime,
    ) -> Vec<u8> {
        self.advance(now);
        let frame = match decode_frame(bytes) {
            Ok(frame) => frame,
            Err(_) => return self.shed(0, 0, ShedReason::BadFrame, 0, now),
        };
        match frame {
            Frame::Hello { session, user } => {
                if self.draining {
                    return self.shed(session, 0, ShedReason::Draining, 0, now);
                }
                self.stats.hellos += 1;
                let burst = self.config.session_burst * BATCH_COST_MILLI;
                // A refresh keeps the bucket as-is: repeating HELLO must
                // not launder an empty bucket back to full.
                self.sessions.entry(session).or_insert(Session {
                    user,
                    tokens_milli: burst,
                    acc: 0,
                    last: now,
                });
                encode_frame(&Frame::Ack {
                    session,
                    seq: 0,
                    status: AckStatus::Accepted,
                })
            }
            Frame::Batch {
                session,
                seq,
                payload,
            } => self.handle_batch(collector, session, seq, &payload, now),
            Frame::Drain { session } => {
                self.draining = true;
                self.stats.drains += 1;
                // Everything queued was already ingested at admission;
                // draining just retires the backpressure backlog.
                self.queue.clear();
                self.backlog_bytes = 0;
                self.drain_acc = 0;
                self.emit_queue(now);
                encode_frame(&Frame::Ack {
                    session,
                    seq: 0,
                    status: AckStatus::Accepted,
                })
            }
            // A server never legitimately receives its own reply frames.
            Frame::Ack { session, seq, .. } | Frame::Reject { session, seq, .. } => {
                self.shed(session, seq, ShedReason::BadFrame, 0, now)
            }
        }
    }

    fn handle_batch(
        &mut self,
        collector: &mut Collector,
        session: u64,
        seq: u64,
        payload: &[u8],
        now: SimTime,
    ) -> Vec<u8> {
        if self.draining {
            return self.shed(session, seq, ShedReason::Draining, 0, now);
        }
        let config = self.config;
        let Some(state) = self.sessions.get_mut(&session) else {
            return self.shed(session, seq, ShedReason::UnknownSession, 0, now);
        };
        refill(state, now, &config);
        if state.tokens_milli < BATCH_COST_MILLI {
            let missing = BATCH_COST_MILLI - state.tokens_milli;
            let retry_after = if config.session_rate_milli == 0 {
                u64::MAX
            } else {
                // `missing` and the rate are both in milli-tokens, so
                // the wait is missing / rate seconds.
                ((u128::from(missing) * NANOS_PER_SEC / u128::from(config.session_rate_milli))
                    .min(u128::from(u64::MAX))) as u64
            };
            return self.shed(session, seq, ShedReason::Throttled, retry_after, now);
        }
        if self.queue.len() as u64 >= config.queue_batches {
            let retry_after = self.front_drain_ns();
            return self.shed(session, seq, ShedReason::QueueFull, retry_after, now);
        }
        let len = payload.len() as u64;
        if self.backlog_bytes.saturating_add(len) > config.global_bytes {
            let retry_after = self.front_drain_ns();
            return self.shed(session, seq, ShedReason::Overloaded, retry_after, now);
        }

        // Every gate cleared: spend, enqueue, ingest. From here the
        // batch can only be delivered, deduplicated, or quarantined —
        // never dropped.
        let state = self.sessions.get_mut(&session).expect("checked above");
        state.tokens_milli -= BATCH_COST_MILLI;
        self.queue.push_back(len);
        self.backlog_bytes += len;
        let depth = self.queue.len() as u64;
        let status = match collector.submit(payload, now) {
            Ingested::Accepted { .. } => {
                self.stats.accepted += 1;
                AckStatus::Accepted
            }
            Ingested::Duplicate => {
                self.stats.duplicates += 1;
                AckStatus::Duplicate
            }
            Ingested::Quarantined { .. } => {
                self.stats.quarantined += 1;
                AckStatus::Quarantined
            }
        };
        starlink_obsv::counter_add("telemetry.admission.accepted", 1);
        starlink_obsv::gauge_set("telemetry.server.queue_depth", depth as i64);
        starlink_obsv::emit(|| starlink_obsv::TraceEvent::AdmissionAccept {
            t_ns: now.as_nanos(),
            session,
            seq,
            bytes: len,
            queue_depth: depth,
        });
        encode_frame(&Frame::Ack {
            session,
            seq,
            status,
        })
    }

    /// Sheds one frame: counts it, traces it, and encodes the REJECT.
    fn shed(
        &mut self,
        session: u64,
        seq: u64,
        reason: ShedReason,
        retry_after_ns: u64,
        now: SimTime,
    ) -> Vec<u8> {
        self.stats.shed[(reason.tag() - 1) as usize] += 1;
        starlink_obsv::counter_add(reason.metric(), 1);
        starlink_obsv::emit(|| starlink_obsv::TraceEvent::AdmissionShed {
            t_ns: now.as_nanos(),
            session,
            seq,
            reason,
        });
        encode_frame(&Frame::Reject {
            session,
            seq,
            reason,
            retry_after_ns,
        })
    }

    /// Nanoseconds until the batch at the queue front finishes draining
    /// — the retry-after hint for queue and byte-budget sheds.
    fn front_drain_ns(&self) -> u64 {
        let Some(&front) = self.queue.front() else {
            return 0;
        };
        if self.config.drain_bytes_per_sec == 0 {
            return u64::MAX;
        }
        let need = u128::from(front) * NANOS_PER_SEC;
        let done = self.drain_acc.min(need);
        (((need - done) / u128::from(self.config.drain_bytes_per_sec)).min(u128::from(u64::MAX)))
            as u64
    }

    /// Advances the drain clock to `now`, retiring queued batches the
    /// ingest pipeline has had time to process. Time that appears to run
    /// backwards (interleaved per-user chains) contributes nothing.
    fn advance(&mut self, now: SimTime) {
        let elapsed = now.as_nanos().saturating_sub(self.last_drain.as_nanos());
        if now.as_nanos() > self.last_drain.as_nanos() {
            self.last_drain = now;
        }
        if self.queue.is_empty() {
            self.drain_acc = 0;
            return;
        }
        self.drain_acc += u128::from(elapsed) * u128::from(self.config.drain_bytes_per_sec);
        let mut popped = false;
        while let Some(&front) = self.queue.front() {
            let need = u128::from(front) * NANOS_PER_SEC;
            if self.drain_acc < need {
                break;
            }
            self.drain_acc -= need;
            self.queue.pop_front();
            self.backlog_bytes -= front;
            popped = true;
        }
        if self.queue.is_empty() {
            self.drain_acc = 0;
        }
        if popped {
            self.emit_queue(now);
        }
    }

    fn emit_queue(&self, now: SimTime) {
        let depth = self.queue.len() as u64;
        starlink_obsv::gauge_set("telemetry.server.queue_depth", depth as i64);
        starlink_obsv::emit(|| starlink_obsv::TraceEvent::ServerQueue {
            t_ns: now.as_nanos(),
            depth,
            backlog_bytes: self.backlog_bytes,
        });
    }

    /// Resets transient day-scoped state at a campaign day boundary:
    /// the queue empties, every bucket refills, and drain bookkeeping
    /// clears.
    ///
    /// This is the checkpoint-equivalence anchor: a campaign resumed at
    /// a day boundary builds a *fresh* server whose sessions reopen with
    /// full buckets, and `end_of_day` puts a carried server in exactly
    /// that state — so straight-through and kill/resume runs admit
    /// identically.
    pub fn end_of_day(&mut self, now: SimTime) {
        self.queue.clear();
        self.backlog_bytes = 0;
        self.drain_acc = 0;
        self.last_drain = now;
        let burst = self.config.session_burst * BATCH_COST_MILLI;
        for s in self.sessions.values_mut() {
            s.tokens_milli = burst;
            s.acc = 0;
            s.last = now;
        }
    }

    /// The user a session was opened for, if it exists.
    pub fn session_user(&self, session: u64) -> Option<u64> {
        self.sessions.get(&session).map(|s| s.user)
    }
}

/// Refills a session's token bucket for the elapsed virtual time.
/// Integer-only: the sub-token remainder is carried in `acc`, and both
/// saturate at a full bucket so an idle day cannot bank future burst.
fn refill(state: &mut Session, now: SimTime, config: &AdmissionConfig) {
    let elapsed = now.as_nanos().saturating_sub(state.last.as_nanos());
    if now.as_nanos() > state.last.as_nanos() {
        state.last = now;
    }
    let cap = config.session_burst * BATCH_COST_MILLI;
    state.acc += u128::from(elapsed) * u128::from(config.session_rate_milli);
    let gain = (state.acc / NANOS_PER_SEC).min(u128::from(u64::MAX)) as u64;
    state.acc %= NANOS_PER_SEC;
    state.tokens_milli = state.tokens_milli.saturating_add(gain).min(cap);
    if state.tokens_milli == cap {
        state.acc = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slcs::Frame as F;
    use crate::wire::{encode_batch, RecordBatch};

    fn batch_bytes(user: u64, seq: u64) -> Vec<u8> {
        encode_batch(&RecordBatch {
            user,
            seq,
            pages: vec![],
            speedtests: vec![],
        })
    }

    fn reply(bytes: &[u8]) -> Frame {
        decode_frame(bytes).expect("server replies are well-formed")
    }

    fn hello(server: &mut CollectorServer, collector: &mut Collector, session: u64, user: u64) {
        let r = server.handle_frame(
            collector,
            &encode_frame(&F::Hello { session, user }),
            SimTime::ZERO,
        );
        assert!(matches!(reply(&r), F::Ack { .. }));
    }

    fn send_batch(
        server: &mut CollectorServer,
        collector: &mut Collector,
        session: u64,
        seq: u64,
        at: SimTime,
    ) -> Frame {
        let frame = F::Batch {
            session,
            seq,
            payload: batch_bytes(session, seq),
        };
        reply(&server.handle_frame(collector, &encode_frame(&frame), at))
    }

    #[test]
    fn happy_path_hello_batch_ack() {
        let mut server = CollectorServer::new(AdmissionConfig::generous());
        let mut collector = Collector::new();
        hello(&mut server, &mut collector, 1, 42);
        let r = send_batch(&mut server, &mut collector, 1, 0, SimTime::from_secs(1));
        assert!(matches!(
            r,
            F::Ack {
                session: 1,
                seq: 0,
                status: AckStatus::Accepted
            }
        ));
        assert_eq!(collector.accepted_batches(), 1);
        assert_eq!(server.stats().accepted, 1);
    }

    #[test]
    fn unknown_session_is_shed() {
        let mut server = CollectorServer::new(AdmissionConfig::generous());
        let mut collector = Collector::new();
        let r = send_batch(&mut server, &mut collector, 9, 0, SimTime::ZERO);
        assert!(matches!(
            r,
            F::Reject {
                reason: ShedReason::UnknownSession,
                ..
            }
        ));
        assert_eq!(collector.accepted_batches(), 0);
        assert_eq!(server.stats().shed_by(ShedReason::UnknownSession), 1);
    }

    #[test]
    fn empty_bucket_throttles_with_a_retry_hint() {
        let config = AdmissionConfig {
            session_rate_milli: 1_000, // 1 batch/sec
            session_burst: 1,
            ..AdmissionConfig::generous()
        };
        let mut server = CollectorServer::new(config);
        let mut collector = Collector::new();
        hello(&mut server, &mut collector, 1, 42);
        let t = SimTime::from_secs(10);
        assert!(matches!(
            send_batch(&mut server, &mut collector, 1, 0, t),
            F::Ack { .. }
        ));
        let F::Reject {
            reason,
            retry_after_ns,
            ..
        } = send_batch(&mut server, &mut collector, 1, 1, t)
        else {
            panic!("second batch in the same instant must throttle");
        };
        assert_eq!(reason, ShedReason::Throttled);
        assert_eq!(retry_after_ns, 1_000_000_000, "refill one token = 1s");
        // After the hinted wait the bucket has refilled.
        let t2 = t.saturating_add(starlink_simcore::SimDuration::from_nanos(retry_after_ns));
        assert!(matches!(
            send_batch(&mut server, &mut collector, 1, 1, t2),
            F::Ack { .. }
        ));
    }

    #[test]
    fn repeated_hello_does_not_refill_the_bucket() {
        let config = AdmissionConfig {
            session_rate_milli: 1,
            session_burst: 1,
            ..AdmissionConfig::generous()
        };
        let mut server = CollectorServer::new(config);
        let mut collector = Collector::new();
        hello(&mut server, &mut collector, 1, 42);
        assert!(matches!(
            send_batch(&mut server, &mut collector, 1, 0, SimTime::ZERO),
            F::Ack { .. }
        ));
        hello(&mut server, &mut collector, 1, 42); // refresh, not refill
        assert!(matches!(
            send_batch(&mut server, &mut collector, 1, 1, SimTime::ZERO),
            F::Reject {
                reason: ShedReason::Throttled,
                ..
            }
        ));
    }

    #[test]
    fn full_queue_sheds_and_drains_at_the_configured_rate() {
        let config = AdmissionConfig {
            session_rate_milli: 1_000_000,
            session_burst: 100,
            queue_batches: 2,
            global_bytes: 1 << 20,
            drain_bytes_per_sec: 32, // one empty batch (32 B) per second
        };
        let mut server = CollectorServer::new(config);
        let mut collector = Collector::new();
        hello(&mut server, &mut collector, 1, 42);
        let t = SimTime::from_secs(100);
        for seq in 0..2 {
            assert!(matches!(
                send_batch(&mut server, &mut collector, 1, seq, t),
                F::Ack { .. }
            ));
        }
        assert_eq!(server.queue_depth(), 2);
        let F::Reject {
            reason,
            retry_after_ns,
            ..
        } = send_batch(&mut server, &mut collector, 1, 2, t)
        else {
            panic!("third batch must hit the queue bound");
        };
        assert_eq!(reason, ShedReason::QueueFull);
        assert!(retry_after_ns > 0);
        // One drained batch later there is room again.
        let t2 = t.saturating_add(starlink_simcore::SimDuration::from_nanos(retry_after_ns));
        assert!(matches!(
            send_batch(&mut server, &mut collector, 1, 2, t2),
            F::Ack { .. }
        ));
        assert!(server.queue_depth() <= 2);
    }

    #[test]
    fn byte_budget_sheds_as_overloaded() {
        let config = AdmissionConfig {
            session_rate_milli: 1_000_000,
            session_burst: 100,
            queue_batches: 100,
            global_bytes: 40, // one empty batch fits, two do not
            drain_bytes_per_sec: 1,
        };
        let mut server = CollectorServer::new(config);
        let mut collector = Collector::new();
        hello(&mut server, &mut collector, 1, 42);
        assert!(matches!(
            send_batch(&mut server, &mut collector, 1, 0, SimTime::ZERO),
            F::Ack { .. }
        ));
        assert!(matches!(
            send_batch(&mut server, &mut collector, 1, 1, SimTime::ZERO),
            F::Reject {
                reason: ShedReason::Overloaded,
                ..
            }
        ));
    }

    #[test]
    fn garbage_and_reply_frames_are_shed_as_bad_frames() {
        let mut server = CollectorServer::new(AdmissionConfig::generous());
        let mut collector = Collector::new();
        let r = reply(&server.handle_frame(&mut collector, b"not a frame", SimTime::ZERO));
        assert!(matches!(
            r,
            F::Reject {
                session: 0,
                seq: 0,
                reason: ShedReason::BadFrame,
                ..
            }
        ));
        let ack = encode_frame(&F::Ack {
            session: 3,
            seq: 9,
            status: AckStatus::Accepted,
        });
        let r = reply(&server.handle_frame(&mut collector, &ack, SimTime::ZERO));
        assert!(matches!(
            r,
            F::Reject {
                session: 3,
                seq: 9,
                reason: ShedReason::BadFrame,
                ..
            }
        ));
        assert_eq!(server.stats().shed_by(ShedReason::BadFrame), 2);
    }

    #[test]
    fn admitted_damaged_batch_is_quarantined_not_dropped() {
        let mut server = CollectorServer::new(AdmissionConfig::generous());
        let mut collector = Collector::new();
        hello(&mut server, &mut collector, 1, 42);
        let mut damaged = batch_bytes(42, 0);
        let last = damaged.len() - 1;
        damaged[last] ^= 0xFF;
        let frame = F::Batch {
            session: 1,
            seq: 0,
            payload: damaged,
        };
        let r = reply(&server.handle_frame(&mut collector, &encode_frame(&frame), SimTime::ZERO));
        assert!(matches!(
            r,
            F::Ack {
                status: AckStatus::Quarantined,
                ..
            }
        ));
        assert_eq!(collector.quarantine().len(), 1);
        assert_eq!(server.stats().quarantined, 1);
    }

    #[test]
    fn drain_flushes_and_refuses_new_work() {
        let mut server = CollectorServer::new(AdmissionConfig::generous());
        let mut collector = Collector::new();
        hello(&mut server, &mut collector, 1, 42);
        assert!(matches!(
            send_batch(&mut server, &mut collector, 1, 0, SimTime::ZERO),
            F::Ack { .. }
        ));
        let r = reply(&server.handle_frame(
            &mut collector,
            &encode_frame(&F::Drain { session: 1 }),
            SimTime::ZERO,
        ));
        assert!(matches!(r, F::Ack { .. }));
        assert!(server.is_draining());
        assert_eq!(server.queue_depth(), 0);
        assert!(matches!(
            send_batch(&mut server, &mut collector, 1, 1, SimTime::ZERO),
            F::Reject {
                reason: ShedReason::Draining,
                ..
            }
        ));
        // The accepted batch survived the drain.
        assert_eq!(collector.accepted_batches(), 1);
    }

    #[test]
    fn end_of_day_restores_the_fresh_server_admission_state() {
        let config = AdmissionConfig {
            session_rate_milli: 1,
            session_burst: 1,
            ..AdmissionConfig::generous()
        };
        let mut carried = CollectorServer::new(config);
        let mut collector = Collector::new();
        hello(&mut carried, &mut collector, 1, 42);
        assert!(matches!(
            send_batch(&mut carried, &mut collector, 1, 0, SimTime::ZERO),
            F::Ack { .. }
        ));
        let day2 = SimTime::from_secs(86_400);
        carried.end_of_day(day2);

        let mut fresh = CollectorServer::new(config);
        let mut fresh_collector = collector.clone();
        hello(&mut fresh, &mut fresh_collector, 1, 42);

        // Both servers now admit the same next-day traffic.
        let a = send_batch(&mut carried, &mut collector, 1, 1, day2);
        let b = send_batch(&mut fresh, &mut fresh_collector, 1, 1, day2);
        assert_eq!(a, b);
    }
}
