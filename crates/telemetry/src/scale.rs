//! Population-scale campaign model: the synthetic city catalogue and
//! struct-of-arrays subscriber population behind the sharded
//! million-user campaign engine ([`crate::shard`]).
//!
//! The paper's deployment is 28 users in 10 cities; this module scales
//! the same diurnal/regional load model to ~10⁶ subscribers across
//! 100+ cities. Three design rules keep the scale-up honest:
//!
//! * **anchored, then synthetic** — the first catalogue entries are the
//!   real [`starlink_geo::City`] locations (names, longitudes), so the
//!   scaled model degenerates to the paper's geography at small sizes;
//!   synthetic metros beyond the 18 real ones get seeded longitudes and
//!   Zipf-decaying population weights;
//! * **struct of arrays** — per-subscriber state is parallel columns
//!   (`city`, `activity_milli`), not a `Vec` of structs: a million
//!   subscribers fit in a few flat arrays that shard into contiguous
//!   slices with no pointer chasing;
//! * **stateless derivation** — every subscriber's attributes come from
//!   `seed → stream("scale.population") → substream(user)`, so any
//!   worker can materialise any user without seeing the others, and the
//!   population is identical at any worker count.

use crate::pipeline::BROWSE_WEIGHTS;
use starlink_geo::City;
use starlink_simcore::SimRng;

/// Configuration for a population-scale campaign.
///
/// All quantities are integers (rates in thousandths) so configurations
/// round-trip exactly through JSON and checkpoint blobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Master seed; every stream below derives from it.
    pub seed: u64,
    /// Simulated subscribers.
    pub users: u64,
    /// Cities in the catalogue. The first 18 anchor on the paper's real
    /// locations; the rest are synthetic metros.
    pub cities: u32,
    /// Campaign length in days.
    pub days: u64,
    /// Mean pages per subscriber-day, thousandths (22_000 = the paper
    /// campaign's 22 pages/day).
    pub pages_per_day_milli: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            seed: 1,
            users: 1_000_000,
            cities: 120,
            days: 3,
            pages_per_day_milli: 22_000,
        }
    }
}

/// The city catalogue, struct-of-arrays: parallel columns indexed by
/// city id.
#[derive(Debug, Clone, PartialEq)]
pub struct CityCatalog {
    /// Display names, real cities first.
    names: Vec<String>,
    /// Longitude in millidegrees, positive east.
    lon_milli_deg: Vec<i64>,
    /// Relative population weight (Zipf-decaying by rank).
    weights: Vec<f64>,
    /// Prefix sums of `weights`, for O(log n) weighted draws.
    cum_weights: Vec<f64>,
}

impl CityCatalog {
    /// Builds a catalogue of `cities` entries (at least 1). The first
    /// entries reuse the paper deployment's real locations; synthetic
    /// metros beyond them draw a seeded longitude from the
    /// `"scale.cities"` stream.
    pub fn generate(cities: u32, seed: u64) -> Self {
        let n = (cities.max(1)) as usize;
        let mut names = Vec::with_capacity(n);
        let mut lon_milli_deg = Vec::with_capacity(n);
        let mut weights = Vec::with_capacity(n);
        for city in City::ALL.iter().take(n) {
            let info = city.info();
            names.push(info.name.to_string());
            lon_milli_deg.push((info.position.lon_deg * 1000.0).round() as i64);
        }
        let base = SimRng::seed_from(seed).stream("scale.cities");
        for i in names.len()..n {
            let mut rng = base.substream(i as u64);
            names.push(format!("metro-{i:03}"));
            lon_milli_deg.push(rng.range_u64(0, 360_001) as i64 - 180_000);
        }
        // Zipf-decaying weights by rank: a few big metros, a long tail.
        for rank in 0..n {
            weights.push(1.0 / (rank + 1) as f64);
        }
        let mut cum_weights = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cum_weights.push(acc);
        }
        CityCatalog {
            names,
            lon_milli_deg,
            weights,
            cum_weights,
        }
    }

    /// Number of cities.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the catalogue is empty (it never is; see
    /// [`CityCatalog::generate`]).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// City `i`'s display name.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// City `i`'s longitude in degrees, positive east.
    pub fn lon_deg(&self, i: usize) -> f64 {
        self.lon_milli_deg[i] as f64 / 1000.0
    }

    /// City `i`'s time-zone offset from UTC in milli-hours, derived from
    /// longitude at 15° per hour — the same convention the paper
    /// campaign's `local_to_campaign` uses.
    pub fn tz_offset_milli_hours(&self, i: usize) -> i64 {
        self.lon_milli_deg[i] / 15
    }

    /// City `i`'s relative population weight.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Draws a city id, weighted by population, via binary search over
    /// the prefix sums (one uniform draw per call).
    pub fn draw_city(&self, rng: &mut SimRng) -> u32 {
        let total = *self.cum_weights.last().expect("catalogue is never empty");
        let x = rng.f64() * total;
        self.cum_weights
            .partition_point(|&c| c <= x)
            .min(self.len() - 1) as u32
    }
}

/// The subscriber population, struct-of-arrays: two parallel columns
/// indexed by user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaledPopulation {
    /// Home-city id per user (index into the [`CityCatalog`]).
    pub city: Vec<u32>,
    /// Browsing-activity factor per user, thousandths (1000 = the
    /// configured mean pages/day).
    pub activity_milli: Vec<u32>,
}

impl ScaledPopulation {
    /// Materialises the population. Each user's attributes derive from
    /// `substream(user)` alone, so the result is independent of
    /// iteration or worker order.
    pub fn generate(config: &ScaleConfig, catalog: &CityCatalog) -> Self {
        let n = config.users as usize;
        let mut city = Vec::with_capacity(n);
        let mut activity_milli = Vec::with_capacity(n);
        let base = SimRng::seed_from(config.seed).stream("scale.population");
        for u in 0..config.users {
            let mut rng = base.substream(u);
            city.push(catalog.draw_city(&mut rng));
            activity_milli.push(rng.range_u64(200, 1801) as u32);
        }
        ScaledPopulation {
            city,
            activity_milli,
        }
    }

    /// Number of subscribers.
    pub fn len(&self) -> usize {
        self.city.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.city.is_empty()
    }

    /// Users per city, indexed by city id.
    pub fn users_per_city(&self, cities: usize) -> Vec<u64> {
        let mut counts = vec![0u64; cities];
        for &c in &self.city {
            counts[c as usize] += 1;
        }
        counts
    }
}

/// The hour-of-day browsing curve as prefix sums, shared read-only by
/// every shard worker: one binary search per page view instead of a
/// 24-way weighted scan.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalCurve {
    cum: [f64; 24],
    total: f64,
}

impl DiurnalCurve {
    /// The paper campaign's browse curve
    /// ([`crate::pipeline`]'s hour-of-day weights).
    pub fn browse() -> Self {
        let mut cum = [0.0; 24];
        let mut acc = 0.0;
        for (h, &w) in BROWSE_WEIGHTS.iter().enumerate() {
            acc += w;
            cum[h] = acc;
        }
        DiurnalCurve { cum, total: acc }
    }

    /// Draws a local hour (0–23) weighted by the curve.
    pub fn draw_local_hour(&self, rng: &mut SimRng) -> u32 {
        let x = rng.f64() * self.total;
        self.cum.partition_point(|&c| c <= x).min(23) as u32
    }

    /// Converts a local hour to the UTC hour for a time-zone offset in
    /// milli-hours (`utc = local − offset`, wrapped to 0–23) — the
    /// integer twin of the paper campaign's `local_to_campaign`.
    pub fn utc_hour(local_hour: u32, tz_offset_milli_hours: i64) -> u32 {
        let milli = (local_hour as i64) * 1000 - tz_offset_milli_hours;
        (milli.rem_euclid(24_000) / 1000) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_anchors_on_the_paper_deployment() {
        let catalog = CityCatalog::generate(120, 1);
        assert_eq!(catalog.len(), 120);
        for (i, city) in City::ALL.iter().enumerate() {
            assert_eq!(catalog.name(i), city.info().name);
            assert!((catalog.lon_deg(i) - city.info().position.lon_deg).abs() < 0.001);
        }
        assert_eq!(catalog.name(18), "metro-018");
        for i in 0..catalog.len() {
            assert!(catalog.weight(i) > 0.0);
            assert!((-180.0..=180.0).contains(&catalog.lon_deg(i)));
        }
    }

    #[test]
    fn catalogue_is_deterministic_and_clamped() {
        assert_eq!(CityCatalog::generate(50, 7), CityCatalog::generate(50, 7));
        assert_eq!(CityCatalog::generate(0, 7).len(), 1);
        assert_eq!(CityCatalog::generate(3, 7).len(), 3);
    }

    #[test]
    fn tz_offsets_follow_longitude() {
        let catalog = CityCatalog::generate(18, 1);
        let sydney = City::ALL
            .iter()
            .position(|c| c.info().name == "Sydney")
            .unwrap();
        let london = City::ALL
            .iter()
            .position(|c| c.info().name == "London")
            .unwrap();
        assert!(catalog.tz_offset_milli_hours(sydney) > 9_000);
        assert!(catalog.tz_offset_milli_hours(london).abs() < 1_000);
        // 9 am in Sydney (UTC+10.08 by longitude) is the previous UTC
        // night; 9 am in London ≈ 9 UTC.
        assert_eq!(
            DiurnalCurve::utc_hour(9, catalog.tz_offset_milli_hours(sydney)),
            22
        );
        assert_eq!(
            DiurnalCurve::utc_hour(9, catalog.tz_offset_milli_hours(london)),
            9
        );
    }

    #[test]
    fn weighted_city_draws_cover_the_catalogue_head_and_tail() {
        let catalog = CityCatalog::generate(40, 3);
        let mut rng = SimRng::seed_from(9).stream("test");
        let mut counts = vec![0u64; catalog.len()];
        for _ in 0..20_000 {
            counts[catalog.draw_city(&mut rng) as usize] += 1;
        }
        // Zipf head dominates, but the tail is populated too.
        assert!(counts[0] > counts[20]);
        assert!(counts.iter().filter(|&&c| c > 0).count() > 30);
    }

    #[test]
    fn population_is_deterministic_and_in_bounds() {
        let config = ScaleConfig {
            users: 5_000,
            cities: 60,
            ..ScaleConfig::default()
        };
        let catalog = CityCatalog::generate(config.cities, config.seed);
        let a = ScaledPopulation::generate(&config, &catalog);
        let b = ScaledPopulation::generate(&config, &catalog);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
        assert!(a.city.iter().all(|&c| (c as usize) < catalog.len()));
        assert!(a.activity_milli.iter().all(|&m| (200..=1800).contains(&m)));
        let per_city = a.users_per_city(catalog.len());
        assert_eq!(per_city.iter().sum::<u64>(), 5_000);
        assert!(per_city.iter().filter(|&&c| c > 0).count() > 40);
    }

    #[test]
    fn diurnal_curve_prefers_evenings_over_nights() {
        let curve = DiurnalCurve::browse();
        let mut rng = SimRng::seed_from(4).stream("test");
        let mut hist = [0u64; 24];
        for _ in 0..50_000 {
            hist[curve.draw_local_hour(&mut rng) as usize] += 1;
        }
        assert!(hist[20] > hist[3] * 5, "evening must dominate deep night");
        assert!(hist.iter().all(|&h| h > 0), "every hour sees some traffic");
    }
}
