//! # starlink-telemetry
//!
//! The browser-extension measurement pipeline — §3.1 of the paper,
//! end to end:
//!
//! * [`population`] — the 28-user deployment (18 Starlink users across
//!   10 cities in the UK, EU, USA and Australia, plus the non-Starlink
//!   comparison users), with the paper's anonymisation rules baked in:
//!   users are random identifiers, never IPs;
//! * [`aschange`] — the exit-AS timeline: Starlink traffic initially
//!   egressed from Google's AS36492 and moved to SpaceX's AS14593 between
//!   16–24 Feb 2022 in London and 1–2 Apr 2022 in Sydney (Seattle was on
//!   AS14593 throughout) — the natural experiment behind Fig. 3;
//! * [`records`] — the anonymised page-load and speedtest records the
//!   extension uploads, and the [`records::Dataset`] store with the
//!   city-wise aggregations of Table 1;
//! * [`pipeline`] — the six-month campaign driver: browsing sessions,
//!   weather exposure, occasional user-triggered speedtests;
//! * [`wire`] — the versioned, checksummed format record batches travel
//!   in, with typed decode errors for truncation and corruption;
//! * [`ingest`] — the resilient upload path: per-user buffering, bounded
//!   retries with virtual-time backoff, offline spooling under churn,
//!   and a validating, de-duplicating, quarantining [`ingest::Collector`]
//!   with ground-truth coverage accounting;
//! * [`retry`] — the shared capped, jittered, virtual-time exponential
//!   backoff policy both the upload path and the session client use;
//! * [`slcs`] — SLCS v1, the framed session protocol
//!   (HELLO/BATCH/ACK/REJECT/DRAIN) batches travel inside when the
//!   collector runs as a service;
//! * [`server`] — the collector-as-a-service admission layer: per-session
//!   token buckets, a bounded drain queue, a global byte budget, and
//!   typed load shedding;
//! * [`client`] — the extension side of a session, plus the
//!   deterministic synthetic batches the load generator uploads;
//! * [`checkpoint`] — checkpoint/resume for the day-major campaign
//!   driver and the standalone collector server: a killed run resumes
//!   byte-identically;
//! * [`scale`] — the population-scale model: a 100+-city catalogue
//!   anchored on the paper's real locations, a struct-of-arrays
//!   subscriber population (~10⁶ users) with per-city weights, and the
//!   shared diurnal browse curve with longitude-derived time zones;
//! * [`shard`] — the deterministic sharded campaign engine: contiguous
//!   user shards claimed by workers, per-shard ledgers merged in shard
//!   order, so coverage, digests and traces are byte-identical at any
//!   worker count;
//! * [`storage`] — crash-consistent checkpoint storage: a journaled
//!   last-good chain of generation files behind a CRC-sealed MANIFEST,
//!   over a faultable [`storage::DiskEnv`] that injects torn writes,
//!   bit rot, `ENOSPC`, and crash-around-rename at seeded indices;
//! * [`loader`] — the load generator's reconnect logic: after a server
//!   restart that recovered an older checkpoint generation, re-verify
//!   the ACK frontier and resend the gap instead of assuming it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aschange;
pub mod checkpoint;
pub mod client;
pub mod ingest;
pub mod loader;
pub mod pipeline;
pub mod population;
pub mod records;
pub mod retry;
pub mod scale;
pub mod server;
pub mod shard;
pub mod slcs;
pub mod storage;
pub mod wire;

pub use aschange::{ExitAs, AS_GOOGLE, AS_SPACEX};
pub use checkpoint::{
    decode_server_checkpoint, encode_server_checkpoint, CheckpointError, CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
};
pub use client::{synthetic_batch, ServerReply, SessionClient};
pub use ingest::{
    Collection, Collector, CoverageColumns, CoverageReport, CoverageTotals, IngestOptions,
    Ingested, QuarantinedBatch, ResilientCampaign, UserCoverage,
};
pub use loader::{LoaderUser, ReconnectOutcome};
pub use pipeline::{Campaign, CampaignConfig, UserDay};
pub use population::{IspClass, Population, PopulationColumns, User};
pub use records::{Dataset, PageRecord, SpeedtestRecord};
pub use retry::RetryPolicy;
pub use scale::{CityCatalog, DiurnalCurve, ScaleConfig, ScaledPopulation};
pub use server::{AdmissionConfig, CollectorServer, ServerStats};
pub use shard::{CampaignLedger, CityCoverage, ScaledCampaign, ShardPlan};
pub use slcs::{AckStatus, Frame, ShedReason, SLCS_HEADER_LEN, SLCS_MAGIC, SLCS_VERSION};
pub use storage::{
    decode_manifest, encode_manifest, generation_name, parse_generation_name, CheckpointStore,
    DiskEnv, FaultyDisk, Manifest, OpenFailure, RealDisk, RecoveredCheckpoint, SimDisk,
    StorageError, StorageFault, StorageFaultPlan, StoreStats, DEFAULT_RETAIN, MANIFEST_MAGIC,
    MANIFEST_NAME, MANIFEST_VERSION, QUARANTINE_DIR,
};
pub use wire::{RecordBatch, WireError};
