//! The one retry/backoff policy every telemetry upload path shares.
//!
//! Before this module, the exponential-backoff arithmetic lived inline
//! in the resilient upload loop, and any new retrying client (the SLCS
//! session client, the load generator) would have re-implemented it —
//! letting the two paths drift apart in cap, jitter or time base.
//! [`RetryPolicy`] centralises the contract:
//!
//! * **virtual time** — delays are [`SimDuration`]s added to a sim-time
//!   clock; nothing here consults the host;
//! * **bounded exponent** — attempt `k` scales the base delay by
//!   `2^min(k, 20)`, so the doubling can never overflow into a
//!   multi-century wait;
//! * **seeded jitter** — a ±20% factor drawn from the caller's
//!   [`SimRng`], so retry storms decorrelate deterministically.
//!
//! The draw order (one `range_f64(0.8, 1.2)` per backoff) is part of the
//! determinism contract: the resilient campaign's datasets are
//! byte-identical to the ones produced before the extraction.

use starlink_simcore::{SimDuration, SimRng};

/// A capped, jittered exponential-backoff retry policy in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts beyond the first before the caller gives up.
    pub max_retries: u32,
    /// Delay before the first retry; attempt `k` waits about
    /// `base * 2^k`, jittered.
    pub base: SimDuration,
}

impl RetryPolicy {
    /// Exponent cap: `2^20 * base` is the largest possible mean delay.
    pub const MAX_EXPONENT: u64 = 20;

    /// A policy with `max_retries` retries starting at `base`.
    pub fn new(max_retries: u32, base: SimDuration) -> Self {
        RetryPolicy { max_retries, base }
    }

    /// Total upload attempts the policy allows (the first try plus every
    /// retry).
    pub fn attempts(&self) -> u64 {
        u64::from(self.max_retries) + 1
    }

    /// The jittered delay to wait after failed attempt `attempt`
    /// (0-based). Consumes exactly one jitter draw from `rng`.
    pub fn backoff(&self, attempt: u64, rng: &mut SimRng) -> SimDuration {
        let scale = (1u64 << attempt.min(Self::MAX_EXPONENT)) as f64 * rng.range_f64(0.8, 1.2);
        self.base.mul_f64(scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_within_jitter_bounds() {
        let policy = RetryPolicy::new(6, SimDuration::from_secs(30));
        let mut rng = SimRng::seed_from(1).stream("retry-test");
        for attempt in 0..8u64 {
            let d = policy.backoff(attempt, &mut rng).as_nanos() as f64;
            let mean = 30e9 * (1u64 << attempt) as f64;
            assert!(d >= mean * 0.8 - 1.0, "attempt {attempt}: {d} too short");
            assert!(d <= mean * 1.2 + 1.0, "attempt {attempt}: {d} too long");
        }
    }

    #[test]
    fn exponent_is_capped() {
        let policy = RetryPolicy::new(64, SimDuration::from_secs(1));
        let mut rng = SimRng::seed_from(2).stream("retry-test");
        let huge = policy.backoff(63, &mut rng);
        let capped = 1e9 * (1u64 << RetryPolicy::MAX_EXPONENT) as f64;
        assert!(huge.as_nanos() as f64 <= capped * 1.2 + 1.0);
    }

    #[test]
    fn same_rng_state_same_delay() {
        let policy = RetryPolicy::new(3, SimDuration::from_secs(30));
        let a = policy.backoff(2, &mut SimRng::seed_from(9).stream("j"));
        let b = policy.backoff(2, &mut SimRng::seed_from(9).stream("j"));
        assert_eq!(a, b);
    }

    #[test]
    fn attempts_counts_the_first_try() {
        assert_eq!(RetryPolicy::new(0, SimDuration::from_secs(1)).attempts(), 1);
        assert_eq!(RetryPolicy::new(6, SimDuration::from_secs(1)).attempts(), 7);
    }
}
