//! RetryPolicy + checkpoint-store interplay under injected disk faults.
//!
//! The serve binary's session loop interleaves SLCS admission with
//! periodic [`CheckpointStore::store`] calls. The contract under test: a
//! checkpoint that dies with `ENOSPC` is *shed* — a typed
//! [`StorageError`] plus a `checkpoint_shed` trace event — and nothing
//! else changes. The session keeps accepting batches, the client's
//! [`RetryPolicy`] keeps pacing throttle rejects exactly as before, and
//! the next checkpoint attempt seals normally. Assertions run against
//! the shared [`CollectorSink`] event vector, the same way the simtest
//! oracles consume traces.

use starlink_obsv::{CollectorSink, StorageShedReason, TraceEvent};
use starlink_simcore::{SimDuration, SimRng, SimTime};
use starlink_telemetry::{
    decode_server_checkpoint, encode_server_checkpoint, synthetic_batch, AdmissionConfig,
    CheckpointStore, Collector, CollectorServer, FaultyDisk, RetryPolicy, ServerReply,
    SessionClient, SimDisk, StorageError, StorageFault, StorageFaultPlan,
};

/// Uploads `payload` through the session loop, retrying rejects per the
/// client's policy in virtual time. Returns the accept time and how many
/// retries the policy spent.
fn upload(
    server: &mut CollectorServer,
    collector: &mut Collector,
    client: &SessionClient,
    seq: u64,
    payload: &[u8],
    now: &mut SimTime,
    rng: &mut SimRng,
) -> u64 {
    let mut attempt = 0u64;
    loop {
        let reply = client
            .parse_reply(&server.handle_frame(
                collector,
                &client.batch(seq, payload.to_vec()),
                *now,
            ))
            .expect("server always answers with a reply frame");
        match reply {
            ServerReply::Ack { seq: echoed, .. } => {
                assert_eq!(echoed, seq);
                return attempt;
            }
            ServerReply::Reject { retry_after_ns, .. } => {
                assert!(
                    attempt < client.policy().attempts(),
                    "policy exhausted at seq {seq}"
                );
                let backoff = client.policy().backoff(attempt, rng);
                let wait = backoff.as_nanos().max(retry_after_ns);
                *now = SimTime::from_nanos(now.as_nanos() + wait);
                attempt += 1;
            }
        }
    }
}

#[test]
fn enospc_during_checkpoint_sheds_without_poisoning_the_session_loop() {
    let (sink, events) = CollectorSink::pair();
    starlink_obsv::install_trace(Box::new(sink));

    // One ENOSPC, aimed at the *blob* write of the third checkpoint:
    // open seals the manifest (write #1), and checkpoint k then writes
    // blob + manifest tmp (writes 2k and 2k+1).
    let mut plan = StorageFaultPlan::new();
    plan.push(StorageFault::Enospc { write: 6 });
    let mut validate = |blob: &[u8]| decode_server_checkpoint(blob).is_ok();
    let (mut store, recovered) = CheckpointStore::open(
        FaultyDisk::new(Box::new(SimDisk::new()), plan),
        2,
        &mut validate,
        SimTime::ZERO,
    )
    .expect("fresh disk opens");
    assert!(recovered.is_none());

    // A tight bucket so back-to-back uploads trip the throttle and the
    // RetryPolicy actually runs, not just the happy path.
    let config = AdmissionConfig {
        session_rate_milli: 1_000,
        session_burst: 2,
        ..AdmissionConfig::generous()
    };
    let mut server = CollectorServer::new(config);
    let mut collector = Collector::new();
    let client = SessionClient::new(1, 7, RetryPolicy::new(6, SimDuration::from_millis(200)));
    let mut rng = SimRng::seed_from(0x5109_4CE5).stream("backoff");
    let mut now = SimTime::from_secs(1);

    let hello = client
        .parse_reply(&server.handle_frame(&mut collector, &client.hello(), now))
        .expect("hello reply decodes");
    assert!(matches!(hello, ServerReply::Ack { .. }));

    let mut retries = 0u64;
    let mut shed_errors = Vec::new();
    for seq in 0..6 {
        let payload = synthetic_batch(7, seq, 3);
        retries += upload(
            &mut server,
            &mut collector,
            &client,
            seq,
            &payload,
            &mut now,
            &mut rng,
        );
        // Checkpoint after every accepted batch, like the serve binary
        // with --checkpoint-every 1.
        if let Err(e) = store.store(&encode_server_checkpoint(&collector), now) {
            shed_errors.push((seq, e));
        }
    }

    // The fault surfaced exactly once, typed as NoSpace, on the third
    // checkpoint — and the store kept sealing afterwards.
    assert_eq!(shed_errors, vec![(2, StorageError::NoSpace)]);
    let stats = store.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.written, 5);
    assert!(stats.conservation_holds(), "{stats:?}");

    // The session loop was not poisoned: every batch was eventually
    // accepted (the bucket forced real RetryPolicy backoffs), nothing
    // was quarantined, and the dataset holds all six batches.
    assert!(retries > 0, "admission config must exercise the policy");
    assert_eq!(server.stats().accepted, 6);
    assert_eq!(server.stats().quarantined, 0);
    let dataset = collector.dataset();
    assert_eq!(dataset.pages.len(), 6 * 3);
    assert_eq!(dataset.speedtests.len(), 6);

    // Trace-level assertions via the shared CollectorSink vector: one
    // checkpoint_shed with reason no_space, flanked by successful
    // checkpoint_written events (two before, three after). The borrow is
    // scoped: the re-open below emits through the same sink.
    {
        let events = events.borrow();
        let sheds: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::CheckpointShed { .. }))
            .collect();
        match sheds.as_slice() {
            [TraceEvent::CheckpointShed {
                generation, reason, ..
            }] => {
                assert_eq!(*generation, 3, "the shed attempt was generation 3");
                assert_eq!(*reason, StorageShedReason::NoSpace);
            }
            other => panic!("expected exactly one checkpoint_shed, got {other:?}"),
        }
        let written: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::CheckpointWritten { generation, .. } => Some(*generation),
                _ => None,
            })
            .collect();
        assert_eq!(
            written,
            vec![1, 2, 3, 4, 5],
            "sealing resumed after the shed"
        );
        let shed_at = events
            .iter()
            .position(|e| matches!(e, TraceEvent::CheckpointShed { .. }))
            .expect("shed present");
        let second_write = events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, TraceEvent::CheckpointWritten { .. }))
            .nth(1)
            .expect("five writes")
            .0;
        assert!(shed_at > second_write, "shed lands after the second seal");
    }

    // The surviving chain still recovers: the newest generation on disk
    // decodes to the full six-batch collector state.
    let disk = store.into_disk();
    let mut validate = |blob: &[u8]| decode_server_checkpoint(blob).is_ok();
    let (_store, recovered) =
        CheckpointStore::open(disk, 2, &mut validate, now).expect("clean re-open");
    let recovered = recovered.expect("chain is non-empty");
    let reloaded = decode_server_checkpoint(&recovered.blob).expect("newest blob decodes");
    assert_eq!(reloaded.dataset().digest(), dataset.digest());
}

#[test]
fn exhausted_retry_policy_is_the_callers_signal_not_a_hang() {
    // Companion boundary check: when the server throttles harder than
    // the policy allows, the upload loop's attempt budget is the only
    // thing that stops it — the store is never involved. Guards against
    // the session loop conflating storage sheds with admission sheds.
    let config = AdmissionConfig {
        session_rate_milli: 1, // ~17 minutes per token: backoff never catches up
        session_burst: 1,
        ..AdmissionConfig::generous()
    };
    let mut server = CollectorServer::new(config);
    let mut collector = Collector::new();
    let client = SessionClient::new(9, 3, RetryPolicy::new(2, SimDuration::from_millis(10)));
    let mut rng = SimRng::seed_from(0x5109_4CE5).stream("exhaust");
    let mut now = SimTime::from_secs(1);
    client
        .parse_reply(&server.handle_frame(&mut collector, &client.hello(), now))
        .expect("hello reply decodes");

    // First batch drains the one-token burst…
    let first = client
        .parse_reply(&server.handle_frame(
            &mut collector,
            &client.batch(0, synthetic_batch(3, 0, 1)),
            now,
        ))
        .expect("reply decodes");
    assert!(matches!(first, ServerReply::Ack { .. }));

    // …and the second meets rejects until the policy gives up.
    let payload = synthetic_batch(3, 1, 1);
    let mut rejected = 0u64;
    for attempt in 0..client.policy().attempts() {
        let reply = client
            .parse_reply(&server.handle_frame(
                &mut collector,
                &client.batch(1, payload.clone()),
                now,
            ))
            .expect("reply decodes");
        match reply {
            ServerReply::Ack { .. } => break,
            ServerReply::Reject { .. } => {
                rejected += 1;
                let backoff = client.policy().backoff(attempt, &mut rng);
                now = SimTime::from_nanos(now.as_nanos() + backoff.as_nanos());
            }
        }
    }
    assert_eq!(rejected, client.policy().attempts());
    assert_eq!(server.stats().accepted, 1);
}
