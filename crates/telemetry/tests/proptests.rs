//! Property tests for the resilient-ingestion layer: wire-format
//! robustness under arbitrary corruption, and collector idempotence
//! under duplicated uploads.

use proptest::prelude::*;
use starlink_channel::WeatherCondition;
use starlink_geo::City;
use starlink_simcore::{SimRng, SimTime};
use starlink_telemetry::aschange::ExitAs;
use starlink_telemetry::wire::{decode_batch, encode_batch, RecordBatch};
use starlink_telemetry::{Collector, Ingested, IspClass, PageRecord, SpeedtestRecord};
use starlink_web::PttBreakdown;

/// One arbitrary (but valid) page record, covering every enum arm the
/// wire format encodes.
fn random_page(user: u64, rng: &mut SimRng) -> PageRecord {
    let ptt = PttBreakdown {
        redirect_ms: rng.range_f64(0.0, 50.0),
        dns_ms: rng.range_f64(0.0, 80.0),
        connect_ms: rng.range_f64(0.0, 120.0),
        tls_ms: rng.range_f64(0.0, 150.0),
        request_ms: rng.range_f64(0.0, 400.0),
        response_ms: rng.range_f64(0.0, 900.0),
    };
    PageRecord {
        user,
        city: City::ALL[rng.below(City::ALL.len() as u64) as usize],
        isp: if rng.bernoulli(0.6) {
            IspClass::Starlink
        } else {
            IspClass::NonStarlink(
                starlink_channel::AccessTech::ALL
                    [rng.below(starlink_channel::AccessTech::ALL.len() as u64) as usize],
            )
        },
        at: SimTime::from_secs(rng.below(200 * 86_400)),
        rank: 1 + rng.below(1_000_000),
        plt_ms: ptt.total_ms() + rng.range_f64(0.0, 2_000.0),
        ptt,
        exit_as: match rng.below(3) {
            0 => None,
            1 => Some(ExitAs::Google),
            _ => Some(ExitAs::SpaceX),
        },
        weather: WeatherCondition::ALL[rng.below(WeatherCondition::ALL.len() as u64) as usize],
    }
}

/// A deterministic, seed-driven batch.
fn random_batch(seed: u64, pages: usize, speedtests: usize) -> RecordBatch {
    let mut rng = SimRng::seed_from(seed).stream("proptest.batch");
    let user = rng.next_u64();
    RecordBatch {
        user,
        seq: seed % 365,
        pages: (0..pages).map(|_| random_page(user, &mut rng)).collect(),
        speedtests: (0..speedtests)
            .map(|_| SpeedtestRecord {
                user,
                city: City::ALL[rng.below(City::ALL.len() as u64) as usize],
                starlink: rng.bernoulli(0.5),
                at_secs: rng.below(200 * 86_400),
                downlink_mbps: rng.range_f64(0.1, 300.0),
                uplink_mbps: rng.range_f64(0.1, 40.0),
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `encode → flip random bytes → decode` never panics, and either
    /// returns the original batch (the flips cancelled out) or a typed
    /// corruption error with a stable machine-readable code.
    #[test]
    fn corrupted_batches_decode_to_original_or_typed_error(
        seed in any::<u64>(),
        pages in 0usize..6,
        speedtests in 0usize..3,
        flips in 1usize..6,
    ) {
        let batch = random_batch(seed, pages, speedtests);
        let clean = encode_batch(&batch);
        let decoded = decode_batch(&clean).ok();
        prop_assert_eq!(decoded.as_ref(), Some(&batch));

        let mut rng = SimRng::seed_from(seed).stream("proptest.flips");
        let mut bytes = clean.clone();
        for _ in 0..flips {
            let at = rng.below(bytes.len() as u64) as usize;
            bytes[at] ^= (1 + rng.below(255)) as u8;
        }
        match decode_batch(&bytes) {
            Ok(back) => {
                // Only possible when the flips cancelled each other.
                prop_assert_eq!(&bytes, &clean, "accepted altered bytes");
                prop_assert_eq!(back, batch);
            }
            Err(e) => prop_assert!(!e.code().is_empty(), "untyped error {e}"),
        }
    }

    /// Every strict prefix of a valid frame is rejected with a typed
    /// error — a cut-off upload can never be half-ingested.
    #[test]
    fn truncated_batches_yield_typed_errors(
        seed in any::<u64>(),
        pages in 0usize..5,
        speedtests in 0usize..3,
        cut in 0.0f64..1.0,
    ) {
        let batch = random_batch(seed, pages, speedtests);
        let clean = encode_batch(&batch);
        let keep = ((clean.len() as f64) * cut) as usize; // < len: strict prefix
        let err = decode_batch(&clean[..keep]);
        prop_assert!(err.is_err(), "accepted a {keep}-byte prefix of {}", clean.len());
        prop_assert!(!err.unwrap_err().code().is_empty());
    }

    /// Submitting the same batch twice leaves the collector's dataset
    /// byte-identical and counts the re-upload as a duplicate — the
    /// idempotence that makes lost ACKs safe.
    #[test]
    fn duplicate_uploads_are_idempotent(
        seed in any::<u64>(),
        pages in 1usize..6,
        speedtests in 0usize..3,
    ) {
        let batch = random_batch(seed, pages, speedtests);
        let bytes = encode_batch(&batch);
        let mut collector = Collector::new();
        let at = SimTime::from_secs(72_000);

        let first = collector.submit(&bytes, at);
        prop_assert!(matches!(first, Ingested::Accepted { .. }), "first upload rejected");
        let once = collector.dataset().digest();

        let second = collector.submit(&bytes, at);
        prop_assert!(matches!(second, Ingested::Duplicate), "re-upload not deduplicated");
        prop_assert_eq!(collector.dataset().digest(), once, "dataset changed on re-upload");
        prop_assert_eq!(collector.duplicates(), (pages + speedtests) as u64);
        prop_assert!(collector.quarantine().is_empty());
    }
}
