//! Property tests for the shard planner and the sharded campaign
//! engine: for random populations and worker counts 1..=16, partitions
//! are disjoint and covering, and merged campaign output equals the
//! unsharded reference exactly.

use proptest::prelude::*;
use starlink_telemetry::{ScaleConfig, ScaledCampaign, ShardPlan};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partitions are contiguous in index order, disjoint, and cover
    /// every user — for any population size and any worker count.
    #[test]
    fn plan_partitions_are_disjoint_and_cover_all_users(
        users in 0u64..5_000,
        jobs in 1usize..=16,
    ) {
        let plan = ShardPlan::new(users, jobs);
        prop_assert_eq!(plan.shards(), jobs);
        prop_assert_eq!(plan.users(), users);
        let mut cursor = 0u64;
        let mut covered = 0u64;
        for k in 0..plan.shards() {
            let r = plan.range(k);
            // Contiguity at the previous end implies disjointness.
            prop_assert_eq!(r.start, cursor);
            cursor = r.end;
            covered += r.end - r.start;
        }
        prop_assert_eq!(cursor, users);
        prop_assert_eq!(covered, users);
    }

    /// Shard sizes are balanced to within one user.
    #[test]
    fn plan_is_balanced_within_one_user(
        users in 0u64..5_000,
        jobs in 1usize..=16,
    ) {
        let plan = ShardPlan::new(users, jobs);
        let sizes: Vec<u64> = (0..plan.shards())
            .map(|k| {
                let r = plan.range(k);
                r.end - r.start
            })
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "sizes {sizes:?} differ by more than one");
    }

    /// The merged per-city coverage, the per-user ledger, and the
    /// dataset digest all equal the unsharded reference at any worker
    /// count — and the coverage invariant holds exactly.
    #[test]
    fn merged_output_equals_the_unsharded_reference(
        seed in any::<u64>(),
        users in 1u64..400,
        cities in 1u32..40,
        jobs in 2usize..=16,
    ) {
        let config = ScaleConfig {
            seed,
            users,
            cities,
            days: 2,
            pages_per_day_milli: 5_000,
        };
        let mut reference = ScaledCampaign::new(config);
        reference.run_to_end(1);
        prop_assert!(reference.ledger().sums_hold());

        let mut sharded = ScaledCampaign::new(config);
        sharded.run_to_end(jobs);
        prop_assert!(sharded.ledger().sums_hold());
        prop_assert_eq!(sharded.per_city(), reference.per_city());
        prop_assert_eq!(sharded.ledger(), reference.ledger());
        prop_assert_eq!(sharded.dataset_digest(), reference.dataset_digest());
    }
}
