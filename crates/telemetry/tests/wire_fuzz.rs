//! Seeded fuzz tests for the telemetry wire decoder.
//!
//! A deterministic swarm of adversarial inputs — truncations at every
//! boundary, seeded bit-flips, spliced frames, and raw garbage — driven
//! through [`decode_batch`] and [`peek_header`]. The contract under fuzz:
//! the decoder never panics, and every rejection is a typed
//! [`WireError`] with a stable quarantine code. An `Ok` from a mutated
//! buffer is only acceptable when the mutations cancelled out, i.e. the
//! decoded batch equals the original.
//!
//! The corpus is *generated*, not checked in: every case derives from a
//! [`SimRng`] stream seeded by the constants below, so the whole swarm is
//! reproducible from this file alone.

use starlink_channel::{AccessTech, WeatherCondition};
use starlink_geo::City;
use starlink_simcore::{SimRng, SimTime};
use starlink_telemetry::aschange::ExitAs;
use starlink_telemetry::wire::{decode_batch, encode_batch, peek_header, RecordBatch, WireError};
use starlink_telemetry::{IspClass, PageRecord, SpeedtestRecord};
use starlink_web::PttBreakdown;

/// Base seed for the fuzz streams. Changing it re-rolls the whole swarm.
const FUZZ_SEED: u64 = 0xF022_BA7C_4DEC_0DE5;

/// One valid page record drawn from `rng`, touching every enum arm the
/// format encodes.
fn fuzz_page(user: u64, rng: &mut SimRng) -> PageRecord {
    let ptt = PttBreakdown {
        redirect_ms: rng.range_f64(0.0, 60.0),
        dns_ms: rng.range_f64(0.0, 90.0),
        connect_ms: rng.range_f64(0.0, 140.0),
        tls_ms: rng.range_f64(0.0, 160.0),
        request_ms: rng.range_f64(0.0, 500.0),
        response_ms: rng.range_f64(0.0, 1_000.0),
    };
    PageRecord {
        user,
        city: City::ALL[rng.index(City::ALL.len())],
        isp: if rng.bernoulli(0.5) {
            IspClass::Starlink
        } else {
            IspClass::NonStarlink(AccessTech::ALL[rng.index(AccessTech::ALL.len())])
        },
        at: SimTime::from_secs(rng.below(182 * 86_400)),
        rank: 1 + rng.below(1_000_000),
        plt_ms: ptt.total_ms() + rng.range_f64(0.0, 3_000.0),
        ptt,
        exit_as: match rng.below(3) {
            0 => None,
            1 => Some(ExitAs::Google),
            _ => Some(ExitAs::SpaceX),
        },
        weather: WeatherCondition::ALL[rng.index(WeatherCondition::ALL.len())],
    }
}

/// A valid batch whose shape (record counts included) derives from `rng`.
fn fuzz_batch(rng: &mut SimRng) -> RecordBatch {
    let user = rng.next_u64();
    let pages = rng.below(8) as usize;
    let speedtests = rng.below(4) as usize;
    RecordBatch {
        user,
        seq: rng.below(365),
        pages: (0..pages).map(|_| fuzz_page(user, rng)).collect(),
        speedtests: (0..speedtests)
            .map(|_| SpeedtestRecord {
                user,
                city: City::ALL[rng.index(City::ALL.len())],
                starlink: rng.bernoulli(0.5),
                at_secs: rng.below(182 * 86_400),
                downlink_mbps: rng.range_f64(0.1, 400.0),
                uplink_mbps: rng.range_f64(0.1, 60.0),
            })
            .collect(),
    }
}

/// Decode must be total: whatever `bytes` holds, it returns a value. The
/// typed error doubles as the quarantine reason, so its code must be one
/// of the stable names.
fn assert_total(bytes: &[u8], original: &RecordBatch) {
    match decode_batch(bytes) {
        Ok(decoded) => assert_eq!(
            &decoded, original,
            "decoder accepted a mutation as a different batch"
        ),
        Err(e) => {
            let known = [
                "bad-magic",
                "unsupported-version",
                "truncated",
                "trailing-bytes",
                "checksum-mismatch",
                "bad-field",
            ];
            assert!(
                known.contains(&e.code()),
                "unknown error code {:?}",
                e.code()
            );
        }
    }
    // The header peek is best-effort but must also be total.
    let _ = peek_header(bytes);
}

#[test]
fn truncation_at_every_boundary_yields_typed_errors() {
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("truncate");
    for _ in 0..32 {
        let batch = fuzz_batch(&mut rng);
        let wire = encode_batch(&batch);
        assert_eq!(decode_batch(&wire).as_ref(), Ok(&batch), "round trip");
        for cut in 0..wire.len() {
            match decode_batch(&wire[..cut]) {
                Ok(_) => panic!("accepted a {cut}-byte prefix of {} bytes", wire.len()),
                Err(WireError::BadMagic { .. }) => assert!(cut < 4),
                Err(WireError::Truncated { needed, got }) => {
                    assert_eq!(got, cut);
                    assert!(needed <= wire.len(), "claimed need beyond the real frame");
                }
                Err(other) => panic!("truncation at {cut} produced {other:?}"),
            }
            let _ = peek_header(&wire[..cut]);
        }
    }
}

#[test]
fn bit_flips_never_panic_and_never_forge_a_batch() {
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("bitflip");
    for _ in 0..400 {
        let batch = fuzz_batch(&mut rng);
        let mut wire = encode_batch(&batch);
        let flips = 1 + rng.below(16) as usize;
        for _ in 0..flips {
            let at = rng.index(wire.len());
            wire[at] ^= 1 << rng.below(8);
        }
        assert_total(&wire, &batch);
    }
}

#[test]
fn spliced_and_extended_frames_are_rejected() {
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("splice");
    for _ in 0..64 {
        let batch = fuzz_batch(&mut rng);
        let wire = encode_batch(&batch);

        // Concatenated uploads: valid frame + any suffix => TrailingBytes.
        let mut doubled = wire.clone();
        let extra = 1 + rng.below(64) as usize;
        doubled.extend((0..extra).map(|_| rng.below(256) as u8));
        match decode_batch(&doubled) {
            Err(WireError::TrailingBytes { extra: got }) => assert_eq!(got, extra),
            other => panic!("frame + {extra} bytes decoded to {other:?}"),
        }

        // A tail spliced from a *different* valid frame keeps the framing
        // intact, so the checksum is the last line of defence.
        let other = encode_batch(&fuzz_batch(&mut rng));
        if other.len() == wire.len() && other != wire {
            let cut = rng.index(wire.len());
            let mut spliced = wire[..cut].to_vec();
            spliced.extend_from_slice(&other[cut..]);
            assert_total(&spliced, &batch);
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("garbage");
    let empty = RecordBatch {
        user: 0,
        seq: 0,
        pages: Vec::new(),
        speedtests: Vec::new(),
    };
    for _ in 0..1_000 {
        let len = rng.below(512) as usize;
        let buf: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        // Random bytes forging a valid frame is astronomically unlikely;
        // if it ever happens the comparison against `empty` fails loudly
        // and the seed pinpoints the case.
        assert_total(&buf, &empty);
    }
}

// ---------------------------------------------------------------------
// SLCS session-frame layer
// ---------------------------------------------------------------------

use starlink_simcore::SimDuration;
use starlink_telemetry::slcs::{
    decode_frame, encode_frame, peek_frame_len, AckStatus, Frame, ShedReason, SLCS_HEADER_LEN,
    SLCS_MAX_PAYLOAD,
};
use starlink_telemetry::{AdmissionConfig, Collector, CollectorServer};

/// One valid session frame drawn from `rng`, covering every frame type.
fn fuzz_frame(rng: &mut SimRng) -> Frame {
    let session = rng.next_u64();
    match rng.below(5) {
        0 => Frame::Hello {
            session,
            user: rng.next_u64(),
        },
        1 => Frame::Batch {
            session,
            seq: rng.next_u64(),
            payload: (0..rng.below(256)).map(|_| rng.below(256) as u8).collect(),
        },
        2 => Frame::Ack {
            session,
            seq: rng.next_u64(),
            status: [
                AckStatus::Accepted,
                AckStatus::Duplicate,
                AckStatus::Quarantined,
            ][rng.index(3)],
        },
        3 => Frame::Reject {
            session,
            seq: rng.next_u64(),
            reason: ShedReason::ALL[rng.index(ShedReason::ALL.len())],
            retry_after_ns: rng.next_u64(),
        },
        _ => Frame::Drain { session },
    }
}

/// Frame decode must be total with stable codes, like the batch layer.
fn assert_frame_total(bytes: &[u8], original: &Frame) {
    match decode_frame(bytes) {
        Ok(decoded) => assert_eq!(
            &decoded, original,
            "frame decoder accepted a mutation as a different frame"
        ),
        Err(e) => {
            let known = [
                "bad-magic",
                "unsupported-version",
                "truncated",
                "trailing-bytes",
                "checksum-mismatch",
                "bad-field",
            ];
            assert!(
                known.contains(&e.code()),
                "unknown error code {:?}",
                e.code()
            );
        }
    }
    let _ = peek_frame_len(bytes);
}

#[test]
fn slcs_truncation_at_every_boundary_yields_typed_errors() {
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("slcs-truncate");
    for _ in 0..32 {
        let frame = fuzz_frame(&mut rng);
        let wire = encode_frame(&frame);
        assert_eq!(decode_frame(&wire).as_ref(), Ok(&frame), "round trip");
        for cut in 0..wire.len() {
            assert!(
                decode_frame(&wire[..cut]).is_err(),
                "accepted a {cut}-byte prefix of {} bytes",
                wire.len()
            );
            assert_frame_total(&wire[..cut], &frame);
            // The stream-framing peek must never claim more than the
            // real frame occupies, and must be total on any prefix.
            if let Ok(len) = peek_frame_len(&wire[..cut]) {
                assert_eq!(len, wire.len(), "peek disagrees with the encoder");
            }
        }
    }
}

#[test]
fn slcs_bit_flips_never_panic_and_never_forge_a_frame() {
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("slcs-bitflip");
    for _ in 0..400 {
        let frame = fuzz_frame(&mut rng);
        let mut wire = encode_frame(&frame);
        let flips = 1 + rng.below(16) as usize;
        for _ in 0..flips {
            let at = rng.index(wire.len());
            wire[at] ^= 1 << rng.below(8);
        }
        assert_frame_total(&wire, &frame);
    }
}

#[test]
fn slcs_hostile_lengths_are_refused_before_any_read() {
    // Forge the length field toward usize overflow: both the peek and
    // the decoder must reject typed, never allocate or over-read.
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("slcs-lengths");
    let paylen_at = SLCS_HEADER_LEN - 4;
    for _ in 0..128 {
        let frame = fuzz_frame(&mut rng);
        let mut wire = encode_frame(&frame);
        let hostile = match rng.below(3) {
            0 => u32::MAX - rng.below(1_024) as u32,
            1 => (SLCS_MAX_PAYLOAD as u32) + 1 + rng.below(1_024) as u32,
            _ => (SLCS_MAX_PAYLOAD as u32).saturating_sub(rng.below(1_024) as u32),
        };
        wire[paylen_at..paylen_at + 4].copy_from_slice(&hostile.to_le_bytes());
        match peek_frame_len(&wire) {
            Ok(len) => {
                // Within the cap the peek may believe the claim, but it
                // must account for header + payload + checksum exactly.
                assert!(hostile as usize <= SLCS_MAX_PAYLOAD);
                assert_eq!(len, SLCS_HEADER_LEN + hostile as usize + 4);
            }
            Err(e) => assert!(
                matches!(e.code(), "bad-field" | "truncated"),
                "peek produced {e:?}"
            ),
        }
        assert!(decode_frame(&wire).is_err(), "hostile length decoded");
        assert_frame_total(&wire, &frame);
    }
}

#[test]
fn slcs_garbage_never_panics() {
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("slcs-garbage");
    let sentinel = Frame::Drain { session: 0 };
    for _ in 0..1_000 {
        let len = rng.below(512) as usize;
        let buf: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        assert_frame_total(&buf, &sentinel);
    }
}

#[test]
fn hostile_streams_against_the_server_always_get_typed_replies() {
    // Duplicate ACKs, replayed server replies, reply frames arriving as
    // requests, garbage, and unknown sessions interleaved with real
    // batches: the server must answer every input with exactly one
    // well-formed ACK or REJECT and keep its queue bounded.
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("slcs-server");
    let config = AdmissionConfig::generous();
    for _ in 0..8 {
        let mut server = CollectorServer::new(config);
        let mut collector = Collector::new();
        let mut now = SimTime::ZERO;

        let hello = encode_frame(&Frame::Hello {
            session: 1,
            user: 7,
        });
        let opened = server.handle_frame(&mut collector, &hello, now);
        assert!(matches!(decode_frame(&opened), Ok(Frame::Ack { .. })));

        let mut last_reply = opened;
        let mut batch_seq = 0u64;
        for _ in 0..96 {
            now += SimDuration::from_millis(rng.below(2_000));
            let input = match rng.below(5) {
                // A legitimate upload on the open session.
                0 => {
                    batch_seq += 1;
                    encode_frame(&Frame::Batch {
                        session: 1,
                        seq: batch_seq,
                        payload: encode_batch(&fuzz_batch(&mut rng)),
                    })
                }
                // The server's own previous reply, replayed back at it.
                1 => last_reply.clone(),
                // A random well-formed frame (often a reply type or an
                // unknown session).
                2 => encode_frame(&fuzz_frame(&mut rng)),
                // A duplicate of an earlier batch seq.
                3 => encode_frame(&Frame::Batch {
                    session: 1,
                    seq: batch_seq,
                    payload: encode_batch(&fuzz_batch(&mut rng)),
                }),
                // Raw garbage.
                _ => (0..rng.below(128)).map(|_| rng.below(256) as u8).collect(),
            };
            let reply = server.handle_frame(&mut collector, &input, now);
            match decode_frame(&reply).expect("server replies must be well-formed") {
                Frame::Ack { .. } | Frame::Reject { .. } => {}
                other => panic!("server answered with a non-reply frame: {other:?}"),
            }
            last_reply = reply;
            assert!(
                server.queue_depth() <= config.queue_batches,
                "queue bound violated"
            );
        }
        // Reply-typed and garbage inputs all shed as bad frames.
        assert!(server.stats().shed_by(ShedReason::BadFrame) > 0);
    }
}

// ---------------------------------------------------------------------
// Checkpoint-storage layer: MANIFEST + generation files
// ---------------------------------------------------------------------

use starlink_telemetry::{
    decode_manifest, decode_server_checkpoint, encode_manifest, encode_server_checkpoint,
    generation_name, parse_generation_name, CheckpointStore, DiskEnv, Manifest, SimDisk,
    DEFAULT_RETAIN, MANIFEST_NAME,
};

/// A random (but plausible) manifest drawn from `rng`.
fn fuzz_manifest(rng: &mut SimRng) -> Manifest {
    Manifest {
        newest: rng.next_u64(),
        written: rng.next_u64(),
        pruned: rng.next_u64(),
        quarantined: rng.next_u64(),
    }
}

#[test]
fn manifest_truncation_at_every_boundary_yields_typed_errors() {
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("manifest-truncate");
    for _ in 0..64 {
        let manifest = fuzz_manifest(&mut rng);
        let wire = encode_manifest(&manifest);
        assert_eq!(decode_manifest(&wire).as_ref(), Ok(&manifest), "round trip");
        for cut in 0..wire.len() {
            match decode_manifest(&wire[..cut]) {
                Ok(_) => panic!("accepted a {cut}-byte prefix of {} bytes", wire.len()),
                Err(WireError::BadMagic { .. }) => assert!(cut >= 4, "magic read past prefix"),
                Err(WireError::Truncated { .. }) => {}
                Err(other) => panic!("truncation at {cut} produced {other:?}"),
            }
        }
        // Any suffix breaks the exact-length contract, typed.
        let mut extended = wire.clone();
        extended.push(rng.below(256) as u8);
        assert!(matches!(
            decode_manifest(&extended),
            Err(WireError::TrailingBytes { .. })
        ));
    }
}

#[test]
fn manifest_bit_flips_never_panic_and_never_forge() {
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("manifest-bitflip");
    let known = [
        "bad-magic",
        "unsupported-version",
        "truncated",
        "trailing-bytes",
        "checksum-mismatch",
        "bad-field",
    ];
    for _ in 0..400 {
        let manifest = fuzz_manifest(&mut rng);
        let mut wire = encode_manifest(&manifest);
        let flips = 1 + rng.below(8) as usize;
        for _ in 0..flips {
            let at = rng.index(wire.len());
            wire[at] ^= 1 << rng.below(8);
        }
        match decode_manifest(&wire) {
            Ok(decoded) => assert_eq!(
                decoded, manifest,
                "decoder accepted a mutation as a different manifest"
            ),
            Err(e) => assert!(known.contains(&e.code()), "unknown code {:?}", e.code()),
        }
    }
}

#[test]
fn hostile_generation_names_never_panic_and_never_alias() {
    // Exact inverse on the whole u64 range, including the ceiling.
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("gen-names");
    for _ in 0..256 {
        let g = rng.next_u64();
        assert_eq!(parse_generation_name(&generation_name(g)), Some(g));
    }
    assert_eq!(
        parse_generation_name(&generation_name(u64::MAX)),
        Some(u64::MAX)
    );
    // Hostile names: wrong fix, empty digits, sign characters, hex,
    // unicode digits, and overflow must all parse to None, never panic.
    for hostile in [
        "",
        "ckpt-.slcp",
        "ckpt--1.slcp",
        "ckpt-+1.slcp",
        "ckpt-1x.slcp",
        "ckpt-0x10.slcp",
        "ckpt-1.slcp.tmp",
        "CKPT-1.SLCP",
        "ckpt-١٢٣.slcp",
        "ckpt-99999999999999999999999999.slcp",
        "ckpt-18446744073709551616.slcp", // u64::MAX + 1
        MANIFEST_NAME,
        "quarantine",
    ] {
        assert_eq!(parse_generation_name(hostile), None, "{hostile:?} parsed");
    }
    // Unpadded digits still parse (recovery tolerates foreign padding)…
    assert_eq!(parse_generation_name("ckpt-7.slcp"), Some(7));
    // …and random garbage is total.
    for _ in 0..512 {
        let len = rng.below(40) as usize;
        let name: String = (0..len)
            .map(|_| char::from(32 + rng.below(95) as u8))
            .collect();
        let _ = parse_generation_name(&name);
    }
}

/// Seals `count` real server checkpoints into a fresh store and returns
/// the disk (manifest + generation chain on it).
fn sealed_chain(count: u64, rng: &mut SimRng) -> SimDisk {
    let mut validate = |blob: &[u8]| decode_server_checkpoint(blob).is_ok();
    let (mut store, recovered) =
        CheckpointStore::open(SimDisk::new(), DEFAULT_RETAIN, &mut validate, SimTime::ZERO)
            .expect("fresh sim disk");
    assert!(recovered.is_none());
    let mut collector = Collector::new();
    for seq in 1..=count {
        let batch = fuzz_batch(rng);
        collector.submit(&encode_batch(&batch), SimTime::from_secs(seq));
        store
            .store(
                &encode_server_checkpoint(&collector),
                SimTime::from_secs(seq),
            )
            .expect("perfect disk");
    }
    store.into_disk()
}

#[test]
fn recovery_never_adopts_a_crc_failing_blob() {
    // Corrupt the chain every way the fuzzer can think of — bit flips in
    // any file, truncations, a forged manifest, duplicate and missing
    // generations — then recover. The contract: open never panics, any
    // adopted blob actually decodes, and conservation holds afterwards.
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("storage-recovery");
    for round in 0..64 {
        let mut disk = sealed_chain(1 + rng.below(4), &mut rng);
        let paths = disk.paths();
        for _ in 0..1 + rng.below(4) {
            let at = rng.index(paths.len());
            let path = paths[at].clone();
            match rng.below(4) {
                // Bit flip anywhere in the file.
                0 => {
                    if let Some(bytes) = disk.file_mut(&path) {
                        if !bytes.is_empty() {
                            let bit = rng.below(bytes.len() as u64 * 8);
                            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
                        }
                    }
                }
                // Truncate to a random prefix (torn write).
                1 => {
                    if let Some(bytes) = disk.file_mut(&path) {
                        let keep = rng.index(bytes.len().max(1));
                        bytes.truncate(keep);
                    }
                }
                // Replace wholesale with garbage.
                2 => {
                    let len = rng.below(128) as usize;
                    let garbage: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
                    disk.write(&path, &garbage).expect("sim write");
                }
                // Duplicate under a hostile or future generation name.
                _ => {
                    let clone = disk.file(&path).expect("listed path").to_vec();
                    let name = generation_name(1_000 + rng.below(1_000));
                    disk.write(&name, &clone).expect("sim write");
                }
            }
        }
        let mut validate = |blob: &[u8]| decode_server_checkpoint(blob).is_ok();
        let (store, recovered) =
            CheckpointStore::open(disk, DEFAULT_RETAIN, &mut validate, SimTime::ZERO)
                .expect("sim disk never fails, so recovery must complete");
        if let Some(r) = recovered {
            assert!(
                decode_server_checkpoint(&r.blob).is_ok(),
                "round {round}: adopted a blob that does not decode"
            );
        }
        let stats = store.stats();
        assert!(stats.conservation_holds(), "round {round}: {stats:?}");
    }
}

#[test]
fn hostile_record_counts_cannot_overflow_framing() {
    // Forge headers whose record counts multiply past usize: the length
    // arithmetic must fail typed (bad-field), not wrap into a bogus frame.
    let mut rng = SimRng::seed_from(FUZZ_SEED).stream("counts");
    for _ in 0..64 {
        let batch = fuzz_batch(&mut rng);
        let mut wire = encode_batch(&batch);
        let counts_at = 4 + 2 + 2 + 8 + 8; // magic, version, flags, user, seq
        let huge = (u32::MAX - rng.below(1_024) as u32).to_le_bytes();
        wire[counts_at..counts_at + 4].copy_from_slice(&huge);
        wire[counts_at + 4..counts_at + 8].copy_from_slice(&huge);
        match decode_batch(&wire) {
            Err(WireError::BadField { .. }) | Err(WireError::Truncated { .. }) => {}
            other => panic!("hostile counts decoded to {other:?}"),
        }
    }
}
