//! Comparative access technologies.
//!
//! The paper contrasts Starlink with what its user base actually uses:
//!
//! * Fig. 5 compares Starlink hop-by-hop against a "best of class"
//!   **broadband connection over Wi-Fi at a major UK university** and a
//!   **major cellular operator**, finding broadband < Starlink < cellular;
//! * Table 1's non-Starlink extension users are the kind of connections
//!   rural Starlink adopters migrate *from* — we model that population as
//!   a cellular-heavy mix with rural DSL;
//! * Fig. 8 re-runs the congestion-control stress test on **campus Wi-Fi**
//!   as the low-loss control.
//!
//! [`AccessProfile`] captures what the latency/throughput pipeline needs
//! from each technology: first-hop and access-segment delay distributions,
//! capacity, and a background loss floor.

use starlink_simcore::{DataRate, Dist};

/// An access technology observed in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessTech {
    /// Starlink LEO service (bent-pipe configuration).
    Starlink,
    /// Urban cable/fibre broadband (the Fig. 5 "best of class" baseline,
    /// measured over Wi-Fi at a university).
    CableBroadband,
    /// Rural DSL — the long-loop copper service typical of areas where
    /// Starlink sells best.
    RuralBroadband,
    /// A major cellular (4G) operator.
    Cellular,
    /// Campus Wi-Fi: the low-loss control environment of Fig. 8.
    CampusWifi,
}

/// Delay/capacity/loss parameters of one access technology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessProfile {
    /// Which technology this is.
    pub tech: AccessTech,
    /// RTT contribution of the first hop (CPE/home router), ms.
    pub first_hop_ms: Dist,
    /// RTT contribution of the access segment — everything between the
    /// home router and the ISP's PoP (for Starlink: the bent pipe,
    /// propagation plus typical scheduling/queueing), ms.
    pub access_ms: Dist,
    /// Downlink capacity ceiling.
    pub downlink: DataRate,
    /// Uplink capacity ceiling.
    pub uplink: DataRate,
    /// Background packet-loss probability.
    pub base_loss: f64,
}

impl AccessTech {
    /// All modelled technologies.
    pub const ALL: [AccessTech; 5] = [
        AccessTech::Starlink,
        AccessTech::CableBroadband,
        AccessTech::RuralBroadband,
        AccessTech::Cellular,
        AccessTech::CampusWifi,
    ];

    /// Stable one-byte wire code (the index in [`AccessTech::ALL`]), used
    /// by the telemetry wire format. Append-only: never reorder.
    pub fn code(self) -> u8 {
        AccessTech::ALL
            .iter()
            .position(|&t| t == self)
            .map(|i| i as u8)
            .unwrap_or(0)
    }

    /// Decodes an [`AccessTech::code`]; `None` for unknown bytes.
    pub fn from_code(code: u8) -> Option<AccessTech> {
        AccessTech::ALL.get(code as usize).copied()
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            AccessTech::Starlink => "Starlink",
            AccessTech::CableBroadband => "Broadband",
            AccessTech::RuralBroadband => "Rural DSL",
            AccessTech::Cellular => "Cellular",
            AccessTech::CampusWifi => "Wi-Fi on Campus",
        }
    }

    /// The calibrated profile. Values are representative of 2022-era UK
    /// services and sized so the Fig. 5 ordering (broadband < Starlink <
    /// cellular) and the Fig. 8 loss regimes come out of the pipeline, not
    /// out of hand-tuned results.
    pub fn profile(self) -> AccessProfile {
        match self {
            AccessTech::Starlink => AccessProfile {
                tech: self,
                first_hop_ms: Dist::LogNormal {
                    mu: 0.0, // ~1 ms to the Starlink router
                    sigma: 0.3,
                },
                // Bent pipe to the PoP: ~4 ms propagation + scheduling
                // slots + gateway queueing; the Fig. 5 Starlink PoP hop
                // sits around 30–40 ms.
                access_ms: Dist::LogNormal {
                    mu: 3.50, // median e^3.50 ~ 33 ms
                    sigma: 0.30,
                },
                downlink: DataRate::from_mbps(250),
                uplink: DataRate::from_mbps(15),
                base_loss: 0.003,
            },
            AccessTech::CableBroadband => AccessProfile {
                tech: self,
                first_hop_ms: Dist::LogNormal {
                    mu: 0.6,
                    sigma: 0.4,
                }, // Wi-Fi AP ~1.8 ms
                access_ms: Dist::LogNormal {
                    mu: 1.95, // median ~7 ms to the ISP PoP
                    sigma: 0.25,
                },
                downlink: DataRate::from_mbps(500),
                uplink: DataRate::from_mbps(100),
                base_loss: 0.0005,
            },
            AccessTech::RuralBroadband => AccessProfile {
                tech: self,
                first_hop_ms: Dist::LogNormal {
                    mu: 0.6,
                    sigma: 0.4,
                },
                access_ms: Dist::LogNormal {
                    mu: 3.22, // median ~25 ms over a long copper loop
                    sigma: 0.35,
                },
                downlink: DataRate::from_mbps(12),
                uplink: DataRate::from_mbps(1),
                base_loss: 0.002,
            },
            AccessTech::Cellular => AccessProfile {
                tech: self,
                first_hop_ms: Dist::LogNormal {
                    mu: 1.1,
                    sigma: 0.4,
                }, // modem ~3 ms
                // RAN scheduling + core: the Fig. 5 cellular trace sits
                // ~20 ms above Starlink hop for hop.
                access_ms: Dist::LogNormal {
                    mu: 3.91, // median ~50 ms
                    sigma: 0.35,
                },
                downlink: DataRate::from_mbps(60),
                uplink: DataRate::from_mbps(20),
                base_loss: 0.004,
            },
            AccessTech::CampusWifi => AccessProfile {
                tech: self,
                first_hop_ms: Dist::LogNormal {
                    mu: 0.4,
                    sigma: 0.3,
                },
                access_ms: Dist::LogNormal {
                    mu: 1.10, // median ~3 ms to the campus border
                    sigma: 0.25,
                },
                downlink: DataRate::from_mbps(400),
                uplink: DataRate::from_mbps(200),
                base_loss: 0.0002,
            },
        }
    }
}

impl AccessProfile {
    /// The median total access RTT (first hop + access segment), ms — a
    /// quick comparator used by tests and documentation.
    pub fn median_access_rtt_ms(&self) -> f64 {
        median_of(self.first_hop_ms) + median_of(self.access_ms)
    }
}

fn median_of(d: Dist) -> f64 {
    match d {
        Dist::Constant(v) => v,
        Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
        Dist::Normal { mean, .. } => mean,
        Dist::LogNormal { mu, .. } => mu.exp(),
        Dist::Exponential { mean } => mean * std::f64::consts::LN_2,
        Dist::Pareto { x_min, alpha } => x_min * 2f64.powf(1.0 / alpha),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_simcore::SimRng;

    #[test]
    fn fig5_ordering_broadband_starlink_cellular() {
        let broadband = AccessTech::CableBroadband.profile().median_access_rtt_ms();
        let starlink = AccessTech::Starlink.profile().median_access_rtt_ms();
        let cellular = AccessTech::Cellular.profile().median_access_rtt_ms();
        assert!(
            broadband < starlink && starlink < cellular,
            "fig5 ordering violated: bb {broadband}, sl {starlink}, cell {cellular}"
        );
    }

    #[test]
    fn starlink_access_rtt_in_bent_pipe_band() {
        let m = AccessTech::Starlink.profile().median_access_rtt_ms();
        assert!((25.0..45.0).contains(&m), "{m} ms");
    }

    #[test]
    fn wifi_is_the_low_loss_regime() {
        let wifi = AccessTech::CampusWifi.profile();
        let starlink = AccessTech::Starlink.profile();
        assert!(wifi.base_loss < starlink.base_loss / 10.0);
    }

    #[test]
    fn rural_dsl_is_slow_and_distant() {
        let dsl = AccessTech::RuralBroadband.profile();
        assert!(dsl.downlink < DataRate::from_mbps(20));
        assert!(dsl.median_access_rtt_ms() > 20.0);
    }

    #[test]
    fn sampled_access_delays_are_positive_and_plausible() {
        let mut rng = SimRng::seed_from(1);
        for tech in AccessTech::ALL {
            let p = tech.profile();
            for _ in 0..1_000 {
                let ms = p.first_hop_ms.sample_non_negative(&mut rng)
                    + p.access_ms.sample_non_negative(&mut rng);
                assert!(ms > 0.0);
                assert!(ms < 500.0, "{}: sampled access RTT {ms} ms", tech.label());
            }
        }
    }

    #[test]
    fn labels_match_paper_axes() {
        assert_eq!(AccessTech::CampusWifi.label(), "Wi-Fi on Campus");
        assert_eq!(AccessTech::Starlink.label(), "Starlink");
    }
}
