//! # starlink-channel
//!
//! The Starlink access-channel model — the physical and load phenomena
//! behind every effect the paper measures:
//!
//! * [`weather`] — the seven OpenWeatherMap conditions of Fig. 4, rain-fade
//!   attenuation (droplet-size scaled, after the references the paper
//!   discusses), and a Markov weather generator for campaign simulation;
//! * [`diurnal`] — regional utilisation over the local day, producing the
//!   night-peak / evening-trough throughput cycle of Fig. 6(b);
//! * [`loss`] — a Gilbert–Elliott burst-loss process plus the
//!   handover-driven loss model that generates Fig. 7's loss clumps and
//!   Fig. 6(c)'s heavy-tailed per-test loss distribution;
//! * [`access`] — comparative access technologies (cable broadband,
//!   cellular, campus Wi-Fi) for the Fig. 5 and Fig. 8 baselines;
//! * [`profiles`] — per-city calibrated capacity/queueing profiles
//!   (London, Seattle, Toronto, Warsaw, and the three volunteer nodes),
//!   each documented against the paper number it targets.
//!
//! Everything is deterministic given a [`starlink_simcore::SimRng`] seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod diurnal;
pub mod loss;
pub mod profiles;
pub mod weather;

pub use access::{AccessProfile, AccessTech};
pub use diurnal::DiurnalCurve;
pub use loss::{GilbertElliott, HandoverLossModel};
pub use profiles::{CityProfile, NodeProfile};
pub use weather::{WeatherCondition, WeatherTimeline};
