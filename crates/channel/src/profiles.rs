//! Per-city calibrated Starlink profiles.
//!
//! Each constant below is documented against the paper number it targets.
//! Two kinds of sites exist:
//!
//! * [`CityProfile`] — extension cities (Table 1 PTT populations and the
//!   Table 3 browser speedtests, which always run against the Iowa
//!   server);
//! * [`NodeProfile`] — the three volunteer measurement nodes (Table 2
//!   queueing delays, Fig. 6 iperf campaigns, Fig. 7 handover loss).
//!
//! The capacity model is:
//!
//! `throughput(t) = ceiling × diurnal_factor(local hour)
//!                × weather_capacity × lognormal jitter`
//!
//! and the queueing model for the bent-pipe (wireless) segment and the
//! terrestrial remainder is `U(0, span × load(t))`, with `load(t)`
//! interpolating over the site's demand swing — both driven by the same
//! demand curve, which is what couples Table 2 and Fig. 6(b) the way the
//! paper observes ("Table 2 is also consistent with this possibility").

use crate::diurnal::DiurnalCurve;
use crate::weather::WeatherCondition;
use starlink_geo::City;
use starlink_simcore::{DataRate, SimRng, SimTime};

/// Relative jitter (lognormal sigma) applied to throughput samples.
const THROUGHPUT_JITTER_SIGMA: f64 = 0.10;

/// A browser-extension city's Starlink service profile.
#[derive(Debug, Clone)]
pub struct CityProfile {
    /// The city.
    pub city: City,
    /// Downlink ceiling for speedtests to the Iowa server.
    pub speedtest_dl_ceiling: DataRate,
    /// Uplink ceiling for speedtests to the Iowa server.
    pub speedtest_ul_ceiling: DataRate,
    /// The diurnal availability curve.
    pub diurnal: DiurnalCurve,
    /// Fraction of this city's non-Starlink extension users on cellular
    /// (the rest are on rural DSL) — the population Table 1 compares
    /// Starlink against.
    pub non_starlink_cellular_share: f64,
    /// Relative first-byte inflation of the city's web paths (peering
    /// distance to CDN fabric; Sydney pays trans-Pacific penalties).
    pub remoteness: f64,
}

/// A volunteer measurement node's profile.
#[derive(Debug, Clone)]
pub struct NodeProfile {
    /// The node's location.
    pub city: City,
    /// iperf downlink ceiling to the closest Google Cloud region.
    pub iperf_dl_ceiling: DataRate,
    /// iperf uplink ceiling.
    pub iperf_ul_ceiling: DataRate,
    /// Diurnal availability curve.
    pub diurnal: DiurnalCurve,
    /// Bent-pipe queueing span, ms: queue ~ `U(0, span × load(t))`.
    pub wireless_queue_span_ms: f64,
    /// Terrestrial-path queueing span, ms.
    pub terrestrial_queue_span_ms: f64,
    /// Demand-load swing `(low, high)` multiplying the queue spans.
    pub queue_load_range: (f64, f64),
}

impl CityProfile {
    /// The calibrated profile for an extension city.
    ///
    /// Ceilings are sized so that daytime-biased speedtest medians land on
    /// Table 3: London 123.2/11.3, Seattle 90.3/6.6, Toronto 65.8/6.9,
    /// Warsaw 44.9/7.7 Mbps (DL/UL). Unlisted cities get regional
    /// defaults.
    pub fn for_city(city: City) -> Self {
        // The residential demand curve has a daytime-median factor of
        // ~0.44 (see DiurnalCurve::residential); ceilings below are
        // Table 3 medians divided by that factor.
        let diurnal = DiurnalCurve::residential(0.95, 0.30);
        let (dl, ul, cell_share, remoteness) = match city {
            City::London => (280, 26, 0.55, 1.0),
            City::Seattle => (205, 15, 0.60, 1.05),
            City::Toronto => (140, 16, 0.60, 1.05),
            City::Warsaw => (102, 18, 0.50, 1.1),
            City::Sydney | City::Brisbane => (160, 16, 0.65, 1.55),
            // Regional defaults for the unnamed cities.
            City::Berlin | City::Amsterdam => (180, 18, 0.50, 1.05),
            City::Austin | City::Denver => (170, 14, 0.60, 1.1),
            _ => (200, 18, 0.55, 1.0),
        };
        CityProfile {
            city,
            speedtest_dl_ceiling: DataRate::from_mbps(dl),
            speedtest_ul_ceiling: DataRate::from_mbps(ul),
            diurnal,
            non_starlink_cellular_share: cell_share,
            remoteness,
        }
    }

    /// Samples an achievable speedtest downlink at `t` under `weather`.
    pub fn sample_speedtest_dl(
        &self,
        t: SimTime,
        weather: WeatherCondition,
        rng: &mut SimRng,
    ) -> DataRate {
        sample_throughput(
            self.speedtest_dl_ceiling,
            &self.diurnal,
            self.city,
            t,
            weather,
            rng,
        )
    }

    /// Samples an achievable speedtest uplink at `t` under `weather`.
    pub fn sample_speedtest_ul(
        &self,
        t: SimTime,
        weather: WeatherCondition,
        rng: &mut SimRng,
    ) -> DataRate {
        sample_throughput(
            self.speedtest_ul_ceiling,
            &self.diurnal,
            self.city,
            t,
            weather,
            rng,
        )
    }
}

impl NodeProfile {
    /// The calibrated profile for a volunteer node.
    ///
    /// Targets, from the paper:
    /// * Fig. 6(a): median DL — Barcelona 147 (highest), London ~140,
    ///   North Carolina 34.3 Mbps (lowest); NC max stays under ~196 Mbps;
    /// * Fig. 6(b): UK DL swings ~120–300 Mbps with the night max > 2× the
    ///   evening min; UL swings ~4–14 Mbps;
    /// * Table 2: median bent-pipe queueing ≈ 48.3 (NC), 24.3 (London),
    ///   16.5 ms (Barcelona), with the whole-path median only modestly
    ///   above the link median.
    ///
    /// # Panics
    /// Panics if `city` is not one of the three volunteer nodes.
    pub fn for_node(city: City) -> Self {
        match city {
            City::Wiltshire => NodeProfile {
                city,
                // Ceiling 300 with a deep daytime dip: night peaks brush
                // 300 Mbps (Fig. 6b) while the all-day median sits around
                // 125–140 Mbps, below Barcelona's (Fig. 6a ordering).
                iperf_dl_ceiling: DataRate::from_mbps(300),
                iperf_ul_ceiling: DataRate::from_mbps(15),
                diurnal: DiurnalCurve::new([
                    0.95, 0.95, 0.95, 0.95, 0.95, 0.85, // 00-05
                    0.60, 0.50, 0.45, 0.43, 0.42, 0.41, // 06-11
                    0.40, 0.40, 0.39, 0.37, 0.33, 0.30, // 12-17
                    0.28, 0.28, 0.28, 0.28, 0.30, 0.50, // 18-23
                ]),
                wireless_queue_span_ms: 100.0,
                terrestrial_queue_span_ms: 35.0,
                queue_load_range: (0.25, 1.00),
            },
            City::NorthCarolina => NodeProfile {
                city,
                // Clamped ceiling = the paper's observed 196 Mbps maximum.
                iperf_dl_ceiling: DataRate::from_mbps(196),
                iperf_ul_ceiling: DataRate::from_mbps(13),
                // Congested cell: high demand from early morning through
                // the evening, relief only deep at night.
                diurnal: DiurnalCurve::new([
                    0.85, 0.85, 0.85, 0.85, 0.85, 0.75, // 00-05
                    0.35, 0.30, 0.25, 0.22, 0.20, 0.20, // 06-11
                    0.20, 0.19, 0.18, 0.18, 0.16, 0.14, // 12-17
                    0.12, 0.12, 0.12, 0.12, 0.20, 0.50, // 18-23
                ]),
                wireless_queue_span_ms: 100.0,
                terrestrial_queue_span_ms: 45.0,
                queue_load_range: (0.95, 1.90),
            },
            City::Barcelona => NodeProfile {
                city,
                iperf_dl_ceiling: DataRate::from_mbps(190),
                iperf_ul_ceiling: DataRate::from_mbps(16),
                // Starlink availability was recent in Spain: a lightly
                // loaded cell with a shallow evening dip.
                diurnal: DiurnalCurve::residential(0.95, 0.62),
                wireless_queue_span_ms: 100.0,
                terrestrial_queue_span_ms: 8.0,
                queue_load_range: (0.15, 0.45),
            },
            other => panic!("{other} is not a volunteer measurement node"),
        }
    }

    /// All three volunteer-node profiles.
    pub fn all_nodes() -> Vec<NodeProfile> {
        vec![
            NodeProfile::for_node(City::NorthCarolina),
            NodeProfile::for_node(City::Wiltshire),
            NodeProfile::for_node(City::Barcelona),
        ]
    }

    /// Samples an achievable iperf downlink at `t` under `weather`.
    pub fn sample_iperf_dl(
        &self,
        t: SimTime,
        weather: WeatherCondition,
        rng: &mut SimRng,
    ) -> DataRate {
        sample_throughput(
            self.iperf_dl_ceiling,
            &self.diurnal,
            self.city,
            t,
            weather,
            rng,
        )
    }

    /// Samples an achievable iperf uplink at `t` under `weather`.
    pub fn sample_iperf_ul(
        &self,
        t: SimTime,
        weather: WeatherCondition,
        rng: &mut SimRng,
    ) -> DataRate {
        sample_throughput(
            self.iperf_ul_ceiling,
            &self.diurnal,
            self.city,
            t,
            weather,
            rng,
        )
    }

    /// The demand load multiplier at `t`: interpolates over
    /// `queue_load_range` as the diurnal factor moves from its nightly
    /// maximum (low demand) to its evening minimum (high demand).
    pub fn queue_load_at(&self, t: SimTime) -> f64 {
        let f = self.diurnal.factor_at(t, self.city.position().lon_deg);
        let (fmin, fmax) = (self.diurnal.min_factor(), self.diurnal.max_factor());
        let demand = if fmax > fmin {
            (fmax - f) / (fmax - fmin)
        } else {
            0.5
        };
        let (lo, hi) = self.queue_load_range;
        lo + (hi - lo) * demand
    }

    /// Samples the bent-pipe (wireless-link) queueing delay at `t`, ms.
    pub fn sample_wireless_queue_ms(&self, t: SimTime, rng: &mut SimRng) -> f64 {
        rng.range_f64(0.0, self.wireless_queue_span_ms * self.queue_load_at(t))
    }

    /// Samples the terrestrial-path queueing delay at `t`, ms.
    pub fn sample_terrestrial_queue_ms(&self, t: SimTime, rng: &mut SimRng) -> f64 {
        rng.range_f64(0.0, self.terrestrial_queue_span_ms * self.queue_load_at(t))
    }
}

/// Shared throughput sampler: ceiling × diurnal × weather × jitter.
fn sample_throughput(
    ceiling: DataRate,
    diurnal: &DiurnalCurve,
    city: City,
    t: SimTime,
    weather: WeatherCondition,
    rng: &mut SimRng,
) -> DataRate {
    let lon = city.position().lon_deg;
    let factor = diurnal.factor_at(t, lon) * weather.capacity_factor();
    let jitter = rng.lognormal(0.0, THROUGHPUT_JITTER_SIGMA);
    // The cell ceiling is a hard capacity: jitter can push a quiet-hour
    // sample up to it but never beyond (this is why the paper's NC node
    // "does not exceed 196 Mbps").
    ceiling.scale((factor * jitter).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_simcore::SimDuration;

    /// Median of day-long half-hourly samples of a node's downlink.
    fn median_dl_mbps(profile: &NodeProfile, seed: u64) -> f64 {
        let mut rng = SimRng::seed_from(seed);
        let mut samples: Vec<f64> = (0..48 * 7)
            .map(|i| {
                let t = SimTime::ZERO + SimDuration::from_mins(30 * i);
                profile
                    .sample_iperf_dl(t, WeatherCondition::ClearSky, &mut rng)
                    .as_mbps()
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    }

    #[test]
    fn fig6a_ordering_barcelona_london_nc() {
        let bcn = median_dl_mbps(&NodeProfile::for_node(City::Barcelona), 1);
        let ldn = median_dl_mbps(&NodeProfile::for_node(City::Wiltshire), 1);
        let nc = median_dl_mbps(&NodeProfile::for_node(City::NorthCarolina), 1);
        assert!(bcn > ldn, "Barcelona {bcn} must beat London {ldn}");
        assert!(ldn > nc, "London {ldn} must beat NC {nc}");
        // Bands around the paper's medians (147 / ~140 / 34.3).
        assert!((120.0..180.0).contains(&bcn), "Barcelona median {bcn}");
        assert!((25.0..70.0).contains(&nc), "NC median {nc}");
    }

    #[test]
    fn nc_max_stays_under_200() {
        let p = NodeProfile::for_node(City::NorthCarolina);
        let mut rng = SimRng::seed_from(2);
        let max = (0..48 * 14)
            .map(|i| {
                let t = SimTime::ZERO + SimDuration::from_mins(30 * i);
                p.sample_iperf_dl(t, WeatherCondition::ClearSky, &mut rng)
                    .as_mbps()
            })
            .fold(f64::MIN, f64::max);
        // Paper: "maximum throughput at the North Carolina station does
        // not exceed 196 Mbps". Jitter allows brief excursions; keep the
        // ceiling in the same band.
        assert!((150.0..230.0).contains(&max), "NC max {max}");
    }

    #[test]
    fn uk_night_beats_evening_twofold() {
        let p = NodeProfile::for_node(City::Wiltshire);
        let mut rng = SimRng::seed_from(3);
        let night: f64 = (0..20)
            .map(|i| {
                let t = SimTime::from_secs(2 * 3_600 + i * 600);
                p.sample_iperf_dl(t, WeatherCondition::ClearSky, &mut rng)
                    .as_mbps()
            })
            .sum::<f64>()
            / 20.0;
        let evening: f64 = (0..20)
            .map(|i| {
                let t = SimTime::from_secs(20 * 3_600 + i * 600);
                p.sample_iperf_dl(t, WeatherCondition::ClearSky, &mut rng)
                    .as_mbps()
            })
            .sum::<f64>()
            / 20.0;
        assert!(
            night > 2.0 * evening,
            "fig6b: night {night} vs evening {evening}"
        );
        assert!(night > 200.0, "UK night DL {night}");
    }

    #[test]
    fn table2_queue_medians_ordered() {
        // Median of the sampled wireless queueing over a day must follow
        // NC > London > Barcelona (Table 2: 48.3 / 24.3 / 16.5 ms).
        let med = |city: City, seed: u64| {
            let p = NodeProfile::for_node(city);
            let mut rng = SimRng::seed_from(seed);
            let mut v: Vec<f64> = (0..24 * 12)
                .map(|i| {
                    p.sample_wireless_queue_ms(
                        SimTime::ZERO + SimDuration::from_mins(5 * i),
                        &mut rng,
                    )
                })
                .collect();
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        let nc = med(City::NorthCarolina, 4);
        let ldn = med(City::Wiltshire, 4);
        let bcn = med(City::Barcelona, 4);
        assert!(
            nc > ldn && ldn > bcn,
            "NC {nc}, London {ldn}, Barcelona {bcn}"
        );
        assert!((35.0..95.0).contains(&nc), "NC queue median {nc}");
        assert!((5.0..25.0).contains(&bcn), "Barcelona queue median {bcn}");
    }

    #[test]
    fn queue_load_respects_range_and_diurnal() {
        let p = NodeProfile::for_node(City::NorthCarolina);
        let (lo, hi) = p.queue_load_range;
        for hour in 0..24 {
            let t = SimTime::from_secs(hour * 3_600);
            let l = p.queue_load_at(t);
            assert!(l >= lo - 1e-9 && l <= hi + 1e-9, "hour {hour}: load {l}");
        }
        // NC local midnight is 05:00 UTC-ish (lon -78.6 => -5.2 h).
        let night = p.queue_load_at(SimTime::from_secs(7 * 3_600));
        let evening = p.queue_load_at(SimTime::from_secs(25 * 3_600)); // 01:00 UTC = 19:45 local
        assert!(evening > night, "evening load {evening} vs night {night}");
    }

    #[test]
    fn table3_speedtest_medians() {
        // Daytime-biased sampling (when users actually click the button).
        let median_st = |city: City| {
            let p = CityProfile::for_city(city);
            let mut rng = SimRng::seed_from(9);
            let lon = city.position().lon_deg;
            // Sample local 09:00-23:00 across two weeks.
            let mut v: Vec<f64> = Vec::new();
            for day in 0..14u64 {
                for hour in 9..23u64 {
                    let local_offset = (lon / 15.0 * 3_600.0) as i64;
                    let utc = day as i64 * 86_400 + hour as i64 * 3_600 - local_offset;
                    let t = SimTime::from_secs(utc.rem_euclid(14 * 86_400) as u64);
                    v.push(
                        p.sample_speedtest_dl(t, WeatherCondition::FewClouds, &mut rng)
                            .as_mbps(),
                    );
                }
            }
            v.sort_by(|a, b| a.total_cmp(b));
            v[v.len() / 2]
        };
        let london = median_st(City::London);
        let seattle = median_st(City::Seattle);
        let toronto = median_st(City::Toronto);
        let warsaw = median_st(City::Warsaw);
        // Table 3 ordering: London > Seattle > Toronto > Warsaw.
        assert!(london > seattle, "{london} vs {seattle}");
        assert!(seattle > toronto, "{seattle} vs {toronto}");
        assert!(toronto > warsaw, "{toronto} vs {warsaw}");
        // Bands around 123.2 / 90.3 / 65.8 / 44.9.
        assert!((95.0..155.0).contains(&london), "London {london}");
        assert!((30.0..60.0).contains(&warsaw), "Warsaw {warsaw}");
    }

    #[test]
    #[should_panic(expected = "not a volunteer measurement node")]
    fn node_profile_rejects_extension_city() {
        let _ = NodeProfile::for_node(City::Seattle);
    }

    #[test]
    fn weather_reduces_throughput() {
        let p = NodeProfile::for_node(City::Wiltshire);
        let t = SimTime::from_secs(3 * 3_600);
        let mut clear_rng = SimRng::seed_from(5);
        let mut rain_rng = SimRng::seed_from(5);
        let clear = p
            .sample_iperf_dl(t, WeatherCondition::ClearSky, &mut clear_rng)
            .as_mbps();
        let rain = p
            .sample_iperf_dl(t, WeatherCondition::ModerateRain, &mut rain_rng)
            .as_mbps();
        assert!((rain / clear - 0.60).abs() < 1e-6, "{rain}/{clear}");
    }
}
