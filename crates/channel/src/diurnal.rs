//! Diurnal load: how the shared Starlink cell's utilisation moves over the
//! local day.
//!
//! Fig. 6(b) of the paper shows UK downlink throughput peaking between
//! 00:00 and 06:00 local time and bottoming out between 18:00 and 24:00,
//! with the night maximum more than twice the evening minimum. That is a
//! classic residential-demand curve: the cell is quiet at night and busy
//! in the evening. [`DiurnalCurve`] captures it as 24 hourly *throughput
//! factors* (fraction of the regional ceiling available to one
//! subscriber), linearly interpolated between hours.

use starlink_simcore::SimTime;

/// Seconds per hour.
const SECS_PER_HOUR: u64 = 3_600;
/// Hours per day.
const HOURS: usize = 24;

/// A 24-hour throughput-factor curve with linear interpolation.
#[derive(Debug, Clone, PartialEq)]
pub struct DiurnalCurve {
    /// `factors[h]` = fraction of the capacity ceiling available during
    /// local hour `h`.
    factors: [f64; HOURS],
}

impl DiurnalCurve {
    /// Builds a curve from 24 hourly factors.
    ///
    /// # Panics
    /// Panics if any factor is outside `[0, 1]`.
    pub fn new(factors: [f64; HOURS]) -> Self {
        for (h, &f) in factors.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&f),
                "hour {h}: factor {f} outside [0,1]"
            );
        }
        DiurnalCurve { factors }
    }

    /// A flat curve (no diurnal effect) at the given factor.
    pub fn flat(factor: f64) -> Self {
        Self::new([factor; HOURS])
    }

    /// A residential demand curve parameterised by its night ceiling and
    /// evening floor, shaped after Fig. 6(b): quiet 00–06, ramping through
    /// the working day, heaviest 18–24.
    pub fn residential(night_factor: f64, evening_factor: f64) -> Self {
        let n = night_factor;
        let e = evening_factor;
        let mid = |w: f64| e + (n - e) * w;
        Self::new([
            n,         // 00
            n,         // 01
            n,         // 02
            n,         // 03
            n,         // 04
            mid(0.9),  // 05
            mid(0.75), // 06
            mid(0.6),  // 07
            mid(0.5),  // 08
            mid(0.45), // 09
            mid(0.42), // 10
            mid(0.40), // 11
            mid(0.38), // 12
            mid(0.36), // 13
            mid(0.34), // 14
            mid(0.30), // 15
            mid(0.22), // 16
            mid(0.12), // 17
            e,         // 18
            e,         // 19
            e,         // 20
            e,         // 21
            mid(0.05), // 22
            mid(0.45), // 23
        ])
    }

    /// The factor at a fractional local hour, interpolating linearly and
    /// wrapping at midnight.
    pub fn factor_at_hour(&self, local_hour: f64) -> f64 {
        let h = local_hour.rem_euclid(24.0);
        let i = h.floor() as usize % HOURS;
        let j = (i + 1) % HOURS;
        let frac = h - h.floor();
        self.factors[i] * (1.0 - frac) + self.factors[j] * frac
    }

    /// The factor at simulated time `t` for a site at `longitude_deg`,
    /// taking the simulation epoch as 00:00 UTC.
    pub fn factor_at(&self, t: SimTime, longitude_deg: f64) -> f64 {
        self.factor_at_hour(local_hour(t, longitude_deg))
    }

    /// The largest factor over the day.
    pub fn max_factor(&self) -> f64 {
        self.factors.iter().copied().fold(f64::MIN, f64::max)
    }

    /// The smallest factor over the day.
    pub fn min_factor(&self) -> f64 {
        self.factors.iter().copied().fold(f64::MAX, f64::min)
    }
}

/// Local solar hour at simulated time `t` for a site at `longitude_deg`,
/// with the simulation epoch defined as 00:00 UTC. Longitude shifts local
/// time by 1 h per 15°.
pub fn local_hour(t: SimTime, longitude_deg: f64) -> f64 {
    let utc_hours = (t.as_secs() % 86_400) as f64 / SECS_PER_HOUR as f64
        + (t.as_nanos() % 1_000_000_000) as f64 / 3.6e12;
    (utc_hours + longitude_deg / 15.0).rem_euclid(24.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_simcore::SimDuration;

    #[test]
    fn residential_curve_matches_fig6b_shape() {
        let c = DiurnalCurve::residential(0.95, 0.30);
        // Night (00–06) is the maximum; evening (18–22) the minimum.
        assert_eq!(c.max_factor(), 0.95);
        assert_eq!(c.min_factor(), 0.30);
        for h in 0..5 {
            assert!(c.factor_at_hour(h as f64) > 0.9, "hour {h}");
        }
        for h in 18..22 {
            assert!(c.factor_at_hour(h as f64) < 0.35, "hour {h}");
        }
        // Paper: night max > 2x evening min.
        assert!(c.max_factor() / c.min_factor() > 2.0);
    }

    #[test]
    fn interpolation_is_continuous() {
        let c = DiurnalCurve::residential(0.9, 0.3);
        for step in 0..240 {
            let h = step as f64 * 0.1;
            let a = c.factor_at_hour(h);
            let b = c.factor_at_hour(h + 0.1);
            assert!((a - b).abs() < 0.2, "jump at hour {h}: {a} -> {b}");
        }
        // Midnight wrap: 23.9 ~ 0.0 within one interpolation step.
        let before = c.factor_at_hour(23.95);
        let after = c.factor_at_hour(0.0);
        assert!((before - after).abs() < 0.1);
    }

    #[test]
    fn local_hour_shifts_with_longitude() {
        let noon_utc = SimTime::from_secs(12 * 3_600);
        assert!((local_hour(noon_utc, 0.0) - 12.0).abs() < 1e-9);
        // Warsaw (~21°E) is ~1.4 h ahead.
        assert!((local_hour(noon_utc, 21.0) - 13.4).abs() < 0.01);
        // Seattle (~122°W) is ~8.1 h behind.
        assert!((local_hour(noon_utc, -122.3) - 3.85).abs() < 0.02);
    }

    #[test]
    fn factor_at_accounts_for_longitude() {
        let c = DiurnalCurve::residential(0.95, 0.30);
        // 02:00 UTC: London (lon ~0) is in the night trough of demand
        // (high factor); Sydney (151°E, local ~12:00) is mid-day.
        let t = SimTime::from_secs(2 * 3_600);
        let london = c.factor_at(t, -0.1278);
        let sydney = c.factor_at(t, 151.2);
        assert!(london > 0.9, "{london}");
        assert!(sydney < london, "{sydney} vs {london}");
    }

    #[test]
    fn flat_curve_is_flat() {
        let c = DiurnalCurve::flat(0.5);
        for h in 0..48 {
            assert_eq!(c.factor_at_hour(h as f64 * 0.5), 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_out_of_range_factor() {
        let mut f = [0.5; 24];
        f[3] = 1.5;
        let _ = DiurnalCurve::new(f);
    }

    #[test]
    fn day_wraps_across_multiple_days() {
        let c = DiurnalCurve::residential(0.9, 0.3);
        let day1 = c.factor_at(SimTime::from_secs(3 * 3_600), 0.0);
        let day2 = c.factor_at(
            SimTime::from_secs(3 * 3_600) + SimDuration::from_days(1),
            0.0,
        );
        assert!((day1 - day2).abs() < 1e-9);
    }
}
