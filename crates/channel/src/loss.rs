//! Packet-loss processes: background bursts and handover-driven clumps.
//!
//! The paper's most striking finding (§5) is *bouts* of loss: per-test
//! loss rates up to 50 %, with 12 % of iperf tests losing ≥ 5 % of packets
//! and 6 % losing ≥ 10 % (Fig. 6c) — and Fig. 7 ties the clumps to the
//! serving satellite leaving line of sight. Two mechanisms reproduce this:
//!
//! * [`GilbertElliott`] — the classic two-state burst-loss channel,
//!   modelling background radio impairments (shallow fades, interference);
//! * [`HandoverLossModel`] — deterministic loss windows derived from a
//!   [`ServingSchedule`]: total loss during outages, elevated loss in a
//!   short window around each handover (re-steering and path re-anchoring
//!   drop in-flight packets), and Gilbert–Elliott background otherwise.

use starlink_constellation::ServingSchedule;
use starlink_simcore::{SimDuration, SimRng, SimTime};

/// A two-state Markov (Gilbert–Elliott) loss channel.
///
/// The channel is evaluated on a fixed tick (default 100 ms): each tick it
/// may switch state, and within a state packets are lost i.i.d. at that
/// state's loss rate. Evaluating by tick (instead of per-packet) makes the
/// state trajectory independent of offered load — required so that, e.g.,
/// iperf and ping probes sent through the same channel see the same fade.
#[derive(Debug, Clone)]
pub struct GilbertElliott {
    /// P(good → bad) per tick.
    pub p_gb: f64,
    /// P(bad → good) per tick.
    pub p_bg: f64,
    /// Loss probability in the good state.
    pub loss_good: f64,
    /// Loss probability in the bad state.
    pub loss_bad: f64,
    /// State-evaluation tick.
    pub tick: SimDuration,
    state_bad: bool,
    /// Time up to which the state has been advanced.
    advanced_to: SimTime,
    rng: SimRng,
}

impl GilbertElliott {
    /// A channel with the given transition and loss parameters, evaluated
    /// on 100 ms ticks.
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64, rng: SimRng) -> Self {
        GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            tick: SimDuration::from_millis(100),
            state_bad: false,
            advanced_to: SimTime::ZERO,
            rng,
        }
    }

    /// The background profile used for the Starlink wireless link:
    /// rare half-second fades losing 15 % of packets, on top of a tiny
    /// residual loss floor. The floor matters for TCP: at LEO windows of
    /// thousands of segments even 5e-4/packet would trigger a congestion
    /// event nearly every RTT and starve the loss-based algorithms far
    /// below what the paper measures; 5e-5 leaves the damage to the
    /// fades and handover bursts, where it belongs.
    pub fn starlink_background(rng: SimRng) -> Self {
        // p_gb = 0.002/tick  => a fade roughly every 50 s of active time;
        // p_bg = 0.2/tick    => mean fade length 0.5 s;
        GilbertElliott::new(0.002, 0.2, 0.000_02, 0.15, rng)
    }

    /// A clean channel (campus Wi-Fi / wired baselines).
    pub fn clean(rng: SimRng) -> Self {
        GilbertElliott::new(0.0, 1.0, 0.0001, 0.0001, rng)
    }

    /// Advances the state machine to `t` and returns the loss probability
    /// in force there. `t` must not go backwards (debug-asserted).
    pub fn loss_prob_at(&mut self, t: SimTime) -> f64 {
        debug_assert!(
            t >= self.advanced_to || self.advanced_to == SimTime::ZERO,
            "GilbertElliott time went backwards"
        );
        while self.advanced_to + self.tick <= t {
            self.advanced_to += self.tick;
            let p = if self.state_bad { self.p_bg } else { self.p_gb };
            if self.rng.bernoulli(p) {
                self.state_bad = !self.state_bad;
            }
        }
        if self.state_bad {
            self.loss_bad
        } else {
            self.loss_good
        }
    }

    /// Whether the channel is currently in the bad (fading) state.
    pub fn is_bad(&self) -> bool {
        self.state_bad
    }

    /// Stationary probability of the bad state.
    pub fn stationary_bad(&self) -> f64 {
        if self.p_gb + self.p_bg == 0.0 {
            0.0
        } else {
            self.p_gb / (self.p_gb + self.p_bg)
        }
    }

    /// Long-run average loss rate.
    pub fn mean_loss(&self) -> f64 {
        let pb = self.stationary_bad();
        pb * self.loss_bad + (1.0 - pb) * self.loss_good
    }
}

/// Parameters for handover-driven loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandoverLossParams {
    /// Loss probability during a full outage (no serving satellite).
    pub outage_loss: f64,
    /// Duration of the degraded window starting at each handover.
    pub handover_window: SimDuration,
    /// Loss probability range during a handover window; the severity of
    /// each individual handover is drawn uniformly from this range
    /// (re-steering cost varies with geometry).
    pub handover_loss_range: (f64, f64),
}

impl Default for HandoverLossParams {
    fn default() -> Self {
        HandoverLossParams {
            outage_loss: 0.95,
            handover_window: SimDuration::from_millis(1_500),
            handover_loss_range: (0.10, 0.80),
        }
    }
}

/// Which loss regime a query time falls in; indices identify the window
/// so re-entering a *different* window still counts as a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Regime {
    Background,
    Outage(usize),
    Handover(usize),
}

/// The composite Starlink loss model: schedule-driven windows over a
/// Gilbert–Elliott background.
pub struct HandoverLossModel {
    /// Degraded windows `(start, end, loss)` from handovers, sorted.
    windows: Vec<(SimTime, SimTime, f64)>,
    /// Outage windows from the schedule, sorted.
    outages: Vec<(SimTime, SimTime)>,
    params: HandoverLossParams,
    background: GilbertElliott,
    /// Regime of the previous [`Self::loss_prob_at`] query, for
    /// edge-detected trace events.
    last_regime: Regime,
}

impl HandoverLossModel {
    /// Builds the model from a serving schedule. Each handover gets a
    /// severity drawn from `params.handover_loss_range` using `rng`.
    pub fn new(schedule: &ServingSchedule, params: HandoverLossParams, mut rng: SimRng) -> Self {
        let background = GilbertElliott::starlink_background(rng.stream("ge-background"));
        let mut windows: Vec<(SimTime, SimTime, f64)> = schedule
            .handovers
            .iter()
            .map(|&t| {
                let (lo, hi) = params.handover_loss_range;
                let severity = rng.range_f64(lo, hi);
                (t, t + params.handover_window, severity)
            })
            .collect();
        windows.sort_by_key(|w| w.0);
        let mut outages = schedule.outages.clone();
        outages.sort_by_key(|o| o.0);
        HandoverLossModel {
            windows,
            outages,
            params,
            background,
            last_regime: Regime::Background,
        }
    }

    /// The packet-loss probability in force at `t`. Outages dominate
    /// handover windows, which dominate the background process.
    ///
    /// Window lookups binary-search the sorted interval lists, so a
    /// multi-day schedule with thousands of handovers stays O(log n) per
    /// query.
    ///
    /// Regime transitions (entering an outage or handover window, falling
    /// back to the clear channel) are edge-detected here and emitted as
    /// [`starlink_obsv`] trace events, stamped with the query time —
    /// deterministic for a given query sequence and free when tracing is
    /// off.
    pub fn loss_prob_at(&mut self, t: SimTime) -> f64 {
        let regime = self.regime_at(t);
        if regime != self.last_regime {
            self.note_transition(t, regime);
            self.last_regime = regime;
        }
        match regime {
            Regime::Outage(_) => self.params.outage_loss,
            Regime::Handover(i) => self.windows[i].2,
            Regime::Background => self.background.loss_prob_at(t),
        }
    }

    /// Which regime is in force at `t` (outages dominate handover windows).
    fn regime_at(&self, t: SimTime) -> Regime {
        let i = self.outages.partition_point(|&(s, _)| s <= t);
        if i > 0 && t < self.outages[i - 1].1 {
            return Regime::Outage(i - 1);
        }
        let i = self.windows.partition_point(|&(s, _, _)| s <= t);
        if i > 0 && t < self.windows[i - 1].1 {
            return Regime::Handover(i - 1);
        }
        Regime::Background
    }

    fn note_transition(&self, t: SimTime, next: Regime) {
        use starlink_obsv::{counter_add, emit, TraceEvent};
        match next {
            Regime::Outage(i) => {
                counter_add("channel.outages_entered", 1);
                emit(|| TraceEvent::Outage {
                    t_ns: t.as_nanos(),
                    until_ns: self.outages[i].1.as_nanos(),
                });
            }
            Regime::Handover(i) => {
                counter_add("channel.handover_windows_entered", 1);
                emit(|| TraceEvent::HandoverWindow {
                    t_ns: t.as_nanos(),
                    until_ns: self.windows[i].1.as_nanos(),
                    loss_ppm: (self.windows[i].2 * 1e6) as u64,
                });
            }
            Regime::Background => {
                emit(|| TraceEvent::ChannelClear { t_ns: t.as_nanos() });
            }
        }
    }

    /// The deterministic (schedule-driven) loss at `t`, ignoring the
    /// background process: outage loss, handover-window severity, or
    /// `None` outside both.
    pub fn scheduled_loss_at(&self, t: SimTime) -> Option<f64> {
        // Last outage starting at or before t.
        let i = self.outages.partition_point(|&(s, _)| s <= t);
        if i > 0 && t < self.outages[i - 1].1 {
            return Some(self.params.outage_loss);
        }
        let i = self.windows.partition_point(|&(s, _, _)| s <= t);
        if i > 0 && t < self.windows[i - 1].1 {
            return Some(self.windows[i - 1].2);
        }
        None
    }

    /// Mean loss probability over `[start, end)`, sampling the schedule on
    /// `step` and folding in the background process's *expected* loss.
    /// This is the analytic counterpart of blasting UDP through the link
    /// and counting — used where simulating millions of probe packets
    /// would be waste (the Fig. 6c per-test loss population).
    pub fn mean_loss_over(&self, start: SimTime, end: SimTime, step: SimDuration) -> f64 {
        let step = step.max(SimDuration::from_millis(10));
        let mut t = start;
        let mut acc = 0.0;
        let mut n = 0u64;
        let background = self.background.mean_loss();
        while t < end {
            acc += self.scheduled_loss_at(t).unwrap_or(background);
            n += 1;
            t += step;
        }
        if n == 0 {
            0.0
        } else {
            acc / n as f64
        }
    }

    /// Decides the fate of one packet sent at `t`.
    pub fn packet_lost(&mut self, t: SimTime, rng: &mut SimRng) -> bool {
        let p = self.loss_prob_at(t);
        rng.bernoulli(p)
    }

    /// The handover-degraded windows (for assertions/analysis).
    pub fn degraded_windows(&self) -> &[(SimTime, SimTime, f64)] {
        &self.windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_constellation::ServingInterval;

    fn schedule_with_handover_at(secs: u64) -> ServingSchedule {
        ServingSchedule {
            intervals: vec![
                ServingInterval {
                    sat: 0,
                    start: SimTime::ZERO,
                    end: SimTime::from_secs(secs),
                },
                ServingInterval {
                    sat: 1,
                    start: SimTime::from_secs(secs),
                    end: SimTime::from_secs(secs + 120),
                },
            ],
            handovers: vec![SimTime::from_secs(secs)],
            outages: vec![],
        }
    }

    #[test]
    fn gilbert_elliott_stationary_math() {
        let ge = GilbertElliott::new(0.01, 0.19, 0.0, 0.5, SimRng::seed_from(1));
        assert!((ge.stationary_bad() - 0.05).abs() < 1e-12);
        assert!((ge.mean_loss() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn gilbert_elliott_empirical_matches_stationary() {
        let mut ge = GilbertElliott::new(0.02, 0.18, 0.0, 1.0, SimRng::seed_from(2));
        let mut lossy_ticks = 0u32;
        let n = 200_000u64;
        for i in 0..n {
            let t = SimTime::from_millis(i * 100);
            if ge.loss_prob_at(t) > 0.5 {
                lossy_ticks += 1;
            }
        }
        let frac = lossy_ticks as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.01, "bad-state fraction {frac}");
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // Consecutive bad ticks should cluster: measure mean run length.
        let mut ge = GilbertElliott::new(0.004, 0.2, 0.0, 1.0, SimRng::seed_from(3));
        let mut runs = Vec::new();
        let mut current = 0u32;
        for i in 0..500_000u64 {
            let bad = ge.loss_prob_at(SimTime::from_millis(i * 100)) > 0.5;
            if bad {
                current += 1;
            } else if current > 0 {
                runs.push(current);
                current = 0;
            }
        }
        let mean_run = runs.iter().sum::<u32>() as f64 / runs.len() as f64;
        // Mean bad-run length = 1/p_bg = 5 ticks.
        assert!((mean_run - 5.0).abs() < 1.0, "mean run {mean_run}");
    }

    #[test]
    fn clean_channel_barely_loses() {
        let mut ge = GilbertElliott::clean(SimRng::seed_from(4));
        for i in 0..1_000u64 {
            assert!(ge.loss_prob_at(SimTime::from_millis(i * 100)) < 0.001);
        }
    }

    #[test]
    fn handover_window_elevates_loss() {
        let schedule = schedule_with_handover_at(60);
        let mut model = HandoverLossModel::new(
            &schedule,
            HandoverLossParams::default(),
            SimRng::seed_from(5),
        );
        // Inside the 1.5 s window after the handover.
        let during = model.loss_prob_at(SimTime::from_millis(60_200));
        assert!(during >= 0.10, "handover loss {during}");
        // Well before it: background level (good state almost surely).
        let before = model.loss_prob_at_for_test(SimTime::from_secs(10));
        assert!(before < 0.05, "background loss {before}");
    }

    impl HandoverLossModel {
        /// Test helper that does not advance the background process.
        fn loss_prob_at_for_test(&mut self, t: SimTime) -> f64 {
            if self.outages.iter().any(|&(s, e)| s <= t && t < e) {
                return self.params.outage_loss;
            }
            if let Some(&(_, _, sev)) = self.windows.iter().find(|&&(s, e, _)| s <= t && t < e) {
                return sev;
            }
            if self.background.is_bad() {
                self.background.loss_bad
            } else {
                self.background.loss_good
            }
        }
    }

    #[test]
    fn outage_dominates() {
        let mut schedule = schedule_with_handover_at(60);
        schedule
            .outages
            .push((SimTime::from_secs(90), SimTime::from_secs(95)));
        let mut model = HandoverLossModel::new(
            &schedule,
            HandoverLossParams::default(),
            SimRng::seed_from(6),
        );
        let p = model.loss_prob_at(SimTime::from_secs(92));
        assert!((p - 0.95).abs() < 1e-12);
    }

    #[test]
    fn packet_fate_is_deterministic_per_seed() {
        let schedule = schedule_with_handover_at(30);
        let run = |seed: u64| -> Vec<bool> {
            let mut model = HandoverLossModel::new(
                &schedule,
                HandoverLossParams::default(),
                SimRng::seed_from(seed),
            );
            let mut rng = SimRng::seed_from(999);
            (0..2_000u64)
                .map(|i| model.packet_lost(SimTime::from_millis(i * 20), &mut rng))
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn regime_transitions_emit_edge_events() {
        use starlink_obsv::TraceEvent;
        let mut schedule = schedule_with_handover_at(60);
        schedule
            .outages
            .push((SimTime::from_secs(90), SimTime::from_secs(95)));
        let mut model = HandoverLossModel::new(
            &schedule,
            HandoverLossParams::default(),
            SimRng::seed_from(8),
        );
        let (sink, shared) = starlink_obsv::CollectorSink::pair();
        assert!(starlink_obsv::install_trace(Box::new(sink)).is_none());
        let _ = model.loss_prob_at(SimTime::from_secs(10)); // background: no edge
        let _ = model.loss_prob_at(SimTime::from_millis(60_100)); // enter handover
        let _ = model.loss_prob_at(SimTime::from_millis(60_900)); // same window: no edge
        let _ = model.loss_prob_at(SimTime::from_secs(70)); // back to clear
        let _ = model.loss_prob_at(SimTime::from_secs(92)); // enter outage
        let _ = model.loss_prob_at(SimTime::from_secs(100)); // clear again
        starlink_obsv::take_trace();
        let events = shared.borrow();
        assert_eq!(events.len(), 4, "one event per regime edge: {events:?}");
        assert!(matches!(
            events[0],
            TraceEvent::HandoverWindow { loss_ppm, .. } if (100_000..=800_000).contains(&loss_ppm)
        ));
        assert!(matches!(events[1], TraceEvent::ChannelClear { .. }));
        assert!(matches!(
            events[2],
            TraceEvent::Outage { t_ns, until_ns }
                if t_ns == SimTime::from_secs(92).as_nanos()
                    && until_ns == SimTime::from_secs(95).as_nanos()
        ));
        assert!(matches!(events[3], TraceEvent::ChannelClear { .. }));
    }

    #[test]
    fn severities_vary_between_handovers() {
        let schedule = ServingSchedule {
            intervals: vec![],
            handovers: (1..=20).map(|i| SimTime::from_secs(i * 60)).collect(),
            outages: vec![],
        };
        let model = HandoverLossModel::new(
            &schedule,
            HandoverLossParams::default(),
            SimRng::seed_from(7),
        );
        let sevs: Vec<f64> = model.degraded_windows().iter().map(|w| w.2).collect();
        let min = sevs.iter().cloned().fold(f64::MAX, f64::min);
        let max = sevs.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.2, "severities should spread: {min}..{max}");
        for &s in &sevs {
            assert!((0.10..=0.80).contains(&s));
        }
    }
}
