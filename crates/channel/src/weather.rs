//! Weather conditions and rain-fade attenuation.
//!
//! Fig. 4 of the paper buckets London page-transit times by the seven
//! OpenWeatherMap icon conditions, ordered by increasing cloud cover, and
//! finds the median PTT roughly doubling from clear sky (470.5 ms) to
//! moderate rain (931.5 ms) — with moderate rain standing clearly above
//! even overcast and light-rain conditions. The paper attributes this to
//! rain fade growing with raindrop size ([48, 51] in its bibliography):
//! large falling drops attenuate the Ku-band link far more than the
//! ~0.1 mm droplets inside clouds.
//!
//! [`WeatherCondition`] encodes that ordering and the resulting
//! attenuation-driven multipliers; [`WeatherTimeline`] generates a
//! persistent (Markov) weather sequence for campaign simulation.

use starlink_simcore::{SimDuration, SimRng, SimTime};

/// The seven OpenWeatherMap conditions used in Fig. 4, in increasing order
/// of cloud cover / precipitation intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WeatherCondition {
    /// No cloud.
    ClearSky,
    /// 11–25 % cloud.
    FewClouds,
    /// 25–50 % cloud.
    ScatteredClouds,
    /// 51–84 % cloud.
    BrokenClouds,
    /// 85–100 % cloud.
    OvercastClouds,
    /// Precipitation with small drop sizes.
    LightRain,
    /// Precipitation with large drop sizes — the strongest rain-fade
    /// driver observed by the paper.
    ModerateRain,
}

impl WeatherCondition {
    /// All conditions in Fig. 4's cloud-cover order.
    pub const ALL: [WeatherCondition; 7] = [
        WeatherCondition::ClearSky,
        WeatherCondition::FewClouds,
        WeatherCondition::ScatteredClouds,
        WeatherCondition::BrokenClouds,
        WeatherCondition::OvercastClouds,
        WeatherCondition::LightRain,
        WeatherCondition::ModerateRain,
    ];

    /// Stable one-byte wire code (the index in [`WeatherCondition::ALL`]),
    /// used by the telemetry wire format. Append-only: never reorder.
    pub fn code(self) -> u8 {
        WeatherCondition::ALL
            .iter()
            .position(|&w| w == self)
            .map(|i| i as u8)
            .unwrap_or(0)
    }

    /// Decodes a [`WeatherCondition::code`]; `None` for unknown bytes.
    pub fn from_code(code: u8) -> Option<WeatherCondition> {
        WeatherCondition::ALL.get(code as usize).copied()
    }

    /// Human-readable label (matches the paper's x-axis).
    pub fn label(self) -> &'static str {
        match self {
            WeatherCondition::ClearSky => "Clear Sky",
            WeatherCondition::FewClouds => "Few Clouds",
            WeatherCondition::ScatteredClouds => "Scattered Clouds",
            WeatherCondition::BrokenClouds => "Broken Clouds",
            WeatherCondition::OvercastClouds => "Overcast Clouds",
            WeatherCondition::LightRain => "Light Rain",
            WeatherCondition::ModerateRain => "Moderate Rain",
        }
    }

    /// Representative Ku-band excess attenuation, dB. Cloud water content
    /// attenuates mildly; rain attenuation scales steeply with drop size
    /// (the effect behind the paper's Fig. 4 discussion).
    pub fn attenuation_db(self) -> f64 {
        match self {
            WeatherCondition::ClearSky => 0.0,
            WeatherCondition::FewClouds => 0.2,
            WeatherCondition::ScatteredClouds => 0.5,
            WeatherCondition::BrokenClouds => 0.9,
            WeatherCondition::OvercastClouds => 1.4,
            WeatherCondition::LightRain => 2.2,
            WeatherCondition::ModerateRain => 5.0,
        }
    }

    /// Multiplier on network wait times (retransmissions + PHY-rate
    /// fallback under attenuation). Calibrated so the Fig. 4 scenario
    /// reproduces the ~2× clear-sky → moderate-rain median-PTT ratio.
    pub fn latency_multiplier(self) -> f64 {
        match self {
            WeatherCondition::ClearSky => 1.00,
            WeatherCondition::FewClouds => 1.06,
            WeatherCondition::ScatteredClouds => 1.14,
            WeatherCondition::BrokenClouds => 1.24,
            WeatherCondition::OvercastClouds => 1.38,
            WeatherCondition::LightRain => 1.55,
            WeatherCondition::ModerateRain => 1.98,
        }
    }

    /// Multiplier on achievable link capacity (PHY-rate fallback).
    pub fn capacity_factor(self) -> f64 {
        match self {
            WeatherCondition::ClearSky => 1.00,
            WeatherCondition::FewClouds => 0.98,
            WeatherCondition::ScatteredClouds => 0.95,
            WeatherCondition::BrokenClouds => 0.91,
            WeatherCondition::OvercastClouds => 0.86,
            WeatherCondition::LightRain => 0.78,
            WeatherCondition::ModerateRain => 0.60,
        }
    }

    /// Additional background packet-loss probability contributed by the
    /// weather state.
    pub fn extra_loss(self) -> f64 {
        match self {
            WeatherCondition::ClearSky => 0.000,
            WeatherCondition::FewClouds => 0.000,
            WeatherCondition::ScatteredClouds => 0.001,
            WeatherCondition::BrokenClouds => 0.002,
            WeatherCondition::OvercastClouds => 0.004,
            WeatherCondition::LightRain => 0.008,
            WeatherCondition::ModerateRain => 0.020,
        }
    }
}

/// Stationary occupancy used when generating weather: a temperate maritime
/// mix (London-like), roughly matching UK Met Office condition frequencies.
const LONDON_STATIONARY: [f64; 7] = [0.16, 0.14, 0.16, 0.18, 0.18, 0.12, 0.06];

/// A generated weather history with hourly resolution.
///
/// Weather is persistent: each hour keeps the previous condition with
/// probability `persistence`, otherwise redraws from the stationary mix —
/// a first-order Markov chain that produces realistic multi-hour spells
/// while preserving the long-run condition frequencies.
#[derive(Debug, Clone)]
pub struct WeatherTimeline {
    hours: Vec<WeatherCondition>,
}

impl WeatherTimeline {
    /// Generates `duration` of hourly weather using `rng`, with the given
    /// persistence probability (0.85 is a reasonable temperate default).
    pub fn generate(rng: &mut SimRng, duration: SimDuration, persistence: f64) -> Self {
        let n_hours = (duration.as_secs() / 3_600).max(1) as usize;
        let mut hours = Vec::with_capacity(n_hours);
        let mut current = WeatherCondition::ALL[rng.choose_weighted(&LONDON_STATIONARY)];
        for _ in 0..n_hours {
            if !rng.bernoulli(persistence) {
                current = WeatherCondition::ALL[rng.choose_weighted(&LONDON_STATIONARY)];
            }
            hours.push(current);
        }
        WeatherTimeline { hours }
    }

    /// A constant timeline (used by controlled experiments that pin the
    /// condition, like the Fig. 4 sweep).
    pub fn constant(condition: WeatherCondition, duration: SimDuration) -> Self {
        let n_hours = (duration.as_secs() / 3_600).max(1) as usize;
        WeatherTimeline {
            hours: vec![condition; n_hours],
        }
    }

    /// The condition at simulated time `t` (clamped to the last generated
    /// hour).
    pub fn condition_at(&self, t: SimTime) -> WeatherCondition {
        let hour = (t.as_secs() / 3_600) as usize;
        self.hours[hour.min(self.hours.len() - 1)]
    }

    /// Number of generated hours.
    pub fn len_hours(&self) -> usize {
        self.hours.len()
    }

    /// Iterates over the hourly conditions.
    pub fn iter(&self) -> impl Iterator<Item = WeatherCondition> + '_ {
        self.hours.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_cloud_cover() {
        // The enum order is the Fig. 4 x-axis order.
        let mults: Vec<f64> = WeatherCondition::ALL
            .iter()
            .map(|w| w.latency_multiplier())
            .collect();
        for pair in mults.windows(2) {
            assert!(pair[0] < pair[1], "multipliers must rise with cloud cover");
        }
        let att: Vec<f64> = WeatherCondition::ALL
            .iter()
            .map(|w| w.attenuation_db())
            .collect();
        for pair in att.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn moderate_rain_doubles_latency() {
        // The headline Fig. 4 ratio: 931.5 / 470.5 ≈ 1.98.
        let ratio = WeatherCondition::ModerateRain.latency_multiplier()
            / WeatherCondition::ClearSky.latency_multiplier();
        assert!((ratio - 1.98).abs() < 0.05, "{ratio}");
    }

    #[test]
    fn moderate_rain_clearly_above_light_rain_and_overcast() {
        // Fig. 4's standout observation: big drops matter more than cover.
        let mr = WeatherCondition::ModerateRain.latency_multiplier();
        assert!(mr > WeatherCondition::LightRain.latency_multiplier() * 1.2);
        assert!(mr > WeatherCondition::OvercastClouds.latency_multiplier() * 1.3);
    }

    #[test]
    fn capacity_factor_decreases() {
        let caps: Vec<f64> = WeatherCondition::ALL
            .iter()
            .map(|w| w.capacity_factor())
            .collect();
        for pair in caps.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert_eq!(WeatherCondition::ClearSky.capacity_factor(), 1.0);
    }

    #[test]
    fn timeline_is_deterministic() {
        let d = SimDuration::from_days(10);
        let a = WeatherTimeline::generate(&mut SimRng::seed_from(1), d, 0.85);
        let b = WeatherTimeline::generate(&mut SimRng::seed_from(1), d, 0.85);
        assert_eq!(a.hours, b.hours);
    }

    #[test]
    fn timeline_covers_all_conditions_over_a_campaign() {
        // Six months of weather should visit every condition.
        let d = SimDuration::from_days(180);
        let tl = WeatherTimeline::generate(&mut SimRng::seed_from(7), d, 0.85);
        for cond in WeatherCondition::ALL {
            assert!(
                tl.iter().any(|c| c == cond),
                "{} never occurred in 6 months",
                cond.label()
            );
        }
    }

    #[test]
    fn timeline_has_persistence() {
        let d = SimDuration::from_days(30);
        let tl = WeatherTimeline::generate(&mut SimRng::seed_from(3), d, 0.85);
        let hours: Vec<_> = tl.iter().collect();
        let same = hours.windows(2).filter(|p| p[0] == p[1]).count();
        let frac = same as f64 / (hours.len() - 1) as f64;
        // With persistence 0.85 + redraw-to-same, consecutive-same should
        // be well above the i.i.d. level (~0.16).
        assert!(frac > 0.6, "persistence too low: {frac}");
    }

    #[test]
    fn stationary_mix_roughly_respected() {
        let d = SimDuration::from_days(365);
        let tl = WeatherTimeline::generate(&mut SimRng::seed_from(11), d, 0.85);
        let total = tl.len_hours() as f64;
        for (i, cond) in WeatherCondition::ALL.iter().enumerate() {
            let freq = tl.iter().filter(|c| c == cond).count() as f64 / total;
            assert!(
                (freq - LONDON_STATIONARY[i]).abs() < 0.08,
                "{}: {freq} vs {}",
                cond.label(),
                LONDON_STATIONARY[i]
            );
        }
    }

    #[test]
    fn condition_at_clamps_and_indexes() {
        let tl = WeatherTimeline::constant(WeatherCondition::LightRain, SimDuration::from_hours(5));
        assert_eq!(tl.len_hours(), 5);
        assert_eq!(
            tl.condition_at(SimTime::from_secs(0)),
            WeatherCondition::LightRain
        );
        // Beyond the generated horizon: clamp, don't panic.
        assert_eq!(
            tl.condition_at(SimTime::from_secs(3_600 * 100)),
            WeatherCondition::LightRain
        );
    }
}
