//! Property tests for the channel models: every sampled quantity must
//! stay physical (probabilities in [0,1], rates non-negative and below
//! the ceiling, ordering of weather effects) for arbitrary seeds and
//! times.

use proptest::prelude::*;
use starlink_channel::loss::HandoverLossParams;
use starlink_channel::{
    GilbertElliott, HandoverLossModel, NodeProfile, WeatherCondition, WeatherTimeline,
};
use starlink_constellation::{ServingInterval, ServingSchedule};
use starlink_geo::City;
use starlink_simcore::{SimDuration, SimRng, SimTime};

fn any_node() -> impl Strategy<Value = City> {
    prop_oneof![
        Just(City::NorthCarolina),
        Just(City::Wiltshire),
        Just(City::Barcelona),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Throughput samples are positive and never exceed the ceiling
    /// (clamped), for any node, time and weather.
    #[test]
    fn throughput_within_physical_bounds(
        city in any_node(),
        seed in any::<u64>(),
        t_secs in 0u64..7 * 86_400,
        weather_idx in 0usize..7,
    ) {
        let profile = NodeProfile::for_node(city);
        let weather = WeatherCondition::ALL[weather_idx];
        let mut rng = SimRng::seed_from(seed);
        let t = SimTime::from_secs(t_secs);
        let dl = profile.sample_iperf_dl(t, weather, &mut rng);
        let ul = profile.sample_iperf_ul(t, weather, &mut rng);
        prop_assert!(dl.bits_per_sec() > 0);
        prop_assert!(dl <= profile.iperf_dl_ceiling);
        prop_assert!(ul <= profile.iperf_ul_ceiling);
    }

    /// Queue-delay samples respect the load-scaled span.
    #[test]
    fn queue_samples_within_span(
        city in any_node(),
        seed in any::<u64>(),
        t_secs in 0u64..86_400,
    ) {
        let profile = NodeProfile::for_node(city);
        let mut rng = SimRng::seed_from(seed);
        let t = SimTime::from_secs(t_secs);
        let (_, hi) = profile.queue_load_range;
        for _ in 0..16 {
            let q = profile.sample_wireless_queue_ms(t, &mut rng);
            prop_assert!(q >= 0.0);
            prop_assert!(q <= profile.wireless_queue_span_ms * hi + 1e-9);
        }
    }

    /// The Gilbert–Elliott channel always reports a probability, and its
    /// long-run loss approaches the stationary mean.
    #[test]
    fn gilbert_elliott_probabilities(seed in any::<u64>()) {
        let mut ge = GilbertElliott::starlink_background(SimRng::seed_from(seed));
        let mut acc = 0.0;
        let n = 5_000u64;
        for i in 0..n {
            let p = ge.loss_prob_at(SimTime::from_millis(i * 100));
            prop_assert!((0.0..=1.0).contains(&p));
            acc += p;
        }
        let mean = acc / n as f64;
        // Stationary mean ~ 0.007; 500 s samples are noisy, allow slack.
        prop_assert!(mean < 0.08, "mean loss {}", mean);
    }

    /// The handover loss model is a probability everywhere, equals the
    /// outage level inside outages, and reverts to background far away.
    #[test]
    fn handover_model_probabilities(seed in any::<u64>(), h_secs in 10u64..3_000) {
        let schedule = ServingSchedule {
            intervals: vec![ServingInterval {
                sat: 0,
                start: SimTime::ZERO,
                end: SimTime::from_secs(h_secs + 600),
            }],
            handovers: vec![SimTime::from_secs(h_secs)],
            outages: vec![(
                SimTime::from_secs(h_secs + 300),
                SimTime::from_secs(h_secs + 302),
            )],
        };
        let params = HandoverLossParams::default();
        let mut model = HandoverLossModel::new(&schedule, params, SimRng::seed_from(seed));
        for i in 0..200u64 {
            let t = SimTime::from_secs(i * (h_secs + 400) / 200);
            let p = model.loss_prob_at(t);
            prop_assert!((0.0..=1.0).contains(&p), "p={} at {}", p, t);
        }
        prop_assert_eq!(
            model.scheduled_loss_at(SimTime::from_secs(h_secs + 301)),
            Some(params.outage_loss)
        );
        // Inside the handover window: severity within the configured range.
        let in_window = model
            .scheduled_loss_at(SimTime::from_secs(h_secs) + SimDuration::from_millis(500))
            .expect("inside the window");
        let (lo, hi) = params.handover_loss_range;
        prop_assert!((lo..=hi).contains(&in_window));
    }

    /// Weather timelines only produce valid conditions and respect their
    /// requested length.
    #[test]
    fn weather_timeline_valid(seed in any::<u64>(), hours in 1u64..2_000, p in 0.0f64..1.0) {
        let mut rng = SimRng::seed_from(seed);
        let tl = WeatherTimeline::generate(
            &mut rng,
            SimDuration::from_hours(hours),
            p,
        );
        prop_assert_eq!(tl.len_hours() as u64, hours);
        for c in tl.iter() {
            prop_assert!(WeatherCondition::ALL.contains(&c));
        }
    }
}
