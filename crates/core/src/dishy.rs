//! The Dishy (Starlink Status) API.
//!
//! §3.2 of the paper: the Raspberry Pis could check "parameters of the
//! Starlink receiver (accessible from the local network) via the
//! so-called Starlink Status (or Dishy) API". This module reproduces the
//! useful subset of that gRPC surface against a [`NodeWorld`]: which
//! satellite the dish is tracking, at what angles and range, a
//! signal-quality proxy, the PoP latency, and outage accounting — the
//! fields the starlink-cli community tooling exposes.

use crate::world::NodeWorld;
use starlink_constellation::{BentPipe, SHELL1_MIN_ELEVATION_DEG};
use starlink_simcore::{SimDuration, SimTime};

/// A snapshot of the dish's status at one instant.
#[derive(Debug, Clone)]
pub struct DishyStatus {
    /// Query time.
    pub at: SimTime,
    /// Name of the serving satellite, if any.
    pub serving_satellite: Option<String>,
    /// Elevation of the serving satellite, degrees.
    pub elevation_deg: Option<f64>,
    /// Azimuth of the serving satellite, degrees.
    pub azimuth_deg: Option<f64>,
    /// Slant range to the serving satellite, km.
    pub slant_range_km: Option<f64>,
    /// Signal-quality proxy in `[0, 1]`: 0 at the mask, 1 at zenith
    /// (path loss and atmosphere both track elevation).
    pub signal_quality: Option<f64>,
    /// One-way bent-pipe propagation to the PoP, ms.
    pub pop_propagation_ms: Option<f64>,
    /// Whether the terminal is in an outage (no serving satellite).
    pub in_outage: bool,
    /// Seconds until the next scheduled handover (within the world's
    /// window), if any.
    pub next_handover_in: Option<SimDuration>,
    /// Cumulative outage time since the window started.
    pub outage_total: SimDuration,
    /// Handovers completed since the window started.
    pub handover_count: usize,
}

impl NodeWorld {
    /// Queries the dish's status at `t` (any instant inside the world's
    /// window).
    pub fn dishy_status(&self, t: SimTime) -> DishyStatus {
        let serving = self.schedule.serving_at(t);
        let look = serving.map(|sat| {
            self.constellation
                .look(sat, self.position, t.since(SimTime::ZERO))
        });
        let pipe = BentPipe::new(&self.constellation, self.position, self.gateway);
        let pop_propagation_ms = serving.map(|sat| {
            pipe.propagation_delay(sat, t.since(SimTime::ZERO))
                .as_millis_f64()
        });

        let signal_quality = look.map(|l| {
            ((l.elevation_deg - SHELL1_MIN_ELEVATION_DEG) / (90.0 - SHELL1_MIN_ELEVATION_DEG))
                .clamp(0.0, 1.0)
        });

        let next_handover_in = self
            .schedule
            .handovers
            .iter()
            .find(|&&h| h > t)
            .map(|&h| h.since(t));

        let outage_total = self
            .schedule
            .outages
            .iter()
            .filter(|&&(s, _)| s <= t)
            .map(|&(s, e)| e.min(t).saturating_since(s))
            .fold(SimDuration::ZERO, |acc, d| acc + d);

        let handover_count = self.schedule.handovers.iter().filter(|&&h| h <= t).count();

        DishyStatus {
            at: t,
            serving_satellite: serving.map(|sat| self.constellation.name(sat).to_string()),
            elevation_deg: look.map(|l| l.elevation_deg),
            azimuth_deg: look.map(|l| l.azimuth_deg),
            slant_range_km: look.map(|l| l.range.as_km()),
            signal_quality,
            pop_propagation_ms,
            in_outage: self.schedule.in_outage(t),
            next_handover_in,
            outage_total,
            handover_count,
        }
    }
}

impl DishyStatus {
    /// Renders the status like the community CLI tools do.
    pub fn render(&self) -> String {
        let mut out = format!("dishy status @ t+{}s\n", self.at.as_secs());
        match (&self.serving_satellite, self.elevation_deg) {
            (Some(name), Some(el)) => {
                out.push_str(&format!(
                    "  tracking {name}: elevation {el:.1} deg, azimuth {:.1} deg, \
                     range {:.0} km\n",
                    self.azimuth_deg.unwrap_or(0.0),
                    self.slant_range_km.unwrap_or(0.0)
                ));
                out.push_str(&format!(
                    "  signal quality {:.0}%, PoP propagation {:.2} ms\n",
                    self.signal_quality.unwrap_or(0.0) * 100.0,
                    self.pop_propagation_ms.unwrap_or(0.0)
                ));
            }
            _ => out.push_str("  NO SIGNAL (searching)\n"),
        }
        if let Some(d) = self.next_handover_in {
            out.push_str(&format!("  next handover in {}\n", d));
        }
        out.push_str(&format!(
            "  window so far: {} handovers, {} outage\n",
            self.handover_count, self.outage_total
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{NodeWorldConfig, WeatherSpec};
    use starlink_channel::WeatherCondition;
    use starlink_geo::City;

    fn world() -> NodeWorld {
        NodeWorld::build(&NodeWorldConfig {
            city: City::Wiltshire,
            seed: 8,
            window: SimDuration::from_mins(12),
            weather: WeatherSpec::Constant(WeatherCondition::ClearSky),
        })
    }

    #[test]
    fn status_tracks_a_satellite_when_serving() {
        let w = world();
        // Find an instant with a serving satellite.
        let t = (0..720)
            .map(SimTime::from_secs)
            .find(|&t| w.schedule.serving_at(t).is_some())
            .expect("some serving instant");
        let s = w.dishy_status(t);
        assert!(!s.in_outage);
        let name = s.serving_satellite.expect("tracking");
        assert!(name.starts_with("STARLINK-"));
        let el = s.elevation_deg.expect("elevation");
        assert!(el >= SHELL1_MIN_ELEVATION_DEG - 1.0, "elevation {el}");
        let q = s.signal_quality.expect("quality");
        assert!((0.0..=1.0).contains(&q));
        let prop = s.pop_propagation_ms.expect("prop");
        assert!((3.0..10.0).contains(&prop), "prop {prop} ms");
        let range = s.slant_range_km.expect("range");
        assert!((500.0..1_250.0).contains(&range), "range {range}");
    }

    #[test]
    fn status_counts_handovers_monotonically() {
        let w = world();
        let early = w.dishy_status(SimTime::from_secs(30));
        let late = w.dishy_status(SimTime::from_secs(700));
        assert!(late.handover_count >= early.handover_count);
        assert!(late.outage_total >= early.outage_total);
    }

    #[test]
    fn next_handover_is_in_the_future() {
        let w = world();
        let s = w.dishy_status(SimTime::from_secs(10));
        if let Some(d) = s.next_handover_in {
            assert!(d > SimDuration::ZERO);
            assert!(d < SimDuration::from_mins(12));
        }
        let rendered = s.render();
        assert!(rendered.contains("dishy status"));
    }
}
