//! World builders: the measurement topologies of the paper.

use crate::dynamics::{Direction, StarlinkLinkDynamics, TerrestrialQueueDynamics};
use starlink_channel::{AccessTech, NodeProfile, WeatherCondition, WeatherTimeline};
use starlink_constellation::{
    compute_schedule, BentPipe, Constellation, SelectionPolicy, ServingSchedule,
};
use starlink_geo::{haversine_distance, City, Geodetic};
use starlink_netsim::{LinkConfig, Network, NodeId, NodeKind};
use starlink_simcore::{Bytes, DataRate, SimDuration, SimRng, SimTime};

/// Weather specification for a world.
#[derive(Debug, Clone, Copy)]
pub enum WeatherSpec {
    /// Pin one condition for the whole window (controlled experiments).
    Constant(WeatherCondition),
    /// Generate a Markov timeline with the given persistence.
    Generated {
        /// Hour-to-hour persistence probability.
        persistence: f64,
    },
}

/// Configuration for a volunteer-node world.
#[derive(Debug, Clone)]
pub struct NodeWorldConfig {
    /// Which volunteer node (North Carolina, Wiltshire or Barcelona).
    pub city: City,
    /// Master seed.
    pub seed: u64,
    /// Analysis window length (the world precomputes constellation state
    /// for this span).
    pub window: SimDuration,
    /// Weather handling.
    pub weather: WeatherSpec,
}

impl NodeWorldConfig {
    /// A sensible default: the Wiltshire node, one hour, generated
    /// weather.
    pub fn new(city: City, seed: u64) -> Self {
        NodeWorldConfig {
            city,
            seed,
            window: SimDuration::from_hours(1),
            weather: WeatherSpec::Generated { persistence: 0.85 },
        }
    }
}

/// A volunteer measurement node (§3.2): RPi host behind a Starlink dish,
/// bent pipe to the regional PoP, metro fibre to the closest Google Cloud
/// region hosting the test server.
///
/// Topology (hop numbers as traceroute sees them):
///
/// ```text
/// node ── dishy(1) ══ bent pipe ══ pop(2) ── metro(3) ── edge(4) ── server(5)
/// ```
pub struct NodeWorld {
    /// The packet network (borrow it mutably to run tools).
    pub net: Network,
    /// The RPi host.
    pub node: NodeId,
    /// The dish/router (hop 1).
    pub dishy: NodeId,
    /// The Starlink PoP across the bent pipe (hop 2).
    pub pop: NodeId,
    /// Metro transit (hop 3).
    pub metro: NodeId,
    /// Cloud edge (hop 4).
    pub edge: NodeId,
    /// The test server VM (hop 5).
    pub server: NodeId,
    /// The serving-satellite schedule over the window.
    pub schedule: ServingSchedule,
    /// The node's channel profile.
    pub profile: NodeProfile,
    /// The weather timeline in force.
    pub weather: WeatherTimeline,
    /// The constellation this world was built against (kept for
    /// dish-status queries and further analysis).
    pub constellation: Constellation,
    /// The terminal's position.
    pub position: starlink_geo::Geodetic,
    /// The gateway ground-station position.
    pub gateway: starlink_geo::Geodetic,
}

impl NodeWorld {
    /// Builds the world, precomputing constellation state over the
    /// configured window.
    pub fn build(config: &NodeWorldConfig) -> NodeWorld {
        let root = SimRng::seed_from(config.seed);
        let profile = NodeProfile::for_node(config.city);
        let position = config.city.position();

        // Rotate the constellation to a seed-specific phase so different
        // seeds see different pass geometries.
        let gmst0 = root.stream("gmst").f64_of();
        let constellation = Constellation::starlink_shell1(gmst0);
        let policy = SelectionPolicy {
            sample_step: SimDuration::from_secs(1),
            ..SelectionPolicy::default()
        };
        let schedule = compute_schedule(
            &constellation,
            position,
            SimTime::ZERO,
            config.window,
            &policy,
        );

        // The gateway sits a few hundred km from the user (the paper:
        // "down to a data centre location nearby").
        let gateway = gateway_near(position);
        let pipe = BentPipe::new(&constellation, position, gateway);

        let weather = match config.weather {
            WeatherSpec::Constant(c) => {
                WeatherTimeline::constant(c, config.window.max(SimDuration::from_hours(1)))
            }
            WeatherSpec::Generated { persistence } => WeatherTimeline::generate(
                &mut root.stream("weather"),
                config.window.max(SimDuration::from_hours(1)),
                persistence,
            ),
        };

        let mut net = Network::new(config.seed);
        let node = net.add_node("rpi", NodeKind::Host);
        let dishy = net.add_node("dishy", NodeKind::Router);
        let pop = net.add_node("starlink-pop", NodeKind::Router);
        let metro = net.add_node("metro-transit", NodeKind::Router);
        let edge = net.add_node("cloud-edge", NodeKind::Router);
        let server = net.add_node("test-server", NodeKind::Host);

        // LAN to the dish.
        net.connect_duplex(node, dishy, LinkConfig::ethernet(), LinkConfig::ethernet());

        // The bent pipe, direction-specific dynamics.
        let up = StarlinkLinkDynamics::new(
            profile.clone(),
            weather.clone(),
            &schedule,
            &pipe,
            SimTime::ZERO,
            config.window,
            Direction::Up,
            root.stream("sl.up"),
            root.stream("sl.loss.up"),
        );
        let down = StarlinkLinkDynamics::new(
            profile.clone(),
            weather.clone(),
            &schedule,
            &pipe,
            SimTime::ZERO,
            config.window,
            Direction::Down,
            root.stream("sl.down"),
            root.stream("sl.loss.down"),
        );
        // Queue sizes reflect Starlink's measured bufferbloat (hundreds of
        // milliseconds at full rate on the downlink).
        net.connect_duplex(
            dishy,
            pop,
            LinkConfig::dynamic(Box::new(up)).with_queue(Bytes::from_kb(512)),
            LinkConfig::dynamic(Box::new(down)).with_queue(Bytes::from_mb(3)),
        );

        // PoP -> metro: short fat fibre.
        net.connect_duplex(
            pop,
            metro,
            LinkConfig::fixed(SimDuration::from_millis(1), DataRate::from_gbps(10), 0.0),
            LinkConfig::fixed(SimDuration::from_millis(1), DataRate::from_gbps(10), 0.0),
        );

        // Metro -> cloud edge: distance-based fibre with terrestrial
        // queueing (the "whole path minus bent pipe" share of Table 2).
        let dc = config.city.closest_cloud();
        let fibre_delay = haversine_distance(position, dc.position())
            .fiber_delay()
            // Fibre routes are never great-circle straight.
            .mul_f64(1.4)
            .max(SimDuration::from_millis(2));
        let t1 = TerrestrialQueueDynamics::new(
            profile.clone(),
            fibre_delay,
            DataRate::from_gbps(10),
            root.stream("terrestrial.out"),
        );
        let t2 = TerrestrialQueueDynamics::new(
            profile.clone(),
            fibre_delay,
            DataRate::from_gbps(10),
            root.stream("terrestrial.back"),
        );
        net.connect_duplex(
            metro,
            edge,
            LinkConfig::dynamic(Box::new(t1)),
            LinkConfig::dynamic(Box::new(t2)),
        );

        // Edge -> server: in-DC hop.
        net.connect_duplex(
            edge,
            server,
            LinkConfig::fixed(SimDuration::from_micros(200), DataRate::from_gbps(10), 0.0),
            LinkConfig::fixed(SimDuration::from_micros(200), DataRate::from_gbps(10), 0.0),
        );

        net.route_linear(&[node, dishy, pop, metro, edge, server]);

        NodeWorld {
            net,
            node,
            dishy,
            pop,
            metro,
            edge,
            server,
            schedule,
            profile,
            weather,
            constellation,
            position,
            gateway,
        }
    }

    /// A text rendering of the topology (the reproduction's Fig. 2).
    pub fn topology_diagram(&self) -> String {
        let mut out = String::new();
        out.push_str("volunteer measurement node (paper Fig. 2):\n\n");
        out.push_str("  [rpi] --lan-- [dishy] ==bent pipe== [starlink-pop]\n");
        out.push_str("      --fibre-- [metro-transit] --fibre-- [cloud-edge] -- [test-server]\n\n");
        out.push_str(&format!(
            "  serving intervals: {}, handovers: {}, outage total: {}\n",
            self.schedule.intervals.len(),
            self.schedule.handovers.len(),
            self.schedule.total_outage(),
        ));
        out
    }
}

/// Places the gateway ground station ~300-500 km from the user, the
/// typical dish→gateway anchoring distance in 2022 deployments.
fn gateway_near(user: Geodetic) -> Geodetic {
    // Offset ~3.5 degrees west (≈ 300-400 km at mid-latitudes).
    Geodetic::on_surface(user.lat_deg - 1.2, user.lon_deg - 4.0)
}

/// The Fig. 5 comparison world: one London vantage with Starlink,
/// broadband and cellular access chains converging on the London IXP and
/// continuing over the Atlantic to an N. Virginia VM.
///
/// Hop numbering per access chain (matching the paper's x-axis, 9 hops):
///
/// ```text
/// client → home(1) → access(2) → metro(3) → LondonIEX(4) → transit(5)
///        → transatlantic(6) → us-edge(7) → dc(8) → vm(9)
/// ```
pub struct Fig5World {
    /// The packet network.
    pub net: Network,
    /// Per-technology client hosts, in [`Fig5World::TECHS`] order.
    pub clients: Vec<NodeId>,
    /// The destination VM.
    pub vm: NodeId,
    /// Serving schedule of the Starlink chain.
    pub schedule: ServingSchedule,
}

impl Fig5World {
    /// The access technologies compared, in the paper's legend order.
    pub const TECHS: [AccessTech; 3] = [
        AccessTech::Starlink,
        AccessTech::CableBroadband,
        AccessTech::Cellular,
    ];

    /// Builds the comparison world.
    pub fn build(seed: u64, window: SimDuration) -> Fig5World {
        let root = SimRng::seed_from(seed);
        let london = City::London.position();
        let profile = NodeProfile::for_node(City::Wiltshire);

        let gmst0 = root.stream("gmst").f64_of();
        let constellation = Constellation::starlink_shell1(gmst0);
        let policy = SelectionPolicy {
            sample_step: SimDuration::from_secs(1),
            ..SelectionPolicy::default()
        };
        let schedule = compute_schedule(&constellation, london, SimTime::ZERO, window, &policy);
        let gateway = gateway_near(london);
        let pipe = BentPipe::new(&constellation, london, gateway);
        let weather = WeatherTimeline::constant(
            WeatherCondition::FewClouds,
            window.max(SimDuration::from_hours(1)),
        );

        let mut net = Network::new(seed);

        // Shared long-haul spine: IXP -> transit -> transatlantic -> US.
        let iex = net.add_node("LondonIEX", NodeKind::Router);
        let transit = net.add_node("transit-london", NodeKind::Router);
        let atlantic = net.add_node("nyc-landing", NodeKind::Router);
        let us_edge = net.add_node("us-east-edge", NodeKind::Router);
        let dc = net.add_node("ashburn-dc", NodeKind::Router);
        let vm = net.add_node("nvirginia-vm", NodeKind::Host);

        let fat = |delay_ms: u64| {
            LinkConfig::fixed(
                SimDuration::from_millis(delay_ms),
                DataRate::from_gbps(10),
                0.0,
            )
        };
        net.connect_duplex(iex, transit, fat(1), fat(1));
        // London -> NYC subsea: ~5570 km of fibre => ~28 ms one way + slack.
        net.connect_duplex(transit, atlantic, fat(33), fat(33));
        net.connect_duplex(atlantic, us_edge, fat(4), fat(4));
        net.connect_duplex(us_edge, dc, fat(2), fat(2));
        net.connect_duplex(dc, vm, fat(1), fat(1));

        let mut clients = Vec::new();
        let mut chains: Vec<Vec<NodeId>> = Vec::new();

        for (i, tech) in Self::TECHS.iter().enumerate() {
            let label = tech.label().to_lowercase().replace(' ', "-");
            let client = net.add_node(&format!("{label}-client"), NodeKind::Host);
            let home = net.add_node(&format!("{label}-home"), NodeKind::Router);
            let access = net.add_node(
                &match tech {
                    AccessTech::Starlink => "starlink-pop".to_string(),
                    AccessTech::Cellular => "ran-core".to_string(),
                    _ => format!("{label}-isp"),
                },
                NodeKind::Router,
            );
            let metro = net.add_node(&format!("{label}-metro"), NodeKind::Router);

            // Client -> home router.
            net.connect_duplex(client, home, LinkConfig::ethernet(), LinkConfig::ethernet());

            // Home -> access: the technology-specific segment.
            match tech {
                AccessTech::Starlink => {
                    let up = StarlinkLinkDynamics::new(
                        profile.clone(),
                        weather.clone(),
                        &schedule,
                        &pipe,
                        SimTime::ZERO,
                        window,
                        Direction::Up,
                        root.stream("f5.up").substream(i as u64),
                        root.stream("f5.loss.up").substream(i as u64),
                    );
                    let down = StarlinkLinkDynamics::new(
                        profile.clone(),
                        weather.clone(),
                        &schedule,
                        &pipe,
                        SimTime::ZERO,
                        window,
                        Direction::Down,
                        root.stream("f5.down").substream(i as u64),
                        root.stream("f5.loss.down").substream(i as u64),
                    );
                    net.connect_duplex(
                        home,
                        access,
                        LinkConfig::dynamic(Box::new(up)),
                        LinkConfig::dynamic(Box::new(down)),
                    );
                }
                other => {
                    let p = other.profile();
                    // Median access one-way delay from the profile; jitter
                    // comes from serialisation and the simulator's queues.
                    let one_way = SimDuration::from_millis_f64(p.access_ms.mean().max(1.0) / 2.0);
                    let mk = |rate: DataRate| {
                        LinkConfig::fixed(one_way, rate, p.base_loss)
                            .with_queue(Bytes::from_kb(256))
                    };
                    net.connect_duplex(home, access, mk(p.uplink), mk(p.downlink));
                }
            }

            // Access -> metro -> IXP.
            net.connect_duplex(access, metro, fat(1), fat(1));
            net.connect_duplex(metro, iex, fat(1), fat(1));

            clients.push(client);
            chains.push(vec![client, home, access, metro]);
        }

        // Routes: each chain is linear into the shared spine.
        let spine = [iex, transit, atlantic, us_edge, dc, vm];
        for chain in &chains {
            let mut path: Vec<NodeId> = chain.clone();
            path.extend_from_slice(&spine);
            net.route_linear(&path);
        }

        Fig5World {
            net,
            clients,
            vm,
            schedule,
        }
    }
}

/// Small extension trait: first `f64` of a fresh stream (used for GMST
/// phases).
trait F64Of {
    fn f64_of(self) -> f64;
}

impl F64Of for SimRng {
    fn f64_of(mut self) -> f64 {
        self.f64() * std::f64::consts::TAU
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use starlink_netsim::Payload;

    #[test]
    fn node_world_builds_and_pings() {
        let mut world = NodeWorld::build(&NodeWorldConfig {
            city: City::Wiltshire,
            seed: 3,
            window: SimDuration::from_mins(10),
            weather: WeatherSpec::Constant(WeatherCondition::ClearSky),
        });
        // Ping the server repeatedly; most should return with a sane RTT.
        let mut got = 0;
        for i in 0..20 {
            world.net.run_until(SimTime::from_secs(i * 5));
            world.net.send_packet(
                world.node,
                world.server,
                Bytes::new(64),
                64,
                Payload::EchoRequest { probe: i },
            );
        }
        world.net.run_until(SimTime::from_secs(120));
        for (at, pkt) in world.net.drain_mailbox(world.node) {
            if let Payload::EchoReply { .. } = pkt.payload {
                got += 1;
                let rtt = at.since(pkt.sent_at).as_millis_f64();
                // Hmm: sent_at is the reply's send time; skip RTT check
                // here — covered by the traceroute tests.
                let _ = rtt;
            }
        }
        assert!(got >= 15, "only {got}/20 pings returned");
    }

    #[test]
    fn node_world_rtt_in_starlink_band() {
        let mut world = NodeWorld::build(&NodeWorldConfig {
            city: City::Barcelona,
            seed: 4,
            window: SimDuration::from_mins(10),
            weather: WeatherSpec::Constant(WeatherCondition::ClearSky),
        });
        let opts = starlink_tools::TracerouteOptions {
            max_ttl: 8,
            probes_per_hop: 5,
            ..Default::default()
        };
        let result = starlink_tools::traceroute(&mut world.net, world.node, world.server, &opts);
        assert!(result.reached);
        assert_eq!(result.hop_count(), Some(5));
        // The PoP hop (2) carries the bent pipe: RTT well above the LAN
        // hop but below 150 ms for lightly-loaded Barcelona.
        let pop = result.hops[1].mean_rtt_ms().expect("pop answered");
        assert!((5.0..150.0).contains(&pop), "pop rtt {pop}");
        let server = result.hops[4].mean_rtt_ms().expect("server answered");
        assert!(server >= pop * 0.8, "path rtt {server} vs pop {pop}");
    }

    #[test]
    fn fig5_world_reaches_vm_via_nine_hops() {
        let mut world = Fig5World::build(5, SimDuration::from_mins(10));
        for (i, &client) in world.clients.clone().iter().enumerate() {
            let result = starlink_tools::traceroute(
                &mut world.net,
                client,
                world.vm,
                &starlink_tools::TracerouteOptions {
                    max_ttl: 12,
                    probes_per_hop: 3,
                    ..Default::default()
                },
            );
            assert!(result.reached, "tech {i} never reached the VM");
            assert_eq!(result.hop_count(), Some(9), "tech {i}");
        }
    }

    #[test]
    fn topology_diagram_mentions_the_parts() {
        let world = NodeWorld::build(&NodeWorldConfig {
            city: City::NorthCarolina,
            seed: 6,
            window: SimDuration::from_mins(5),
            weather: WeatherSpec::Constant(WeatherCondition::FewClouds),
        });
        let d = world.topology_diagram();
        assert!(d.contains("bent pipe"));
        assert!(d.contains("handovers"));
    }
}
